//! # cxml — a framework for processing complex document-centric XML with
//! overlapping structures
//!
//! A Rust implementation of Iacob & Dekhtyar's SIGMOD 2005 framework for
//! *concurrent XML*: documents whose content carries markup from several
//! independent hierarchies that may overlap each other.
//!
//! The facade re-exports the whole stack:
//!
//! | crate | role |
//! |-------|------|
//! | [`xmlcore`] | XML substrate: pull parser, writer, DOM, DTD engine |
//! | [`goddag`] | the GODDAG data model (shared root, shared leaves, one tree per hierarchy) |
//! | [`sacx`] | SACX parser + representation drivers (distributed / fragmentation / milestones / stand-off) |
//! | [`expath`] | Extended XPath with the `overlapping`, `containing`, `contained`, `co-extensive` axes |
//! | [`prevalid`] | potential-validity checking (prevalidation) |
//! | [`xtagger`] | editing sessions: suggestions, prevalidation gate, undo/redo, filtering |
//! | [`cxobs`] | dependency-free observability: lock-free counters/gauges/latency histograms, event rings, Prometheus-style text exposition |
//! | [`cxstore`] | concurrent multi-document repository: cached overlap indexes, compiled-query cache, batch/parallel queries, gated edits |
//! | [`cxpersist`] | durable stores: `EditOp` write-ahead log, stand-off snapshots, warm restart |
//! | [`cxrepl`] | WAL log-shipping replication: read replicas, catch-up, follower promotion |
//! | [`cxcluster`] | multi-primary write sharding: name routing, fan-out queries, live rebalancing |
//! | [`cxtrace`] | end-to-end request tracing: trace-context propagation, hierarchical spans, bounded flight recorder for slow requests |
//! | [`cxwire`] | length-prefixed TCP framing shared by the replication and service tiers |
//! | [`cxserve`] | network service tier: versioned wire protocol, cluster server, pooling/pipelining client, shard-aware router |
//! | [`corpus`] | synthetic manuscript workloads + the paper's Figure 1 reconstruction |
//!
//! ## Quickstart
//!
//! ```
//! // Four conflicting encodings of the same text (the paper's Figure 1):
//! let g = corpus::figure1::goddag();
//!
//! // One query language over all of them — including questions XPath
//! // cannot ask, like "which words does the damage overlap?":
//! let ev = expath::Evaluator::with_index(&g);
//! let damaged = ev.select("//dmg/overlapping::ling:w").unwrap();
//! assert!(!damaged.is_empty());
//! ```
//!
//! ## Serving many documents
//!
//! ```
//! // A thread-safe repository that amortizes index builds and query
//! // compilation across requests:
//! let store = cxstore::Store::new();
//! store.insert(corpus::figure1::goddag());
//! store.insert(corpus::figure1::goddag());
//! let per_doc = store.query_all("//dmg/overlapping::ling:w").unwrap();
//! assert_eq!(per_doc.len(), 2);
//! ```

pub use corpus;
pub use cxcluster;
pub use cxfault;
pub use cxobs;
pub use cxpersist;
pub use cxrepl;
pub use cxserve;
pub use cxstore;
pub use cxtrace;
pub use cxwire;
pub use expath;
pub use goddag;
pub use prevalid;
pub use sacx;
pub use xmlcore;
pub use xtagger;
