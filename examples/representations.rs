//! Representation tour (paper §4, *Document manipulation*): one
//! multihierarchical document moved through every surface representation —
//! distributed documents, TEI-style fragmentation, milestones, stand-off —
//! losslessly, via the driver interface.
//!
//! Run with: `cargo run --example representations`

use sacx::{Driver, FragmentationDriver, MilestoneDriver, StandoffDriver};

fn main() {
    // Start from the Figure 1 fragment.
    let g = corpus::figure1::goddag();
    println!(
        "source GODDAG: {} hierarchies, {} elements, content {:?}\n",
        g.hierarchy_count(),
        g.element_count(),
        g.content()
    );

    // ------------------------------------------------------------------
    // 1. Distributed documents (the native archival form).
    // ------------------------------------------------------------------
    println!("== distributed documents ==");
    for (name, xml) in sacx::export_distributed(&g).unwrap() {
        println!("  [{name:4}] {xml}");
    }

    // ------------------------------------------------------------------
    // 2..4. The single-file representations, via the Driver trait.
    // ------------------------------------------------------------------
    let drivers: Vec<Box<dyn Driver>> = vec![
        Box::new(FragmentationDriver::default()),
        Box::new(MilestoneDriver::new("phys")),
        Box::new(StandoffDriver),
    ];
    for driver in &drivers {
        let out = driver.export(&g).unwrap();
        println!("\n== {} ==", driver.name());
        for line in out.lines().take(8) {
            let line = if line.len() > 160 { &line[..160] } else { line };
            println!("  {line}");
        }
        if out.lines().count() > 8 {
            println!("  ...");
        }

        // Round-trip: import what we exported, compare the model.
        let back = driver.import(&out).unwrap();
        assert_eq!(back.content(), g.content());
        assert_eq!(back.element_count(), g.element_count());
        let spans = |g: &goddag::Goddag| {
            let mut v: Vec<(String, usize, usize)> = g
                .elements()
                .map(|e| {
                    let (s, en) = g.char_range(e);
                    (g.name(e).unwrap().local.clone(), s, en)
                })
                .collect();
            v.sort();
            v
        };
        assert_eq!(spans(&back), spans(&g), "{} round-trip", driver.name());
        println!("  round-trip: OK ({} elements, spans identical)", back.element_count());
    }

    // ------------------------------------------------------------------
    // The cost of single-document representations: fragmentation count
    // grows with overlap; milestones flatten structure. The GODDAG holds
    // everything at once.
    // ------------------------------------------------------------------
    let frags = sacx::count_fragments(&g, &Default::default()).unwrap();
    println!("\nfragmentation needed {frags} fragmented elements for {} total", g.element_count());
    println!("(the GODDAG needs none — overlap is native to the model)");
}
