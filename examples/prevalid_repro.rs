//! One-shot timing repro for the prevalidation cliff (ROADMAP item,
//! resolved in PR 2). Builds a mixed-content host with N words — `<w>`
//! elements with real text runs between them, `2N − 1` child items — and
//! times the editor services.
//!
//! Pre-rewrite (set-based engine, release): 200 words took ~387 s per
//! `check_insertion`; post-rewrite the whole series is interactive.

use corpus::mixed_host;
use prevalid::{check_insertion, suggest_tags, Item, PrevalidEngine};
use std::time::Instant;

fn main() {
    let engine = PrevalidEngine::new(corpus::dtds::ling());
    for &words in &[25usize, 50, 100, 200] {
        let (g, h, ranges) = mixed_host(words);
        let (s, _) = ranges[words / 2];
        let (_, e) = ranges[words / 2 + 1];

        let t = Instant::now();
        let v = check_insertion(&engine, &g, h, "phrase", s, e);
        let d_ins = t.elapsed();
        assert!(v.ok, "{:?}", v.reason);

        let mut items = Vec::new();
        for i in 0..words {
            if i > 0 {
                items.push(Item::Text);
            }
            items.push(Item::elem("w"));
        }
        let t = Instant::now();
        let v = engine.check_sequence("s", &items);
        let d_seq = t.elapsed();
        assert!(v.ok);

        let t = Instant::now();
        let tags = suggest_tags(&engine, &g, h, s, e);
        let d_sug = t.elapsed();
        assert!(!tags.is_empty());
        println!(
            "{words:>4} words: check_insertion {d_ins:>12.3?}  check_sequence {d_seq:>12.3?}  suggest_tags {d_sug:>12.3?}"
        );
    }
}
