//! A scripted xTagger authoring session (paper §4, *Authoring tools* —
//! the GUI demo, driven through the library API): start from a bare
//! transcription, tag it interactively with prevalidation guarding every
//! insertion, use tag suggestions, make mistakes, undo them.
//!
//! Run with: `cargo run --example xtagger_session`

use corpus::dtds;
use xtagger::{Session, XTaggerError};

fn main() {
    // A fresh transcription: content only, three empty hierarchies with
    // their DTDs.
    let transcription = "ðus ælfred us ealdspell reahte";
    let docs = [
        ("phys", format!("<r>{transcription}</r>")),
        ("ling", format!("<r>{transcription}</r>")),
        ("edit", format!("<r>{transcription}</r>")),
    ];
    let mut g = sacx::parse_distributed(&docs).unwrap();
    dtds::attach_standard(&mut g);
    let phys = g.hierarchy_by_name("phys").unwrap();
    let ling = g.hierarchy_by_name("ling").unwrap();
    let edit = g.hierarchy_by_name("edit").unwrap();

    let mut session = Session::new(g);
    println!("== Transcription ==\n  {transcription:?}\n");

    // ------------------------------------------------------------------
    // What can I tag the first word with? (xTagger's suggestion list.)
    // ------------------------------------------------------------------
    println!("== Suggestions for bytes 0..4 (\"ðus\") ==");
    println!("  ling: {:?}", session.suggest(ling, 0, 4));
    println!("  phys: {:?}", session.suggest(phys, 0, 4));
    println!("  edit: {:?}", session.suggest(edit, 0, 4));

    // ------------------------------------------------------------------
    // Tag words and a sentence in ling; a line in phys; damage in edit.
    // Offsets: ðus=0..4 ælfred=5..12 us=13..15 ealdspell=16..25 reahte=26..32
    // (ð and æ are two bytes each).
    // ------------------------------------------------------------------
    let words = [(0usize, 4usize), (5, 12), (13, 15), (16, 25), (26, 32)];
    for (i, &(s, e)) in words.iter().enumerate() {
        let id = session
            .insert_markup(ling, "w", vec![xmlcore::Attribute::new("n", (i + 1).to_string())], s, e)
            .expect("word markup is always legal here");
        println!("tagged <w n={}> {:?}", i + 1, session.goddag().text_of(id));
    }
    session.insert_markup(ling, "s", vec![], 0, 32).expect("sentence wraps all words");
    session
        .insert_markup(phys, "line", vec![xmlcore::Attribute::new("n", "1")], 0, 15)
        .expect("line 1");
    session
        .insert_markup(phys, "line", vec![xmlcore::Attribute::new("n", "2")], 16, 32)
        .expect("line 2");
    // Damage that overlaps both a word and the line boundary — fine, it
    // lives in its own hierarchy.
    session
        .insert_markup(edit, "dmg", vec![xmlcore::Attribute::new("agent", "damp")], 9, 19)
        .expect("damage range");
    println!("\nafter tagging: {} elements", session.goddag().element_count());

    // ------------------------------------------------------------------
    // Prevalidation refuses dead ends before they happen.
    // ------------------------------------------------------------------
    println!("\n== Prevalidation gate ==");
    // <s> inside <w> can never validate (w holds #PCDATA only).
    match session.insert_markup(ling, "s", vec![], 2, 3) {
        Err(XTaggerError::PrevalidationRejected { tag, reason }) => {
            println!("  refused <{tag}>: {reason}");
        }
        other => println!("  unexpected: {other:?}"),
    }
    // Crossing markup inside one hierarchy is structurally impossible.
    match session.insert_markup(phys, "line", vec![], 10, 20) {
        Err(e) => println!("  refused crossing line: {e}"),
        Ok(_) => println!("  unexpected acceptance"),
    }

    // ------------------------------------------------------------------
    // Mistake + undo/redo.
    // ------------------------------------------------------------------
    println!("\n== Undo/redo ==");
    let extra = session.insert_markup(edit, "res", vec![], 26, 32).unwrap();
    println!("  inserted <res> over {:?}", session.goddag().text_of(extra));
    let label = session.undo().unwrap();
    println!("  undo: {label}");
    session.redo().unwrap();
    println!(
        "  redo; history: {:?}",
        &session.history()[session.history().len().saturating_sub(3)..]
    );

    // ------------------------------------------------------------------
    // Validation status per hierarchy, then query the result.
    // ------------------------------------------------------------------
    println!("\n== Potential validity ==");
    for (name, h) in [("phys", phys), ("ling", ling), ("edit", edit)] {
        let ok = session.validation_status(h).map(|r| r.is_potentially_valid()).unwrap_or(true);
        println!("  {name}: {}", if ok { "potentially valid" } else { "DEAD END" });
    }

    println!("\n== Query the working document ==");
    let damaged = session.query("//dmg/overlapping::ling:w").unwrap();
    let g = session.goddag();
    for w in damaged {
        println!("  damage clips word {:?}", g.text_of(w));
    }

    // ------------------------------------------------------------------
    // Final state, exported per hierarchy.
    // ------------------------------------------------------------------
    println!("\n== Final distributed documents ==");
    for (name, xml) in session.export_filtered(&[phys, ling, edit]).unwrap() {
        println!("  [{name:4}] {xml}");
    }
}
