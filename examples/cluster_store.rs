//! Write-sharding walkthrough: three durable primaries behind one
//! store-shaped façade — routed gated edits, cluster-wide names, fan-out
//! queries, a live migration, a shard drain, and a warm restart.
//!
//! ```sh
//! cargo run --release --example cluster_store
//! ```

use cxml::cxcluster::{Cluster, ShardId};
use cxml::cxpersist::{FsyncPolicy, Options};
use cxml::cxstore::EditOp;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = std::env::temp_dir().join(format!("cxml-cluster-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let dirs: Vec<_> = (0..3).map(|i| base.join(format!("shard-{i}"))).collect();

    // ── Three primaries, one façade ───────────────────────────────────
    let cluster = Cluster::open(dirs.clone(), Options { fsync: FsyncPolicy::EveryN(8) })?;
    for i in 0..6 {
        let mut ms = corpus::generate(&corpus::Params::sized(60 + 10 * i)).goddag;
        corpus::dtds::attach_standard(&mut ms);
        cluster.insert_named(format!("ms-{i}"), ms)?;
    }
    for (s, shard) in cluster.shards().iter().enumerate() {
        println!("shard {s}: {} docs in {}", shard.store().len(), shard.dir().display());
    }

    // ── Routed, gated edits: the name directory finds the owner ───────
    let ms = cluster.id_by_name("ms-2")?;
    println!("ms-2 = {ms}, lives on {}", cluster.shard_of(ms));
    cluster.edit(ms, EditOp::InsertText { offset: 0, text: "Incipit ".into() })?;
    let gate = cluster.edit(
        ms,
        EditOp::InsertElement {
            hierarchy: "ling".into(),
            tag: "nonsense".into(),
            attrs: vec![],
            start: 0,
            end: 4,
        },
    );
    println!("prevalidation across the cluster: {}", gate.unwrap_err());

    // ── Fan-out query across all shards, merged deterministically ─────
    let per_doc = cluster.query_all("//w")?;
    let total: usize = per_doc.iter().map(|(_, ns)| ns.len()).sum();
    println!("query_all //w: {} docs, {total} words", per_doc.len());

    // ── Live rebalancing: move a document, then drain a primary ───────
    let from = cluster.shard_of(ms);
    let to = ShardId((from.0 + 1) % 3);
    cluster.move_doc(ms, to)?;
    println!("moved {ms} {from} -> {to}; name still resolves: {}", cluster.id_by_name("ms-2")?);
    let drained = cluster.drain_shard(ShardId(0))?;
    println!(
        "drained shard 0: {} docs relocated, routing table: {:?}",
        drained.len(),
        cluster.router().overrides().len()
    );

    // ── Warm restart: routing and names are re-derived from the shards ─
    let stats = cluster.stats();
    drop(cluster);
    let cluster = Cluster::open(dirs, Options::default())?;
    println!(
        "reopened: {} docs on {} shards, {} moves recorded pre-restart, ms-2 on {}",
        cluster.len(),
        cluster.shard_count(),
        stats.docs_moved,
        cluster.shard_of(cluster.id_by_name("ms-2")?)
    );

    let _ = std::fs::remove_dir_all(&base);
    Ok(())
}
