//! A miniature query service over a collection of concurrent-XML documents:
//! load a corpus into a `cxstore::Store`, serve a batch of editorial queries
//! twice (cold, then warm), apply a gated edit, and show what the store's
//! caches amortized.
//!
//! Run with `cargo run --example store_service`.

use corpus::{dtds, generate, Params};
use cxstore::{EditOp, Store};

const QUERIES: &[(&str, &str)] = &[
    ("words", "//ling:w"),
    ("sentences crossing lines", "//s/overlapping::phys:line"),
    ("damaged words", "//dmg/overlapping::ling:w"),
    ("context of damage", "//dmg/containing::*"),
];

fn serve(store: &Store, label: &str) {
    let t = std::time::Instant::now();
    for (what, q) in QUERIES {
        let hits: usize = store.query_all(q).unwrap().iter().map(|(_, ns)| ns.len()).sum();
        println!("  {what:<26} {hits:>6} hits across {} docs", store.len());
    }
    println!("  ({label}: {:?})", t.elapsed());
}

fn main() {
    // A small shelf of manuscripts, each with phys + ling + edit hierarchies.
    // (Sizes are modest because the prevalidation gate's dynamic program is
    // super-linear in the host element's child count — see ROADMAP open
    // items for the planned algorithmic fix.)
    let store = Store::new();
    for (name, words, seed) in
        [("otho-a-vi", 150, 2005u64), ("junius-12", 120, 7), ("bodley-180", 100, 99)]
    {
        let mut g = generate(&Params { words, seed, ..Params::default() }).goddag;
        dtds::attach_standard(&mut g);
        store.insert_named(name, g);
    }

    println!("cold pass (builds one overlap index per document):");
    serve(&store, "cold");
    println!("\nwarm pass (same queries, cached indexes + compiled ASTs):");
    serve(&store, "warm");

    // An editor marks new damage in one manuscript; the insertion passes
    // through the prevalidation gate because the hierarchy carries a DTD.
    let id = store.id_by_name("otho-a-vi").unwrap();
    let out = store
        .edit(
            id,
            EditOp::InsertElement {
                hierarchy: "edit".into(),
                tag: "dmg".into(),
                attrs: vec![("agent".into(), "fire".into())],
                start: 10,
                end: 60,
            },
        )
        .unwrap();
    println!("\nedited otho-a-vi: inserted {:?} (epoch now {})", out.node, out.epoch);

    // A rejected edit: the tag is not declared in the linguistic DTD.
    let refused = store.edit(
        id,
        EditOp::InsertElement {
            hierarchy: "ling".into(),
            tag: "marginalia".into(),
            attrs: vec![],
            start: 0,
            end: 20,
        },
    );
    println!("gate refused <marginalia>: {}", refused.unwrap_err());

    println!("\npost-edit pass (only the edited document rebuilds its index):");
    serve(&store, "post-edit");

    let s = store.stats();
    println!("\nstore stats:");
    println!(
        "  docs {} · elements {} · leaves {} · content {} bytes",
        s.docs, s.elements, s.leaves, s.content_bytes
    );
    println!(
        "  index builds {} · index hits {} ({:.0}% hit rate)",
        s.index_builds,
        s.index_hits,
        100.0 * s.index_hit_rate()
    );
    println!(
        "  compiled queries {} · ast cache hits {} / misses {}",
        s.compiled_queries, s.query_cache_hits, s.query_cache_misses
    );
    println!("  edits {} (+{} rejected) · summed epochs {}", s.edits, s.edits_rejected, s.epochs);
}
