//! An Edition Production Technology (EPT)-style workflow over a full
//! synthetic manuscript (paper §4 / Figure 4): generate a manuscript-scale
//! document, parse it from distributed documents, validate every hierarchy,
//! answer editorial queries, and report the memory story (one GODDAG vs N
//! DOM trees — experiment B5).
//!
//! Run with: `cargo run --release --example manuscript_edition`

use corpus::{dtds, generate, Params};
use expath::Evaluator;
use xmlcore::dom::Document;

fn main() {
    // ------------------------------------------------------------------
    // Generate the edition's source: three hierarchies over ~2000 words.
    // ------------------------------------------------------------------
    let params = Params { words: 2000, seed: 36, ..Params::default() };
    let ms = generate(&params);
    println!("== Synthetic manuscript ==");
    println!(
        "  {} words, {} bytes of text, hierarchies: {:?}",
        params.words,
        ms.goddag.content_len(),
        ms.hierarchy_names
    );

    // ------------------------------------------------------------------
    // The archival form is distributed documents; parse them back (SACX).
    // ------------------------------------------------------------------
    let docs = ms.distributed();
    let mut g = sacx::parse_distributed(&docs).expect("distributed documents agree");
    let stats = g.stats();
    println!("\n== Parsed GODDAG ==");
    println!(
        "  elements per hierarchy: {:?}, shared leaves: {}",
        stats.elements_per_hierarchy, stats.leaves
    );

    // ------------------------------------------------------------------
    // Validate each hierarchy against its DTD.
    // ------------------------------------------------------------------
    dtds::attach_standard(&mut g);
    println!("\n== DTD validation ==");
    for (h, report) in goddag::validate_all(&g) {
        println!(
            "  {}: {}",
            g.hierarchy(h).unwrap().name,
            if report.is_valid() {
                "valid".to_string()
            } else {
                format!("{} errors (first: {})", report.errors.len(), report.errors[0])
            }
        );
    }

    // ------------------------------------------------------------------
    // Editorial queries an edition actually needs.
    // ------------------------------------------------------------------
    let ev = Evaluator::with_index(&g);
    println!("\n== Editorial queries ==");
    let damaged_words = ev.select("//dmg/overlapping::ling:w").unwrap();
    println!("  words cut by damage boundaries: {}", damaged_words.len());
    let damaged_lines =
        ev.select("//dmg/overlapping::phys:line | //dmg/contained::phys:line").unwrap();
    println!("  lines touched by damage:        {}", damaged_lines.len());
    let cross_line_sentences = ev.select("//s/overlapping::phys:line").unwrap();
    println!("  sentence/line conflicts:        {}", cross_line_sentences.len());
    let cross_page_sentences = ev.select("//s/overlapping::phys:page").unwrap();
    println!("  sentences crossing pages:       {}", cross_page_sentences.len());

    // A content question: text of the first damaged region, with the words
    // it clips.
    if let Some(&dmg) = ev.select("//dmg").unwrap().first() {
        println!("  first damage covers {:?}", g.text_of(dmg));
        for w in ev.select_from("overlapping::ling:w", dmg).unwrap() {
            println!("    clips word {:?}", g.text_of(w));
        }
    }

    // ------------------------------------------------------------------
    // Experiment B5: one GODDAG vs N separate DOM trees.
    // ------------------------------------------------------------------
    println!("\n== Memory: GODDAG vs N DOMs (experiment B5) ==");
    let goddag_bytes = g.stats().estimated_bytes;
    let mut dom_bytes = 0usize;
    for (name, xml) in &docs {
        let dom = Document::parse(xml).expect("exported documents reparse");
        let b = dom.estimated_bytes();
        dom_bytes += b;
        println!("  DOM[{name}]: {b} bytes");
    }
    println!("  N DOMs total: {dom_bytes} bytes");
    println!("  one GODDAG:   {goddag_bytes} bytes");
    println!(
        "  GODDAG/DOMs = {:.2}; the GODDAG stores the text once, so adding \
         hierarchies grows it by markup only — the `memory` bench sweeps N \
         to show the slope difference",
        goddag_bytes as f64 / dom_bytes as f64
    );

    // ------------------------------------------------------------------
    // Export a reading view: the physical hierarchy only.
    // ------------------------------------------------------------------
    let phys = g.hierarchy_by_name("phys").unwrap();
    let filtered = xtagger::export_filtered(&g, &[phys]).unwrap();
    println!("\n== Filtered export (physical view, first 120 chars) ==");
    println!("  {}", &filtered[0].1[..filtered[0].1.len().min(120)]);
}
