//! Durable store walkthrough: log → crash → warm restart → checkpoint.
//!
//! ```sh
//! cargo run --release --example durable_store
//! ```

use cxml::cxpersist::{DurableStore, FsyncPolicy, Options};
use cxml::cxstore::EditOp;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("cxml-durable-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // ── Generation 1: build a corpus, edit it, "crash" ────────────────
    {
        let store = DurableStore::open_with(&dir, Options { fsync: FsyncPolicy::EveryOp })?;

        // A manuscript with DTD-gated hierarchies and the Figure 1 corpus.
        let mut ms = corpus::generate(&corpus::Params::sized(200)).goddag;
        corpus::dtds::attach_standard(&mut ms);
        let ms = store.insert_named("boethius", ms)?;
        store.insert_named("figure-1", corpus::figure1::goddag())?;

        // Gated edits — every accepted op hits the write-ahead log before
        // it touches the document.
        let words = store.store().query(ms, "//w")?;
        let (a, _) = store.store().with_doc(ms, |g| g.char_range(words[0]))?;
        let (_, b) = store.store().with_doc(ms, |g| g.char_range(words[2]))?;
        let out = store.edit(
            ms,
            EditOp::InsertElement {
                hierarchy: "ling".into(),
                tag: "phrase".into(),
                attrs: vec![("type".into(), "np".into())],
                start: a,
                end: b,
            },
        )?;
        store.edit(
            ms,
            EditOp::SetAttr { node: out.node.unwrap(), name: "resp".into(), value: "ed".into() },
        )?;
        store.edit(ms, EditOp::InsertText { offset: 0, text: "Incipit. ".into() })?;

        // An undeclared tag is rejected by the prevalidation gate and
        // never reaches the log.
        let rejected = store.edit(
            ms,
            EditOp::InsertElement {
                hierarchy: "ling".into(),
                tag: "nonsense".into(),
                attrs: vec![],
                start: a,
                end: b,
            },
        );
        println!("gate rejected: {}", rejected.is_err());

        let stats = store.stats();
        println!(
            "generation 1: {} docs, {} WAL records ({} bytes, {} fsyncs)",
            stats.docs, stats.wal_appends, stats.wal_bytes, stats.wal_fsyncs
        );
        // Simulated kill: no checkpoint, no orderly shutdown.
        std::mem::forget(store);
    }

    // ── Generation 2: warm restart replays the log ────────────────────
    {
        let store = DurableStore::open(&dir)?;
        let r = store.recovery();
        println!(
            "generation 2: recovered {} docs from snapshot {:?}, replayed {} ops ({} bytes torn)",
            store.store().len(),
            r.snapshot_lsn,
            r.replayed_ops,
            r.torn_bytes_dropped
        );
        let ms = store.store().id_by_name("boethius")?;
        let phrases = store.store().query(ms, "//phrase")?;
        println!("the phrase survived the crash: {}", phrases.len() == 1);

        // Checkpoint: stand-off snapshot + manifest, WAL truncated.
        let info = store.checkpoint()?;
        println!(
            "checkpoint at LSN {}: {} docs, {} snapshot bytes",
            info.lsn, info.docs, info.bytes
        );
    }

    // ── Generation 3: restart from the snapshot, no replay needed ─────
    {
        let store = DurableStore::open(&dir)?;
        let r = store.recovery();
        println!(
            "generation 3: {} docs from snapshot {:?}, {} ops replayed",
            store.store().len(),
            r.snapshot_lsn,
            r.replayed_ops
        );
        let per_doc = store.store().query_all("//w")?;
        println!("query_all over the recovered corpus: {} docs answered", per_doc.len());
    }

    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
