//! Replication walkthrough: a primary and two TCP followers on
//! localhost — read fan-out, live tailing, primary death, follower
//! promotion.
//!
//! ```sh
//! cargo run --release --example replicated_store
//! ```

use cxml::cxpersist::{DurableStore, FsyncPolicy, Options};
use cxml::cxrepl::{
    Follower, InProcessTransport, Primary, ReplicaStore, TcpReplServer, TcpTransport,
};
use cxml::cxstore::EditOp;
use std::sync::Arc;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = std::env::temp_dir().join(format!("cxml-repl-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    // ── A primary with a DTD-gated corpus ─────────────────────────────
    let durable = Arc::new(DurableStore::open_with(
        base.join("primary"),
        Options { fsync: FsyncPolicy::EveryN(8) },
    )?);
    let mut ms = corpus::generate(&corpus::Params::sized(150)).goddag;
    corpus::dtds::attach_standard(&mut ms);
    let ms = durable.insert_named("boethius", ms)?;
    durable.insert_named("figure-1", corpus::figure1::goddag())?;
    let primary = Arc::new(Primary::new(Arc::clone(&durable)));

    // ── Two followers over TCP on localhost ───────────────────────────
    let server = TcpReplServer::bind(Arc::clone(&primary), "127.0.0.1:0")?;
    println!("log shipping on {}", server.addr());
    let rep_a = Arc::new(ReplicaStore::new());
    let rep_b = Arc::new(ReplicaStore::new());
    let tail_a = Follower::new(Arc::clone(&rep_a), TcpTransport::connect(server.addr())?)
        .spawn(Duration::from_millis(5));
    let tail_b = Follower::new(Arc::clone(&rep_b), TcpTransport::connect(server.addr())?)
        .spawn(Duration::from_millis(5));

    // Primary keeps editing while the followers tail.
    for i in 0..50 {
        durable.edit(ms, EditOp::InsertText { offset: 0, text: format!("w{i} ") })?;
    }
    let words = durable.store().query(ms, "//w")?;
    let (a, _) = durable.store().with_doc(ms, |g| g.char_range(words[0]))?;
    let (_, b) = durable.store().with_doc(ms, |g| g.char_range(words[2]))?;
    durable.edit(
        ms,
        EditOp::InsertElement {
            hierarchy: "ling".into(),
            tag: "phrase".into(),
            attrs: vec![("type".into(), "np".into())],
            start: a,
            end: b,
        },
    )?;

    // Wait for convergence, then fan reads out to the replicas.
    while rep_a.last_applied() < durable.last_lsn() || rep_b.last_applied() < durable.last_lsn() {
        std::thread::sleep(Duration::from_millis(5));
    }
    for (name, rep) in [("follower-a", &rep_a), ("follower-b", &rep_b)] {
        let phrases = rep.store().query(ms, "//phrase")?;
        let s = rep.stats();
        println!(
            "{name}: {} docs, {} phrase hits, {} records applied, lag {}",
            s.docs,
            phrases.len(),
            s.repl_records_applied,
            s.repl_lag
        );
    }
    println!(
        "primary: {} records shipped over {} batches",
        primary.stats().repl_records_shipped,
        primary.batches_shipped()
    );
    let primary_export = durable.store().with_doc(ms, sacx::export_standoff)?;
    let follower_export = rep_a.store().with_doc(ms, sacx::export_standoff)?;
    println!("follower export byte-identical: {}", primary_export == follower_export);

    // ── Kill the primary, promote follower A ──────────────────────────
    drop(rep_a); // promotion requires the replica unshared
    let tail_a = tail_a.stop();
    server.shutdown();
    drop(primary);
    drop(durable);
    println!("primary killed; promoting follower-a at LSN {}", tail_a.last_applied());
    let promoted =
        Arc::new(tail_a.promote(base.join("promoted"), Options { fsync: FsyncPolicy::EveryN(8) })?);
    // The gate survives promotion: undeclared tags still bounce.
    let rejected = promoted.edit(
        ms,
        EditOp::InsertElement {
            hierarchy: "ling".into(),
            tag: "nonsense".into(),
            attrs: vec![],
            start: a,
            end: b,
        },
    );
    println!("promoted gate still armed: {}", rejected.is_err());
    promoted.edit(ms, EditOp::InsertText { offset: 0, text: "post-failover ".into() })?;

    // ── Follower B repoints to the new primary ────────────────────────
    let rep_b = tail_b.stop();
    let new_primary = Arc::new(Primary::new(Arc::clone(&promoted)));
    Follower::new(Arc::clone(&rep_b), InProcessTransport::new(Arc::clone(&new_primary)))
        .catch_up()?;
    println!(
        "follower-b repointed: byte-identical with promoted = {}",
        rep_b.store().with_doc(ms, sacx::export_standoff)?
            == promoted.store().with_doc(ms, sacx::export_standoff)?
    );

    std::fs::remove_dir_all(&base)?;
    Ok(())
}
