//! A stand-off annotation pipeline: the workflow of a linguistic annotation
//! project layered on top of an existing edition.
//!
//! Scenario: the physical transcription exists (phys hierarchy). An
//! automatic tokenizer adds a word layer as stand-off records; a human
//! annotator adds clause spans that freely cross line breaks; the combined
//! document is saved as an edition bundle and queried. At no point does
//! anyone edit the original XML.
//!
//! Run with: `cargo run --example annotation_pipeline`

use sacx::{Annotation, StandoffDoc};

fn main() {
    // ------------------------------------------------------------------
    // The existing edition: physical lines only.
    // ------------------------------------------------------------------
    let base = "<r><line n=\"1\">hwaet we gardena in geardagum</line> \
<line n=\"2\">theodcyninga thrym gefrunon</line></r>";
    let g = sacx::parse_distributed(&[("phys", base)]).unwrap();
    println!("base edition: {} lines, content {:?}\n", g.find_elements("line").len(), g.content());

    // ------------------------------------------------------------------
    // Export to stand-off; a "tokenizer" appends word annotations.
    // ------------------------------------------------------------------
    let mut standoff = StandoffDoc::from_goddag(&g);
    standoff.hierarchies.push("ling".to_string());
    let ling_idx = (standoff.hierarchies.len() - 1) as u16;

    let content = standoff.content.clone();
    let mut token_count = 0;
    // Clause annotations (added by the "annotator") cross the line break.
    standoff.annotations.push(Annotation {
        hierarchy: ling_idx,
        tag: "clause".into(),
        start: content.find("gardena").unwrap(),
        end: content.find("thrym").unwrap() - 1,
        attrs: vec![("type".into(), "subordinate".into())],
    });
    // Tokens from a trivial whitespace tokenizer.
    let mut offset = 0usize;
    for token in content.split(' ') {
        if !token.is_empty() {
            token_count += 1;
            standoff.annotations.push(Annotation {
                hierarchy: ling_idx,
                tag: "w".into(),
                start: offset,
                end: offset + token.len(),
                attrs: vec![("n".into(), token_count.to_string())],
            });
        }
        offset += token.len() + 1;
    }
    println!("tokenizer added {token_count} <w> records + 1 <clause> (stand-off, no XML edited)");

    // ------------------------------------------------------------------
    // Materialize the combined GODDAG and query across layers.
    // ------------------------------------------------------------------
    let combined = standoff.to_goddag().expect("annotations are well-nested per layer");
    goddag::check_invariants(&combined).unwrap();
    let ev = expath::Evaluator::with_index(&combined);

    println!(
        "\ncombined model: {} elements in {} hierarchies",
        combined.element_count(),
        combined.hierarchy_count()
    );
    let crossing = ev.select("//clause/overlapping::phys:line").unwrap();
    println!("the clause crosses {} physical line(s):", crossing.len());
    for line in crossing {
        println!(
            "  line {:?}: {:?}",
            combined.attr(line, "n").unwrap_or("?"),
            combined.text_of(line)
        );
    }
    let words_in_l2 = ev.select("//line[@n='2']/contained::ling:w").unwrap();
    println!(
        "words fully inside line 2: {:?}",
        words_in_l2.iter().map(|&w| combined.text_of(w)).collect::<Vec<_>>()
    );

    // ------------------------------------------------------------------
    // Persist the annotated edition with its DTDs as one bundle.
    // ------------------------------------------------------------------
    let mut with_dtds = combined;
    let phys = with_dtds.hierarchy_by_name("phys").unwrap();
    with_dtds.set_dtd(phys, corpus::dtds::phys()).unwrap();
    let bundle = xtagger::save_edition(&with_dtds);
    println!("\nedition bundle: {} bytes (document + DTDs, single file)", bundle.len());
    let reloaded = xtagger::load_edition(&bundle).unwrap();
    assert_eq!(reloaded.element_count(), with_dtds.element_count());
    println!("reloaded: {} elements — annotation round trip complete", reloaded.element_count());
}
