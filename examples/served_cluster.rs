//! Service-tier walkthrough: a sharded cluster behind a TCP server, a
//! pooled client doing gated edits and fan-out queries over the wire,
//! shard-scoped servers behind a client-side router, end-to-end request
//! tracing, and the metrics page that watched it all happen.
//!
//! ```sh
//! cargo run --release --example served_cluster
//! ```

use cxml::cxcluster::Cluster;
use cxml::cxpersist::{FsyncPolicy, Options};
use cxml::cxserve::{Client, ClientOptions, ClusterServer, RouterClient, ServerOptions};
use cxml::cxstore::EditOp;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = std::env::temp_dir().join(format!("cxml-serve-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let dirs: Vec<_> = (0..3).map(|i| base.join(format!("shard-{i}"))).collect();
    let cluster = Arc::new(Cluster::open(dirs, Options { fsync: FsyncPolicy::EveryN(8) })?);

    // ── One server for the whole cluster ──────────────────────────────
    let server =
        ClusterServer::bind(Arc::clone(&cluster), "127.0.0.1:0", ServerOptions::default())?;
    println!("cluster server on {}", server.addr());

    let client = Client::connect(server.addr(), ClientOptions::default())?;
    for i in 0..6 {
        let mut ms = corpus::generate(&corpus::Params::sized(60 + 10 * i)).goddag;
        corpus::dtds::attach_standard(&mut ms);
        client.insert_named(format!("ms-{i}"), &ms)?;
    }

    // Gated edits over the wire: same prevalidation gate, same CAS
    // epoch guard the in-process API enforces.
    let ms = client.id_by_name("ms-2")?;
    let epoch = client.epoch(ms)?;
    let out = client.edit_guarded(
        ms,
        epoch,
        EditOp::InsertText { offset: 0, text: "Incipit ".into() },
    )?;
    println!("gated edit on {ms}: epoch {epoch} -> {}", out.epoch);

    // Fan-out query, merged across every shard, over one round trip.
    let per_doc = client.query_all("//w")?;
    let words: usize = per_doc.iter().map(|(_, ns)| ns.len()).sum();
    println!("query_all //w: {} docs, {words} words", per_doc.len());

    // Stand-off export: byte-identical to the server-side document.
    let wire = client.export(ms)?;
    let local = cluster.with_doc(ms, cxml::sacx::export_standoff)?;
    assert_eq!(wire, local);
    println!("stand-off export round-trips byte-identical ({} bytes)", wire.len());

    // ── Shard-scoped servers behind a client-side router ──────────────
    let shard_servers: Vec<ClusterServer> = (0..cluster.shards().len())
        .map(|s| {
            ClusterServer::bind_shard(
                Arc::clone(&cluster),
                cxml::cxcluster::ShardId(s),
                "127.0.0.1:0",
                ServerOptions::default(),
            )
        })
        .collect::<Result<_, _>>()?;
    let addrs: Vec<_> = shard_servers.iter().map(|s| s.addr()).collect();
    let router = RouterClient::connect(&addrs, ClientOptions::default())?;
    println!("router over {} shard endpoints", addrs.len());

    let routed = router.query(ms, "//w")?;
    println!("routed query on {ms}: {} words straight from its shard", routed.len());
    let (hits, refused) = router.query_all_partial("//w", std::time::Duration::from_secs(2))?;
    println!("router fan-out: {} docs, {} shards refused", hits.len(), refused.len());

    // ── End-to-end tracing ────────────────────────────────────────────
    // Flip the process-wide switch, run one guarded edit through the
    // router, and the flight recorder holds one tree spanning every
    // layer: router -> client -> wire -> server handler -> cluster ->
    // shard store -> gate / WAL. The `trace` verb serves it back.
    cxml::cxtrace::enable();
    let epoch = router.epoch(ms)?;
    router.edit_guarded(ms, epoch, EditOp::InsertText { offset: 0, text: "Iterum ".into() })?;
    let traced = router
        .shard_client(router.shard_of(ms))
        .traces_recent(16)?
        .into_iter()
        .find(|t| t.root == "router.request")
        .expect("the traced edit is retained");
    println!("\none traced guarded edit, fetched over the wire:");
    print!("{}", router.shard_client(router.shard_of(ms)).trace_tree(traced.trace_id)?);
    cxml::cxtrace::disable();

    // ── The metrics page saw everything ───────────────────────────────
    let page = client.metrics()?;
    for line in page.lines().filter(|l| l.starts_with("cx_server_requests_total")) {
        println!("{line}");
    }

    for s in shard_servers {
        s.shutdown();
    }
    drop(client);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&base);
    Ok(())
}
