//! Quickstart: the paper's Figure 1 → Figure 2 pipeline in sixty lines.
//!
//! Parses the four conflicting encodings of one manuscript fragment into a
//! single GODDAG, prints the graph (the shape of the paper's Figure 2),
//! and runs Extended XPath queries that no single-hierarchy tool can answer.
//!
//! Run with: `cargo run --example quickstart`

use expath::Evaluator;

fn main() {
    // ------------------------------------------------------------------
    // Figure 1: four documents, same content, same root, conflicting markup.
    // ------------------------------------------------------------------
    println!("== The four encodings (paper Figure 1) ==");
    for (name, doc) in corpus::figure1::documents() {
        println!("  [{name:4}] {doc}");
    }

    // ------------------------------------------------------------------
    // Parse the virtual union into a GODDAG (SACX).
    // ------------------------------------------------------------------
    let g = corpus::figure1::goddag();
    println!("\n== GODDAG (paper Figure 2) ==");
    println!(
        "  {} hierarchies, {} elements, {} shared leaves over {:?}",
        g.hierarchy_count(),
        g.element_count(),
        g.leaf_count(),
        g.content()
    );
    for h in g.hierarchy_ids() {
        println!("  [{}] {}", g.hierarchy(h).unwrap().name, g.to_xml(h).unwrap());
    }

    // The DOT rendering of the full DAG (paste into GraphViz to draw
    // Figure 2).
    let dot = g.to_dot(&goddag::DotOptions::default());
    println!("\n== GraphViz (first lines) ==");
    for line in dot.lines().take(6) {
        println!("  {line}");
    }
    println!("  ... ({} lines total)", dot.lines().count());

    // ------------------------------------------------------------------
    // Extended XPath: questions that need the overlapping axis.
    // ------------------------------------------------------------------
    let ev = Evaluator::with_index(&g);
    println!("\n== Extended XPath ==");
    let queries = [
        ("all words", "//ling:w"),
        ("words the damage overlaps", "//dmg/overlapping::ling:w"),
        ("lines the restoration crosses", "//res/overlapping::phys:line"),
        ("damage overlapping the restoration", "//res/overlapping::dmg"),
        ("words fully inside line 1", "//line[@n='1']/contained::ling:w"),
        ("everything containing word 4", "(//ling:w)[4]/containing::*"),
    ];
    for (what, q) in queries {
        let hits = ev.select(q).expect(q);
        let texts: Vec<String> = hits
            .iter()
            .map(|&n| {
                format!(
                    "<{}>{:?}",
                    g.name(n).map(|q| q.to_string()).unwrap_or_default(),
                    g.text_of(n)
                )
            })
            .collect();
        println!("  {what}\n    {q}\n    -> {}", texts.join(", "));
    }

    // ------------------------------------------------------------------
    // Why a single document can't hold this: fragmentation counts.
    // ------------------------------------------------------------------
    let frags = sacx::count_fragments(&g, &sacx::FragmentationOptions::default()).unwrap();
    println!("\nMerging all four encodings into one well-formed document would fragment {frags} elements.");
}
