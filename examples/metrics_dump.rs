//! Observability walkthrough: soak a 3-shard cluster with mixed traffic,
//! then print the whole stack's Prometheus-style exposition page (every
//! shard's store/WAL/checkpoint series under its own `shard="i"` label,
//! plus the cluster's queueing and migration series) and the event rings.
//!
//! ```sh
//! cargo run --release --example metrics_dump
//! ```

use cxml::cxcluster::{Cluster, ShardId};
use cxml::cxobs::Observable;
use cxml::cxpersist::{FsyncPolicy, Options};
use cxml::cxstore::EditOp;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = std::env::temp_dir().join(format!("cxml-metrics-dump-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let dirs: Vec<_> = (0..3).map(|i| base.join(format!("shard-{i}"))).collect();
    let cluster = Cluster::open(dirs, Options { fsync: FsyncPolicy::EveryN(8) })?;

    // ── Soak: inserts, gated edits (one rejected), fan-out queries, a
    // migration, a checkpoint ─────────────────────────────────────────
    let mut docs = Vec::new();
    for i in 0..9 {
        let mut ms = corpus::generate(&corpus::Params::sized(40 + 5 * i)).goddag;
        corpus::dtds::attach_standard(&mut ms);
        docs.push(cluster.insert_named(format!("ms-{i}"), ms)?);
    }
    for k in 0..120 {
        let doc = docs[k % docs.len()];
        cluster.edit(doc, EditOp::InsertText { offset: 0, text: format!("x{k} ") })?;
    }
    let rejected = cluster.edit(
        docs[0],
        EditOp::InsertElement {
            hierarchy: "ling".into(),
            tag: "nonsense".into(),
            attrs: vec![],
            start: 0,
            end: 4,
        },
    );
    assert!(rejected.is_err(), "the prevalidation gate refuses an undeclared element");
    cluster.query_all("//w")?;
    cluster.move_doc(docs[0], ShardId(1))?;
    cluster.checkpoint_all()?;

    // ── The whole cluster as one exposition page ──────────────────────
    print!("{}", cluster.exposition());

    // ── The event trails: the cluster's ring, then each shard's ───────
    println!("\n# cluster events");
    for e in cluster.registry().events().recent() {
        println!("#   [{:>9}µs] {}: {}", e.at_micros, e.kind, e.detail);
    }
    for (s, shard) in cluster.shards().iter().enumerate() {
        println!("# shard {s} events");
        for e in shard.registry().events().recent() {
            println!("#   [{:>9}µs] {}: {}", e.at_micros, e.kind, e.detail);
        }
    }

    std::fs::remove_dir_all(&base)?;
    Ok(())
}
