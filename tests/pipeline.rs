//! Experiment F3: the full framework pipeline (paper Figure 3) — parse →
//! GODDAG → DOM-style API → query/author/validate → export — exercised end
//! to end across every crate, at manuscript scale.

use corpus::{dtds, generate, Params};
use expath::Evaluator;
use goddag::check_invariants;
use xtagger::Session;

#[test]
fn end_to_end_manuscript_pipeline() {
    // 1. Workload: a synthetic manuscript with three hierarchies.
    let ms = generate(&Params { words: 800, seed: 7, ..Params::default() });
    let docs = ms.distributed();

    // 2. Parse (SACX) from the distributed representation.
    let mut g = sacx::parse_distributed(&docs).unwrap();
    check_invariants(&g).unwrap();
    assert_eq!(g.content(), ms.goddag.content());

    // 3. Validate every hierarchy against its DTD.
    dtds::attach_standard(&mut g);
    for (h, report) in goddag::validate_all(&g) {
        assert!(
            report.is_valid(),
            "hierarchy {h}: {:?}",
            &report.errors[..report.errors.len().min(3)]
        );
    }

    // 4. Query with Extended XPath (indexed).
    let ev = Evaluator::with_index(&g);
    let words = ev.select("//ling:w").unwrap();
    assert!(!words.is_empty());
    let conflicts = ev.select("//s/overlapping::phys:line").unwrap();
    assert!(!conflicts.is_empty(), "generated sentences must cross lines");
    let damaged = ev.select("//dmg/overlapping::*").unwrap();
    assert!(!damaged.is_empty());

    // 5. Author: wrap the first two words (both inside sentence 1) in a
    //    phrase, guarded by prevalidation.
    let mut session = Session::new(g);
    let ling = session.goddag().hierarchy_by_name("ling").unwrap();
    let (ws, _) = ms.word_ranges[0];
    let (_, we) = ms.word_ranges[1];
    let sugg = session.suggest(ling, ws, we);
    assert_eq!(sugg, ["phrase"], "only <phrase> can wrap two <w>s here");
    session.insert_markup(ling, "phrase", vec![], ws, we).unwrap();
    check_invariants(session.goddag()).unwrap();

    // 6. Export through every representation and verify the round trip.
    let g = session.into_goddag();
    for driver in sacx::builtin_drivers("phys") {
        let out = driver.export(&g).unwrap();
        let back = driver.import(&out).unwrap();
        assert_eq!(back.element_count(), g.element_count(), "{}", driver.name());
        assert_eq!(back.content(), g.content(), "{}", driver.name());
        check_invariants(&back).unwrap();
    }
}

#[test]
fn classic_pipeline_is_a_special_case() {
    // With a single hierarchy the framework degenerates exactly to the
    // classic XML pipeline (Figure 3's "traditional framework").
    let xml = "<r><page no=\"1\"><line n=\"1\">swa hwa swe</line></page></r>";
    let g = sacx::parse_distributed(&[("phys", xml)]).unwrap();
    assert_eq!(g.to_xml(goddag::HierarchyId(0)).unwrap(), xml);
    // DOM and GODDAG agree on structure.
    let dom = xmlcore::dom::Document::parse(xml).unwrap();
    assert_eq!(dom.text_content(dom.root()), g.content());
    assert_eq!(dom.elements_named(dom.root(), "line").len(), g.find_elements("line").len());
    // XPath-equivalent query agrees with DOM traversal.
    let ev = Evaluator::new(&g);
    assert_eq!(ev.select("//line").unwrap().len(), dom.elements_named(dom.root(), "line").len());
}

#[test]
fn sacx_event_stream_equals_builder_structure() {
    // The streaming interface and the materialized GODDAG agree: counting
    // starts per hierarchy through the SAX-style API matches element counts
    // in the graph.
    use goddag::HierarchyId;
    use std::collections::BTreeMap;

    let ms = generate(&Params { words: 300, seed: 11, ..Params::default() });
    let docs = ms.distributed();
    let extracted: Vec<sacx::ExtractedDoc> =
        docs.iter().map(|(n, x)| sacx::extract(x, n).unwrap()).collect();
    let events = sacx::merge_events(&extracted);

    struct Counter {
        starts: BTreeMap<u16, usize>,
        text_bytes: usize,
    }
    impl sacx::SacxHandler for Counter {
        fn start_element(&mut self, h: HierarchyId, _: &xmlcore::QName, _: &[xmlcore::Attribute]) {
            *self.starts.entry(h.0).or_default() += 1;
        }
        fn end_element(&mut self, _: HierarchyId, _: &xmlcore::QName) {}
        fn characters(&mut self, text: &str) {
            self.text_bytes += text.len();
        }
    }
    let mut counter = Counter { starts: BTreeMap::new(), text_bytes: 0 };
    let content = extracted[0].content.clone();
    sacx::drive(&events, &content, &mut counter);

    assert_eq!(counter.text_bytes, ms.goddag.content_len());
    for (i, _) in ms.hierarchy_names.iter().enumerate() {
        let h = HierarchyId(i as u16);
        assert_eq!(
            counter.starts.get(&(i as u16)).copied().unwrap_or(0),
            ms.goddag.elements_in(h).count(),
            "hierarchy {i}"
        );
    }
}

#[test]
fn growing_hierarchy_count_scales() {
    // 1..=3 hierarchies over the same content: parse time aside (bench B1),
    // the model stays consistent and the content is never duplicated.
    for nh in 1..=3 {
        let params = Params {
            words: 300,
            seed: 5,
            physical: nh >= 1,
            linguistic: nh >= 2,
            damage_density: if nh >= 3 { 0.1 } else { 0.0 },
            restoration_density: 0.0,
            ..Params::default()
        };
        let ms = generate(&params);
        assert_eq!(ms.goddag.hierarchy_count(), nh);
        check_invariants(&ms.goddag).unwrap();
        let stats = ms.goddag.stats();
        assert_eq!(stats.content_bytes, ms.goddag.content_len());
    }
}
