//! Cross-crate consistency of the prevalidation stack (experiment B3's
//! correctness side):
//!
//! * if `check_insertion` approves an insertion, actually performing it must
//!   succeed structurally and leave the hierarchy potentially valid;
//! * if the strict validator accepts a document, the potential-validity
//!   checker must too (valid ⇒ potentially valid);
//! * every tag in `suggest_tags` is individually insertable, and no
//!   non-suggested declared tag is.

use corpus::{dtds, generate, Params};
use goddag::Goddag;
use prevalid::{check_hierarchy, check_insertion, suggest_tags, PrevalidEngine};
use proptest::prelude::*;

fn manuscript() -> (Goddag, goddag::HierarchyId) {
    let ms = generate(&Params { words: 60, seed: 99, ..Params::default() });
    let mut g = ms.goddag;
    dtds::attach_standard(&mut g);
    let ling = g.hierarchy_by_name("ling").unwrap();
    (g, ling)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn approved_insertions_succeed_and_stay_potentially_valid(
        a in 0usize..300,
        len in 0usize..40,
        tag_idx in 0usize..4,
    ) {
        let (g, ling) = manuscript();
        let engine = PrevalidEngine::new(dtds::ling());
        let content_len = g.content_len();
        let content = g.content();
        let mut s = a.min(content_len);
        let mut e = (a + len).min(content_len);
        while s > 0 && !content.is_char_boundary(s) { s -= 1; }
        while e < content_len && !content.is_char_boundary(e) { e += 1; }
        let tag = ["w", "phrase", "s", "r"][tag_idx];

        let verdict = check_insertion(&engine, &g, ling, tag, s, e);
        if verdict.ok {
            let mut g2 = g.clone();
            let inserted = g2.insert_element(
                ling,
                xmlcore::QName::parse(tag).unwrap(),
                vec![],
                s,
                e,
            );
            prop_assert!(inserted.is_ok(), "approved <{tag}> {s}..{e} failed: {:?}", inserted.err());
            goddag::check_invariants(&g2).unwrap();
            let report = check_hierarchy(&engine, &g2, ling);
            prop_assert!(
                report.is_potentially_valid(),
                "approved <{tag}> {s}..{e} left dead ends: {:?}",
                report.failures
            );
        }
    }

    #[test]
    fn suggestions_are_exactly_the_insertable_tags(
        a in 0usize..200,
        len in 1usize..30,
    ) {
        let (g, ling) = manuscript();
        let engine = PrevalidEngine::new(dtds::ling());
        let content_len = g.content_len();
        let content = g.content();
        let mut s = a.min(content_len);
        let mut e = (a + len).min(content_len);
        while s > 0 && !content.is_char_boundary(s) { s -= 1; }
        while e < content_len && !content.is_char_boundary(e) { e += 1; }

        let suggested = suggest_tags(&engine, &g, ling, s, e);
        for tag in engine.dtd().elements.keys() {
            let approved = check_insertion(&engine, &g, ling, tag, s, e).ok;
            prop_assert_eq!(
                suggested.contains(tag),
                approved,
                "tag {} at {}..{}: suggested={:?}",
                tag, s, e, suggested
            );
        }
    }
}

#[test]
fn valid_implies_potentially_valid() {
    // The generated manuscript validates strictly against its DTDs; the
    // potential-validity checker must therefore accept every hierarchy too.
    let ms = generate(&Params { words: 150, seed: 3, ..Params::default() });
    let mut g = ms.goddag;
    dtds::attach_standard(&mut g);
    for (h, strict) in goddag::validate_all(&g) {
        assert!(strict.is_valid(), "{h}: {:?}", strict.errors);
        let name = g.hierarchy(h).unwrap().name.clone();
        let dtd = g.hierarchy(h).unwrap().dtd.clone().unwrap();
        let engine = PrevalidEngine::new(dtd);
        let report = check_hierarchy(&engine, &g, h);
        assert!(
            report.is_potentially_valid(),
            "hierarchy {name} valid but not potentially valid: {:?}",
            report.failures
        );
    }
}

#[test]
fn gate_matches_engine_through_session() {
    // The Session's gate and the bare engine must agree.
    let (mut g, ling) = manuscript();
    let engine = PrevalidEngine::new(dtds::ling());
    g.set_dtd(ling, dtds::ling()).unwrap();
    let mut session = xtagger::Session::new(g);
    // A selection spanning two words (phrase fits, page does not).
    let ms = generate(&Params { words: 60, seed: 99, ..Params::default() });
    let (s, _) = ms.word_ranges[0];
    let (_, e) = ms.word_ranges[1];
    for tag in ["phrase", "s", "w", "r"] {
        let engine_says = check_insertion(&engine, session.goddag(), ling, tag, s, e).ok;
        let gate_says = session.insert_markup(ling, tag, vec![], s, e).is_ok();
        if gate_says {
            session.undo().unwrap();
        }
        assert_eq!(engine_says, gate_says, "tag {tag}");
    }
}
