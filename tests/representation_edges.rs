//! Edge cases of the representation drivers that the happy-path round trips
//! don't reach: deep nesting, markup-dense boundaries, XML-hostile content,
//! heavy fragmentation, milestone pile-ups at one offset, and driver
//! cross-compatibility.

use goddag::{check_invariants, Goddag, GoddagBuilder};
use sacx::Driver;
use xmlcore::{Attribute, QName};

fn spans_of(g: &Goddag) -> Vec<(String, usize, usize)> {
    let mut v: Vec<(String, usize, usize)> = g
        .elements()
        .map(|e| {
            let (s, en) = g.char_range(e);
            (g.name(e).unwrap().local.clone(), s, en)
        })
        .collect();
    v.sort();
    v
}

fn assert_full_roundtrip(g: &Goddag, dominant: &str) {
    for driver in sacx::builtin_drivers(dominant) {
        let out = driver.export(g).unwrap_or_else(|e| panic!("{}: {e}", driver.name()));
        let back =
            driver.import(&out).unwrap_or_else(|e| panic!("{} import: {e}\n{out}", driver.name()));
        check_invariants(&back).unwrap();
        assert_eq!(back.content(), g.content(), "{}", driver.name());
        assert_eq!(spans_of(&back), spans_of(g), "{}", driver.name());
    }
}

#[test]
fn deep_nesting_within_one_hierarchy() {
    let mut b = GoddagBuilder::new(QName::parse("r").unwrap());
    let content = "x".repeat(64);
    b.content(content);
    let h = b.hierarchy("deep");
    // 32 levels of nesting: [0,64), [1,63), [2,62), ...
    for i in 0..32usize {
        b.range(h, &format!("d{i}"), vec![], i, 64 - i).unwrap();
    }
    let other = b.hierarchy("other");
    b.range(other, "cross", vec![], 30, 50).unwrap();
    let g = b.finish().unwrap();
    check_invariants(&g).unwrap();
    assert_full_roundtrip(&g, "deep");
}

#[test]
fn every_offset_is_a_boundary() {
    // Markup so dense that every char is its own leaf.
    let mut b = GoddagBuilder::new(QName::parse("r").unwrap());
    b.content("abcdefgh");
    let h0 = b.hierarchy("a");
    let h1 = b.hierarchy("b");
    for i in 0..8usize {
        b.range(h0, "c", vec![], i, i + 1).unwrap();
    }
    // Offset-by-one windows in the other hierarchy: pairwise overlap.
    for i in (0..7usize).step_by(2) {
        b.range(h1, "win", vec![], i, i + 2).unwrap();
    }
    let g = b.finish().unwrap();
    assert_eq!(g.leaf_count(), 8);
    assert_full_roundtrip(&g, "a");
}

#[test]
fn xml_hostile_content_and_attrs_through_all_drivers() {
    let mut b = GoddagBuilder::new(QName::parse("r").unwrap());
    b.content("a<b>&'\"]]>c\nd\te æþð");
    let h0 = b.hierarchy("m");
    let h1 = b.hierarchy("n");
    b.range(h0, "e", vec![Attribute::new("v", "<&\">'\n\t")], 0, 9).unwrap();
    b.range(h1, "f", vec![Attribute::new("w", "]]>")], 5, 14).unwrap();
    let g = b.finish().unwrap();
    assert_full_roundtrip(&g, "m");
    // Attribute values survive exactly.
    for driver in sacx::builtin_drivers("m") {
        let back = driver.import(&driver.export(&g).unwrap()).unwrap();
        let e = back.find_elements("e")[0];
        assert_eq!(back.attr(e, "v"), Some("<&\">'\n\t"), "{}", driver.name());
        let f = back.find_elements("f")[0];
        assert_eq!(back.attr(f, "w"), Some("]]>"), "{}", driver.name());
    }
}

#[test]
fn many_milestones_at_one_offset() {
    let mut b = GoddagBuilder::new(QName::parse("r").unwrap());
    b.content("ab");
    let h0 = b.hierarchy("a");
    let h1 = b.hierarchy("b");
    for i in 0..5 {
        b.range(h0, "pa", vec![Attribute::new("n", i.to_string())], 1, 1).unwrap();
        b.range(h1, "pb", vec![Attribute::new("n", i.to_string())], 1, 1).unwrap();
    }
    let g = b.finish().unwrap();
    assert_eq!(g.element_count(), 10);
    assert_full_roundtrip(&g, "a");
    // Order of same-offset milestones within one hierarchy is preserved.
    for driver in sacx::builtin_drivers("a") {
        let back = driver.import(&driver.export(&g).unwrap()).unwrap();
        let ha = back.hierarchy_by_name("a").unwrap();
        let ns: Vec<String> = back
            .elements_in(ha)
            .filter(|&e| back.name(e).unwrap().local == "pa")
            .map(|e| back.attr(e, "n").unwrap().to_string())
            .collect();
        let mut sorted = ns.clone();
        sorted.sort();
        assert_eq!(ns, sorted, "{} scrambled milestone order", driver.name());
    }
}

#[test]
fn maximal_fragmentation_staircase() {
    // A staircase of mutually overlapping ranges across 4 hierarchies —
    // every element crosses its neighbours, maximal forced fragmentation.
    let mut b = GoddagBuilder::new(QName::parse("r").unwrap());
    let n = 40usize;
    b.content("y".repeat(n + 10));
    for hi in 0..4usize {
        let h = b.hierarchy(format!("h{hi}"));
        let mut i = hi * 2;
        while i + 8 <= n {
            b.range(h, "step", vec![], i, i + 8).unwrap();
            i += 8;
        }
    }
    let g = b.finish().unwrap();
    let frags = sacx::count_fragments(&g, &sacx::FragmentationOptions::default()).unwrap();
    assert!(frags > 0);
    assert_full_roundtrip(&g, "h0");
}

#[test]
fn empty_content_all_drivers() {
    let mut b = GoddagBuilder::new(QName::parse("r").unwrap());
    let h = b.hierarchy("a");
    b.range(h, "pb", vec![], 0, 0).unwrap();
    let _ = b.hierarchy("b");
    let g = b.finish().unwrap();
    assert_eq!(g.content(), "");
    assert_full_roundtrip(&g, "a");
}

#[test]
fn fragmentation_chooses_minimal_fragments_for_nested_input() {
    // Purely nested ranges need no fragments at all, even across
    // hierarchies, as long as they don't cross.
    let g =
        sacx::parse_distributed(&[("a", "<r><o><i>xy</i>z</o>w</r>"), ("b", "<r><p>xyzw</p></r>")])
            .unwrap();
    assert_eq!(sacx::count_fragments(&g, &sacx::FragmentationOptions::default()).unwrap(), 0);
}

#[test]
fn milestone_dominant_with_no_other_hierarchies() {
    let g = sacx::parse_distributed(&[("only", "<r><a>x</a>y</r>")]).unwrap();
    let ms = sacx::MilestoneDriver::new("only");
    let out = ms.export(&g).unwrap();
    // Nothing to milestone: the output is the plain document.
    assert_eq!(out, "<r><a>x</a>y</r>");
    let back = ms.import(&out).unwrap();
    assert_eq!(spans_of(&back), spans_of(&g));
}

#[test]
fn standoff_tolerates_reordered_annotations() {
    // Stand-off annotations listed in any order produce the same model as
    // long as same-hierarchy nesting stays resolvable (outer spans first is
    // the builder's tie rule; distinct spans are order-independent).
    let text = "#cxml-standoff v1\nroot r\nhierarchy a\ncontent 6\nabcdef\n\
                annot 0 inner 2 4\nannot 0 outer 0 6\n";
    let g = sacx::import_standoff(text).unwrap();
    let outer = g.find_elements("outer")[0];
    let inner = g.find_elements("inner")[0];
    let a = g.hierarchy_by_name("a").unwrap();
    assert_eq!(g.parent_in(inner, a), Some(outer));
}

#[test]
fn unicode_heavy_document() {
    // Multi-byte chars at every boundary.
    let content = "æþðæþðæþð"; // 9 chars, 18 bytes
    let mut b = GoddagBuilder::new(QName::parse("r").unwrap());
    b.content(content);
    let h0 = b.hierarchy("x");
    let h1 = b.hierarchy("y");
    b.range(h0, "e", vec![], 0, 6).unwrap(); // æþð
    b.range(h0, "e", vec![], 6, 12).unwrap();
    b.range(h1, "o", vec![], 4, 10).unwrap(); // crosses both
    let g = b.finish().unwrap();
    let e0 = g.find_elements("e")[0];
    let o = g.find_elements("o")[0];
    assert!(g.span(e0).overlaps(g.span(o)));
    assert_full_roundtrip(&g, "x");
}

#[test]
fn edition_bundle_through_representations() {
    // A document that went through every driver still saves/loads as an
    // edition bundle with DTDs intact.
    let mut g = corpus::figure1::goddag();
    corpus::dtds::attach_standard(&mut g);
    let frag = sacx::FragmentationDriver::default();
    let g2 = frag.import(&frag.export(&g).unwrap()).unwrap();
    // DTDs are not carried by surface XML representations — reattach, then
    // bundle.
    let mut g2 = g2;
    corpus::dtds::attach_standard(&mut g2);
    let bundle = xtagger::save_edition(&g2);
    let g3 = xtagger::load_edition(&bundle).unwrap();
    assert_eq!(spans_of(&g3), spans_of(&g));
    assert!(g3.hierarchy_ids().filter(|&h| g3.hierarchy(h).unwrap().dtd.is_some()).count() >= 2);
}
