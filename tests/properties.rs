//! Property-based tests over the core invariants:
//!
//! * any set of per-hierarchy well-nested ranges builds a GODDAG satisfying
//!   `check_invariants`;
//! * every representation round-trips the model losslessly;
//! * random edit sequences preserve the invariants and are undone exactly;
//! * the overlap index always agrees with the naive scan.

use goddag::{check_invariants, Goddag, GoddagBuilder, Span};
use proptest::prelude::*;

/// Generate a set of well-nested ranges over `len` units: recursively carve
/// the interval, which guarantees per-hierarchy well-formedness.
fn nested_ranges(len: usize, depth: u32) -> impl Strategy<Value = Vec<(usize, usize)>> {
    // Bounded recursive carving expressed iteratively: sample split points
    // and keep ranges that nest (stack discipline on sorted events).
    proptest::collection::vec((0..=len, 0..=len), 0..12).prop_map(move |raw| {
        let mut out: Vec<(usize, usize)> = Vec::new();
        for (a, b) in raw {
            let (s, e) = if a <= b { (a, b) } else { (b, a) };
            // Keep only ranges compatible with all previous (no crossing).
            let crosses = out.iter().any(|&(os, oe)| {
                let inter = s < oe && os < e;
                let nested = (os <= s && e <= oe) || (s <= os && oe <= e);
                inter && !nested
            });
            if !crosses {
                out.push((s, e));
            }
        }
        let _ = depth;
        out
    })
}

fn ascii_content(len: usize) -> String {
    // Deterministic ASCII content — offsets are always char boundaries.
    (0..len).map(|i| (b'a' + (i % 26) as u8) as char).collect()
}

fn build(content_len: usize, hierarchies: &[Vec<(usize, usize)>]) -> Goddag {
    let mut b = GoddagBuilder::new(xmlcore::QName::parse("r").unwrap());
    b.content(ascii_content(content_len));
    for (hi, ranges) in hierarchies.iter().enumerate() {
        let h = b.hierarchy(format!("h{hi}"));
        for (i, &(s, e)) in ranges.iter().enumerate() {
            b.range(h, &format!("e{i}"), vec![], s, e).unwrap();
        }
    }
    b.finish().expect("nested ranges always build")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn builder_always_satisfies_invariants(
        r1 in nested_ranges(40, 0),
        r2 in nested_ranges(40, 0),
        r3 in nested_ranges(40, 0),
    ) {
        let g = build(40, &[r1, r2, r3]);
        prop_assert!(check_invariants(&g).is_ok());
        prop_assert_eq!(g.content_len(), 40);
    }

    #[test]
    fn distributed_roundtrip_lossless(
        r1 in nested_ranges(30, 0),
        r2 in nested_ranges(30, 0),
    ) {
        let g = build(30, &[r1, r2]);
        let docs = g.to_distributed().unwrap();
        let g2 = sacx::parse_distributed(&docs).unwrap();
        prop_assert_eq!(g2.element_count(), g.element_count());
        prop_assert_eq!(g2.content(), g.content());
        // Per-hierarchy projections identical.
        for h in g.hierarchy_ids() {
            prop_assert_eq!(g.to_xml(h).unwrap(), g2.to_xml(h).unwrap());
        }
    }

    #[test]
    fn standoff_roundtrip_lossless(
        r1 in nested_ranges(30, 0),
        r2 in nested_ranges(30, 0),
    ) {
        let g = build(30, &[r1, r2]);
        let text = sacx::export_standoff(&g);
        let g2 = sacx::import_standoff(&text).unwrap();
        prop_assert_eq!(g2.element_count(), g.element_count());
        prop_assert_eq!(sacx::export_standoff(&g2), text);
    }

    #[test]
    fn fragmentation_roundtrip_preserves_spans(
        r1 in nested_ranges(30, 0),
        r2 in nested_ranges(30, 0),
    ) {
        let g = build(30, &[r1, r2]);
        let opts = sacx::FragmentationOptions::default();
        let xml = sacx::export_fragmentation(&g, &opts).unwrap();
        let g2 = sacx::import_fragmentation(&xml, &opts).unwrap();
        let spans = |g: &Goddag| {
            let mut v: Vec<(String, usize, usize)> = g
                .elements()
                .map(|e| {
                    let (s, en) = g.char_range(e);
                    (g.name(e).unwrap().local.clone(), s, en)
                })
                .collect();
            v.sort();
            v
        };
        prop_assert_eq!(spans(&g2), spans(&g));
        prop_assert!(check_invariants(&g2).is_ok());
    }

    #[test]
    fn milestone_roundtrip_preserves_spans(
        r1 in nested_ranges(30, 0),
        r2 in nested_ranges(30, 0),
    ) {
        let g = build(30, &[r1, r2]);
        let opts = sacx::MilestoneOptions::new("h0");
        let xml = sacx::export_milestone(&g, &opts).unwrap();
        let g2 = sacx::import_milestone(&xml, "h0").unwrap();
        prop_assert_eq!(g2.element_count(), g.element_count());
        prop_assert_eq!(g2.content(), g.content());
        prop_assert!(check_invariants(&g2).is_ok());
    }

    #[test]
    fn overlap_index_agrees_with_scan(
        r1 in nested_ranges(30, 0),
        r2 in nested_ranges(30, 0),
        probes in proptest::collection::vec((0u32..32, 0u32..32), 10),
    ) {
        let g = build(30, &[r1, r2]);
        let idx = expath::OverlapIndex::build(&g);
        for (a, b) in probes {
            let (s, e) = if a <= b { (a, b) } else { (b, a) };
            let e = e.min(g.leaf_count() as u32);
            let s = s.min(e);
            let span = Span::new(s, e);
            let mut from_idx = idx.intersecting(span);
            let mut from_scan = expath::scan_intersecting(&g, span);
            g.sort_doc_order(&mut from_idx);
            g.sort_doc_order(&mut from_scan);
            prop_assert_eq!(from_idx, from_scan);
        }
    }

    #[test]
    fn random_edits_preserve_invariants(
        ops in proptest::collection::vec((0usize..3, 0usize..30, 0usize..30), 1..15),
    ) {
        let mut g = build(30, &[vec![(0, 30)], vec![(5, 25)]]);
        let h0 = goddag::HierarchyId(0);
        for (kind, a, b) in ops {
            let (s, e) = if a <= b { (a, b) } else { (b, a) };
            match kind {
                0 => {
                    // Insertion may fail (crossing) — that's fine; it must
                    // not corrupt the document.
                    let _ = g.insert_element(
                        h0,
                        xmlcore::QName::parse("x").unwrap(),
                        vec![],
                        s,
                        e,
                    );
                }
                1 => {
                    let target = g.elements().nth(a % 3);
                    if let Some(e1) = target {
                        let _ = g.remove_element(e1);
                    }
                }
                _ => {
                    let _ = g.split_leaf_at(s.min(g.content_len()));
                }
            }
            prop_assert!(check_invariants(&g).is_ok());
            prop_assert_eq!(g.content_len(), 30);
        }
    }

    #[test]
    fn undo_restores_exact_state(
        s in 0usize..15,
        len in 1usize..10,
    ) {
        let g = build(30, &[vec![(0, 30)], vec![(5, 25)]]);
        let before_docs = g.to_distributed().unwrap();
        let before_counts = (g.element_count(), g.leaf_count(), g.content());
        let mut session = xtagger::Session::new(g);
        let e = (s + len).min(30);
        if session
            .insert_markup(goddag::HierarchyId(0), "w", vec![], s, e)
            .is_ok()
        {
            session.undo().unwrap();
        }
        let g = session.into_goddag();
        prop_assert_eq!(g.to_distributed().unwrap(), before_docs);
        prop_assert_eq!((g.element_count(), g.leaf_count(), g.content()), before_counts);
    }
}
