//! Release-mode performance smoke test for the prevalidation hot path.
//!
//! Ignored by default (debug builds and loaded CI runners would flake);
//! CI runs it explicitly in release:
//!
//! ```sh
//! cargo test --release --test perf_smoke -- --ignored
//! ```
//!
//! Guards the ROADMAP "prevalidation performance cliff" fix: before the
//! bitset engine, `check_insertion` on this 200-word mixed-content host
//! took ~387 s in release; the budget here is 1 s — generous enough for
//! slow runners, and still ~400× under the old cost.

use cxobs::Registry;
use cxstore::{EditOp, Store};
use prevalid::{check_insertion, suggest_tags, PrevalidEngine};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A 200-word mixed-content host (399 child items) with a two-word range
/// in its middle.
fn host_200() -> (goddag::Goddag, goddag::HierarchyId, usize, usize) {
    let words = 200;
    let (g, h, ranges) = corpus::mixed_host(words);
    let (s, _) = ranges[words / 2];
    let (_, e) = ranges[words / 2 + 1];
    (g, h, s, e)
}

#[test]
#[ignore = "release-mode perf budget; run with: cargo test --release --test perf_smoke -- --ignored"]
fn check_insertion_200_words_stays_interactive() {
    let engine = PrevalidEngine::new(corpus::dtds::ling());
    let (g, h, s, e) = host_200();

    // Warm-up (page in code, fault in the allocator).
    assert!(check_insertion(&engine, &g, h, "phrase", s, e).ok);

    let t = Instant::now();
    let verdict = check_insertion(&engine, &g, h, "phrase", s, e);
    let elapsed = t.elapsed();
    assert!(verdict.ok, "{:?}", verdict.reason);
    assert!(
        elapsed < Duration::from_secs(1),
        "check_insertion on a 200-word host took {elapsed:?} (budget 1s)"
    );
}

/// Guards the cxobs instrumentation cost on the gated-edit path: a live
/// [`Registry`] (span timers + relaxed counter bumps) must stay within
/// 5% of a no-op [`Registry::disabled`] baseline, which skips the clock
/// reads entirely. Rounds are interleaved and each mode keeps its best
/// round, so a scheduler hiccup hits one round, not one mode.
#[test]
#[ignore = "release-mode perf budget; run with: cargo test --release --test perf_smoke -- --ignored"]
fn instrumented_gated_edits_stay_within_5_percent_of_noop_registry() {
    const EDITS: usize = 400;
    const ROUNDS: usize = 5;

    let run = |registry: Arc<Registry>| -> Duration {
        let store = Store::with_registry(registry);
        let mut ms =
            corpus::generate(&corpus::Params { words: 300, seed: 42, ..corpus::Params::default() });
        corpus::dtds::attach_standard(&mut ms.goddag);
        let id = store.insert(ms.goddag);
        let t = Instant::now();
        for k in 0..EDITS {
            store.edit(id, EditOp::InsertText { offset: 0, text: format!("x{k} ") }).unwrap();
        }
        t.elapsed()
    };

    // Warm-up (page in code, fault in the allocator).
    run(Arc::new(Registry::disabled()));

    let (mut bare, mut instrumented) = (Duration::MAX, Duration::MAX);
    for _ in 0..ROUNDS {
        bare = bare.min(run(Arc::new(Registry::disabled())));
        instrumented = instrumented.min(run(Arc::new(Registry::new())));
    }
    // A small absolute epsilon keeps the 5% relative bound meaningful
    // when both runs are only a few milliseconds.
    let budget = bare.mul_f64(1.05) + Duration::from_millis(2);
    assert!(
        instrumented <= budget,
        "instrumented gated edits took {instrumented:?} vs {bare:?} bare (budget {budget:?})"
    );
}

/// Guards the cxtrace instrumentation cost on the gated-edit path: with
/// tracing *enabled but idle* (the switch on, no trace active on the
/// thread — every span call is one relaxed load plus a thread-local
/// probe returning an inert guard) the path must stay within 5% of the
/// tracing-off baseline. Both runs use a disabled metrics registry so
/// the bound isolates cxtrace's tax from cxobs's. Rounds interleave and
/// each mode keeps its best, as above.
#[test]
#[ignore = "release-mode perf budget; run with: cargo test --release --test perf_smoke -- --ignored"]
fn tracing_enabled_but_idle_gated_edits_stay_within_5_percent() {
    const EDITS: usize = 400;
    const ROUNDS: usize = 5;

    let run = || -> Duration {
        let store = Store::with_registry(Arc::new(Registry::disabled()));
        let mut ms =
            corpus::generate(&corpus::Params { words: 300, seed: 42, ..corpus::Params::default() });
        corpus::dtds::attach_standard(&mut ms.goddag);
        let id = store.insert(ms.goddag);
        let t = Instant::now();
        for k in 0..EDITS {
            store.edit(id, EditOp::InsertText { offset: 0, text: format!("x{k} ") }).unwrap();
        }
        t.elapsed()
    };

    // Exclusive tracing state for the measurement; restored on drop.
    let _scenario = cxtrace::Scenario::setup();
    cxtrace::disable();
    run(); // Warm-up.

    let (mut off, mut idle) = (Duration::MAX, Duration::MAX);
    for _ in 0..ROUNDS {
        cxtrace::disable();
        off = off.min(run());
        cxtrace::enable();
        idle = idle.min(run());
    }
    cxtrace::disable();
    // Same absolute epsilon rationale as the cxobs guard above.
    let budget = off.mul_f64(1.05) + Duration::from_millis(2);
    assert!(
        idle <= budget,
        "tracing-idle gated edits took {idle:?} vs {off:?} with tracing off (budget {budget:?})"
    );
}

/// Guards the cxfault disarmed fast path: with no site armed anywhere in
/// the process, [`cxfault::fire`] is one relaxed atomic load — the WAL
/// append, fsync, and replication fetch paths cross it on every
/// operation, so it must stay in single-digit nanoseconds. The budget is
/// 25 ns per call, ~10× the expected cost, so only a real regression
/// (e.g. taking the registry lock while disarmed) trips it.
#[test]
#[ignore = "release-mode perf budget; run with: cargo test --release --test perf_smoke -- --ignored"]
fn disarmed_failpoints_stay_within_nanoseconds() {
    const CALLS: u32 = 2_000_000;
    const ROUNDS: usize = 5;

    // Exclusive registry use: guarantees nothing is armed and restores a
    // clean registry on drop.
    let _scenario = cxfault::Scenario::setup();

    let run = || -> Duration {
        let t = Instant::now();
        for _ in 0..CALLS {
            assert!(cxfault::fire(std::hint::black_box("wal.append")).is_none());
        }
        t.elapsed()
    };

    run(); // Warm-up.
    let mut best = Duration::MAX;
    for _ in 0..ROUNDS {
        best = best.min(run());
    }
    let budget = Duration::from_nanos(25).saturating_mul(CALLS);
    assert!(
        best <= budget,
        "{CALLS} disarmed fire() calls took {best:?} (budget {budget:?} = 25 ns/call)"
    );
}

#[test]
#[ignore = "release-mode perf budget; run with: cargo test --release --test perf_smoke -- --ignored"]
fn suggest_tags_200_words_stays_interactive() {
    let engine = PrevalidEngine::new(corpus::dtds::ling());
    let (g, h, s, e) = host_200();
    let t = Instant::now();
    let tags = suggest_tags(&engine, &g, h, s, e);
    let elapsed = t.elapsed();
    assert_eq!(tags, ["phrase"]);
    assert!(
        elapsed < Duration::from_secs(2),
        "suggest_tags on a 200-word host took {elapsed:?} (budget 2s)"
    );
}
