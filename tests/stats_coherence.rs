//! Coherence of the observability counters under concurrency and
//! composition:
//!
//! * concurrent writers lose no counter bumps, and a sampler racing them
//!   only ever sees the totals move forward;
//! * [`StoreStats::absorb`] composes shard summaries the way a cluster
//!   needs: counters and totals sum, `repl_lag` takes the worst shard.

use corpus::{dtds, generate, Params};
use cxstore::{EditOp, Store, StoreStats};
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn manuscript(words: usize, seed: u64) -> goddag::Goddag {
    let mut ms = generate(&Params { words, seed, ..Params::default() });
    dtds::attach_standard(&mut ms.goddag);
    ms.goddag
}

#[test]
fn concurrent_writers_lose_no_bumps_and_samplers_see_monotone_totals() {
    const WRITERS: usize = 4;
    const EDITS: usize = 200;

    let store = Arc::new(Store::new());
    let docs: Vec<_> = (0..WRITERS).map(|w| store.insert(manuscript(60, w as u64))).collect();
    let edit_hist = store.registry().histogram("cx_edit_ns");
    let done = Arc::new(AtomicBool::new(false));

    // The sampler races the writers, snapshotting stats and the edit
    // histogram: monotone counters may only move forward, and the
    // histogram's count/sum pair must never regress either.
    let sampler = {
        let (store, done) = (Arc::clone(&store), Arc::clone(&done));
        let edit_hist = Arc::clone(&edit_hist);
        std::thread::spawn(move || {
            let mut last_edits = 0u64;
            let mut last_epochs = 0u64;
            let (mut last_count, mut last_sum) = (0u64, 0u64);
            let mut samples = 0u64;
            while !done.load(Ordering::Acquire) {
                let s = store.stats();
                assert!(s.edits >= last_edits, "edit counter went backwards");
                assert!(s.epochs >= last_epochs, "epoch total went backwards");
                (last_edits, last_epochs) = (s.edits, s.epochs);
                let h = edit_hist.snapshot();
                assert!(h.count >= last_count, "histogram count went backwards");
                assert!(h.sum_ns >= last_sum, "histogram sum went backwards");
                (last_count, last_sum) = (h.count, h.sum_ns);
                samples += 1;
            }
            samples
        })
    };

    std::thread::scope(|scope| {
        for (w, &doc) in docs.iter().enumerate() {
            let store = Arc::clone(&store);
            scope.spawn(move || {
                for k in 0..EDITS {
                    let op = EditOp::InsertText { offset: 0, text: format!("w{w}k{k} ") };
                    store.edit(doc, op).unwrap();
                }
            });
        }
    });
    done.store(true, Ordering::Release);
    let samples = sampler.join().unwrap();
    assert!(samples > 0, "the sampler never ran");

    // No bump was lost anywhere: the counter, the histogram, and the
    // per-document epochs all agree on the exact edit total.
    let total = (WRITERS * EDITS) as u64;
    let s = store.stats();
    assert_eq!(s.edits, total);
    assert_eq!(s.edits_rejected, 0);
    assert!(s.epochs >= total, "every applied edit advanced an epoch");
    let h = edit_hist.snapshot();
    assert_eq!(h.count, total);
    assert_eq!(h.buckets.iter().sum::<u64>(), total, "every edit landed in a bucket");
}

/// An arbitrary stats summary over the fields `absorb` treats
/// differently: summed counters, summed gauges, and the max-folded lag.
fn stats_strategy() -> impl Strategy<Value = StoreStats> {
    (
        (0usize..1000, 0usize..1000, 0u64..1_000_000, 0u64..1_000_000),
        (0u64..1_000_000, 0u64..1_000_000, 0u64..1_000_000, 0u64..1_000_000),
        (0u64..1_000_000, -100i64..100, -100i64..100),
    )
        .prop_map(
            |((docs, shards, edits, queries), (appends, hits, misses, moved), (lag, wif, ww))| {
                StoreStats {
                    docs,
                    cluster_shards: shards,
                    edits,
                    queries,
                    wal_appends: appends,
                    tail_cache_hits: hits,
                    tail_cache_misses: misses,
                    docs_moved: moved,
                    repl_lag: lag,
                    writes_in_flight: wif,
                    writers_waiting: ww,
                    ..StoreStats::default()
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Absorbing N shard summaries sums every counter, total and gauge —
    /// but folds `repl_lag` with max: a cluster's lag is its worst
    /// shard's, not the sum of all followers' backlogs.
    #[test]
    fn absorb_sums_counters_and_takes_worst_lag(
        shards in proptest::collection::vec(stats_strategy(), 1..8)
    ) {
        let mut agg = StoreStats::default();
        for s in &shards {
            agg.absorb(s);
        }
        prop_assert_eq!(agg.docs, shards.iter().map(|s| s.docs).sum::<usize>());
        prop_assert_eq!(agg.cluster_shards, shards.iter().map(|s| s.cluster_shards).sum::<usize>());
        prop_assert_eq!(agg.edits, shards.iter().map(|s| s.edits).sum::<u64>());
        prop_assert_eq!(agg.queries, shards.iter().map(|s| s.queries).sum::<u64>());
        prop_assert_eq!(agg.wal_appends, shards.iter().map(|s| s.wal_appends).sum::<u64>());
        prop_assert_eq!(agg.tail_cache_hits, shards.iter().map(|s| s.tail_cache_hits).sum::<u64>());
        prop_assert_eq!(
            agg.tail_cache_misses,
            shards.iter().map(|s| s.tail_cache_misses).sum::<u64>()
        );
        prop_assert_eq!(agg.docs_moved, shards.iter().map(|s| s.docs_moved).sum::<u64>());
        prop_assert_eq!(
            agg.writes_in_flight,
            shards.iter().map(|s| s.writes_in_flight).sum::<i64>()
        );
        prop_assert_eq!(agg.writers_waiting, shards.iter().map(|s| s.writers_waiting).sum::<i64>());
        prop_assert_eq!(agg.repl_lag, shards.iter().map(|s| s.repl_lag).max().unwrap_or(0));
    }

    /// Absorb is order-insensitive on the max-folded field too: the worst
    /// lag wins no matter where in the fold it sits.
    #[test]
    fn absorb_lag_is_order_insensitive(
        shards in proptest::collection::vec(stats_strategy(), 1..8)
    ) {
        let mut fwd = StoreStats::default();
        for s in &shards {
            fwd.absorb(s);
        }
        let mut rev = StoreStats::default();
        for s in shards.iter().rev() {
            rev.absorb(s);
        }
        prop_assert_eq!(fwd, rev);
    }
}
