//! Extended XPath conformance suite (experiment B2's correctness side):
//! every axis, node test, predicate form and function evaluated against a
//! document with known answers — with and without the overlap index.

use expath::{Evaluator, Value};
use goddag::Goddag;

/// Fixed document:
/// content: "aa bb cc dd ee"  (five 2-char words)
/// phys:  line1 = "aa bb cc", line2 = "dd ee", pb milestone between
/// ling:  s1 = "bb cc dd" (crosses lines), w per word
/// edit:  dmg = "b cc d" (mid-word to mid-word)
fn doc() -> Goddag {
    sacx::parse_distributed(&[
        ("phys", "<r><line n=\"1\">aa bb cc</line> <line n=\"2\">dd ee</line></r>"),
        ("ling", "<r><w>aa</w> <s id=\"s1\"><w>bb</w> <w>cc</w> <w>dd</w></s> <w>ee</w></r>"),
        ("edit", "<r>aa b<dmg agent=\"x\">b cc d</dmg>d ee</r>"),
    ])
    .unwrap()
}

fn check(g: &Goddag, query: &str, expected_texts: &[&str]) {
    for indexed in [false, true] {
        let ev = if indexed { Evaluator::with_index(g) } else { Evaluator::new(g) };
        let hits = ev.select(query).unwrap_or_else(|e| panic!("{query}: {e}"));
        let texts: Vec<String> = hits.iter().map(|&n| g.text_of(n)).collect();
        assert_eq!(texts, expected_texts, "query {query} (indexed={indexed})");
    }
}

fn check_value(g: &Goddag, query: &str, expected: Value) {
    let ev = Evaluator::new(g);
    let v = ev.eval_str(query).unwrap_or_else(|e| panic!("{query}: {e}"));
    assert_eq!(v, expected, "query {query}");
}

#[test]
fn child_axis() {
    let g = doc();
    check(&g, "/line", &["aa bb cc", "dd ee"]);
    check(&g, "/s/w", &["bb", "cc", "dd"]);
    check(&g, "/w", &["aa", "ee"]);
}

#[test]
fn descendant_axes() {
    let g = doc();
    check(&g, "//w", &["aa", "bb", "cc", "dd", "ee"]);
    check(&g, "//s//w", &["bb", "cc", "dd"]);
    check(&g, "/descendant::ling:*", &["aa", "bb cc dd", "bb", "cc", "dd", "ee"]);
}

#[test]
fn parent_and_ancestor() {
    let g = doc();
    check(&g, "(//w)[2]/parent::s", &["bb cc dd"]);
    check(&g, "(//w)[2]/ancestor::s", &["bb cc dd"]);
    // Ancestor of a leaf crosses hierarchies. The word "bb" is split by the
    // damage boundary at byte 4; its second leaf sits inside the damage.
    let ev = Evaluator::new(&g);
    let leaves = ev.select("(//w)[2]/text()").unwrap();
    assert_eq!(leaves.len(), 2);
    let ancestors = ev.select_from("ancestor::*", leaves[1]).unwrap();
    let names: Vec<_> = ancestors.iter().map(|&n| g.name(n).unwrap().local.clone()).collect();
    assert!(names.contains(&"line".to_string()));
    assert!(names.contains(&"s".to_string()));
    assert!(names.contains(&"dmg".to_string()));
    assert!(names.contains(&"r".to_string()));
}

#[test]
fn sibling_axes() {
    let g = doc();
    check(&g, "/line[1]/following-sibling::line", &["dd ee"]);
    check(&g, "/line[2]/preceding-sibling::line", &["aa bb cc"]);
    check(&g, "/s/w[1]/following-sibling::w", &["cc", "dd"]);
}

#[test]
fn following_preceding() {
    let g = doc();
    check(&g, "(//w)[1]/following::ling:w", &["bb", "cc", "dd", "ee"]);
    check(&g, "(//w)[5]/preceding::ling:s", &["bb cc dd"]);
}

#[test]
fn overlapping_axis() {
    let g = doc();
    check(&g, "//s/overlapping::phys:line", &["aa bb cc", "dd ee"]);
    check(&g, "//dmg/overlapping::ling:w", &["bb", "dd"]);
    // The sentence *contains* the damage (3..11 ⊇ 4..10): no proper overlap.
    check(&g, "//dmg/overlapping::ling:s", &[]);
    check(&g, "//dmg/containing::ling:s", &["bb cc dd"]);
    check(&g, "//line[@n='1']/overlapping::edit:dmg", &["b cc d"]);
    // Nothing overlaps itself or what it contains.
    check(&g, "//s/overlapping::ling:w", &[]);
}

#[test]
fn containing_contained_coextensive() {
    let g = doc();
    check(&g, "//dmg/contained::ling:w", &["cc"]);
    check(&g, "(//w)[3]/containing::edit:dmg", &["b cc d"]);
    check(&g, "//line[@n='2']/contained::ling:w", &["dd", "ee"]);
    // cc (single word) is co-extensive with nothing here.
    check(&g, "(//w)[3]/co-extensive::*", &[]);
}

#[test]
fn attribute_axis_and_predicates() {
    let g = doc();
    check(&g, "//line[@n='2']", &["dd ee"]);
    check(&g, "//s[@id]", &["bb cc dd"]);
    check(&g, "//line[@n > 1]", &["dd ee"]);
    check_value(&g, "string(//dmg/@agent)", Value::Str("x".into()));
    check_value(&g, "count(//line/@n)", Value::Number(2.0));
}

#[test]
fn positional_predicates() {
    let g = doc();
    check(&g, "(//w)[1]", &["aa"]);
    check(&g, "(//w)[last()]", &["ee"]);
    check(&g, "(//w)[position() >= 4]", &["dd", "ee"]);
    check(&g, "//s/w[2]", &["cc"]);
}

#[test]
fn node_tests() {
    let g = doc();
    check(&g, "//phys:*", &["aa bb cc", "dd ee"]);
    let ev = Evaluator::new(&g);
    let texts = ev.select("/line[1]/text()").unwrap();
    assert!(texts.iter().all(|&n| g.is_leaf(n)));
    // node() matches elements and leaves.
    let all = ev.select("/line[1]/child::node()").unwrap();
    assert!(all.len() >= texts.len());
}

#[test]
fn functions() {
    let g = doc();
    check_value(&g, "count(//w)", Value::Number(5.0));
    check_value(&g, "count(//w | //line)", Value::Number(7.0));
    check_value(&g, "contains(string(//s), 'cc')", Value::Bool(true));
    check_value(&g, "starts-with(string(//dmg), 'b ')", Value::Bool(true));
    check_value(&g, "string-length(string((//w)[1]))", Value::Number(2.0));
    check_value(&g, "normalize-space(concat(' a ', ' b '))", Value::Str("a b".into()));
    check_value(&g, "hierarchy(//dmg)", Value::Str("edit".into()));
    check_value(&g, "local-name(//s)", Value::Str("s".into()));
    check_value(&g, "overlaps(//s, //line)", Value::Bool(true));
    check_value(&g, "overlaps(//s, //w)", Value::Bool(false));
    check_value(&g, "boolean(//dmg)", Value::Bool(true));
    check_value(&g, "not(boolean(//zap))", Value::Bool(true));
    check_value(&g, "sum(//line/@n)", Value::Number(3.0));
    check_value(&g, "floor(2.7) + ceiling(0.2) + round(0.5)", Value::Number(4.0));
    check_value(&g, "substring('abcdef', 2, 3)", Value::Str("bcd".into()));
    check_value(&g, "substring-before('aa=bb', '=')", Value::Str("aa".into()));
    check_value(&g, "substring-after('aa=bb', '=')", Value::Str("bb".into()));
}

#[test]
fn id_function_and_union() {
    let g = doc();
    check(&g, "id('s1')", &["bb cc dd"]);
    check(&g, "id('s1') | //dmg", &["bb cc dd", "b cc d"]);
}

#[test]
fn arithmetic_and_logic() {
    let g = doc();
    check_value(&g, "2 + 3 * 4", Value::Number(14.0));
    check_value(&g, "(2 + 3) * 4", Value::Number(20.0));
    check_value(&g, "10 div 4", Value::Number(2.5));
    check_value(&g, "10 mod 4", Value::Number(2.0));
    check_value(&g, "- 5 + 10", Value::Number(5.0));
    check_value(&g, "1 < 2 and 2 < 3 or false()", Value::Bool(true));
    check_value(&g, "count(//w) = 5 and count(//line) != 5", Value::Bool(true));
}

#[test]
fn leaves_function_spans_hierarchies() {
    let g = doc();
    let ev = Evaluator::new(&g);
    // The damage's leaves are shared with the words it cuts.
    let v = ev.eval_str("count(leaves(//dmg))").unwrap();
    let n = v.number_value(&g);
    assert!(n >= 3.0, "dmg spans at least 3 leaf fragments, got {n}");
}

#[test]
fn errors_reported_cleanly() {
    let g = doc();
    let ev = Evaluator::new(&g);
    assert!(ev.eval_str("//w[").is_err());
    assert!(ev.eval_str("//nohier:w").is_err());
    assert!(ev.eval_str("nosuchfn()").is_err());
    assert!(ev.eval_str("sideways::w").is_err());
}

#[test]
fn milestone_queries() {
    // Add a pb milestone and query its relations.
    let g = sacx::parse_distributed(&[
        ("phys", "<r>aa<pb n=\"2\"/>bb</r>"),
        ("ling", "<r><w>aabb</w></r>"),
    ])
    .unwrap();
    let ev = Evaluator::new(&g);
    // The milestone is contained in the word that spans it.
    let inside = ev.select("//w/contained::phys:pb").unwrap();
    assert_eq!(inside.len(), 1);
    // It overlaps nothing (empty spans never overlap).
    assert!(ev.select("//pb/overlapping::*").unwrap().is_empty());
    // Its containing set includes the word.
    let containing = ev.select("//pb/containing::ling:w").unwrap();
    assert_eq!(containing.len(), 1);
}
