//! Property tests on the XML substrate: random document trees serialized by
//! the writer must re-parse to the same tree, with content and structure
//! preserved — the foundation every representation driver stands on.

use proptest::prelude::*;
use xmlcore::dom::{Document, DomNode};
use xmlcore::{Attribute, QName};

/// A recursive random XML tree description.
#[derive(Debug, Clone)]
enum Tree {
    Element { name: String, attrs: Vec<(String, String)>, children: Vec<Tree> },
    Text(String),
}

fn name_strategy() -> impl Strategy<Value = String> {
    proptest::sample::select(vec![
        "r", "line", "w", "s", "dmg", "res", "page", "pb", "phrase", "seg",
    ])
    .prop_map(str::to_string)
}

/// Text including XML-hostile characters.
fn text_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        proptest::sample::select(vec![
            'a', 'b', ' ', '<', '>', '&', '\'', '"', 'æ', 'þ', '\n', '\t', ']', '!',
        ]),
        1..12,
    )
    .prop_map(|cs| cs.into_iter().collect())
}

fn attr_strategy() -> impl Strategy<Value = (String, String)> {
    (name_strategy(), text_strategy())
}

fn tree_strategy() -> impl Strategy<Value = Tree> {
    let leaf = prop_oneof![
        text_strategy().prop_map(Tree::Text),
        (name_strategy(), proptest::collection::vec(attr_strategy(), 0..3))
            .prop_map(|(name, attrs)| Tree::Element { name, attrs, children: vec![] }),
    ];
    leaf.prop_recursive(4, 24, 4, |inner| {
        (
            name_strategy(),
            proptest::collection::vec(attr_strategy(), 0..3),
            proptest::collection::vec(inner, 0..4),
        )
            .prop_map(|(name, attrs, children)| Tree::Element { name, attrs, children })
    })
}

fn build_dom(tree: &Tree) -> Document {
    fn add(doc: &mut Document, parent: xmlcore::dom::DomId, tree: &Tree) {
        match tree {
            Tree::Text(t) => {
                doc.append(parent, DomNode::Text(t.clone()));
            }
            Tree::Element { name, attrs, children } => {
                // Attribute names must be unique on an element: keep the
                // first occurrence of each generated name.
                let mut seen = std::collections::HashSet::new();
                let attrs: Vec<Attribute> = attrs
                    .iter()
                    .filter(|(n, _)| seen.insert(n.clone()))
                    .map(|(n, v)| Attribute::new(n.as_str(), v.clone()))
                    .collect();
                let id = doc
                    .append(parent, DomNode::Element { name: QName::parse(name).unwrap(), attrs });
                for c in children {
                    add(doc, id, c);
                }
            }
        }
    }
    let mut doc = Document::with_root(QName::parse("r").unwrap(), vec![]);
    let root = doc.root();
    add(&mut doc, root, tree);
    doc
}

/// Structure signature: element names, attrs and merged text runs in order.
fn signature(doc: &Document, id: xmlcore::dom::DomId, out: &mut Vec<String>) {
    match doc.node(id) {
        DomNode::Element { name, attrs } => {
            let mut sig = format!("<{name}");
            for a in attrs {
                sig.push_str(&format!(" {}={:?}", a.name, a.value));
            }
            out.push(sig);
            // Merge adjacent text children (the reader coalesces them).
            let mut pending_text = String::new();
            for &c in doc.children(id) {
                if let DomNode::Text(t) = doc.node(c) {
                    pending_text.push_str(t);
                } else {
                    if !pending_text.is_empty() {
                        out.push(format!("T{pending_text:?}"));
                        pending_text.clear();
                    }
                    signature(doc, c, out);
                }
            }
            if !pending_text.is_empty() {
                out.push(format!("T{pending_text:?}"));
            }
            out.push(format!("</{name}"));
        }
        DomNode::Text(t) => out.push(format!("T{t:?}")),
        _ => {}
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn writer_reader_roundtrip(tree in tree_strategy()) {
        let doc = build_dom(&tree);
        let xml = doc.to_xml().unwrap();
        let reparsed = Document::parse(&xml)
            .unwrap_or_else(|e| panic!("serialized XML failed to parse: {e}\n{xml}"));
        let mut sig_a = Vec::new();
        let mut sig_b = Vec::new();
        signature(&doc, doc.root(), &mut sig_a);
        signature(&reparsed, reparsed.root(), &mut sig_b);
        prop_assert_eq!(sig_a, sig_b, "{}", xml);
        // Content identical.
        prop_assert_eq!(
            reparsed.text_content(reparsed.root()),
            doc.text_content(doc.root())
        );
    }

    #[test]
    fn double_roundtrip_is_fixpoint(tree in tree_strategy()) {
        let doc = build_dom(&tree);
        let once = doc.to_xml().unwrap();
        let twice = Document::parse(&once).unwrap().to_xml().unwrap();
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn escaped_text_never_breaks_wellformedness(t in text_strategy()) {
        let escaped = xmlcore::escape::escape_text(&t);
        let doc = format!("<r>{escaped}</r>");
        let parsed = Document::parse(&doc).unwrap();
        prop_assert_eq!(parsed.text_content(parsed.root()), t);
    }

    #[test]
    fn escaped_attrs_never_break_wellformedness(v in text_strategy()) {
        let escaped = xmlcore::escape::escape_attr(&v);
        let doc = format!("<r a=\"{escaped}\"/>");
        let parsed = Document::parse(&doc).unwrap();
        prop_assert_eq!(parsed.attr(parsed.root(), "a").unwrap(), v);
    }
}
