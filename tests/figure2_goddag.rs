//! Experiment F2: the GODDAG of the Figure 1 document (paper Figure 2) —
//! shared root on top, shared leaves at the bottom, one element tree per
//! hierarchy in between, united at root and leaf level.

use corpus::figure1;
use goddag::NodeKind;

#[test]
fn leaves_are_the_markup_boundary_partition() {
    let g = figure1::goddag();
    // Boundaries come from all four hierarchies: line break, word breaks,
    // res start (mid-word), dmg start/end (mid-word).
    let leaf_texts: Vec<String> =
        g.leaves().iter().map(|&l| g.leaf_text(l).unwrap().to_string()).collect();
    assert_eq!(leaf_texts.concat(), figure1::CONTENT);
    // The mid-word splits exist: "ealdspell" shatters into "ea" (res
    // boundary), "ld" (line break), "sp" (dmg end), "ell".
    for piece in ["ea", "ld", "sp", "ell"] {
        assert!(leaf_texts.iter().any(|t| t == piece), "{piece}: {leaf_texts:?}");
    }
}

#[test]
fn every_hierarchy_reaches_every_leaf() {
    let g = figure1::goddag();
    for h in g.hierarchy_ids() {
        let frontier: Vec<_> =
            g.descendants_in(g.root(), h).into_iter().filter(|&n| g.is_leaf(n)).collect();
        assert_eq!(frontier.len(), g.leaf_count(), "hierarchy {h}");
    }
}

#[test]
fn shared_leaves_have_one_parent_per_hierarchy() {
    let g = figure1::goddag();
    for &leaf in g.leaves() {
        for h in g.hierarchy_ids() {
            let p = g.parent_in(leaf, h).expect("leaf reachable in every hierarchy");
            // The parent is an element of h, or the shared root.
            assert!(g.is_root(p) || g.hierarchy_of(p) == Some(h));
        }
    }
}

#[test]
fn navigation_crosses_structures_via_root_and_leaves() {
    // Paper §3: "navigation from one structure to another is done through
    // root node or leaf (text) nodes."
    let g = figure1::goddag();
    let ling = g.hierarchy_by_name("ling").unwrap();
    let phys = g.hierarchy_by_name("phys").unwrap();
    // Start at a word, drop to its first leaf, climb into phys.
    let w = g.find_element(ling, "w").unwrap();
    let leaf = g.leaves_of(w)[0];
    let line = g.parent_in(leaf, phys).unwrap();
    assert_eq!(g.name(line).unwrap().local, "line");
    // The same hop through the root: root's phys children include that line.
    assert!(g.children_in(g.root(), phys).contains(&line));
}

#[test]
fn node_inventory_matches_figure() {
    let g = figure1::goddag();
    let mut elements = 0;
    let mut leaves = 0;
    for i in 0..g.arena_len() as u32 {
        let id = goddag::NodeId(i);
        if !g.is_alive(id) {
            continue;
        }
        match g.kind(id) {
            NodeKind::Element { .. } => elements += 1,
            NodeKind::Leaf { .. } => leaves += 1,
            NodeKind::Root { .. } => {}
        }
    }
    assert_eq!(elements, 12);
    assert_eq!(leaves, g.leaf_count());
    // 4 hierarchies, one root, content split into >= 13 pieces by the
    // combined boundaries.
    assert!(g.leaf_count() >= 13, "leaf count {}", g.leaf_count());
}

#[test]
fn dot_rendering_contains_all_nodes_and_edges() {
    let g = figure1::goddag();
    let dot = g.to_dot(&goddag::DotOptions::default());
    // One cluster per hierarchy.
    for h in 0..4 {
        assert!(dot.contains(&format!("cluster_{h}")), "{dot}");
    }
    // Every element appears as a node line.
    for e in g.elements() {
        assert!(dot.contains(&format!("n{} [", e.0)));
    }
    // Edge count: every hierarchy reaches all leaves + its elements.
    let edge_count = dot.matches(" -> ").count();
    let expected: usize = g.hierarchy_ids().map(|h| g.descendants_in(g.root(), h).len()).sum();
    assert_eq!(edge_count, expected);
}

#[test]
fn doc_order_is_total_and_stable() {
    let g = figure1::goddag();
    let mut all: Vec<goddag::NodeId> =
        (0..g.arena_len() as u32).map(goddag::NodeId).filter(|&n| g.is_alive(n)).collect();
    g.sort_doc_order(&mut all);
    // Root first.
    assert_eq!(all[0], g.root());
    // Keys strictly increase (total order, no duplicates).
    for w in all.windows(2) {
        assert!(g.doc_order_key(w[0]) < g.doc_order_key(w[1]));
    }
}
