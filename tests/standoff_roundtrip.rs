//! Stand-off round-trip over corpus documents — the serialization the
//! persistence layer (`cxpersist`) builds snapshots from, pinned end to
//! end: attributes, ≥3 hierarchies, milestones, edit history, non-ASCII.

use sacx::{export_standoff, import_standoff, StandoffDoc};

/// Export → import → export must be a fixpoint, and the re-imported
/// document must be structurally identical per hierarchy.
fn assert_roundtrip(g: &goddag::Goddag) {
    let text = export_standoff(g);
    let g2 = import_standoff(&text).unwrap();
    goddag::check_invariants(&g2).unwrap();
    assert_eq!(g2.content(), g.content());
    assert_eq!(g2.hierarchy_count(), g.hierarchy_count());
    assert_eq!(g2.element_count(), g.element_count());
    for h in g.hierarchy_ids() {
        assert_eq!(
            g2.to_xml(h).unwrap(),
            g.to_xml(h).unwrap(),
            "hierarchy {h} diverges after round-trip"
        );
    }
    assert_eq!(export_standoff(&g2), text, "second export is byte-identical");
}

#[test]
fn generated_manuscripts_roundtrip() {
    // Three hierarchies (phys/ling/edit), attribute-bearing elements,
    // milestone page breaks — at several sizes and seeds.
    for (words, seed) in [(120usize, 1u64), (400, 2005), (50, 99)] {
        let ms = corpus::generate(&corpus::Params { words, seed, ..corpus::Params::default() });
        assert!(ms.goddag.hierarchy_count() >= 3);
        let has_attrs = ms.goddag.elements().any(|e| !ms.goddag.attrs(e).is_empty());
        assert!(has_attrs, "workload must exercise attributes");
        assert_roundtrip(&ms.goddag);
    }
}

#[test]
fn figure1_roundtrips() {
    let g = corpus::figure1::goddag();
    assert_eq!(g.hierarchy_count(), 4);
    assert_roundtrip(&g);
}

#[test]
fn edited_manuscript_roundtrips() {
    // Persistence snapshots documents mid-history: splits, removals and
    // attribute churn must not perturb the stand-off view.
    let mut ms =
        corpus::generate(&corpus::Params { words: 100, seed: 5, ..corpus::Params::default() });
    let g = &mut ms.goddag;
    let ling = g.hierarchy_by_name("ling").unwrap();
    let ws = g.find_elements("w");
    let (a, _) = g.char_range(ws[0]);
    let (_, b) = g.char_range(ws[2]);
    let wrapped =
        g.insert_element(ling, xmlcore::QName::parse("phrase").unwrap(), vec![], a, b).unwrap();
    g.set_attr(wrapped, "type", "np").unwrap();
    let victim = ws[4];
    g.remove_element(victim).unwrap();
    g.insert_text(0, "Incipit. ").unwrap();
    g.delete_text(0, 4).unwrap();
    g.split_leaf_at(3).unwrap();
    assert_roundtrip(g);
}

#[test]
fn annotation_order_is_depth_stable() {
    // Equal spans serialize outermost-first regardless of id order (the
    // property blob restore depends on): re-deriving the annotation list
    // from the re-import yields the identical sequence.
    let ms =
        corpus::generate(&corpus::Params { words: 150, seed: 77, ..corpus::Params::default() });
    let (doc, ids) = StandoffDoc::from_goddag_with_ids(&ms.goddag);
    assert_eq!(doc.annotations.len(), ids.len());
    let g2 = doc.to_goddag().unwrap();
    let (doc2, ids2) = StandoffDoc::from_goddag_with_ids(&g2);
    assert_eq!(doc2.annotations, doc.annotations);
    assert_eq!(ids2.len(), ids.len());
}
