//! Experiment F1: reproduction of the paper's Figure 1 — four conflicting
//! encodings of one manuscript fragment, parsed into a single GODDAG.
//!
//! The assertions pin the *structure* the paper describes in §2: four
//! hierarchies over identical content, `<w>` markup conflicting with
//! `<line>`, `<res>` and `<dmg>`, and no single well-formed XML document
//! able to hold the union un-fragmented.

use corpus::figure1;
use goddag::check_invariants;

#[test]
fn all_four_encodings_parse_individually() {
    for (name, doc) in figure1::documents() {
        let extracted = sacx::extract(doc, name).unwrap();
        assert_eq!(extracted.content, figure1::CONTENT);
    }
}

#[test]
fn virtual_union_builds_one_goddag() {
    let g = figure1::goddag();
    check_invariants(&g).unwrap();
    assert_eq!(g.hierarchy_count(), 4);
    assert_eq!(g.content(), figure1::CONTENT);
    // Inventory: 2 lines + 7 words + 1 sentence + 1 res + 1 dmg.
    assert_eq!(g.element_count(), 12);
}

#[test]
fn the_paper_conflicts_exist() {
    let g = figure1::goddag();
    let ev = expath::Evaluator::new(&g);
    // "some of <w> markup are in conflict with <line>, <res>, or <dmg>"
    assert!(!ev.select("//w[overlapping::phys:line]").unwrap().is_empty());
    assert!(!ev.select("//w[overlapping::res:res]").unwrap().is_empty());
    assert!(!ev.select("//w[overlapping::dmg:dmg]").unwrap().is_empty());
}

#[test]
fn each_hierarchy_projects_back_to_its_document() {
    let g = figure1::goddag();
    // Serializing each hierarchy yields well-formed XML with the exact
    // shared content.
    for (name, xml) in g.to_distributed().unwrap() {
        let dom = xmlcore::dom::Document::parse(&xml).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(dom.text_content(dom.root()), figure1::CONTENT);
    }
}

#[test]
fn projections_match_original_documents() {
    // The round trip reproduces the input documents verbatim for phys/ling
    // (res/dmg have mid-word splits that serialize identically too).
    let g = figure1::goddag();
    let docs = g.to_distributed().unwrap();
    let originals = figure1::documents();
    for ((name, exported), (oname, original)) in docs.iter().zip(originals.iter()) {
        assert_eq!(name, oname);
        assert_eq!(exported, original, "hierarchy {name}");
    }
}

#[test]
fn no_single_document_without_fragmentation() {
    let g = figure1::goddag();
    let frags = sacx::count_fragments(&g, &sacx::FragmentationOptions::default()).unwrap();
    assert!(frags > 0, "Figure 1 encodings must conflict");
    // But the fragmented single document still round-trips losslessly.
    let driver = sacx::FragmentationDriver::default();
    let xml = sacx::Driver::export(&driver, &g).unwrap();
    let back = sacx::Driver::import(&driver, &xml).unwrap();
    assert_eq!(back.element_count(), g.element_count());
    assert_eq!(back.content(), g.content());
}
