//! Integration tests for `cxstore`: the concurrent repository must keep its
//! caches honest under edits (epoch invalidation), its batch path identical
//! to the serial path, and its locks safe under reader/writer contention.

use corpus::{dtds, generate, Params};
use cxstore::{EditOp, Store, StoreError};
use goddag::check_invariants;
use std::sync::atomic::{AtomicBool, Ordering};

/// A 3-hierarchy corpus workload (phys + ling + edit) of `words` words.
fn manuscript(words: usize, seed: u64) -> goddag::Goddag {
    generate(&Params { words, seed, ..Params::default() }).goddag
}

/// The editorial query mix from EXPERIMENTS.md, exercising both classic and
/// extended axes.
const QUERIES: &[&str] =
    &["//ling:w", "//s/overlapping::phys:line", "//dmg/overlapping::ling:w", "//dmg/containing::*"];

#[test]
fn query_all_matches_per_document_serial_evaluation() {
    let store = Store::new();
    let ids = store.insert_all((0..4).map(|i| manuscript(300, 7 + i)));
    assert_eq!(store.len(), 4);

    for q in QUERIES {
        let parallel = store.query_all(q).unwrap();
        let serial = store.query_all_serial(q).unwrap();
        assert_eq!(parallel, serial, "{q}");
        // And identical to querying each document individually with a fresh,
        // index-less evaluator (the ground truth).
        assert_eq!(parallel.len(), ids.len());
        for (id, nodes) in &parallel {
            let expected =
                store.with_doc(*id, |g| expath::Evaluator::new(g).select(q).unwrap()).unwrap();
            assert_eq!(*nodes, expected, "{q} on {id}");
        }
    }
}

#[test]
fn warm_queries_skip_the_index_rebuild() {
    let store = Store::new();
    let id = store.insert(manuscript(200, 11));

    store.query(id, "//s/overlapping::phys:line").unwrap();
    let cold = store.stats();
    assert_eq!(cold.index_builds, 1);
    assert_eq!(cold.index_hits, 0);

    for _ in 0..10 {
        store.query(id, "//s/overlapping::phys:line").unwrap();
    }
    let warm = store.stats();
    assert_eq!(warm.index_builds, 1, "unmodified document never rebuilds");
    assert_eq!(warm.index_hits, 10);
    assert_eq!(warm.query_cache_misses, 1, "expression parsed once");
    assert_eq!(warm.query_cache_hits, 10);
}

#[test]
fn edits_invalidate_exactly_the_edited_document() {
    let store = Store::new();
    let a = store.insert(manuscript(150, 1));
    let b = store.insert(manuscript(150, 2));
    store.query_all("//ling:w").unwrap();
    assert_eq!(store.stats().index_builds, 2);
    let b_dmg_before = store.query(b, "//edit:dmg").unwrap();

    // Edit only `a`.
    store
        .edit(
            a,
            EditOp::InsertElement {
                hierarchy: "edit".into(),
                tag: "dmg".into(),
                attrs: vec![],
                start: 0,
                end: 5,
            },
        )
        .unwrap();

    let before = store.stats();
    store.query_all("//ling:w").unwrap();
    let after = store.stats();
    assert_eq!(after.index_builds - before.index_builds, 1, "only `a` rebuilds");
    assert_eq!(after.index_hits - before.index_hits, 1, "`b` stays cached");

    // The edit is visible through the store, and only in `a`.
    let dmg = store.query(a, "//edit:dmg").unwrap();
    assert!(!dmg.is_empty());
    assert_eq!(store.query(b, "//edit:dmg").unwrap(), b_dmg_before);
    store.with_doc(a, |g| check_invariants(g).unwrap()).unwrap();
}

#[test]
fn prevalidation_gates_store_edits() {
    let store = Store::new();
    let mut g = manuscript(120, 5);
    dtds::attach_standard(&mut g);
    let id = store.insert(g);

    // Declared tag over a sane range: accepted.
    let ok = store.edit(
        id,
        EditOp::InsertElement {
            hierarchy: "edit".into(),
            tag: "dmg".into(),
            attrs: vec![("agent".into(), "water".into())],
            start: 0,
            end: 4,
        },
    );
    assert!(ok.is_ok(), "{:?}", ok.err());

    // Undeclared tag: rejected with a reason, document untouched.
    let epoch = store.epoch(id).unwrap();
    let err = store
        .edit(
            id,
            EditOp::InsertElement {
                hierarchy: "ling".into(),
                tag: "frobnicate".into(),
                attrs: vec![],
                start: 0,
                end: 4,
            },
        )
        .unwrap_err();
    assert!(matches!(err, StoreError::EditRejected(_)), "{err}");
    assert_eq!(store.epoch(id).unwrap(), epoch);
    let s = store.stats();
    assert_eq!(s.edits, 1);
    assert_eq!(s.edits_rejected, 1);
}

/// Readers hammer the store while a writer keeps editing one document.
/// Every read must see a consistent document (invariants hold, queries
/// succeed), and after the dust settles the cache serves the final state.
#[test]
fn concurrent_readers_during_edits_stay_consistent() {
    let store = Store::new();
    let edited = store.insert(manuscript(150, 21));
    let stable = store.insert(manuscript(150, 22));
    let done = AtomicBool::new(false);

    std::thread::scope(|s| {
        // Writer: interleave gated insertions and text edits.
        s.spawn(|| {
            for i in 0..40usize {
                let start = (i * 7) % 100;
                let op = if i % 2 == 0 {
                    EditOp::InsertElement {
                        hierarchy: "edit".into(),
                        tag: "dmg".into(),
                        attrs: vec![("id".into(), format!("d{i}"))],
                        start,
                        end: start + 3,
                    }
                } else {
                    EditOp::SetAttr {
                        node: goddag::NodeId(0),
                        name: "rev".into(),
                        value: i.to_string(),
                    }
                };
                // Crossing insertions may legitimately be refused; what must
                // never happen is a poisoned lock or a torn document.
                let _ = store.edit(edited, op);
            }
            done.store(true, Ordering::Release);
        });

        // Readers: single-doc queries, batch queries, stats.
        for _ in 0..3 {
            s.spawn(|| {
                let mut reads = 0usize;
                while !done.load(Ordering::Acquire) {
                    let ns = store.query(edited, "//edit:dmg/overlapping::ling:w").unwrap();
                    let all = store.query_all("//ling:w").unwrap();
                    assert_eq!(all.len(), 2);
                    let _ = ns;
                    let _ = store.stats();
                    reads += 1;
                }
                assert!(reads > 0, "reader never got a turn");
            });
        }
    });

    // Post-conditions: documents are intact and the cache converges.
    for id in [edited, stable] {
        store.with_doc(id, |g| check_invariants(g).unwrap()).unwrap();
    }
    let r1 = store.query_all("//edit:dmg").unwrap();
    let builds_then = store.stats().index_builds;
    let r2 = store.query_all("//edit:dmg").unwrap();
    assert_eq!(r1, r2);
    assert_eq!(store.stats().index_builds, builds_then, "quiesced store serves from cache");
    assert!(!r1[0].1.is_empty(), "some damage markup landed");
}

#[test]
fn removed_documents_drop_out_of_batch_queries() {
    let store = Store::new();
    let keep = store.insert(manuscript(100, 31));
    let drop_ = store.insert(manuscript(100, 32));
    assert_eq!(store.query_all("//ling:w").unwrap().len(), 2);
    assert!(store.remove(drop_));
    let after = store.query_all("//ling:w").unwrap();
    assert_eq!(after.len(), 1);
    assert_eq!(after[0].0, keep);
}
