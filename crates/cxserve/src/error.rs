//! Service-tier errors: what crosses the wire (typed), and what the
//! client adds around it (transport, protocol, retry-resolution).

use std::fmt;

/// Shorthand result type.
pub type Result<T> = std::result::Result<T, ServeError>;

/// A typed error frame — everything a server can tell a client about
/// *why* a request failed, structured enough for the client to react
/// without parsing prose.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The store refused the operation (gate rejection, unknown document
    /// or name, …) — the detail is the store error's display form.
    Store(String),
    /// A compare-and-set edit guard did not match: the document's epoch
    /// is `current`, not what the client expected. A client retrying a
    /// possibly-applied edit reads `current == guard + 1` as "my edit
    /// landed the first time".
    Stale {
        /// The document's current edit epoch.
        current: u64,
    },
    /// The owning shard is marked down; nothing was attempted.
    ShardDown(usize),
    /// A shard missed its fan-out budget.
    Timeout {
        /// Which shard.
        shard: usize,
        /// The budget it missed, in milliseconds.
        ms: u64,
    },
    /// A shard failed a fan-out for a non-store reason (injected outage,
    /// worker failure).
    Unavailable {
        /// Which shard.
        shard: usize,
        /// What happened.
        detail: String,
    },
    /// A shard-scoped server was asked about a document another shard
    /// owns — the router client refreshes its routing view and retries
    /// against `owner`.
    WrongShard {
        /// The shard that owns the document now.
        owner: usize,
    },
    /// The server's per-request deadline elapsed before the operation
    /// completed (the work may or may not have been done — deadline
    /// semantics, not rollback semantics).
    Deadline {
        /// The deadline that was missed, in milliseconds.
        ms: u64,
    },
    /// A `serve.request` failpoint fired. Protocol contract: the fault
    /// fires *before* the request is decoded or executed, so an
    /// `injected` refusal — like `busy` — guarantees nothing happened
    /// and is always safe to retry, writes included.
    Injected(String),
    /// The request frame did not parse (bad version, unknown verb,
    /// malformed tokens, corrupt blob).
    BadRequest(String),
    /// The server's connection backlog is full; try again later or
    /// against another host.
    Busy,
    /// Something server-side that is none of the above (including a
    /// caught handler panic).
    Server(String),
}

impl WireError {
    /// The stable machine-readable kind tag — the same token the wire
    /// encoding leads with, and the `kind` label of the server's
    /// `cx_server_errors_total{kind=...}` counters.
    pub fn kind(&self) -> &'static str {
        match self {
            WireError::Store(_) => "store",
            WireError::Stale { .. } => "stale",
            WireError::ShardDown(_) => "shard_down",
            WireError::Timeout { .. } => "timeout",
            WireError::Unavailable { .. } => "unavailable",
            WireError::WrongShard { .. } => "wrong_shard",
            WireError::Deadline { .. } => "deadline",
            WireError::Injected(_) => "injected",
            WireError::BadRequest(_) => "bad_request",
            WireError::Busy => "busy",
            WireError::Server(_) => "server",
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Store(d) => write!(f, "store error: {d}"),
            WireError::Stale { current } => {
                write!(f, "stale edit guard: document is at epoch {current}")
            }
            WireError::ShardDown(s) => write!(f, "shard {s} is marked down"),
            WireError::Timeout { shard, ms } => {
                write!(f, "shard {shard} did not answer within {ms} ms")
            }
            WireError::Unavailable { shard, detail } => {
                write!(f, "shard {shard} unavailable: {detail}")
            }
            WireError::WrongShard { owner } => {
                write!(f, "document is owned by shard {owner}")
            }
            WireError::Deadline { ms } => write!(f, "request exceeded the {ms} ms deadline"),
            WireError::Injected(d) => write!(f, "injected fault: {d}"),
            WireError::BadRequest(d) => write!(f, "bad request: {d}"),
            WireError::Busy => write!(f, "server busy: connection backlog full"),
            WireError::Server(d) => write!(f, "server error: {d}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Anything the client side can fail with: a typed remote error, a
/// transport failure, a framing/protocol violation, or an ambiguity the
/// retry machinery refuses to paper over.
#[derive(Debug)]
pub enum ServeError {
    /// The server answered with a typed error frame.
    Remote(WireError),
    /// The connection failed (dial, send, receive). The request may or
    /// may not have reached the server — only idempotent requests are
    /// retried blindly; edits go through the CAS guard.
    Io(std::io::Error),
    /// The peer broke the wire protocol (unparseable frame); the
    /// connection is abandoned.
    Protocol(String),
    /// Batch recovery found a document whose epoch moved in a way the
    /// guard chain cannot explain — another writer touched it, so the
    /// client cannot tell whether its own edit applied. Surfaced rather
    /// than guessed at.
    Conflict {
        /// The contested document.
        doc: cxstore::DocId,
        /// What the guard chain expected vs. observed.
        detail: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Remote(e) => write!(f, "{e}"),
            ServeError::Io(e) => write!(f, "transport error: {e}"),
            ServeError::Protocol(d) => write!(f, "protocol violation: {d}"),
            ServeError::Conflict { doc, detail } => {
                write!(f, "edit conflict on {doc:?}: {detail}")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Remote(e) => Some(e),
            ServeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for ServeError {
    fn from(e: WireError) -> ServeError {
        ServeError::Remote(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> ServeError {
        ServeError::Io(e)
    }
}

impl ServeError {
    /// The typed remote error, if that is what this is.
    pub fn wire(&self) -> Option<&WireError> {
        match self {
            ServeError::Remote(e) => Some(e),
            _ => None,
        }
    }

    /// True for transport failures where the request's fate is unknown.
    pub fn is_transport(&self) -> bool {
        matches!(self, ServeError::Io(_))
    }
}
