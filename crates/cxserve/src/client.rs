//! Client library: a pooled, reconnecting [`Client`] for one endpoint,
//! and a shard-aware [`RouterClient`] that routes per-document traffic
//! straight to the owning shard's server.
//!
//! ## Retry discipline
//!
//! A transport failure leaves a request's fate unknown — the frame may
//! have died in flight, or the response may have. The client therefore
//! splits the API three ways:
//!
//! * **idempotent reads** (queries, exports, epochs, metrics) are
//!   retried blindly on a fresh connection;
//! * **unguarded writes** (`insert`, `edit`, `remove`) are *never*
//!   retried — the caller gets the transport error and decides;
//! * **guarded edits** ([`Client::edit_guarded`],
//!   [`Client::edit_batch`]) are retried *safely*: every edit carries a
//!   compare-and-set epoch guard, so after a reconnect the client probes
//!   the document's epoch — `guard` means "never applied, resend",
//!   `guard + 1` means "applied exactly once, don't resend", anything
//!   else means another writer intervened and the client surfaces
//!   [`ServeError::Conflict`] instead of guessing.
//!
//! ## Pipelining
//!
//! Servers answer each connection's requests strictly in order, so
//! [`Client::edit_batch`] keeps a window of guarded edits in flight on
//! one connection and matches responses positionally. Edits to the
//! *same* document are serialized (at most one in flight) so each
//! guard is exact and recovery after a dead connection stays
//! unambiguous; edits to distinct documents overlap freely.

use crate::error::{Result, ServeError, WireError};
use crate::proto::{Request, Response, TraceQuery, TraceSummaryWire};
use cxpersist::DocBlob;
use cxstore::{DocId, EditOp, EditOutcome};
use goddag::Goddag;
use goddag::NodeId;
use std::collections::{HashMap, HashSet, VecDeque};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError, RwLock};
use std::time::Duration;

/// Per-document hits from a fan-out query.
pub type DocHits = Vec<(DocId, Vec<NodeId>)>;

/// Hits plus per-shard typed errors from a partial fan-out query.
pub type PartialHits = (DocHits, Vec<(usize, WireError)>);

/// Tuning for a [`Client`].
#[derive(Debug, Clone)]
pub struct ClientOptions {
    /// Idle connections kept pooled (excess are dropped on return).
    pub pool: usize,
    /// Blind retry attempts for idempotent requests after a transport
    /// failure (each on a fresh connection).
    pub retries: u32,
    /// Max guarded edits in flight per connection in
    /// [`Client::edit_batch`].
    pub window: usize,
    /// Dial timeout.
    pub connect_timeout: Duration,
}

impl Default for ClientOptions {
    fn default() -> ClientOptions {
        ClientOptions { pool: 2, retries: 2, window: 32, connect_timeout: Duration::from_secs(2) }
    }
}

/// One live connection. Dropping it closes the socket.
struct Conn {
    stream: TcpStream,
}

impl Conn {
    fn dial(addr: SocketAddr, opts: &ClientOptions) -> std::io::Result<Conn> {
        let stream = TcpStream::connect_timeout(&addr, opts.connect_timeout)?;
        stream.set_nodelay(true)?;
        // cxwire's reads ride out this timeout while a frame makes
        // progress; total silence fails after FRAME_STALL_LIMIT.
        stream.set_read_timeout(Some(Duration::from_millis(250)))?;
        Ok(Conn { stream })
    }

    fn send(&mut self, req: &Request) -> std::io::Result<()> {
        // If a trace is active on this thread, its context rides the
        // frame as the optional `tc` token — the server adopts it and
        // the whole request becomes one tree across both processes.
        cxwire::write_frame(&mut self.stream, &req.encode_traced(cxtrace::current()))
    }

    fn recv(&mut self) -> Result<Response> {
        let payload = cxwire::read_frame(&mut self.stream)?;
        Response::decode(&payload).map_err(|e| ServeError::Protocol(e.to_string()))
    }

    fn call(&mut self, req: &Request) -> Result<Response> {
        self.send(req)?;
        self.recv()
    }
}

/// A pooled client for one server endpoint.
pub struct Client {
    addr: SocketAddr,
    opts: ClientOptions,
    idle: Mutex<Vec<Conn>>,
}

impl Client {
    /// Resolve `addr` and build a client (lazy — no connection is dialed
    /// until the first request).
    pub fn connect(addr: impl ToSocketAddrs, options: ClientOptions) -> std::io::Result<Client> {
        let addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidInput, "address resolved to nothing")
        })?;
        Ok(Client { addr, opts: options, idle: Mutex::new(Vec::new()) })
    }

    /// The endpoint this client talks to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    fn take_conn(&self) -> std::io::Result<Conn> {
        // Poison recovery (also `put_back`): the pool holds whole
        // connections pushed/popped one at a time, so a panicked holder
        // leaves a valid (possibly shorter) free list.
        let pooled = self.idle.lock().unwrap_or_else(PoisonError::into_inner).pop();
        match pooled {
            Some(c) => Ok(c),
            None => Conn::dial(self.addr, &self.opts),
        }
    }

    fn put_back(&self, conn: Conn) {
        let mut idle = self.idle.lock().unwrap_or_else(PoisonError::into_inner);
        if idle.len() < self.opts.pool {
            idle.push(conn);
        }
    }

    /// One attempt: pooled (or fresh) connection, one round trip. A
    /// transport failure drops the connection — a pooled socket whose
    /// server restarted fails here once, and the retry dials fresh.
    fn call(&self, req: &Request) -> Result<Response> {
        let trace = cxtrace::span_or_root("client.call");
        trace.attr("verb", req.verb());
        let mut conn = match self.take_conn() {
            Ok(c) => c,
            Err(e) => {
                trace.err(e.to_string());
                return Err(e.into());
            }
        };
        match conn.call(req) {
            Ok(resp) => {
                self.put_back(conn);
                if let Response::Err(e) = &resp {
                    trace.err(e.to_string());
                }
                Ok(resp)
            }
            Err(e) => {
                trace.err(e.to_string());
                Err(e)
            }
        }
    }

    /// Blind-retry wrapper for idempotent requests: transport failures
    /// and transient refusals get fresh-connection retries.
    fn call_idem(&self, req: &Request) -> Result<Response> {
        let mut attempt = 0;
        loop {
            match self.call(req) {
                Err(e) if attempt < self.opts.retries && e.is_transport() => {
                    attempt += 1;
                    std::thread::sleep(Duration::from_millis(20 << attempt.min(5)));
                }
                // Transient refusals ride *successful* frames: a full
                // backlog or an injected request fault, both of which
                // guarantee the request was not executed.
                Ok(Response::Err(ref e))
                    if attempt < self.opts.retries
                        && matches!(e, WireError::Busy | WireError::Injected(_)) =>
                {
                    attempt += 1;
                    std::thread::sleep(Duration::from_millis(20 << attempt.min(5)));
                }
                other => return other,
            }
        }
    }

    // -- typed operations ---------------------------------------------

    /// Liveness probe.
    pub fn ping(&self) -> Result<()> {
        match self.call_idem(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected("pong", &other)),
        }
    }

    /// Insert a document. Not retried: an insert replayed blindly would
    /// mint two documents.
    pub fn insert(&self, g: &Goddag) -> Result<DocId> {
        self.insert_req(Request::Insert { name: None, blob: DocBlob::capture(g) })
    }

    /// Insert under a cluster-wide name.
    pub fn insert_named(&self, name: impl Into<String>, g: &Goddag) -> Result<DocId> {
        self.insert_req(Request::Insert { name: Some(name.into()), blob: DocBlob::capture(g) })
    }

    fn insert_req(&self, req: Request) -> Result<DocId> {
        match self.call(&req)? {
            Response::Id(id) => Ok(id),
            Response::Err(e) => Err(e.into()),
            other => Err(unexpected("id", &other)),
        }
    }

    /// One unguarded gated edit. Not retried (a replay would apply
    /// twice); use [`Client::edit_guarded`] for safe retries.
    pub fn edit(&self, doc: DocId, op: EditOp) -> Result<EditOutcome> {
        match self.call(&Request::Edit { doc, guard: None, op })? {
            Response::Edited { node, epoch } => Ok(EditOutcome { node, epoch }),
            Response::Err(e) => Err(e.into()),
            other => Err(unexpected("edited", &other)),
        }
    }

    /// One compare-and-set edit with exactly-once retry semantics: the
    /// op applies only while the document sits at epoch `expected`, and
    /// after a transport failure the client probes the epoch to learn
    /// whether its edit landed before resending. A recovered-as-applied
    /// outcome has `node: None` (the created node id, if any, was lost
    /// with the connection).
    pub fn edit_guarded(&self, doc: DocId, expected: u64, op: EditOp) -> Result<EditOutcome> {
        let trace = cxtrace::span_or_root("client.edit_guarded");
        trace.attr("doc", doc.raw());
        trace.attr("guard", expected);
        let r = self.edit_guarded_inner(doc, expected, op);
        if let Err(e) = &r {
            trace.err(e.to_string());
        }
        r
    }

    fn edit_guarded_inner(&self, doc: DocId, expected: u64, op: EditOp) -> Result<EditOutcome> {
        let req = Request::Edit { doc, guard: Some(expected), op };
        let mut resent = false;
        let mut attempt = 0;
        loop {
            match self.call(&req) {
                Ok(Response::Edited { node, epoch }) => return Ok(EditOutcome { node, epoch }),
                // Transient refusals guarantee the request did not
                // execute — same guard, straight resend, no probe.
                Ok(Response::Err(ref e2))
                    if attempt < self.opts.retries
                        && matches!(e2, WireError::Busy | WireError::Injected(_)) =>
                {
                    attempt += 1;
                    std::thread::sleep(Duration::from_millis(10 << attempt.min(5)));
                }
                // A stale refusal on a *resend* is the CAS guard doing
                // its job: the original request applied after all (it
                // was still in flight when we probed).
                Ok(Response::Err(WireError::Stale { current }))
                    if resent && current == expected + 1 =>
                {
                    return Ok(EditOutcome { node: None, epoch: current })
                }
                // A deadline refusal has transport-grade ambiguity (the
                // work may have happened; only the answer was refused),
                // so it takes the same probe-based recovery below.
                Ok(Response::Err(WireError::Deadline { .. })) if attempt < self.opts.retries => {
                    attempt += 1;
                    match self.epoch(doc)? {
                        current if current == expected => resent = true,
                        current if current == expected + 1 => {
                            return Ok(EditOutcome { node: None, epoch: current })
                        }
                        current => {
                            return Err(ServeError::Conflict {
                                doc,
                                detail: format!(
                                    "guard {expected} but epoch moved to {current}; \
                                     another writer intervened"
                                ),
                            })
                        }
                    }
                }
                Ok(Response::Err(e)) => return Err(e.into()),
                Ok(other) => return Err(unexpected("edited", &other)),
                Err(e) if e.is_transport() && attempt < self.opts.retries => {
                    attempt += 1;
                    match self.epoch(doc)? {
                        current if current == expected => {
                            resent = true; // never applied: same guard, resend
                        }
                        current if current == expected + 1 => {
                            return Ok(EditOutcome { node: None, epoch: current })
                        }
                        current => {
                            return Err(ServeError::Conflict {
                                doc,
                                detail: format!(
                                    "guard {expected} but epoch moved to {current}; \
                                     another writer intervened"
                                ),
                            })
                        }
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Pipelined guarded edits: up to [`ClientOptions::window`] edits in
    /// flight on one connection, per-document serialization, and the
    /// same probe-based recovery as [`Client::edit_guarded`] when the
    /// connection dies mid-stream (reconnect, resolve every in-flight
    /// edit's fate, resume).
    ///
    /// Per-op results land positionally; a typed refusal of one edit
    /// (gate rejection, conflict) does not abort the rest. The outer
    /// `Err` is reserved for unrecoverable transport failure.
    pub fn edit_batch(
        &self,
        edits: &[(DocId, EditOp)],
    ) -> Result<Vec<std::result::Result<EditOutcome, ServeError>>> {
        let trace = cxtrace::span_or_root("client.edit_batch");
        trace.attr("edits", edits.len());
        let mut results: Vec<Option<std::result::Result<EditOutcome, ServeError>>> = Vec::new();
        results.resize_with(edits.len(), || None);

        // Current known epoch per document — the guard source. One probe
        // per distinct document up front.
        let mut expected: HashMap<DocId, u64> = HashMap::new();
        for (doc, _) in edits {
            if let std::collections::hash_map::Entry::Vacant(v) = expected.entry(*doc) {
                v.insert(self.epoch(*doc)?);
            }
        }

        struct Pending {
            idx: usize,
            doc: DocId,
            guard: u64,
        }

        // `ready` holds indices eligible to send; `waiting` parks edits
        // whose document already has one in flight.
        let mut ready: VecDeque<usize> = (0..edits.len()).collect();
        let mut waiting: HashMap<DocId, VecDeque<usize>> = HashMap::new();
        let mut inflight: VecDeque<Pending> = VecDeque::new();
        let mut busy_docs: HashSet<DocId> = HashSet::new();
        let mut conn = self.take_conn()?;
        let mut reconnects = 0u32;

        // On completion of an edit for `doc`, promote its next waiter.
        fn finish_doc(
            doc: DocId,
            busy: &mut HashSet<DocId>,
            waiting: &mut HashMap<DocId, VecDeque<usize>>,
            ready: &mut VecDeque<usize>,
        ) {
            busy.remove(&doc);
            if let Some(q) = waiting.get_mut(&doc) {
                if let Some(idx) = q.pop_front() {
                    ready.push_front(idx);
                }
                if q.is_empty() {
                    waiting.remove(&doc);
                }
            }
        }

        'pump: loop {
            // Fill the window with eligible edits.
            while inflight.len() < self.opts.window.max(1) {
                let Some(idx) = ready.pop_front() else { break };
                let (doc, ref op) = edits[idx];
                if busy_docs.contains(&doc) {
                    waiting.entry(doc).or_default().push_back(idx);
                    continue;
                }
                let guard = expected[&doc];
                let req = Request::Edit { doc, guard: Some(guard), op: op.clone() };
                if let Err(e) = conn.send(&req) {
                    // Send failed: nothing new went out; fall through to
                    // recovery with this edit back in the ready queue.
                    ready.push_front(idx);
                    recover(
                        self,
                        &mut conn,
                        &mut inflight,
                        &mut expected,
                        &mut results,
                        &mut busy_docs,
                        &mut waiting,
                        &mut ready,
                        &mut reconnects,
                        e.into(),
                    )?;
                    continue 'pump;
                }
                busy_docs.insert(doc);
                inflight.push_back(Pending { idx, doc, guard });
            }
            if inflight.is_empty() {
                if ready.is_empty() && waiting.is_empty() {
                    break;
                }
                // Nothing in flight but work remains (can only be
                // stranded waiters): requeue and refill.
                for (_, q) in waiting.drain() {
                    ready.extend(q);
                }
                continue;
            }

            // Responses arrive strictly in request order.
            match conn.recv() {
                Ok(resp) => {
                    // invariant: the server answers strictly in request
                    // order, so a response implies a non-empty queue.
                    let p = inflight.pop_front().expect("response with nothing in flight");
                    finish_doc(p.doc, &mut busy_docs, &mut waiting, &mut ready);
                    match resp {
                        Response::Edited { node, epoch } => {
                            expected.insert(p.doc, epoch);
                            results[p.idx] = Some(Ok(EditOutcome { node, epoch }));
                        }
                        Response::Err(WireError::Stale { current }) => {
                            // No transport fault happened, so this is an
                            // external writer — resync and surface it.
                            expected.insert(p.doc, current);
                            results[p.idx] = Some(Err(ServeError::Conflict {
                                doc: p.doc,
                                detail: format!(
                                    "guard {} but epoch moved to {current}; \
                                     another writer intervened",
                                    p.guard
                                ),
                            }));
                        }
                        Response::Err(e) => {
                            // Typed refusal (gate rejection, …): the op
                            // did not apply, the guard is still right.
                            results[p.idx] = Some(Err(e.into()));
                        }
                        other => {
                            return Err(unexpected("edited", &other));
                        }
                    }
                }
                Err(ServeError::Io(e)) => {
                    recover(
                        self,
                        &mut conn,
                        &mut inflight,
                        &mut expected,
                        &mut results,
                        &mut busy_docs,
                        &mut waiting,
                        &mut ready,
                        &mut reconnects,
                        e.into(),
                    )?;
                }
                Err(e) => return Err(e),
            }
        }

        self.put_back(conn);
        // invariant: the loop above exits only when `remaining == 0`, and
        // every decrement writes that edit's slot first.
        return Ok(results.into_iter().map(|r| r.expect("every edit resolved")).collect());

        /// The connection died with `inflight` edits unresolved. Probe
        /// each one's fate in order, then hand back a fresh connection.
        #[allow(clippy::too_many_arguments)]
        fn recover(
            client: &Client,
            conn: &mut Conn,
            inflight: &mut VecDeque<Pending>,
            expected: &mut HashMap<DocId, u64>,
            results: &mut [Option<std::result::Result<EditOutcome, ServeError>>],
            busy_docs: &mut HashSet<DocId>,
            waiting: &mut HashMap<DocId, VecDeque<usize>>,
            ready: &mut VecDeque<usize>,
            reconnects: &mut u32,
            cause: ServeError,
        ) -> Result<()> {
            if *reconnects >= client.opts.retries.max(1) * 4 {
                return Err(cause);
            }
            *reconnects += 1;
            // Resolve newest-first so resends re-enter `ready` in
            // original order via push_front.
            while let Some(p) = inflight.pop_back() {
                busy_docs.remove(&p.doc);
                if let Some(q) = waiting.remove(&p.doc) {
                    for idx in q.into_iter().rev() {
                        ready.push_front(idx);
                    }
                }
                // `epoch` blind-retries internally; if even that cannot
                // get through, the batch fails as a whole.
                let current = client.epoch(p.doc)?;
                if current == p.guard {
                    ready.push_front(p.idx); // never applied: resend
                } else if current == p.guard + 1 {
                    expected.insert(p.doc, current);
                    results[p.idx] = Some(Ok(EditOutcome { node: None, epoch: current }));
                } else {
                    expected.insert(p.doc, current);
                    results[p.idx] = Some(Err(ServeError::Conflict {
                        doc: p.doc,
                        detail: format!(
                            "guard {} but epoch moved to {current} across a reconnect",
                            p.guard
                        ),
                    }));
                }
            }
            *conn = client.take_conn()?;
            Ok(())
        }
    }

    /// Evaluate an expression against one document. Idempotent, retried.
    pub fn query(&self, doc: DocId, expr: &str) -> Result<Vec<NodeId>> {
        match self.call_idem(&Request::Query { doc, expr: expr.into() })? {
            Response::Nodes(nodes) => Ok(nodes),
            Response::Err(e) => Err(e.into()),
            other => Err(unexpected("nodes", &other)),
        }
    }

    /// Fan-out query over every document (all-or-nothing). Idempotent,
    /// retried.
    pub fn query_all(&self, expr: &str) -> Result<Vec<(DocId, Vec<NodeId>)>> {
        match self.call_idem(&Request::QueryAll { expr: expr.into() })? {
            Response::Hits(hits) => Ok(hits),
            Response::Err(e) => Err(e.into()),
            other => Err(unexpected("hits", &other)),
        }
    }

    /// Fan-out query tolerating sick shards: hits from whoever answered
    /// within `per_shard_timeout`, typed errors for the rest.
    pub fn query_all_partial(
        &self,
        expr: &str,
        per_shard_timeout: Duration,
    ) -> Result<PartialHits> {
        let req = Request::QueryPartial {
            timeout_ms: per_shard_timeout.as_millis() as u64,
            expr: expr.into(),
        };
        match self.call_idem(&req)? {
            Response::Partial { hits, errors } => Ok((hits, errors)),
            Response::Err(e) => Err(e.into()),
            other => Err(unexpected("partial", &other)),
        }
    }

    /// Editor tag suggestions for a span.
    pub fn suggest_tags(
        &self,
        doc: DocId,
        hierarchy: &str,
        start: usize,
        end: usize,
    ) -> Result<Vec<String>> {
        let req = Request::Suggest { doc, hierarchy: hierarchy.into(), start, end };
        match self.call_idem(&req)? {
            Response::Tags(tags) => Ok(tags),
            Response::Err(e) => Err(e.into()),
            other => Err(unexpected("tags", &other)),
        }
    }

    /// The document's stand-off export.
    pub fn export(&self, doc: DocId) -> Result<String> {
        match self.call_idem(&Request::Export { doc })? {
            Response::Text(text) => Ok(text),
            Response::Err(e) => Err(e.into()),
            other => Err(unexpected("text", &other)),
        }
    }

    /// Resolve a cluster-wide document name.
    pub fn id_by_name(&self, name: &str) -> Result<DocId> {
        match self.call_idem(&Request::IdByName { name: name.into() })? {
            Response::Id(id) => Ok(id),
            Response::Err(e) => Err(e.into()),
            other => Err(unexpected("id", &other)),
        }
    }

    /// A document's current edit epoch (the CAS guard source).
    pub fn epoch(&self, doc: DocId) -> Result<u64> {
        match self.call_idem(&Request::Epoch { doc })? {
            Response::Epoch(e) => Ok(e),
            Response::Err(e) => Err(e.into()),
            other => Err(unexpected("epoch", &other)),
        }
    }

    /// Drop a document. Not blind-retried (the `bool` would lie on a
    /// replay).
    pub fn remove(&self, doc: DocId) -> Result<bool> {
        match self.call(&Request::Remove { doc })? {
            Response::Removed(b) => Ok(b),
            Response::Err(e) => Err(e.into()),
            other => Err(unexpected("removed", &other)),
        }
    }

    /// The server's full metrics exposition page.
    pub fn metrics(&self) -> Result<String> {
        match self.call_idem(&Request::Metrics)? {
            Response::Text(text) => Ok(text),
            Response::Err(e) => Err(e.into()),
            other => Err(unexpected("text", &other)),
        }
    }

    /// The routing view: shard count plus the override table.
    pub fn routes(&self) -> Result<(usize, Vec<(u64, usize)>)> {
        match self.call_idem(&Request::Routes)? {
            Response::Routes { shards, overrides } => Ok((shards, overrides)),
            Response::Err(e) => Err(e.into()),
            other => Err(unexpected("routes", &other)),
        }
    }

    /// Summaries of the server's most recently completed traces,
    /// newest first (the flight recorder's normal ring).
    pub fn traces_recent(&self, limit: usize) -> Result<Vec<TraceSummaryWire>> {
        self.traces_req(Request::Trace(TraceQuery::Recent { limit }))
    }

    /// Summaries of the server's retained slow-or-error traces, newest
    /// first — the ring normal churn can never evict.
    pub fn traces_slow(&self, limit: usize) -> Result<Vec<TraceSummaryWire>> {
        self.traces_req(Request::Trace(TraceQuery::Slow { limit }))
    }

    fn traces_req(&self, req: Request) -> Result<Vec<TraceSummaryWire>> {
        match self.call_idem(&req)? {
            Response::Traces(traces) => Ok(traces),
            Response::Err(e) => Err(e.into()),
            other => Err(unexpected("traces", &other)),
        }
    }

    /// One retained trace, rendered server-side as an indented span tree
    /// with per-span self-times (see `cxtrace::render_tree`).
    pub fn trace_tree(&self, trace_id: u64) -> Result<String> {
        match self.call_idem(&Request::Trace(TraceQuery::Get { trace_id }))? {
            Response::Text(text) => Ok(text),
            Response::Err(e) => Err(e.into()),
            other => Err(unexpected("text", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &Response) -> ServeError {
    ServeError::Protocol(format!("expected {wanted} response, got {got:?}"))
}

// ---------------------------------------------------------------------
// Router mode
// ---------------------------------------------------------------------

/// A stateless shard-aware client over one [`Client`] per shard host.
///
/// Routing is computed **client-side** from the same residue-class rule
/// the cluster uses (`raw % shards`, overridden by the relocation
/// table), so per-document operations go straight to the owning shard's
/// server — no proxy hop. The override table is fetched once at connect
/// and repaired lazily: a server answering `wrong_shard { owner }`
/// teaches the router the correct owner, and the request is retried
/// there immediately.
pub struct RouterClient {
    clients: Vec<Client>,
    shards: usize,
    overrides: RwLock<HashMap<u64, usize>>,
    rr: AtomicUsize,
}

impl RouterClient {
    /// Connect to one server per shard, `addrs[i]` serving shard `i`,
    /// and fetch the initial routing view (from the first shard that
    /// answers). Fails if the cluster's shard count disagrees with the
    /// address list.
    pub fn connect(addrs: &[SocketAddr], options: ClientOptions) -> Result<RouterClient> {
        let clients = addrs
            .iter()
            .map(|a| Client::connect(a, options.clone()))
            .collect::<std::io::Result<Vec<_>>>()?;
        let router = RouterClient {
            shards: clients.len(),
            clients,
            overrides: RwLock::new(HashMap::new()),
            rr: AtomicUsize::new(0),
        };
        router.refresh_routes()?;
        Ok(router)
    }

    /// Number of shard endpoints.
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// Re-fetch the routing view from any shard that answers.
    pub fn refresh_routes(&self) -> Result<()> {
        // Poison recovery (all three `overrides` acquisitions below): the
        // map is only ever replaced whole or updated by single
        // insert/remove, so a recovered guard sees a coherent routing
        // view — at worst stale, which the protocol already retries on.
        let mut last = None;
        for c in &self.clients {
            match c.routes() {
                Ok((shards, overrides)) => {
                    if shards != self.shards {
                        return Err(ServeError::Protocol(format!(
                            "cluster has {shards} shards but the router was \
                             given {} endpoints",
                            self.shards
                        )));
                    }
                    *self.overrides.write().unwrap_or_else(PoisonError::into_inner) =
                        overrides.into_iter().collect();
                    return Ok(());
                }
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| ServeError::Protocol("no shard endpoints".into())))
    }

    /// The shard this router believes owns `doc`.
    pub fn shard_of(&self, doc: DocId) -> usize {
        let overrides = self.overrides.read().unwrap_or_else(PoisonError::into_inner);
        match overrides.get(&doc.raw()) {
            Some(&s) => s,
            None => (doc.raw() % self.shards as u64) as usize,
        }
    }

    fn learn(&self, doc: DocId, owner: usize) {
        let home = (doc.raw() % self.shards as u64) as usize;
        // Poison recovery: single insert/remove per holder (see
        // `refresh_routes`) — a recovered guard sees a coherent view.
        let mut overrides = self.overrides.write().unwrap_or_else(PoisonError::into_inner);
        if owner == home {
            overrides.remove(&doc.raw());
        } else {
            overrides.insert(doc.raw(), owner);
        }
    }

    /// Run a per-document operation against the believed owner; on a
    /// `wrong_shard` refusal, learn the real owner and retry there once.
    fn on_owner<T>(&self, doc: DocId, f: impl Fn(&Client) -> Result<T>) -> Result<T> {
        let trace = cxtrace::span_or_root("router.request");
        trace.attr("doc", doc.raw());
        let shard = self.shard_of(doc).min(self.shards - 1);
        trace.attr("shard", shard);
        match f(&self.clients[shard]) {
            Err(ServeError::Remote(WireError::WrongShard { owner })) if owner < self.shards => {
                self.learn(doc, owner);
                trace.attr("shard", owner);
                f(&self.clients[owner])
            }
            r => r,
        }
    }

    fn next_rr(&self) -> usize {
        self.rr.fetch_add(1, Ordering::Relaxed) % self.shards
    }

    /// Insert round-robin across shards (each shard-scoped server mints
    /// ids in its own residue class, so the new document needs no
    /// override entry).
    pub fn insert(&self, g: &Goddag) -> Result<DocId> {
        self.clients[self.next_rr()].insert(g)
    }

    /// Insert under a cluster-wide name, round-robin.
    pub fn insert_named(&self, name: impl Into<String>, g: &Goddag) -> Result<DocId> {
        self.clients[self.next_rr()].insert_named(name, g)
    }

    /// Guarded edit on the owning shard.
    pub fn edit_guarded(&self, doc: DocId, expected: u64, op: EditOp) -> Result<EditOutcome> {
        self.on_owner(doc, |c| c.edit_guarded(doc, expected, op.clone()))
    }

    /// Unguarded edit on the owning shard (not retried).
    pub fn edit(&self, doc: DocId, op: EditOp) -> Result<EditOutcome> {
        self.on_owner(doc, |c| c.edit(doc, op.clone()))
    }

    /// Per-document query on the owning shard.
    pub fn query(&self, doc: DocId, expr: &str) -> Result<Vec<NodeId>> {
        self.on_owner(doc, |c| c.query(doc, expr))
    }

    /// Stand-off export from the owning shard.
    pub fn export(&self, doc: DocId) -> Result<String> {
        self.on_owner(doc, |c| c.export(doc))
    }

    /// Edit epoch from the owning shard.
    pub fn epoch(&self, doc: DocId) -> Result<u64> {
        self.on_owner(doc, |c| c.epoch(doc))
    }

    /// Tag suggestions from the owning shard.
    pub fn suggest_tags(
        &self,
        doc: DocId,
        hierarchy: &str,
        start: usize,
        end: usize,
    ) -> Result<Vec<String>> {
        self.on_owner(doc, |c| c.suggest_tags(doc, hierarchy, start, end))
    }

    /// Resolve a name (the directory is cluster-wide; any shard knows).
    pub fn id_by_name(&self, name: &str) -> Result<DocId> {
        self.clients[self.next_rr()].id_by_name(name)
    }

    /// Fan-out query across every shard endpoint concurrently,
    /// all-or-nothing, merged id-sorted (each shard-scoped server
    /// answers for its own documents only).
    pub fn query_all(&self, expr: &str) -> Result<Vec<(DocId, Vec<NodeId>)>> {
        let trace = cxtrace::span_or_root("router.query_all");
        let parent = cxtrace::current();
        let mut shards: Vec<Result<DocHits>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .clients
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    // Child contexts are minted here, on the calling
                    // thread, so per-shard worker spans parent onto this
                    // fan-out deterministically.
                    let ctx = parent.map(|p| p.child());
                    scope.spawn(move || {
                        let g = cxtrace::adopt("router.shard_query", ctx);
                        g.attr("shard", i);
                        let r = c.query_all(expr);
                        if let Err(e) = &r {
                            g.err(e.to_string());
                        }
                        r
                    })
                })
                .collect();
            // invariant: shard query threads return errors instead of
            // panicking; a panic is a bug worth propagating.
            handles.into_iter().map(|h| h.join().expect("query thread")).collect()
        });
        drop(trace);
        let mut hits = Vec::new();
        for shard in shards.drain(..) {
            hits.extend(shard?);
        }
        hits.sort_by_key(|(id, _)| *id);
        Ok(hits)
    }

    /// Fan-out query tolerating sick shards: per-shard transport
    /// failures become typed `unavailable` entries instead of sinking
    /// the whole query.
    pub fn query_all_partial(
        &self,
        expr: &str,
        per_shard_timeout: Duration,
    ) -> Result<PartialHits> {
        let trace = cxtrace::span_or_root("router.query_all_partial");
        let parent = cxtrace::current();
        let per_shard: Vec<Result<PartialHits>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .clients
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    let ctx = parent.map(|p| p.child());
                    scope.spawn(move || {
                        let g = cxtrace::adopt("router.shard_query", ctx);
                        g.attr("shard", i);
                        let r = c.query_all_partial(expr, per_shard_timeout);
                        if let Err(e) = &r {
                            g.err(e.to_string());
                        }
                        r
                    })
                })
                .collect();
            // invariant: shard query threads return errors instead of
            // panicking; a panic is a bug worth propagating.
            handles.into_iter().map(|h| h.join().expect("query thread")).collect()
        });
        drop(trace);
        let mut hits = Vec::new();
        let mut errors = Vec::new();
        for (shard, r) in per_shard.into_iter().enumerate() {
            match r {
                Ok((h, e)) => {
                    hits.extend(h);
                    errors.extend(e);
                }
                Err(ServeError::Remote(w)) => errors.push((shard, w)),
                Err(e) => {
                    errors.push((shard, WireError::Unavailable { shard, detail: e.to_string() }))
                }
            }
        }
        hits.sort_by_key(|(id, _)| *id);
        Ok((hits, errors))
    }

    /// Metrics page from one shard endpoint.
    pub fn metrics(&self, shard: usize) -> Result<String> {
        self.clients[shard].metrics()
    }

    /// Direct access to one shard's client.
    pub fn shard_client(&self, shard: usize) -> &Client {
        &self.clients[shard]
    }
}
