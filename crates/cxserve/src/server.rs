//! [`ClusterServer`]: a [`cxcluster::Cluster`] served over std TCP.
//!
//! Topology: one nonblocking accept thread feeds a **bounded queue** of
//! connections to a **fixed pool** of handler threads — the server's
//! concurrency is `handlers`, its patience is `backlog`, and a client
//! that arrives when both are full gets a typed `busy` frame instead of
//! an unbounded queue. Each handler owns one connection at a time and
//! answers its requests strictly in order (which is the contract that
//! makes client-side pipelining work).
//!
//! Failure containment, per request:
//! * the [`SERVE_REQUEST_SITE`] failpoint fires first — chaos tests
//!   inject errors, delays, and panics here without touching the store;
//! * a handler panic is caught and answered as a typed `server` error —
//!   the connection (and the server) outlive it;
//! * a malformed frame is answered with `bad_request`; an *oversized*
//!   declared length additionally closes the connection (framing can no
//!   longer be trusted) — but never allocates;
//! * every request runs under a **deadline**: fan-out queries get the
//!   remaining budget as their per-shard timeout, and any response that
//!   would arrive after the deadline is replaced with a typed `deadline`
//!   error (deadline semantics: the work may have happened; the client
//!   just won't wait for the answer).
//!
//! Everything observable lands on the cluster's existing [`cxobs`]
//! registry as `cx_server_*` metrics and `serve.*` events, so the
//! `METRICS` verb serves one page for the whole stack, store to socket.

use crate::error::WireError;
use crate::proto::{Request, Response, TraceQuery};
use cxcluster::{Cluster, ClusterError, ShardId};
use cxobs::{Counter, Exposition, Gauge, Histogram, Observable, Registry};
use cxpersist::PersistError;
use cxstore::DocId;
use std::io::{ErrorKind, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Failpoint crossed at the top of every request, before decoding — arm
/// it to make the server error ([`cxfault::Fault::Io`]), stall
/// ([`cxfault::Fault::Delay`], which the deadline then converts into a
/// typed `deadline` frame), or panic ([`cxfault::Fault::Panic`], which
/// the handler catches and answers as a `server` error) on a schedule.
pub const SERVE_REQUEST_SITE: &str = "serve.request";

/// Tuning for a [`ClusterServer`].
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Handler threads — the number of connections served concurrently.
    pub handlers: usize,
    /// Accepted connections that may wait for a free handler before new
    /// arrivals are refused with a typed `busy` frame.
    pub backlog: usize,
    /// Per-request deadline (also the fan-out budget for `qall`/`qpart`).
    pub deadline: Duration,
}

impl Default for ServerOptions {
    fn default() -> ServerOptions {
        ServerOptions { handlers: 4, backlog: 16, deadline: Duration::from_secs(5) }
    }
}

/// A serving endpoint over a shared [`Cluster`].
pub struct ClusterServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    obs: Arc<Registry>,
}

/// What one server instance serves: the whole cluster, or one shard of
/// it (the "shards served individually" deployment the router client
/// targets).
struct Service {
    cluster: Arc<Cluster>,
    /// `None`: the store-shaped façade (routes internally). `Some(s)`:
    /// only shard `s` — per-document requests for documents another
    /// shard owns are refused with `wrong_shard`, and fan-out verbs
    /// cover just this shard's documents.
    scope: Option<ShardId>,
    scope_label: String,
    deadline: Duration,
    requests: Arc<Counter>,
    panics: Arc<Counter>,
    busy: Arc<Counter>,
    connections: Arc<Gauge>,
    obs: Arc<Registry>,
}

impl Service {
    /// Per-verb request latency: `cx_server_request_ns{server=…,verb=…}`.
    /// The registry interns by full label set, so repeated lookups for
    /// the same verb return the same histogram — one per verb actually
    /// served, not one per possible verb.
    fn request_ns(&self, verb: &'static str) -> Arc<Histogram> {
        self.obs.histogram_with(
            "cx_server_request_ns",
            &[("server", &self.scope_label), ("verb", verb)],
        )
    }

    /// Per-kind error counter: `cx_server_errors_total{kind=…,server=…}`
    /// — the kind tags come from [`WireError::kind`], so the label set is
    /// closed and stable.
    fn count_error(&self, kind: &'static str) {
        self.obs
            .counter_with(
                "cx_server_errors_total",
                &[("kind", kind), ("server", &self.scope_label)],
            )
            .bump();
    }
}

impl ClusterServer {
    /// Bind and serve the whole cluster (e.g. on `"127.0.0.1:0"`; read
    /// the actual address back with [`ClusterServer::addr`]).
    pub fn bind(
        cluster: Arc<Cluster>,
        addr: impl ToSocketAddrs,
        options: ServerOptions,
    ) -> std::io::Result<ClusterServer> {
        ClusterServer::start(cluster, None, addr, options)
    }

    /// Bind a server scoped to one shard — one of these per shard host,
    /// with a [`crate::RouterClient`] routing per-document traffic to
    /// the right one.
    pub fn bind_shard(
        cluster: Arc<Cluster>,
        shard: ShardId,
        addr: impl ToSocketAddrs,
        options: ServerOptions,
    ) -> std::io::Result<ClusterServer> {
        ClusterServer::start(cluster, Some(shard), addr, options)
    }

    fn start(
        cluster: Arc<Cluster>,
        scope: Option<ShardId>,
        addr: impl ToSocketAddrs,
        options: ServerOptions,
    ) -> std::io::Result<ClusterServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let obs = Arc::clone(cluster.registry());
        let scope_label = match scope {
            None => "cluster".to_string(),
            Some(s) => format!("shard-{}", s.0),
        };
        let labels: &[(&str, &str)] = &[("server", &scope_label)];
        let svc = Arc::new(Service {
            deadline: options.deadline,
            requests: obs.counter_with("cx_server_requests_total", labels),
            panics: obs.counter_with("cx_server_panics_total", labels),
            busy: obs.counter_with("cx_server_busy_total", labels),
            connections: obs.gauge_with("cx_server_connections", labels),
            obs: Arc::clone(&obs),
            cluster,
            scope,
            scope_label,
        });
        svc.obs.event("serve.start", format!("{} listening on {addr}", svc.scope_label));

        let stop = Arc::new(AtomicBool::new(false));
        let (tx, rx) = mpsc::sync_channel::<TcpStream>(options.backlog.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..options.handlers.max(1))
            .map(|_| {
                let svc = Arc::clone(&svc);
                let rx = Arc::clone(&rx);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || worker(&svc, &rx, &stop))
            })
            .collect();
        let accept_thread = {
            let svc = Arc::clone(&svc);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || accept_loop(&listener, &svc, tx, &stop))
        };
        Ok(ClusterServer { addr, stop, accept_thread: Some(accept_thread), workers, obs })
    }

    /// The bound address (clients connect here).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, finish in-flight requests, join every handler.
    /// Also runs on drop — a dropped server leaks no threads.
    pub fn shutdown(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        if self.stop.swap(true, Ordering::Relaxed) {
            return;
        }
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.obs.event("serve.stop", format!("{} stopped", self.addr));
    }
}

impl Drop for ClusterServer {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

fn accept_loop(
    listener: &TcpListener,
    svc: &Service,
    tx: SyncSender<TcpStream>,
    stop: &AtomicBool,
) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // The listener is nonblocking for the stop poll; handlers
                // want plain blocking reads under a read timeout.
                let _ = stream.set_nonblocking(false);
                if let Err(TrySendError::Full(stream)) = tx.try_send(stream) {
                    // Pool and backlog both full: refuse loudly. The
                    // write is best-effort — a peer that already hung up
                    // changes nothing.
                    svc.busy.bump();
                    svc.obs.event("serve.busy", "connection refused: backlog full");
                    let mut stream = stream;
                    let _ =
                        cxwire::write_frame(&mut stream, &Response::Err(WireError::Busy).encode());
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
    }
    // `tx` drops here; drained workers see the channel close and exit.
}

fn worker(svc: &Service, rx: &Mutex<Receiver<TcpStream>>, stop: &AtomicBool) {
    loop {
        // Hold the lock only around the dequeue; a 100 ms tick keeps the
        // stop flag observed even when no connections arrive. Poison
        // recovery: the guard protects only `recv_timeout` on the channel,
        // whose state lives in the channel itself — a panicked holder
        // leaves nothing half-updated behind the mutex.
        let next = {
            let guard = rx.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            guard.recv_timeout(Duration::from_millis(100))
        };
        match next {
            Ok(stream) => {
                let _live = svc.connections.track();
                let _ = serve_connection(svc, stream, stop);
            }
            Err(RecvTimeoutError::Timeout) => {
                if stop.load(Ordering::Relaxed) {
                    return;
                }
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

fn serve_connection(
    svc: &Service,
    mut stream: TcpStream,
    stop: &AtomicBool,
) -> std::io::Result<()> {
    stream.set_nodelay(true)?;
    // Short read timeout so an idle connection re-checks the stop flag;
    // once a frame starts, cxwire's stall-bounded reads take over.
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
    let mut header = [0u8; 4];
    loop {
        match stream.read(&mut header[..1]) {
            Ok(0) => return Ok(()), // client hung up
            Ok(_) => {}
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if stop.load(Ordering::Relaxed) {
                    return Ok(());
                }
                continue;
            }
            Err(e) => return Err(e),
        }
        cxwire::read_full(&mut stream, &mut header[1..])?;
        let len = u32::from_be_bytes(header);
        let payload = match cxwire::read_payload(&mut stream, len) {
            Ok(p) => p,
            Err(e) if e.kind() == ErrorKind::InvalidData => {
                // Hostile declared length: refused before any allocation.
                // Answer typed, then drop the connection — the stream
                // position can no longer be trusted.
                svc.count_error("bad_request");
                let resp = Response::Err(WireError::BadRequest(e.to_string()));
                let _ = cxwire::write_frame(&mut stream, &resp.encode());
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        // Errors are counted (per kind) inside `respond`.
        let resp = respond(svc, &payload);
        cxwire::write_frame(&mut stream, &resp.encode())?;
        if stop.load(Ordering::Relaxed) {
            return Ok(());
        }
    }
}

/// One request, fully contained: metered, traced, fault-injected,
/// panic-caught, deadline-checked.
fn respond(svc: &Service, payload: &[u8]) -> Response {
    svc.requests.bump();
    // Adopt the caller's trace context (the optional `tc` token on the
    // request frame) into a `serve.request` span — the server side of
    // the one tree a traced wire request produces. The scan is
    // decode-free, so adoption happens even for frames the injected
    // fault will refuse before decoding.
    let trace = match Request::trace_context(payload) {
        Some(ctx) => cxtrace::start("serve.request", ctx.child()),
        None => cxtrace::span_or_root("serve.request"),
    };
    let started = Instant::now();
    let (verb, resp) = match catch_unwind(AssertUnwindSafe(|| handle(svc, payload, started))) {
        Ok(out) => out,
        Err(_) => {
            // The panic payload already went to stderr via the panic
            // hook; what matters here is that the handler thread, the
            // connection, and the server all survive it.
            svc.panics.bump();
            svc.obs.event("serve.panic", "request handler panicked; answered as server error");
            ("panic", Response::Err(WireError::Server("request handler panicked".into())))
        }
    };
    trace.attr("verb", verb);
    if let Response::Err(e) = &resp {
        trace.err(e.to_string());
        svc.count_error(e.kind());
    }
    // The histogram exemplar remembers which trace last landed in each
    // latency bucket — the bridge from "the p99 moved" to "this trace".
    svc.request_ns(verb)
        .record_ns_tagged(started.elapsed().as_nanos() as u64, cxtrace::current_trace_id());
    resp
}

fn handle(svc: &Service, payload: &[u8], started: Instant) -> (&'static str, Response) {
    // The chaos seam: `Io` becomes a typed `injected` frame, `Delay`
    // stalls right here (and may then trip the deadline below), `Panic`
    // unwinds into `respond`'s catch. It fires before decoding, so the
    // verb is contractually unknown on this path.
    if cxfault::fire(SERVE_REQUEST_SITE).is_some() {
        let e = WireError::Injected(cxfault::io_error(SERVE_REQUEST_SITE).to_string());
        return ("unknown", Response::Err(e));
    }
    let req = match Request::decode(payload) {
        Ok(r) => r,
        Err(e) => return ("unknown", Response::Err(e)),
    };
    let verb = req.verb();
    let resp = dispatch(svc, req, started);
    if started.elapsed() > svc.deadline && !matches!(resp, Response::Err(_)) {
        let ms = svc.deadline.as_millis() as u64;
        svc.obs.event("serve.deadline", format!("request exceeded the {ms} ms deadline"));
        return (verb, Response::Err(WireError::Deadline { ms }));
    }
    (verb, resp)
}

/// Map a cluster failure onto the wire, keeping everything the client
/// can act on structurally typed.
fn wire_err(e: ClusterError) -> WireError {
    match e {
        ClusterError::Store(s) => WireError::Store(s.to_string()),
        ClusterError::Persist(PersistError::StaleEdit { current, .. }) => {
            WireError::Stale { current }
        }
        ClusterError::Persist(p) => WireError::Store(p.to_string()),
        ClusterError::ShardDown(s) => WireError::ShardDown(s),
        ClusterError::Timeout { shard, ms } => WireError::Timeout { shard, ms },
        ClusterError::ShardUnavailable { shard, detail } => {
            WireError::Unavailable { shard, detail }
        }
        e @ (ClusterError::NoSuchShard(_) | ClusterError::Config(_)) => {
            WireError::Server(e.to_string())
        }
    }
}

/// Per-document requests against a shard-scoped server must name a
/// document that shard owns; the typed refusal carries the real owner so
/// the router client can fix its table and retry without a round trip to
/// a directory service.
fn check_scope(svc: &Service, doc: DocId) -> Result<(), WireError> {
    if let Some(scope) = svc.scope {
        let owner = svc.cluster.shard_of(doc);
        if owner != scope {
            return Err(WireError::WrongShard { owner: owner.0 });
        }
    }
    Ok(())
}

fn dispatch(svc: &Service, req: Request, started: Instant) -> Response {
    let c = &svc.cluster;
    let budget = |started: Instant| svc.deadline.saturating_sub(started.elapsed());
    let r = (|| -> Result<Response, WireError> {
        Ok(match req {
            Request::Ping => Response::Pong,
            Request::Insert { name, blob } => {
                let g = blob.restore().map_err(|e| WireError::BadRequest(e.to_string()))?;
                let id = match svc.scope {
                    None => match name {
                        None => c.insert(g),
                        Some(n) => c.insert_named(n, g),
                    },
                    Some(s) => c.insert_on(s, name, g),
                }
                .map_err(wire_err)?;
                Response::Id(id)
            }
            Request::Edit { doc, guard, op } => {
                check_scope(svc, doc)?;
                let out = match guard {
                    None => c.edit(doc, op),
                    Some(expected) => c.edit_guarded(doc, expected, op),
                }
                .map_err(wire_err)?;
                Response::Edited { node: out.node, epoch: out.epoch }
            }
            Request::Query { doc, expr } => {
                check_scope(svc, doc)?;
                Response::Nodes(c.query(doc, &expr).map_err(wire_err)?)
            }
            Request::QueryAll { expr } => match svc.scope {
                // Scoped: just this shard's documents, on this thread.
                Some(s) => Response::Hits(
                    c.shards()[s.0]
                        .store()
                        .query_all(&expr)
                        .map_err(|e| WireError::Store(e.to_string()))?,
                ),
                // Unscoped: all-or-nothing, but under the deadline — a
                // wedged shard becomes a typed timeout, never a hang.
                None => {
                    let partial = c.query_all_partial(&expr, budget(started));
                    match partial.errors.into_iter().next() {
                        None => Response::Hits(partial.hits),
                        Some(e) => return Err(wire_err(e.error)),
                    }
                }
            },
            Request::QueryPartial { timeout_ms, expr } => match svc.scope {
                Some(s) => {
                    // One shard: a partial of one. Store errors become a
                    // typed per-shard entry, mirroring the cluster path.
                    match c.shards()[s.0].store().query_all(&expr) {
                        Ok(hits) => Response::Partial { hits, errors: Vec::new() },
                        Err(e) => Response::Partial {
                            hits: Vec::new(),
                            errors: vec![(s.0, WireError::Store(e.to_string()))],
                        },
                    }
                }
                None => {
                    let per_shard = Duration::from_millis(timeout_ms).min(budget(started));
                    let partial = c.query_all_partial(&expr, per_shard);
                    Response::Partial {
                        hits: partial.hits,
                        errors: partial
                            .errors
                            .into_iter()
                            .map(|e| (e.shard, wire_err(e.error)))
                            .collect(),
                    }
                }
            },
            Request::Suggest { doc, hierarchy, start, end } => {
                check_scope(svc, doc)?;
                Response::Tags(c.suggest_tags(doc, &hierarchy, start, end).map_err(wire_err)?)
            }
            Request::Export { doc } => {
                check_scope(svc, doc)?;
                Response::Text(c.with_doc(doc, sacx::export_standoff).map_err(wire_err)?)
            }
            Request::IdByName { name } => Response::Id(c.id_by_name(&name).map_err(wire_err)?),
            Request::Epoch { doc } => {
                check_scope(svc, doc)?;
                Response::Epoch(c.epoch(doc).map_err(wire_err)?)
            }
            Request::Remove { doc } => {
                check_scope(svc, doc)?;
                Response::Removed(c.remove(doc).map_err(wire_err)?)
            }
            Request::Metrics => {
                let mut exp = Exposition::new();
                c.expose_into(&mut exp);
                Response::Text(exp.finish())
            }
            Request::Routes => Response::Routes {
                shards: c.shard_count(),
                overrides: c.router().overrides().into_iter().map(|(raw, s)| (raw, s.0)).collect(),
            },
            Request::Trace(q) => match q {
                TraceQuery::Recent { limit } => Response::Traces(
                    cxtrace::recent().into_iter().take(limit).map(Into::into).collect(),
                ),
                TraceQuery::Slow { limit } => Response::Traces(
                    cxtrace::slow().into_iter().take(limit).map(Into::into).collect(),
                ),
                TraceQuery::Get { trace_id } => match cxtrace::find(trace_id) {
                    Some(t) => Response::Text(cxtrace::render_tree(&t)),
                    None => return Err(WireError::Store(format!("no such trace {trace_id:016x}"))),
                },
            },
        })
    })();
    match r {
        Ok(resp) => resp,
        Err(e) => Response::Err(e),
    }
}
