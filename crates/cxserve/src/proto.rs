//! The versioned wire protocol: store operations as text payloads inside
//! length-prefixed [`cxwire`] frames.
//!
//! One request per frame, one response per frame, answered in order per
//! connection (which is what makes client-side pipelining work: write
//! *k* requests, read *k* responses). The payload is a line of
//! space-separated tokens — strings percent-escaped exactly like the WAL
//! codec's ([`sacx::escape_token`], empty spelled `%`) — optionally
//! followed by a newline and a raw text body (document blobs, stand-off
//! exports, metrics pages), so bulky artifacts ride unescaped:
//!
//! ```text
//! request  := "cxq1 " verb tokens… ["\n" body]
//! response := ("ok " tokens… ["\n" body]) | ("err " kind tokens…)
//! ```
//!
//! The leading `cxq1` is the protocol version: a server refuses anything
//! else with a typed `bad_request`, so a v2 client talking to a v1 server
//! fails loudly at the first exchange instead of misparsing.
//!
//! Error frames are **typed** — `shard_down`, `timeout`, `stale`,
//! `wrong_shard`, … — so a client can react structurally (refresh its
//! routing table, treat a CAS replay as already-applied) instead of
//! grepping a message.
//!
//! **Trace propagation.** Any request line may end with an optional
//! `tc <trace_id>-<span_id>` token pair ([`Request::encode_traced`]):
//! the client's current [`cxtrace::TraceContext`] riding the frame so
//! the server's handler span joins the caller's trace. The extension is
//! version-negotiated for free by `cxq1`'s grammar — every verb parser
//! ignores trailing tokens, so an old server drops the pair silently
//! and an old client simply never sends one; the wire bytes without
//! tracing enabled are identical to the pre-trace protocol.

use crate::error::WireError;
use cxpersist::DocBlob;
use cxstore::{DocId, EditOp};
use goddag::NodeId;
use std::fmt::Write as _;

/// Version sentinel opening every request line.
pub const VERSION: &str = "cxq1";

/// One decoded client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe (the pool uses it to vet a revived connection).
    Ping,
    /// Add a document (the blob rides as the body), optionally named.
    Insert {
        /// Cluster-wide name to bind, if any.
        name: Option<String>,
        /// The serialized document.
        blob: DocBlob,
    },
    /// One gated edit. `guard` is an optional compare-and-set epoch: the
    /// server applies the op only when the document's current epoch
    /// equals it, refusing with [`WireError::Stale`] otherwise — which is
    /// what makes a blind retry after a dead connection safe (a replayed
    /// edit that already applied comes back `Stale { current: guard+1 }`
    /// instead of applying twice).
    Edit {
        /// Target document.
        doc: DocId,
        /// Expected pre-op epoch, if the client wants CAS semantics.
        guard: Option<u64>,
        /// The operation.
        op: EditOp,
    },
    /// Evaluate a node-set expression against one document.
    Query {
        /// Target document.
        doc: DocId,
        /// expath expression.
        expr: String,
    },
    /// Fan-out query over every document (all-or-nothing; the server
    /// runs it under its request deadline and fails typed on a sick or
    /// slow shard).
    QueryAll {
        /// expath expression.
        expr: String,
    },
    /// Fan-out query that tolerates sick shards: hits from whoever
    /// answered inside `timeout_ms`, typed per-shard errors for the rest.
    QueryPartial {
        /// Per-shard budget in milliseconds (clamped by the server's own
        /// deadline).
        timeout_ms: u64,
        /// expath expression.
        expr: String,
    },
    /// Editor tag suggestions for a span.
    Suggest {
        /// Target document.
        doc: DocId,
        /// Hierarchy name.
        hierarchy: String,
        /// Content range start.
        start: usize,
        /// Content range end (exclusive).
        end: usize,
    },
    /// The document's stand-off export.
    Export {
        /// Target document.
        doc: DocId,
    },
    /// Resolve a cluster-wide name.
    IdByName {
        /// The name.
        name: String,
    },
    /// A document's current edit epoch.
    Epoch {
        /// Target document.
        doc: DocId,
    },
    /// Drop a document (and its name bindings).
    Remove {
        /// Target document.
        doc: DocId,
    },
    /// The server's full `cxobs` exposition page.
    Metrics,
    /// The routing view: shard count plus the override table, so a
    /// stateless router client can compute `shard_of` locally.
    Routes,
    /// Flight-recorder access: recent/slow trace summaries, or one
    /// trace rendered as a tree.
    Trace(TraceQuery),
}

/// What a `trace` request asks the flight recorder for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceQuery {
    /// The newest ordinary completed traces (summaries, newest first).
    Recent {
        /// Maximum summaries to return.
        limit: usize,
    },
    /// The retained slow/error traces (summaries, newest first).
    Slow {
        /// Maximum summaries to return.
        limit: usize,
    },
    /// One trace by id, rendered as an indented tree with per-span
    /// self-time.
    Get {
        /// The trace to fetch.
        trace_id: u64,
    },
}

/// One trace summary as it crosses the wire (the `&'static str` root
/// name of [`cxtrace::TraceSummary`] becomes owned text here).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSummaryWire {
    /// The id to fetch the full tree with.
    pub trace_id: u64,
    /// The root span's name.
    pub root: String,
    /// Earliest span start, ns since the serving process's trace epoch.
    pub start_ns: u64,
    /// Whole-trace wall time, ns.
    pub duration_ns: u64,
    /// Recorded span count.
    pub spans: usize,
    /// Classified slow by the serving process.
    pub slow: bool,
    /// Holds an error-annotated span.
    pub error: bool,
}

impl From<cxtrace::TraceSummary> for TraceSummaryWire {
    fn from(s: cxtrace::TraceSummary) -> TraceSummaryWire {
        TraceSummaryWire {
            trace_id: s.trace_id,
            root: s.root.to_string(),
            start_ns: s.start_ns,
            duration_ns: s.duration_ns,
            spans: s.spans,
            slow: s.slow,
            error: s.error,
        }
    }
}

/// One decoded server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// `Ping` answered.
    Pong,
    /// A document handle (`Insert`, `IdByName`).
    Id(DocId),
    /// An applied edit: the created node (if any) and the post-op epoch.
    Edited {
        /// Node created by `InsertElement`.
        node: Option<NodeId>,
        /// The document's epoch after the edit.
        epoch: u64,
    },
    /// Per-document query hits.
    Nodes(Vec<NodeId>),
    /// Fan-out hits, id-sorted.
    Hits(Vec<(DocId, Vec<NodeId>)>),
    /// Partial fan-out: hits plus typed per-shard failures.
    Partial {
        /// Hits from the shards that answered.
        hits: Vec<(DocId, Vec<NodeId>)>,
        /// `(shard, why)` for every shard that did not.
        errors: Vec<(usize, WireError)>,
    },
    /// Tag suggestions.
    Tags(Vec<String>),
    /// A text artifact (stand-off export, metrics page).
    Text(String),
    /// An epoch.
    Epoch(u64),
    /// Whether `Remove` found a live document.
    Removed(bool),
    /// The routing view.
    Routes {
        /// Number of shards (the residue-class modulus).
        shards: usize,
        /// `(raw id, owning shard)` for every moved document.
        overrides: Vec<(u64, usize)>,
    },
    /// Flight-recorder summaries (`trace recent` / `trace slow`).
    Traces(Vec<TraceSummaryWire>),
    /// A typed failure.
    Err(WireError),
}

// ---------------------------------------------------------------------
// Tokens
// ---------------------------------------------------------------------

/// Percent-escape into a space-free token; `""` spelled `%` (same
/// convention as the WAL codec — positional tokens cannot be empty).
fn enc(s: &str) -> String {
    if s.is_empty() {
        return "%".into();
    }
    sacx::escape_token(s)
}

fn dec(tok: &str) -> Result<String, WireError> {
    if tok == "%" {
        return Ok(String::new());
    }
    sacx::unescape_token(tok).map_err(WireError::BadRequest)
}

fn bad(detail: impl Into<String>) -> WireError {
    WireError::BadRequest(detail.into())
}

/// One numeric token, or a typed parse failure naming what was expected.
fn num<T: std::str::FromStr>(tok: Option<&str>, what: &str) -> Result<T, WireError> {
    tok.and_then(|s| s.parse().ok()).ok_or_else(|| bad(format!("expected {what}")))
}

fn tok<'a>(it: &mut impl Iterator<Item = &'a str>, what: &str) -> Result<&'a str, WireError> {
    it.next().ok_or_else(|| bad(format!("expected {what}")))
}

/// Split a payload into its token line and optional raw body.
fn split_body(payload: &str) -> (&str, Option<&str>) {
    match payload.split_once('\n') {
        Some((line, body)) => (line, Some(body)),
        None => (payload, None),
    }
}

// ---------------------------------------------------------------------
// EditOp
// ---------------------------------------------------------------------

fn encode_op(out: &mut String, op: &EditOp) {
    match op {
        EditOp::InsertElement { hierarchy, tag, attrs, start, end } => {
            let _ =
                write!(out, "insel {} {} {start} {end} {}", enc(hierarchy), enc(tag), attrs.len());
            for (k, v) in attrs {
                let _ = write!(out, " {} {}", enc(k), enc(v));
            }
        }
        EditOp::RemoveElement(node) => {
            let _ = write!(out, "rmel {}", node.0);
        }
        EditOp::InsertText { offset, text } => {
            let _ = write!(out, "instext {offset} {}", enc(text));
        }
        EditOp::DeleteText { start, end } => {
            let _ = write!(out, "deltext {start} {end}");
        }
        EditOp::SetAttr { node, name, value } => {
            let _ = write!(out, "setattr {} {} {}", node.0, enc(name), enc(value));
        }
        EditOp::RemoveAttr { node, name } => {
            let _ = write!(out, "rmattr {} {}", node.0, enc(name));
        }
    }
}

fn decode_op<'a>(it: &mut impl Iterator<Item = &'a str>) -> Result<EditOp, WireError> {
    Ok(match tok(it, "edit op kind")? {
        "insel" => {
            let hierarchy = dec(tok(it, "hierarchy")?)?;
            let tag = dec(tok(it, "tag")?)?;
            let start = num(it.next(), "start")?;
            let end = num(it.next(), "end")?;
            let n: usize = num(it.next(), "attr count")?;
            let mut attrs = Vec::with_capacity(n.min(64));
            for _ in 0..n {
                let k = dec(tok(it, "attr name")?)?;
                let v = dec(tok(it, "attr value")?)?;
                attrs.push((k, v));
            }
            EditOp::InsertElement { hierarchy, tag, attrs, start, end }
        }
        "rmel" => EditOp::RemoveElement(NodeId(num(it.next(), "node")?)),
        "instext" => {
            EditOp::InsertText { offset: num(it.next(), "offset")?, text: dec(tok(it, "text")?)? }
        }
        "deltext" => {
            EditOp::DeleteText { start: num(it.next(), "start")?, end: num(it.next(), "end")? }
        }
        "setattr" => EditOp::SetAttr {
            node: NodeId(num(it.next(), "node")?),
            name: dec(tok(it, "attr name")?)?,
            value: dec(tok(it, "attr value")?)?,
        },
        "rmattr" => EditOp::RemoveAttr {
            node: NodeId(num(it.next(), "node")?),
            name: dec(tok(it, "attr name")?)?,
        },
        other => return Err(bad(format!("unknown edit op `{other}`"))),
    })
}

// ---------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------

impl Request {
    /// Serialize to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = format!("{VERSION} ");
        match self {
            Request::Ping => out.push_str("ping"),
            Request::Insert { name, blob } => {
                match name {
                    Some(n) => {
                        let _ = write!(out, "insertn {}", enc(n));
                    }
                    None => out.push_str("insert"),
                }
                out.push('\n');
                out.push_str(&blob.to_text());
            }
            Request::Edit { doc, guard, op } => {
                let _ = write!(out, "edit {} ", doc.raw());
                match guard {
                    Some(g) => {
                        let _ = write!(out, "{g} ");
                    }
                    None => out.push_str("- "),
                }
                encode_op(&mut out, op);
            }
            Request::Query { doc, expr } => {
                let _ = write!(out, "query {} {}", doc.raw(), enc(expr));
            }
            Request::QueryAll { expr } => {
                let _ = write!(out, "qall {}", enc(expr));
            }
            Request::QueryPartial { timeout_ms, expr } => {
                let _ = write!(out, "qpart {timeout_ms} {}", enc(expr));
            }
            Request::Suggest { doc, hierarchy, start, end } => {
                let _ = write!(out, "suggest {} {} {start} {end}", doc.raw(), enc(hierarchy));
            }
            Request::Export { doc } => {
                let _ = write!(out, "export {}", doc.raw());
            }
            Request::IdByName { name } => {
                let _ = write!(out, "name {}", enc(name));
            }
            Request::Epoch { doc } => {
                let _ = write!(out, "epoch {}", doc.raw());
            }
            Request::Remove { doc } => {
                let _ = write!(out, "remove {}", doc.raw());
            }
            Request::Metrics => out.push_str("metrics"),
            Request::Routes => out.push_str("routes"),
            Request::Trace(q) => match q {
                TraceQuery::Recent { limit } => {
                    let _ = write!(out, "trace recent {limit}");
                }
                TraceQuery::Slow { limit } => {
                    let _ = write!(out, "trace slow {limit}");
                }
                TraceQuery::Get { trace_id } => {
                    let _ = write!(out, "trace get {trace_id:016x}");
                }
            },
        }
        out.into_bytes()
    }

    /// [`Request::encode`] with the caller's trace context riding the
    /// frame as a trailing `tc <trace>-<span>` token pair (spliced
    /// before the body separator, so body-carrying verbs work too).
    /// `None` encodes identically to [`Request::encode`].
    pub fn encode_traced(&self, ctx: Option<cxtrace::TraceContext>) -> Vec<u8> {
        let bytes = self.encode();
        let Some(ctx) = ctx else { return bytes };
        let tok = format!(" tc {}", ctx.token());
        match bytes.iter().position(|&b| b == b'\n') {
            Some(i) => {
                // invariant: encode() emits only ASCII verbs, hex and
                // percent-escaped text, so the bytes are always utf-8.
                let mut s = String::from_utf8(bytes).expect("encode produces utf-8");
                s.insert_str(i, &tok);
                s.into_bytes()
            }
            None => {
                let mut bytes = bytes;
                bytes.extend_from_slice(tok.as_bytes());
                bytes
            }
        }
    }

    /// The verb token this request travels as — the label of the
    /// per-verb server metrics.
    pub fn verb(&self) -> &'static str {
        match self {
            Request::Ping => "ping",
            Request::Insert { .. } => "insert",
            Request::Edit { .. } => "edit",
            Request::Query { .. } => "query",
            Request::QueryAll { .. } => "qall",
            Request::QueryPartial { .. } => "qpart",
            Request::Suggest { .. } => "suggest",
            Request::Export { .. } => "export",
            Request::IdByName { .. } => "name",
            Request::Epoch { .. } => "epoch",
            Request::Remove { .. } => "remove",
            Request::Metrics => "metrics",
            Request::Routes => "routes",
            Request::Trace(_) => "trace",
        }
    }

    /// Best-effort extraction of the `tc` token pair from a request
    /// payload — deliberately independent of [`Request::decode`], so a
    /// request that fails validation (or hits the injected-fault path
    /// before decoding) can still adopt its caller's trace. Scans the
    /// token line from the end; a verb argument that merely *looks*
    /// like `tc` never matches because the following token must parse
    /// as a well-formed context.
    pub fn trace_context(payload: &[u8]) -> Option<cxtrace::TraceContext> {
        let text = std::str::from_utf8(payload).ok()?;
        let (line, _) = split_body(text);
        let toks: Vec<&str> = line.split(' ').collect();
        toks.windows(2).rev().find_map(|w| {
            (w[0] == "tc").then(|| cxtrace::TraceContext::parse_token(w[1])).flatten()
        })
    }

    /// Parse a frame payload. Every failure is a typed
    /// [`WireError::BadRequest`] the server answers with — malformed
    /// input never panics a handler.
    pub fn decode(payload: &[u8]) -> Result<Request, WireError> {
        let text = std::str::from_utf8(payload).map_err(|_| bad("request is not utf-8"))?;
        let (line, body) = split_body(text);
        let mut it = line.split(' ');
        match it.next() {
            Some(v) if v == VERSION => {}
            Some(v) => return Err(bad(format!("unsupported protocol version `{v}`"))),
            None => return Err(bad("empty request")),
        }
        let doc_of = |t: &str| -> Result<DocId, WireError> {
            t.parse::<u64>().map(DocId::from_raw).map_err(|_| bad("expected document id"))
        };
        let req = match tok(&mut it, "verb")? {
            "ping" => Request::Ping,
            "insert" | "insertn" if body.is_none() => return Err(bad("insert carries no blob")),
            "insert" => Request::Insert {
                name: None,
                // invariant: the arm above rejects insert without a body.
                blob: DocBlob::parse_text(body.expect("checked above"))
                    .map_err(|e| bad(format!("blob: {e}")))?,
            },
            "insertn" => Request::Insert {
                name: Some(dec(tok(&mut it, "name")?)?),
                // invariant: the arm above rejects insertn without a body.
                blob: DocBlob::parse_text(body.expect("checked above"))
                    .map_err(|e| bad(format!("blob: {e}")))?,
            },
            "edit" => {
                let doc = doc_of(tok(&mut it, "doc")?)?;
                let guard = match tok(&mut it, "guard")? {
                    "-" => None,
                    g => Some(g.parse::<u64>().map_err(|_| bad("expected guard epoch"))?),
                };
                Request::Edit { doc, guard, op: decode_op(&mut it)? }
            }
            "query" => Request::Query {
                doc: doc_of(tok(&mut it, "doc")?)?,
                expr: dec(tok(&mut it, "expr")?)?,
            },
            "qall" => Request::QueryAll { expr: dec(tok(&mut it, "expr")?)? },
            "qpart" => Request::QueryPartial {
                timeout_ms: num(it.next(), "timeout")?,
                expr: dec(tok(&mut it, "expr")?)?,
            },
            "suggest" => Request::Suggest {
                doc: doc_of(tok(&mut it, "doc")?)?,
                hierarchy: dec(tok(&mut it, "hierarchy")?)?,
                start: num(it.next(), "start")?,
                end: num(it.next(), "end")?,
            },
            "export" => Request::Export { doc: doc_of(tok(&mut it, "doc")?)? },
            "name" => Request::IdByName { name: dec(tok(&mut it, "name")?)? },
            "epoch" => Request::Epoch { doc: doc_of(tok(&mut it, "doc")?)? },
            "remove" => Request::Remove { doc: doc_of(tok(&mut it, "doc")?)? },
            "metrics" => Request::Metrics,
            "routes" => Request::Routes,
            "trace" => Request::Trace(match tok(&mut it, "trace query")? {
                "recent" => TraceQuery::Recent { limit: num(it.next(), "limit")? },
                "slow" => TraceQuery::Slow { limit: num(it.next(), "limit")? },
                "get" => TraceQuery::Get {
                    trace_id: u64::from_str_radix(tok(&mut it, "trace id")?, 16)
                        .map_err(|_| bad("expected hex trace id"))?,
                },
                other => return Err(bad(format!("unknown trace query `{other}`"))),
            }),
            other => return Err(bad(format!("unknown verb `{other}`"))),
        };
        Ok(req)
    }
}

// ---------------------------------------------------------------------
// Errors on the wire
// ---------------------------------------------------------------------

impl WireError {
    fn encode_tokens(&self, out: &mut String) {
        match self {
            WireError::Store(d) => {
                let _ = write!(out, "store {}", enc(d));
            }
            WireError::Stale { current } => {
                let _ = write!(out, "stale {current}");
            }
            WireError::ShardDown(s) => {
                let _ = write!(out, "shard_down {s}");
            }
            WireError::Timeout { shard, ms } => {
                let _ = write!(out, "timeout {shard} {ms}");
            }
            WireError::Unavailable { shard, detail } => {
                let _ = write!(out, "unavailable {shard} {}", enc(detail));
            }
            WireError::WrongShard { owner } => {
                let _ = write!(out, "wrong_shard {owner}");
            }
            WireError::Deadline { ms } => {
                let _ = write!(out, "deadline {ms}");
            }
            WireError::Injected(d) => {
                let _ = write!(out, "injected {}", enc(d));
            }
            WireError::BadRequest(d) => {
                let _ = write!(out, "bad_request {}", enc(d));
            }
            WireError::Busy => out.push_str("busy"),
            WireError::Server(d) => {
                let _ = write!(out, "server {}", enc(d));
            }
        }
    }

    fn decode_tokens<'a>(it: &mut impl Iterator<Item = &'a str>) -> Result<WireError, WireError> {
        Ok(match tok(it, "error kind")? {
            "store" => WireError::Store(dec(tok(it, "detail")?)?),
            "stale" => WireError::Stale { current: num(it.next(), "epoch")? },
            "shard_down" => WireError::ShardDown(num(it.next(), "shard")?),
            "timeout" => {
                WireError::Timeout { shard: num(it.next(), "shard")?, ms: num(it.next(), "ms")? }
            }
            "unavailable" => WireError::Unavailable {
                shard: num(it.next(), "shard")?,
                detail: dec(tok(it, "detail")?)?,
            },
            "wrong_shard" => WireError::WrongShard { owner: num(it.next(), "shard")? },
            "deadline" => WireError::Deadline { ms: num(it.next(), "ms")? },
            "injected" => WireError::Injected(dec(tok(it, "detail")?)?),
            "bad_request" => WireError::BadRequest(dec(tok(it, "detail")?)?),
            "busy" => WireError::Busy,
            "server" => WireError::Server(dec(tok(it, "detail")?)?),
            other => return Err(bad(format!("unknown error kind `{other}`"))),
        })
    }
}

// ---------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------

fn encode_hit_line(out: &mut String, doc: DocId, nodes: &[NodeId]) {
    let _ = write!(out, "{} {}", doc.raw(), nodes.len());
    for n in nodes {
        let _ = write!(out, " {}", n.0);
    }
    out.push('\n');
}

fn decode_hit_line(line: &str) -> Result<(DocId, Vec<NodeId>), WireError> {
    let mut it = line.split(' ');
    let doc = DocId::from_raw(num(it.next(), "doc")?);
    let k: usize = num(it.next(), "node count")?;
    let mut nodes = Vec::with_capacity(k.min(1 << 16));
    for _ in 0..k {
        nodes.push(NodeId(num(it.next(), "node")?));
    }
    Ok((doc, nodes))
}

impl Response {
    /// Serialize to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = String::new();
        match self {
            Response::Pong => out.push_str("ok pong"),
            Response::Id(id) => {
                let _ = write!(out, "ok id {}", id.raw());
            }
            Response::Edited { node, epoch } => match node {
                Some(n) => {
                    let _ = write!(out, "ok edited {} {epoch}", n.0);
                }
                None => {
                    let _ = write!(out, "ok edited - {epoch}");
                }
            },
            Response::Nodes(nodes) => {
                let _ = write!(out, "ok nodes {}", nodes.len());
                for n in nodes {
                    let _ = write!(out, " {}", n.0);
                }
            }
            Response::Hits(hits) => {
                let _ = writeln!(out, "ok hits {}", hits.len());
                for (doc, nodes) in hits {
                    encode_hit_line(&mut out, *doc, nodes);
                }
            }
            Response::Partial { hits, errors } => {
                let _ = writeln!(out, "ok partial {} {}", hits.len(), errors.len());
                for (doc, nodes) in hits {
                    encode_hit_line(&mut out, *doc, nodes);
                }
                for (shard, err) in errors {
                    let _ = write!(out, "{shard} ");
                    err.encode_tokens(&mut out);
                    out.push('\n');
                }
            }
            Response::Tags(tags) => {
                let _ = write!(out, "ok tags {}", tags.len());
                for t in tags {
                    let _ = write!(out, " {}", enc(t));
                }
            }
            Response::Text(text) => {
                out.push_str("ok text\n");
                out.push_str(text);
            }
            Response::Epoch(e) => {
                let _ = write!(out, "ok epoch {e}");
            }
            Response::Removed(r) => {
                let _ = write!(out, "ok removed {}", u8::from(*r));
            }
            Response::Routes { shards, overrides } => {
                let _ = writeln!(out, "ok routes {shards} {}", overrides.len());
                for (raw, shard) in overrides {
                    let _ = writeln!(out, "{raw} {shard}");
                }
            }
            Response::Traces(list) => {
                let _ = writeln!(out, "ok traces {}", list.len());
                for t in list {
                    let _ = writeln!(
                        out,
                        "{:016x} {} {} {} {} {} {}",
                        t.trace_id,
                        enc(&t.root),
                        t.start_ns,
                        t.duration_ns,
                        t.spans,
                        u8::from(t.slow),
                        u8::from(t.error),
                    );
                }
            }
            Response::Err(e) => {
                out.push_str("err ");
                e.encode_tokens(&mut out);
            }
        }
        out.into_bytes()
    }

    /// Parse a frame payload. A malformed response is a protocol error
    /// (the connection is torn down — framing can no longer be trusted).
    pub fn decode(payload: &[u8]) -> Result<Response, WireError> {
        let text = std::str::from_utf8(payload).map_err(|_| bad("response is not utf-8"))?;
        let (line, body) = split_body(text);
        let mut it = line.split(' ');
        match tok(&mut it, "status")? {
            "err" => return Ok(Response::Err(WireError::decode_tokens(&mut it)?)),
            "ok" => {}
            other => return Err(bad(format!("unknown status `{other}`"))),
        }
        let mut body_lines = body.unwrap_or("").lines();
        let resp = match tok(&mut it, "response kind")? {
            "pong" => Response::Pong,
            "id" => Response::Id(DocId::from_raw(num(it.next(), "id")?)),
            "edited" => {
                let node = match tok(&mut it, "node")? {
                    "-" => None,
                    n => Some(NodeId(n.parse().map_err(|_| bad("expected node id"))?)),
                };
                Response::Edited { node, epoch: num(it.next(), "epoch")? }
            }
            "nodes" => {
                let k: usize = num(it.next(), "count")?;
                let mut nodes = Vec::with_capacity(k.min(1 << 16));
                for _ in 0..k {
                    nodes.push(NodeId(num(it.next(), "node")?));
                }
                Response::Nodes(nodes)
            }
            "hits" => {
                let k: usize = num(it.next(), "count")?;
                let mut hits = Vec::with_capacity(k.min(1 << 16));
                for _ in 0..k {
                    hits.push(decode_hit_line(tok(&mut body_lines, "hit line")?)?);
                }
                Response::Hits(hits)
            }
            "partial" => {
                let hk: usize = num(it.next(), "hit count")?;
                let ek: usize = num(it.next(), "error count")?;
                let mut hits = Vec::with_capacity(hk.min(1 << 16));
                for _ in 0..hk {
                    hits.push(decode_hit_line(tok(&mut body_lines, "hit line")?)?);
                }
                let mut errors = Vec::with_capacity(ek.min(1 << 10));
                for _ in 0..ek {
                    let line = tok(&mut body_lines, "error line")?;
                    let mut et = line.split(' ');
                    let shard: usize = num(et.next(), "shard")?;
                    errors.push((shard, WireError::decode_tokens(&mut et)?));
                }
                Response::Partial { hits, errors }
            }
            "tags" => {
                let k: usize = num(it.next(), "count")?;
                let mut tags = Vec::with_capacity(k.min(1 << 16));
                for _ in 0..k {
                    tags.push(dec(tok(&mut it, "tag")?)?);
                }
                Response::Tags(tags)
            }
            "text" => Response::Text(body.unwrap_or("").to_string()),
            "epoch" => Response::Epoch(num(it.next(), "epoch")?),
            "removed" => Response::Removed(num::<u8>(it.next(), "flag")? != 0),
            "routes" => {
                let shards: usize = num(it.next(), "shard count")?;
                let k: usize = num(it.next(), "override count")?;
                let mut overrides = Vec::with_capacity(k.min(1 << 16));
                for _ in 0..k {
                    let line = tok(&mut body_lines, "route line")?;
                    let mut rt = line.split(' ');
                    overrides.push((num(rt.next(), "raw id")?, num(rt.next(), "shard")?));
                }
                Response::Routes { shards, overrides }
            }
            "traces" => {
                let k: usize = num(it.next(), "count")?;
                let mut list = Vec::with_capacity(k.min(1 << 12));
                for _ in 0..k {
                    let line = tok(&mut body_lines, "trace line")?;
                    let mut tt = line.split(' ');
                    list.push(TraceSummaryWire {
                        trace_id: u64::from_str_radix(tok(&mut tt, "trace id")?, 16)
                            .map_err(|_| bad("expected hex trace id"))?,
                        root: dec(tok(&mut tt, "root")?)?,
                        start_ns: num(tt.next(), "start")?,
                        duration_ns: num(tt.next(), "duration")?,
                        spans: num(tt.next(), "spans")?,
                        slow: num::<u8>(tt.next(), "slow flag")? != 0,
                        error: num::<u8>(tt.next(), "error flag")? != 0,
                    });
                }
                Response::Traces(list)
            }
            other => return Err(bad(format!("unknown response kind `{other}`"))),
        };
        Ok(resp)
    }
}
