//! # cxserve — the network service tier
//!
//! Everything below this crate is a library you link; this crate makes
//! it a **service you dial**: a versioned wire protocol for the store's
//! operations, a server that speaks it over a [`cxcluster::Cluster`],
//! and a client library that makes the remote store feel local without
//! lying about the network.
//!
//! ```text
//!   Client ──┐                    ┌─► ClusterServer ─► Cluster (all shards)
//!   Client ──┼── cxq1 frames ─────┤
//!   RouterClient ── per-shard ────┴─► ClusterServer::bind_shard (one per shard)
//! ```
//!
//! Three layers:
//!
//! * [`proto`] — the `cxq1` protocol: one request/response per
//!   length-prefixed [`cxwire`] frame, answered in order, every failure
//!   a *typed* error frame ([`WireError`]);
//! * [`server`] — [`ClusterServer`]: bounded handler pool, per-request
//!   deadlines, panic containment, a `serve.request` fault site, and
//!   `cx_server_*` metrics on the cluster's own [`cxobs`] registry;
//! * [`client`] — [`Client`]: connection pooling, reconnect-on-error,
//!   pipelined CAS-guarded edit batches with exactly-once retry
//!   semantics; and [`RouterClient`]: the cluster's residue-class +
//!   override routing evaluated *client-side*, so per-document requests
//!   go straight to the owning shard's server.
//!
//! The retry story is the load-bearing part. A transport failure leaves
//! a request's fate unknown, so the client never blindly replays a
//! write; instead every retryable edit carries a compare-and-set epoch
//! guard ([`cxcluster::Cluster::edit_guarded`]), and after a reconnect
//! the client probes the document's epoch to learn whether its edit
//! landed — applied-exactly-once either way.
//!
//! The whole tier is traced end to end with [`cxtrace`]: request frames
//! carry an optional trace-context token, the server adopts it into its
//! handler span, and the `trace` verb serves the flight recorder's
//! retained traces — summaries or one rendered tree — over the wire.

#![warn(missing_docs)]

pub mod client;
pub mod error;
pub mod proto;
pub mod server;

pub use client::{Client, ClientOptions, RouterClient};
pub use error::{Result, ServeError, WireError};
pub use proto::{Request, Response, TraceQuery, TraceSummaryWire, VERSION};
pub use server::{ClusterServer, ServerOptions, SERVE_REQUEST_SITE};
