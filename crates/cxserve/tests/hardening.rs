//! Malformed-input hardening: garbage bytes, truncated frames, and
//! hostile declared lengths never panic the server, never leak handler
//! threads, and never poison the endpoint for well-behaved clients.

mod common;

use common::{manuscript, open_cluster, TempDir};
use cxserve::{Client, ClientOptions, ClusterServer, Request, Response, ServerOptions, WireError};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn raw_conn(server: &ClusterServer) -> TcpStream {
    let s = TcpStream::connect(server.addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    s
}

fn read_response(stream: &mut TcpStream) -> Response {
    let payload = cxwire::read_frame(stream).unwrap();
    Response::decode(&payload).unwrap()
}

#[test]
fn junk_flood_never_kills_the_server() {
    let dir = TempDir::new("harden");
    let cluster = open_cluster(&dir, 2);
    let server = ClusterServer::bind(
        Arc::clone(&cluster),
        "127.0.0.1:0",
        ServerOptions { handlers: 2, ..ServerOptions::default() },
    )
    .unwrap();

    // 1. A well-framed frame full of garbage bytes: typed bad_request,
    //    and the *same connection* stays usable.
    {
        let mut s = raw_conn(&server);
        cxwire::write_frame(&mut s, b"\xff\xfe\x80 total garbage \x00\x01").unwrap();
        let resp = read_response(&mut s);
        assert!(matches!(resp, Response::Err(WireError::BadRequest(_))), "{resp:?}");
        cxwire::write_frame(&mut s, &Request::Ping.encode()).unwrap();
        assert_eq!(read_response(&mut s), Response::Pong);
    }

    // 2. A hostile declared length (4 GB): refused before allocation
    //    with a typed error, then the connection is closed.
    {
        let mut s = raw_conn(&server);
        s.write_all(&u32::MAX.to_be_bytes()).unwrap();
        let resp = read_response(&mut s);
        assert!(
            matches!(resp, Response::Err(WireError::BadRequest(ref d)) if d.contains("exceeds")),
            "{resp:?}"
        );
        let mut rest = Vec::new();
        assert_eq!(s.read_to_end(&mut rest).unwrap(), 0, "server hung up after the refusal");
    }

    // 3. Truncated header: two bytes, then hang up.
    {
        let mut s = raw_conn(&server);
        s.write_all(&[0, 0]).unwrap();
    }

    // 4. Truncated payload: declare 100 bytes, deliver 3, hang up.
    {
        let mut s = raw_conn(&server);
        s.write_all(&100u32.to_be_bytes()).unwrap();
        s.write_all(b"abc").unwrap();
    }

    // 5. A burst of junk connections in parallel (more than the handler
    //    pool, so the backlog cycles too).
    let juniors: Vec<_> = (0..8)
        .map(|i| {
            let addr = server.addr();
            std::thread::spawn(move || {
                let mut s = TcpStream::connect(addr).unwrap();
                let _ = s.write_all(&[i as u8; 7]);
                // half hang up instantly, half linger a moment
                if i % 2 == 0 {
                    std::thread::sleep(Duration::from_millis(30));
                }
            })
        })
        .collect();
    for j in juniors {
        j.join().unwrap();
    }

    // After all of it: a clean client performs a full operation cycle.
    let c = Client::connect(server.addr(), ClientOptions::default()).unwrap();
    let id = c.insert(&manuscript(30, 77)).unwrap();
    assert!(!c.query(id, "//w").unwrap().is_empty());
    let page = c.metrics().unwrap();
    let errors: u64 = page
        .lines()
        .find(|l| l.starts_with("cx_server_errors_total"))
        .and_then(|l| l.split_whitespace().last())
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    assert!(errors >= 2, "the junk was counted, not swallowed: {errors}");

    drop(c);
    // Shutdown joins the accept thread and every handler — if a junk
    // connection had wedged or killed one, this would hang or panic.
    server.shutdown();
}
