//! Reconnect semantics: a server killed and restarted on the same port,
//! pooled connections gone stale, and — the part that matters — **no
//! gated edit ever applies twice**, because every retryable edit rides a
//! compare-and-set epoch guard.

mod common;

use common::{manuscript, open_cluster, TempDir};
use cxcluster::Cluster;
use cxfault::{Fault, Trigger};
use cxserve::{Client, ClientOptions, ClusterServer, ServerOptions, SERVE_REQUEST_SITE};
use cxstore::EditOp;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

fn bind(cluster: &Arc<Cluster>, addr: SocketAddr) -> ClusterServer {
    ClusterServer::bind(Arc::clone(cluster), addr, ServerOptions::default()).unwrap()
}

#[test]
fn pooled_connections_survive_a_server_restart() {
    let dir = TempDir::new("restart");
    let cluster = open_cluster(&dir, 2);
    let server = bind(&cluster, "127.0.0.1:0".parse().unwrap());
    let addr = server.addr();

    let c = Client::connect(addr, ClientOptions::default()).unwrap();
    let id = c.insert(&manuscript(30, 41)).unwrap();
    let e0 = c.epoch(id).unwrap();
    // The pool now holds a live connection to the *old* server.

    server.shutdown();
    let server = bind(&cluster, addr);

    // Idempotent read: the stale pooled socket fails once, the retry
    // dials the new server.
    assert!(!c.query(id, "//w").unwrap().is_empty());
    // Guarded edit through a stale pooled socket: applied exactly once.
    let out =
        c.edit_guarded(id, e0, EditOp::InsertText { offset: 0, text: "back".into() }).unwrap();
    assert_eq!(out.epoch, e0 + 1);
    assert_eq!(cluster.epoch(id).unwrap(), e0 + 1);

    drop(c);
    server.shutdown();
}

#[test]
fn a_batch_killed_mid_pipeline_recovers_without_duplicating_edits() {
    let _fp = cxfault::Scenario::setup();
    let dir = TempDir::new("midpipe");
    let cluster = open_cluster(&dir, 2);
    let server = bind(&cluster, "127.0.0.1:0".parse().unwrap());
    let addr = server.addr();

    let c = Client::connect(addr, ClientOptions::default()).unwrap();
    let mut docs = Vec::new();
    for i in 0..4 {
        docs.push(c.insert(&manuscript(25, 50 + i)).unwrap());
    }
    let base: Vec<u64> = docs.iter().map(|d| cluster.epoch(*d).unwrap()).collect();

    // 60 gated edits, 15 per document, paced at ~4 ms each so the kill
    // lands mid-pipeline.
    let edits: Vec<(cxstore::DocId, EditOp)> = (0..60)
        .map(|k| (docs[k % docs.len()], EditOp::InsertText { offset: 0, text: format!("[{k}]") }))
        .collect();
    cxfault::configure(
        SERVE_REQUEST_SITE,
        Trigger::EveryN(1),
        Fault::Delay(Duration::from_millis(4)),
    );

    let batch = {
        let c = Client::connect(addr, ClientOptions::default()).unwrap();
        let edits = edits.clone();
        std::thread::spawn(move || c.edit_batch(&edits))
    };

    // Let the pipeline get going, then yank the server and put it back
    // on the same port.
    std::thread::sleep(Duration::from_millis(60));
    server.shutdown();
    let server = bind(&cluster, addr);

    let results = batch.join().unwrap().expect("the batch recovered");
    assert_eq!(results.len(), edits.len());
    for (k, r) in results.iter().enumerate() {
        assert!(r.is_ok(), "edit {k} failed: {r:?}");
    }

    // Exactly once, each: every document's epoch advanced by exactly its
    // number of batch edits — a duplicated resend would overshoot, a
    // dropped edit would undershoot.
    for (i, d) in docs.iter().enumerate() {
        let expected = base[i] + (edits.iter().filter(|(doc, _)| doc == d).count() as u64);
        assert_eq!(
            cluster.epoch(*d).unwrap(),
            expected,
            "doc {i}: exactly one application per edit"
        );
    }
    // And the content says the same: every marker appears exactly once.
    for (i, d) in docs.iter().enumerate() {
        let text = cluster.with_doc(*d, |g| g.content()).unwrap();
        for k in (0..60).filter(|k| k % docs.len() == i) {
            let marker = format!("[{k}]");
            assert_eq!(
                text.matches(&marker).count(),
                1,
                "doc {i}: marker {marker} applied exactly once"
            );
        }
    }

    drop(c);
    server.shutdown();
}
