//! End-to-end tracing tests: one wire request → one span tree across
//! client and server layers, trace propagation under injected faults
//! and shard outages, and the slow-request flight recorder's retention
//! guarantee.
//!
//! Tracing and fault state are process-global, so every test takes
//! `cxfault::Scenario` *then* `cxtrace::Scenario` (always that order)
//! to serialize against the rest of the binary.

mod common;

use common::{manuscript, open_cluster, TempDir};
use cxcluster::ShardId;
use cxfault::{Fault, Trigger};
use cxserve::{
    Client, ClientOptions, ClusterServer, RouterClient, ServeError, ServerOptions, WireError,
    SERVE_REQUEST_SITE,
};
use cxstore::EditOp;
use cxtrace::{FinishedTrace, TraceConfig};
use std::sync::Arc;
use std::time::Duration;

/// Every non-root span's parent must be present in the same trace — a
/// missing parent means a span leaked out of its tree.
fn assert_no_orphans(t: &FinishedTrace) {
    for s in &t.spans {
        assert!(
            s.parent_id == 0 || t.spans.iter().any(|p| p.span_id == s.parent_id),
            "span {:?} is orphaned: parent {:016x} not in trace {:016x}",
            s.name,
            s.parent_id,
            t.trace_id
        );
    }
}

/// Detached fan-out workers flush after the caller returns, so a trace
/// may finalize a beat later than the response — poll briefly.
fn poll_for<T>(mut f: impl FnMut() -> Option<T>) -> Option<T> {
    for _ in 0..200 {
        if let Some(v) = f() {
            return Some(v);
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    None
}

fn span_of<'t>(t: &'t FinishedTrace, name: &str) -> &'t cxtrace::SpanRecord {
    t.spans
        .iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("trace {:016x} has no span {name:?}", t.trace_id))
}

/// The acceptance tree: a single router guarded edit produces ONE trace
/// whose spans cross process layers — router → client → wire → server
/// handler → cluster → shard store → gate / WAL — with exact parentage,
/// and the tree is retrievable over the wire via the `trace` verb.
#[test]
fn a_guarded_edit_yields_one_tree_across_every_layer() {
    let _faults = cxfault::Scenario::setup();
    let dir = TempDir::new("trace-tree");
    let cluster = open_cluster(&dir, 2);
    let opts = ServerOptions::default();
    let s0 =
        ClusterServer::bind_shard(Arc::clone(&cluster), ShardId(0), "127.0.0.1:0", opts.clone())
            .unwrap();
    let s1 =
        ClusterServer::bind_shard(Arc::clone(&cluster), ShardId(1), "127.0.0.1:0", opts).unwrap();
    let router = RouterClient::connect(&[s0.addr(), s1.addr()], ClientOptions::default()).unwrap();

    // Set up the document before tracing starts: the recorded trace
    // under test is exactly the guarded edit.
    let id = router.insert(&manuscript(30, 77)).unwrap();
    let epoch = router.epoch(id).unwrap();

    let _trace = cxtrace::Scenario::setup();
    router.edit_guarded(id, epoch, EditOp::InsertText { offset: 0, text: "x".into() }).unwrap();

    let recent = cxtrace::recent();
    let summary = recent
        .iter()
        .find(|t| t.root == "router.request")
        .expect("the guarded edit's trace is retained");
    let t = cxtrace::find(summary.trace_id).unwrap();
    assert_no_orphans(&t);

    // The full causal chain, one parent at a time.
    let root = span_of(&t, "router.request");
    assert_eq!(root.parent_id, 0, "router.request is the root");
    let chain = ["client.edit_guarded", "client.call", "serve.request", "cluster.edit"];
    let mut parent = root;
    for name in chain {
        let s = span_of(&t, name);
        assert_eq!(s.parent_id, parent.span_id, "{name} parents onto {}", parent.name);
        parent = s;
    }
    let store_edit = span_of(&t, "store.edit");
    assert_eq!(store_edit.parent_id, parent.span_id, "store.edit parents onto cluster.edit");
    // Gate and WAL append both happen inside the store edit.
    assert_eq!(span_of(&t, "store.gate").parent_id, store_edit.span_id);
    assert_eq!(span_of(&t, "wal.append").parent_id, store_edit.span_id);

    // Durations nest: the root covers the server handler span.
    let serve = span_of(&t, "serve.request");
    assert!(root.duration_ns >= serve.duration_ns, "root at least as long as the handler");
    assert!(serve.attrs.iter().any(|(k, v)| *k == "verb" && v.to_string() == "edit"));

    // And the same tree is wire-accessible: summaries via `trace
    // recent`, the rendered tree via `trace get`.
    let owner = router.shard_of(id);
    let wire = router.shard_client(owner).traces_recent(16).unwrap();
    assert!(wire.iter().any(|w| w.trace_id == t.trace_id && w.root == "router.request"));
    let tree = router.shard_client(owner).trace_tree(t.trace_id).unwrap();
    for name in
        ["router.request", "client.edit_guarded", "serve.request", "store.gate", "wal.append"]
    {
        assert!(tree.contains(name), "rendered tree mentions {name}:\n{tree}");
    }
}

/// The flight recorder's retention guarantee over the wire: a request
/// delayed past the slow threshold (via cxfault `Delay` at the server's
/// request site) stays retrievable after 2×N ordinary requests churn
/// the normal ring.
#[test]
fn a_delayed_request_survives_normal_churn() {
    let _faults = cxfault::Scenario::setup();
    let dir = TempDir::new("trace-slow");
    let cluster = open_cluster(&dir, 1);
    let server =
        ClusterServer::bind(Arc::clone(&cluster), "127.0.0.1:0", ServerOptions::default()).unwrap();
    let c = Client::connect(server.addr(), ClientOptions::default()).unwrap();

    let retain = 4;
    let _trace = cxtrace::Scenario::setup_with(TraceConfig {
        retain,
        retain_slow: 4,
        slow_threshold: Duration::from_millis(40),
        ..TraceConfig::default()
    });

    // Exactly one request stalls server-side, long enough to classify
    // slow but far under the server deadline.
    cxfault::configure(
        SERVE_REQUEST_SITE,
        Trigger::Nth(1),
        Fault::Delay(Duration::from_millis(80)),
    );
    c.ping().unwrap();

    for _ in 0..2 * retain {
        c.ping().unwrap();
    }

    let slow = c.traces_slow(16).unwrap();
    let delayed = slow
        .iter()
        .find(|t| t.slow && t.duration_ns >= 80_000_000)
        .expect("the delayed trace survived the churn");
    assert_eq!(delayed.root, "client.call");
    let tree = c.trace_tree(delayed.trace_id).unwrap();
    assert!(tree.contains("SLOW"), "rendered header flags the trace slow:\n{tree}");
    assert!(tree.contains("serve.request"), "the server-side span is in the tree:\n{tree}");
}

/// An injected `serve.request` fault refuses the request before
/// decoding — the trace must still be complete: the client's context
/// crossed the wire, the handler span exists, and it carries the error
/// annotation. No leaked or orphaned spans.
#[test]
fn injected_faults_produce_complete_error_annotated_traces() {
    let _faults = cxfault::Scenario::setup();
    let dir = TempDir::new("trace-inject");
    let cluster = open_cluster(&dir, 1);
    let server =
        ClusterServer::bind(Arc::clone(&cluster), "127.0.0.1:0", ServerOptions::default()).unwrap();
    // No retries: the injected refusal must surface, not be papered over.
    let c =
        Client::connect(server.addr(), ClientOptions { retries: 0, ..Default::default() }).unwrap();
    let id = c.insert(&manuscript(20, 5)).unwrap();

    let _trace = cxtrace::Scenario::setup();
    cxfault::configure(SERVE_REQUEST_SITE, Trigger::Nth(1), Fault::Io);
    match c.query(id, "//w") {
        Err(ServeError::Remote(WireError::Injected(_))) => {}
        other => panic!("expected the injected refusal, got {other:?}"),
    }

    // Error traces land in the protected ring, never the normal one.
    let summaries = cxtrace::slow();
    let errored = summaries
        .iter()
        .find(|t| t.error && t.root == "client.call")
        .expect("the refused request's trace is retained as an error trace");
    let t = cxtrace::find(errored.trace_id).unwrap();
    assert_no_orphans(&t);

    let serve = span_of(&t, "serve.request");
    assert_eq!(
        serve.parent_id,
        span_of(&t, "client.call").span_id,
        "the context crossed the wire even though the frame was never decoded"
    );
    assert!(
        serve.error.as_deref().unwrap_or("").contains("injected"),
        "the handler span carries the injection: {:?}",
        serve.error
    );
    // The fault fires before decoding, so the verb is contractually
    // unknown server-side.
    assert!(serve.attrs.iter().any(|(k, v)| *k == "verb" && v.to_string() == "unknown"));
}

/// A fan-out over a cluster with a downed shard: the trace is complete
/// — per-shard spans for the healthy shards, an error-annotated
/// synthetic span for the downed one — with no orphans.
#[test]
fn shard_down_fanout_traces_completely() {
    let _faults = cxfault::Scenario::setup();
    let dir = TempDir::new("trace-down");
    let cluster = open_cluster(&dir, 2);
    let server =
        ClusterServer::bind(Arc::clone(&cluster), "127.0.0.1:0", ServerOptions::default()).unwrap();
    let c = Client::connect(server.addr(), ClientOptions::default()).unwrap();
    for seed in 0..4 {
        c.insert(&manuscript(20, seed)).unwrap();
    }
    cluster.mark_shard_down(ShardId(1)).unwrap();

    let _trace = cxtrace::Scenario::setup();
    let (hits, errors) = c.query_all_partial("//w", Duration::from_millis(500)).unwrap();
    assert!(!hits.is_empty(), "healthy shards answered");
    assert!(
        errors.iter().any(|(s, e)| *s == 1 && matches!(e, WireError::ShardDown(_))),
        "the downed shard surfaced typed: {errors:?}"
    );

    // The downed shard makes it an error trace → protected ring. The
    // fan-out workers are detached, so the trace finalizes when the
    // last worker flushes — poll briefly for it.
    let errored =
        poll_for(|| cxtrace::slow().into_iter().find(|t| t.error && t.root == "client.call"))
            .expect("the fan-out's trace is retained as an error trace");
    let t = cxtrace::find(errored.trace_id).unwrap();
    assert_no_orphans(&t);

    let fanout = span_of(&t, "cluster.query_all_partial");
    let shard_spans: Vec<_> = t.spans.iter().filter(|s| s.name == "cluster.shard_query").collect();
    assert_eq!(shard_spans.len(), 2, "one span per shard, down or not");
    for s in &shard_spans {
        assert_eq!(s.parent_id, fanout.span_id, "shard spans parent onto the fan-out");
    }
    let down = shard_spans
        .iter()
        .find(|s| s.attrs.iter().any(|(k, v)| *k == "shard" && v.to_string() == "1"))
        .expect("the downed shard has its span");
    assert!(
        down.error.as_deref().unwrap_or("").contains("down"),
        "the downed shard's span is error-annotated: {:?}",
        down.error
    );
}
