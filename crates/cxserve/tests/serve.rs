//! End-to-end service-tier tests: every verb over a real socket, typed
//! failure passthrough (stale, shard-down, timeout, injected, panic,
//! deadline), and the shard-scoped server + router client pair.

mod common;

use common::{manuscript, open_cluster, TempDir};
use cxcluster::ShardId;
use cxfault::{Fault, Trigger};
use cxserve::{
    Client, ClientOptions, ClusterServer, RouterClient, ServeError, ServerOptions, WireError,
    SERVE_REQUEST_SITE,
};
use cxstore::EditOp;
use std::sync::Arc;
use std::time::Duration;

fn client(server: &ClusterServer) -> Client {
    Client::connect(server.addr(), ClientOptions::default()).unwrap()
}

#[test]
fn every_verb_over_a_real_socket() {
    let dir = TempDir::new("verbs");
    let cluster = open_cluster(&dir, 2);
    let server =
        ClusterServer::bind(Arc::clone(&cluster), "127.0.0.1:0", ServerOptions::default()).unwrap();
    let c = client(&server);

    c.ping().unwrap();

    // Insert (anonymous + named), resolve, and read back.
    let g = manuscript(50, 21);
    let local_export = sacx::export_standoff(&g);
    let a = c.insert(&g).unwrap();
    let b = c.insert_named("ms-b", &manuscript(40, 23)).unwrap();
    assert_ne!(a, b);
    assert_eq!(c.id_by_name("ms-b").unwrap(), b);
    assert_eq!(c.export(a).unwrap(), local_export, "export is byte-identical over the wire");

    // Queries: per-doc, fan-out, partial.
    let words = c.query(a, "//w").unwrap();
    assert!(!words.is_empty());
    assert_eq!(words, cluster.query(a, "//w").unwrap());
    let hits = c.query_all("//w").unwrap();
    assert_eq!(hits.len(), 2);
    let (phits, perrs) = c.query_all_partial("//w", Duration::from_secs(2)).unwrap();
    assert_eq!(phits.len(), 2);
    assert!(perrs.is_empty());

    // Suggestions against a span.
    let (s, e) = cluster.with_doc(a, |g| g.char_range(g.find_elements("w")[0])).unwrap();
    assert_eq!(
        c.suggest_tags(a, "ling", s, e).unwrap(),
        cluster.suggest_tags(a, "ling", s, e).unwrap()
    );

    // Edits: unguarded, guarded, stale-guard refusal.
    let e0 = c.epoch(a).unwrap();
    let out = c.edit(a, EditOp::InsertText { offset: 0, text: "x".into() }).unwrap();
    assert_eq!(out.epoch, e0 + 1);
    let out =
        c.edit_guarded(a, e0 + 1, EditOp::InsertText { offset: 0, text: "y".into() }).unwrap();
    assert_eq!(out.epoch, e0 + 2);
    let stale = c.edit_guarded(a, e0, EditOp::InsertText { offset: 0, text: "z".into() });
    match stale {
        Err(ServeError::Remote(WireError::Stale { current })) => assert_eq!(current, e0 + 2),
        other => panic!("expected stale refusal, got {other:?}"),
    }

    // A gate rejection crosses the wire as a typed store error.
    let reject = c.edit(
        a,
        EditOp::InsertElement {
            hierarchy: "ling".into(),
            tag: "nonsense-tag".into(),
            attrs: Vec::new(),
            start: 0,
            end: 1,
        },
    );
    assert!(matches!(reject, Err(ServeError::Remote(WireError::Store(_)))), "{reject:?}");

    // Metrics page includes both the storage stack and the server.
    let page = c.metrics().unwrap();
    assert!(page.contains("cx_server_requests_total"), "{page}");
    assert!(page.contains("cx_cluster") || page.contains("cx_"), "{page}");

    // Routing view.
    let (shards, overrides) = c.routes().unwrap();
    assert_eq!(shards, 2);
    assert!(overrides.is_empty());

    // Remove: true once, false after.
    assert!(c.remove(b).unwrap());
    assert!(!c.remove(b).unwrap());

    drop(c);
    server.shutdown();
}

#[test]
fn typed_cluster_failures_cross_the_wire() {
    let dir = TempDir::new("typed");
    let cluster = open_cluster(&dir, 2);
    let server =
        ClusterServer::bind(Arc::clone(&cluster), "127.0.0.1:0", ServerOptions::default()).unwrap();
    let c = client(&server);

    let mut on_down = None;
    for i in 0.. {
        let id = c.insert(&manuscript(25, 100 + i)).unwrap();
        if cluster.shard_of(id) == ShardId(1) {
            on_down = Some(id);
            break;
        }
    }
    let on_down = on_down.unwrap();

    cluster.mark_shard_down(ShardId(1)).unwrap();
    // A write routed to the down shard fails fast and typed.
    let miss = c.edit(on_down, EditOp::InsertText { offset: 0, text: "x".into() });
    assert!(matches!(miss, Err(ServeError::Remote(WireError::ShardDown(1)))), "{miss:?}");
    // Partial fan-out reports the down shard per-entry.
    let (_, errs) = c.query_all_partial("//w", Duration::from_secs(2)).unwrap();
    assert!(errs.iter().any(|(s, e)| *s == 1 && matches!(e, WireError::ShardDown(1))), "{errs:?}");
    // All-or-nothing fan-out refuses as a whole.
    let all = c.query_all("//w");
    assert!(matches!(all, Err(ServeError::Remote(WireError::ShardDown(1)))), "{all:?}");
    cluster.heal_shard(ShardId(1)).unwrap();
    assert_eq!(c.query_all("//w").unwrap().len(), {
        let mut n = 0;
        for _ in cluster.doc_ids() {
            n += 1;
        }
        n
    });

    drop(c);
    server.shutdown();
}

#[test]
fn injected_faults_deadlines_and_panics_are_contained() {
    let _fp = cxfault::Scenario::setup();
    let dir = TempDir::new("faults");
    let cluster = open_cluster(&dir, 1);
    let opts = ServerOptions { deadline: Duration::from_millis(300), ..ServerOptions::default() };
    let server = ClusterServer::bind(Arc::clone(&cluster), "127.0.0.1:0", opts).unwrap();
    let c = client(&server);
    let id = c.insert(&manuscript(30, 31)).unwrap();

    // An injected request error arrives typed (observed on a zero-retry
    // client — the default client absorbs transient refusals itself).
    let raw =
        Client::connect(server.addr(), ClientOptions { retries: 0, ..ClientOptions::default() })
            .unwrap();
    cxfault::configure(SERVE_REQUEST_SITE, Trigger::Nth(1), Fault::Io);
    let hit = raw.query(id, "//w");
    assert!(matches!(hit, Err(ServeError::Remote(WireError::Injected(_)))), "{hit:?}");
    assert!(!c.query(id, "//w").unwrap().is_empty());

    // The default client retries straight through a one-shot injection:
    // injected fires pre-decode, so the retry is safe even for writes.
    cxfault::configure(SERVE_REQUEST_SITE, Trigger::Nth(1), Fault::Io);
    assert!(!c.query(id, "//w").unwrap().is_empty(), "retry absorbed the injected fault");

    // A handler panic is caught: typed server error, connection lives.
    cxfault::configure(SERVE_REQUEST_SITE, Trigger::Nth(1), Fault::Panic);
    let hit = c.query(id, "//w");
    assert!(matches!(hit, Err(ServeError::Remote(WireError::Server(_)))), "{hit:?}");
    assert!(!c.query(id, "//w").unwrap().is_empty());

    // A stall past the deadline comes back as a typed deadline error
    // (driven on the raw client so the retry machinery stays out of it).
    cxfault::configure(
        SERVE_REQUEST_SITE,
        Trigger::Nth(1),
        Fault::Delay(Duration::from_millis(600)),
    );
    let hit = raw.query(id, "//w");
    assert!(matches!(hit, Err(ServeError::Remote(WireError::Deadline { .. }))), "{hit:?}");

    // A guarded edit refused by the deadline recovers via the epoch
    // probe instead of double-applying.
    let e0 = c.epoch(id).unwrap();
    cxfault::configure(
        SERVE_REQUEST_SITE,
        Trigger::Nth(1),
        Fault::Delay(Duration::from_millis(600)),
    );
    let out = c.edit_guarded(id, e0, EditOp::InsertText { offset: 0, text: "d".into() }).unwrap();
    assert_eq!(out.epoch, e0 + 1);
    assert_eq!(c.epoch(id).unwrap(), e0 + 1, "the edit applied exactly once");

    drop(c);
    drop(raw);
    server.shutdown();
}

#[test]
fn shard_scoped_servers_and_the_router_client() {
    let dir = TempDir::new("router");
    let cluster = open_cluster(&dir, 3);
    let servers: Vec<ClusterServer> = (0..3)
        .map(|s| {
            ClusterServer::bind_shard(
                Arc::clone(&cluster),
                ShardId(s),
                "127.0.0.1:0",
                ServerOptions::default(),
            )
            .unwrap()
        })
        .collect();
    let addrs: Vec<_> = servers.iter().map(|s| s.addr()).collect();
    let router = RouterClient::connect(&addrs, ClientOptions::default()).unwrap();
    assert_eq!(router.shard_count(), 3);

    // Inserts round-robin across shard endpoints; each shard-scoped
    // server mints ids in its own residue class.
    let mut docs = Vec::new();
    for i in 0..6 {
        let id = router.insert(&manuscript(25, 300 + i)).unwrap();
        docs.push(id);
    }
    for s in 0..3 {
        assert!(
            docs.iter().any(|d| cluster.shard_of(*d) == ShardId(s)),
            "round-robin reached shard {s}"
        );
    }
    for d in &docs {
        assert_eq!(router.shard_of(*d), cluster.shard_of(*d).0, "client-side routing agrees");
    }

    // Per-document traffic goes straight to the owner.
    for d in &docs {
        assert_eq!(router.query(*d, "//w").unwrap(), cluster.query(*d, "//w").unwrap());
        assert_eq!(
            router.export(*d).unwrap(),
            cluster.with_doc(*d, sacx::export_standoff).unwrap()
        );
        let e = router.epoch(*d).unwrap();
        let out =
            router.edit_guarded(*d, e, EditOp::InsertText { offset: 0, text: "r".into() }).unwrap();
        assert_eq!(out.epoch, e + 1);
    }

    // Fan-out across shard endpoints merges the whole corpus.
    let hits = router.query_all("//w").unwrap();
    assert_eq!(hits.len(), docs.len());
    let mut sorted = hits.clone();
    sorted.sort_by_key(|(id, _)| *id);
    assert_eq!(hits, sorted, "merged hits are id-sorted");
    let (phits, perrs) = router.query_all_partial("//w", Duration::from_secs(2)).unwrap();
    assert_eq!(phits.len(), docs.len());
    assert!(perrs.is_empty());

    // Asking the wrong shard directly earns a typed wrong_shard with
    // the real owner inside.
    let d0 = docs[0];
    let owner = cluster.shard_of(d0).0;
    let not_owner = (owner + 1) % 3;
    let direct = Client::connect(addrs[not_owner], ClientOptions::default()).unwrap();
    let refusal = direct.query(d0, "//w");
    match refusal {
        Err(ServeError::Remote(WireError::WrongShard { owner: o })) => assert_eq!(o, owner),
        other => panic!("expected wrong_shard, got {other:?}"),
    }

    // After a relocation, the router learns the new owner lazily from
    // the wrong_shard refusal and the retry succeeds.
    let dest = ShardId((cluster.shard_of(d0).0 + 1) % 3);
    cluster.move_doc(d0, dest).unwrap();
    assert_eq!(router.shard_of(d0), owner, "router still believes the old owner");
    assert_eq!(router.query(d0, "//w").unwrap(), cluster.query(d0, "//w").unwrap());
    assert_eq!(router.shard_of(d0), dest.0, "the refusal taught the router the new owner");

    // A fresh router picks the override up from the routes verb.
    let fresh = RouterClient::connect(&addrs, ClientOptions::default()).unwrap();
    assert_eq!(fresh.shard_of(d0), dest.0);

    // The per-shard metrics pages each carry their own server labels.
    let page = router.metrics(0).unwrap();
    assert!(page.contains("cx_server_requests_total"), "{page}");

    drop(router);
    drop(fresh);
    drop(direct);
    for s in servers {
        s.shutdown();
    }
}
