//! Wire-codec roundtrips: every request and response shape survives
//! encode → decode bit-exact, hostile payloads decode to typed
//! `bad_request` errors (never panics), and version drift fails loudly.

mod common;

use cxpersist::DocBlob;
use cxserve::{Request, Response, WireError};
use cxstore::{DocId, EditOp};
use goddag::NodeId;

fn rt_req(req: Request) {
    let decoded = Request::decode(&req.encode()).expect("request decodes");
    assert_eq!(decoded, req);
}

fn rt_resp(resp: Response) {
    let decoded = Response::decode(&resp.encode()).expect("response decodes");
    assert_eq!(decoded, resp);
}

fn doc(raw: u64) -> DocId {
    DocId::from_raw(raw)
}

#[test]
fn every_request_shape_roundtrips() {
    let blob = DocBlob::capture(&corpus::figure1::goddag());
    rt_req(Request::Ping);
    rt_req(Request::Insert { name: None, blob: blob.clone() });
    rt_req(Request::Insert { name: Some("a name with spaces %/\n ok".into()), blob });
    rt_req(Request::Edit {
        doc: doc(7),
        guard: None,
        op: EditOp::InsertText { offset: 3, text: "x y\nz %".into() },
    });
    rt_req(Request::Edit {
        doc: doc(9),
        guard: Some(41),
        op: EditOp::InsertElement {
            hierarchy: "ling".into(),
            tag: "phrase".into(),
            attrs: vec![("n".into(), "p 1".into()), ("empty".into(), String::new())],
            start: 4,
            end: 19,
        },
    });
    rt_req(Request::Edit { doc: doc(1), guard: Some(0), op: EditOp::RemoveElement(NodeId(12)) });
    rt_req(Request::Edit { doc: doc(1), guard: None, op: EditOp::DeleteText { start: 2, end: 5 } });
    rt_req(Request::Edit {
        doc: doc(1),
        guard: None,
        op: EditOp::SetAttr { node: NodeId(3), name: "who".into(), value: String::new() },
    });
    rt_req(Request::Edit {
        doc: doc(1),
        guard: None,
        op: EditOp::RemoveAttr { node: NodeId(3), name: "who".into() },
    });
    rt_req(Request::Query { doc: doc(2), expr: "//w[@n='3']".into() });
    rt_req(Request::QueryAll { expr: "//sp//w".into() });
    rt_req(Request::QueryPartial { timeout_ms: 250, expr: "//del".into() });
    rt_req(Request::Suggest { doc: doc(5), hierarchy: "phys".into(), start: 0, end: 10 });
    rt_req(Request::Export { doc: doc(8) });
    rt_req(Request::IdByName { name: String::new() });
    rt_req(Request::Epoch { doc: doc(3) });
    rt_req(Request::Remove { doc: doc(4) });
    rt_req(Request::Metrics);
    rt_req(Request::Routes);
}

#[test]
fn every_response_shape_roundtrips() {
    rt_resp(Response::Pong);
    rt_resp(Response::Id(doc(17)));
    rt_resp(Response::Edited { node: Some(NodeId(40)), epoch: 9 });
    rt_resp(Response::Edited { node: None, epoch: 10 });
    rt_resp(Response::Nodes(vec![NodeId(1), NodeId(5), NodeId(9)]));
    rt_resp(Response::Nodes(Vec::new()));
    rt_resp(Response::Hits(vec![
        (doc(0), vec![NodeId(2)]),
        (doc(3), Vec::new()),
        (doc(6), vec![NodeId(1), NodeId(2), NodeId(3)]),
    ]));
    rt_resp(Response::Partial {
        hits: vec![(doc(1), vec![NodeId(7)])],
        errors: vec![(0, WireError::ShardDown(0)), (2, WireError::Timeout { shard: 2, ms: 250 })],
    });
    rt_resp(Response::Tags(vec!["sp".into(), "stage dir".into(), String::new()]));
    rt_resp(Response::Text("line one\nline two\n  indented, with % and spaces\n".into()));
    rt_resp(Response::Text(String::new()));
    rt_resp(Response::Epoch(88));
    rt_resp(Response::Removed(true));
    rt_resp(Response::Removed(false));
    rt_resp(Response::Routes { shards: 3, overrides: vec![(7, 2), (12, 0)] });
    rt_resp(Response::Routes { shards: 1, overrides: Vec::new() });
}

#[test]
fn every_error_kind_roundtrips() {
    for err in [
        WireError::Store("gate rejected <dmg> under ling".into()),
        WireError::Stale { current: 12 },
        WireError::ShardDown(1),
        WireError::Timeout { shard: 2, ms: 900 },
        WireError::Unavailable { shard: 0, detail: "injected outage".into() },
        WireError::WrongShard { owner: 2 },
        WireError::Deadline { ms: 5000 },
        WireError::Injected("serve.request".into()),
        WireError::BadRequest("expected verb".into()),
        WireError::Busy,
        WireError::Server("handler panicked".into()),
    ] {
        rt_resp(Response::Err(err));
    }
}

#[test]
fn a_document_blob_survives_the_wire() {
    let g = common::manuscript(40, 17);
    let before = sacx::export_standoff(&g);
    let req = Request::Insert { name: Some("ms".into()), blob: DocBlob::capture(&g) };
    let Request::Insert { blob, .. } = Request::decode(&req.encode()).unwrap() else {
        panic!("wrong request shape");
    };
    let after = sacx::export_standoff(&blob.restore().unwrap());
    assert_eq!(before, after, "the export is byte-identical across the wire");
}

#[test]
fn hostile_request_payloads_decode_to_typed_errors_never_panics() {
    let cases: &[&[u8]] = &[
        b"",
        b"\n",
        b"cxq1",
        b"cxq1 ",
        b"cxq1 frobnicate",
        b"cxq2 ping", // version drift
        b"ping",      // missing version
        b"cxq1 edit not-a-number g0 instext 0 x",
        b"cxq1 edit 3 g instext",      // truncated op
        b"cxq1 edit 3 gX instext 0 x", // bad guard token
        b"cxq1 insel",                 // op verb as request verb
        b"cxq1 query 1",               // missing expr
        b"cxq1 suggest 1 phys 0",      // missing end
        b"cxq1 insert\n<<<not a blob>>>",
        b"cxq1 insertn name-without-body",
        b"\xff\xfe\x00\x80garbage",                // not UTF-8 at all
        b"cxq1 edit 1 g1 insel h t 0 5 999999999", // absurd attr count
    ];
    for payload in cases {
        match Request::decode(payload) {
            Err(WireError::BadRequest(_)) => {}
            other => panic!("{:?} decoded to {other:?}", String::from_utf8_lossy(payload)),
        }
    }
}

#[test]
fn hostile_response_payloads_decode_to_typed_errors_never_panics() {
    let cases: &[&[u8]] = &[
        b"",
        b"nope",
        b"ok",
        b"ok wat",
        b"ok id",         // missing id token
        b"ok edited x 1", // bad node token
        b"err",
        b"err weird-kind detail",
        b"\xff\xff\xff",
    ];
    for payload in cases {
        assert!(
            Response::decode(payload).is_err(),
            "{:?} should not decode",
            String::from_utf8_lossy(payload)
        );
    }
}

#[test]
fn version_sentinel_is_checked_first() {
    let mut good = Request::Ping.encode();
    assert!(good.starts_with(cxserve::VERSION.as_bytes()));
    // Flip one version byte: the refusal names the version problem.
    good[3] = b'9';
    let err = Request::decode(&good).unwrap_err();
    let WireError::BadRequest(detail) = &err else { panic!("{err:?}") };
    assert!(detail.contains("version"), "{detail}");
}
