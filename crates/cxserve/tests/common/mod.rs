//! Shared test plumbing: self-cleaning temp directories (the environment
//! has no `tempfile` crate) and corpus/cluster scaffolding.

use cxcluster::Cluster;
use cxpersist::{FsyncPolicy, Options};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[allow(dead_code)] // not every test binary uses every helper
static NEXT: AtomicU64 = AtomicU64::new(0);

/// A unique directory under the system temp dir, removed on drop.
#[allow(dead_code)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    #[allow(dead_code)]
    pub fn new(tag: &str) -> TempDir {
        let path = std::env::temp_dir().join(format!(
            "cxserve-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).expect("create temp dir");
        TempDir { path }
    }

    #[allow(dead_code)] // not every test file uses every helper
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// `n` shard directories under this temp dir, in index order.
    #[allow(dead_code)]
    pub fn shard_dirs(&self, n: usize) -> Vec<PathBuf> {
        (0..n).map(|i| self.path.join(format!("shard-{i}"))).collect()
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

/// A standard-DTD manuscript of `words` words.
#[allow(dead_code)]
pub fn manuscript(words: usize, seed: u64) -> goddag::Goddag {
    let mut ms = corpus::generate(&corpus::Params { words, seed, ..corpus::Params::default() });
    corpus::dtds::attach_standard(&mut ms.goddag);
    ms.goddag
}

/// A fresh n-shard cluster under `dir`.
#[allow(dead_code)]
pub fn open_cluster(dir: &TempDir, shards: usize) -> Arc<Cluster> {
    Arc::new(
        Cluster::open(dir.shard_dirs(shards), Options { fsync: FsyncPolicy::EveryN(8) })
            .expect("open cluster"),
    )
}
