//! The service-tier capstone soak: concurrent client threads drive
//! mixed gated edits and fan-out queries through a served cluster while
//! request faults fire and a shard goes down and comes back — and at
//! the end the served cluster is **byte-identical** to an in-process
//! control store that saw exactly the applied operations.

mod common;

use common::{manuscript, open_cluster, TempDir};
use cxcluster::ShardId;
use cxfault::{Fault, Trigger};
use cxserve::{
    Client, ClientOptions, ClusterServer, ServeError, ServerOptions, WireError, SERVE_REQUEST_SITE,
};
use cxstore::{DocId, EditOp, Store};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

const SHARDS: usize = 3;
const DOCS: usize = 8;

/// The k-th mixed op for `doc`, derived from the control's live state
/// (the control mirrors the cluster exactly, and only the owning thread
/// edits a document, so this view is never stale).
fn gen_op(control: &Store, doc: DocId, k: usize) -> EditOp {
    let (len, words) = control
        .with_doc(doc, |g| {
            let words: Vec<(usize, usize)> = g
                .find_elements("w")
                .into_iter()
                .map(|w| g.char_range(w))
                .filter(|(a, b)| a < b)
                .collect();
            (g.content_len(), words)
        })
        .unwrap();
    match k % 4 {
        0 if !words.is_empty() => {
            let a = words[k % words.len()].0;
            let b = words[(k + 2) % words.len()].1;
            let (start, end) = if a <= b { (a, b) } else { (b, a) };
            EditOp::InsertElement {
                hierarchy: "ling".into(),
                tag: "phrase".into(),
                attrs: vec![("n".into(), format!("p{k}"))],
                start,
                end,
            }
        }
        1 if len > 8 => {
            let start = (k * 7) % (len - 4);
            EditOp::DeleteText { start, end: start + 1 }
        }
        _ => EditOp::InsertText { offset: len / 2, text: format!("[{k}]") },
    }
}

/// One writer thread: drive `target` applied gated edits over its own
/// documents, mirroring every applied op onto the control. Returns how
/// many injected faults and shard-down refusals it absorbed.
#[allow(clippy::too_many_arguments)]
fn writer(
    client: &Client,
    control: &Store,
    docs: &[DocId],
    target: usize,
    seed: usize,
    applied_total: &AtomicUsize,
    injected_hits: &AtomicUsize,
    down_hits: &AtomicUsize,
) {
    let mut epochs: Vec<u64> = docs.iter().map(|d| client.epoch(*d).unwrap()).collect();
    let mut applied = 0usize;
    let mut k = seed * 10_000;
    while applied < target {
        k += 1;
        let i = k % docs.len();
        let doc = docs[i];
        let op = gen_op(control, doc, k);
        match client.edit_guarded(doc, epochs[i], op.clone()) {
            Ok(out) => {
                let mirror = control.edit(doc, op).expect("control accepts what the cluster did");
                assert_eq!(out.epoch, mirror.epoch, "epochs advance in lockstep");
                if let Some(node) = out.node {
                    assert_eq!(Some(node), mirror.node, "both sides mint the same node id");
                }
                epochs[i] = out.epoch;
                applied += 1;
                applied_total.fetch_add(1, Ordering::Relaxed);
            }
            // An injected-fault streak outlasted the client's retry
            // budget: the op still did not apply — go again.
            Err(ServeError::Remote(WireError::Injected(_))) => {
                injected_hits.fetch_add(1, Ordering::Relaxed);
            }
            // The owning shard is down: wait out the outage.
            Err(ServeError::Remote(WireError::ShardDown(_))) => {
                down_hits.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(5));
            }
            // The gate refused the op on the cluster; by construction it
            // would refuse it on the control too — skip, mirror nothing.
            Err(ServeError::Remote(WireError::Store(_))) => {}
            Err(e) => panic!("writer saw an unrecoverable error: {e}"),
        }
    }
}

fn run_soak(writers: usize, edits_per_writer: usize, fault_p: f64) {
    let _fp = cxfault::Scenario::setup();
    let dir = TempDir::new("soak");
    let cluster = open_cluster(&dir, SHARDS);
    let control = Store::new();

    let mut docs = Vec::new();
    for i in 0..DOCS {
        let g = manuscript(45 + 5 * i, 600 + i as u64);
        let id = cluster.insert_named(format!("soak-{i}"), g.clone()).unwrap();
        control.insert_with_id(id, g).unwrap();
        docs.push(id);
    }
    assert!(
        (0..SHARDS).all(|s| docs.iter().any(|d| cluster.shard_of(*d) == ShardId(s))),
        "the corpus spans all shards"
    );

    let server = ClusterServer::bind(
        Arc::clone(&cluster),
        "127.0.0.1:0",
        ServerOptions { handlers: writers + 2, backlog: 32, ..ServerOptions::default() },
    )
    .unwrap();
    let addr = server.addr();

    // Request faults fire for the whole run.
    cxfault::configure_seeded(SERVE_REQUEST_SITE, Trigger::Probability(fault_p), Fault::Io, 23);

    let applied_total = Arc::new(AtomicUsize::new(0));
    let injected_hits = Arc::new(AtomicUsize::new(0));
    let down_hits = Arc::new(AtomicUsize::new(0));
    let done = Arc::new(AtomicBool::new(false));
    let target_total = writers * edits_per_writer;

    std::thread::scope(|scope| {
        // Writers: each owns a disjoint slice of the corpus.
        let control = &control;
        for w in 0..writers {
            let my_docs: Vec<DocId> = docs
                .iter()
                .copied()
                .enumerate()
                .filter(|(i, _)| i % writers == w)
                .map(|(_, d)| d)
                .collect();
            let applied_total = Arc::clone(&applied_total);
            let injected_hits = Arc::clone(&injected_hits);
            let down_hits = Arc::clone(&down_hits);
            scope.spawn(move || {
                let client =
                    Client::connect(addr, ClientOptions { retries: 6, ..ClientOptions::default() })
                        .unwrap();
                writer(
                    &client,
                    control,
                    &my_docs,
                    edits_per_writer,
                    w,
                    &applied_total,
                    &injected_hits,
                    &down_hits,
                );
            });
        }

        // Readers: fan-out queries hammer the same server until the
        // writers are done; typed failures are expected mid-storm.
        for _ in 0..2 {
            let done = Arc::clone(&done);
            scope.spawn(move || {
                let client =
                    Client::connect(addr, ClientOptions { retries: 6, ..ClientOptions::default() })
                        .unwrap();
                let mut saw_hits = false;
                while !done.load(Ordering::Relaxed) {
                    if let Ok(hits) = client.query_all("//w") {
                        saw_hits |= !hits.is_empty();
                    }
                    if let Ok((hits, _)) = client.query_all_partial("//w", Duration::from_secs(2)) {
                        saw_hits |= !hits.is_empty();
                    }
                    std::thread::sleep(Duration::from_millis(3));
                }
                assert!(saw_hits, "readers actually read something");
            });
        }

        // The degrade/heal cycle: once a third of the traffic has
        // landed, one shard goes down for a beat, then heals.
        let sick = ShardId(1);
        let t0 = std::time::Instant::now();
        while applied_total.load(Ordering::Relaxed) < target_total / 3 {
            assert!(t0.elapsed() < Duration::from_secs(120), "writers stalled before the outage");
            std::thread::sleep(Duration::from_millis(5));
        }
        cluster.mark_shard_down(sick).unwrap();
        std::thread::sleep(Duration::from_millis(150));
        cluster.heal_shard(sick).unwrap();

        // Writers finish on their own; release the readers.
        while applied_total.load(Ordering::Relaxed) < target_total {
            assert!(t0.elapsed() < Duration::from_secs(300), "writers stalled mid-run");
            std::thread::sleep(Duration::from_millis(10));
        }
        done.store(true, Ordering::Relaxed);
    });

    let fault_fires = cxfault::fires(SERVE_REQUEST_SITE);
    cxfault::clear();
    assert_eq!(applied_total.load(Ordering::Relaxed), target_total);
    assert!(fault_fires > 0, "the request-fault schedule actually fired");
    let _ = injected_hits.load(Ordering::Relaxed); // streaks are possible, not required
    assert!(
        down_hits.load(Ordering::Relaxed) > 0,
        "the down shard actually refused traffic mid-run"
    );

    // Convergence: the served cluster and the in-process control are
    // byte-identical, and the wire agrees with both.
    let verify = Client::connect(addr, ClientOptions::default()).unwrap();
    for d in &docs {
        let cluster_side = cluster.with_doc(*d, sacx::export_standoff).unwrap();
        let control_side = control.with_doc(*d, sacx::export_standoff).unwrap();
        assert_eq!(cluster_side, control_side, "doc {d:?} diverged from the control");
        assert_eq!(verify.export(*d).unwrap(), cluster_side, "the wire export agrees");
    }

    drop(verify);
    server.shutdown();
}

#[test]
fn concurrent_clients_converge_through_faults_and_a_shard_outage() {
    // 4 writers × 60 edits = 240 gated edits ≥ the 200-edit floor.
    run_soak(4, 60, 0.06);
}

/// The heavy variant for the release-mode CI soak box.
#[test]
#[ignore]
fn release_soak_heavy() {
    run_soak(8, 150, 0.10);
}
