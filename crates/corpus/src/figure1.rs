//! A reconstruction of the paper's Figure 1: one manuscript fragment, four
//! conflicting encodings over identical content, all rooted at `<r>`.
//!
//! The original figure reproduces folio 36v of the Boethius manuscript; the
//! image is not in the paper text we work from, so the fragment below is a
//! *reconstruction*: genuine Old English (the opening of the Meters of
//! Boethius preface) carrying exactly the four encodings the paper
//! describes — physical lines, words/sentences, a restoration, and a damage
//! range — with the same conflict pattern (`<w>` vs `<line>`, `<res>`,
//! `<dmg>`; `<dmg>` vs `<res>`).

use goddag::Goddag;

/// The shared content of the fragment.
pub const CONTENT: &str = "ðus ælfred us ealdspell reahte cyning westsexna";

/// Physical structure: two manuscript lines. The scribe broke the word
/// "ealdspell" across the line end — `<line>` conflicts with `<w>`.
pub const PHYS: &str = "<r><line n=\"1\">ðus ælfred us eald</line><line n=\"2\">spell reahte cyning westsexna</line></r>";

/// Document structure: every word tagged, one sentence spanning the whole
/// fragment (crossing the line break).
pub const LING: &str = "<r><s><w>ðus</w> <w>ælfred</w> <w>us</w> <w>ealdspell</w> <w>reahte</w> <w>cyning</w> <w>westsexna</w></s></r>";

/// Restoration: "ldspell reahte" restored by the editor — starts mid-word
/// and crosses the line boundary.
pub const RES: &str =
    "<r>ðus ælfred us ea<res resp=\"ed\">ldspell reahte</res> cyning westsexna</r>";

/// Damage: "us ealdsp" damaged — ends mid-word, crosses the line boundary,
/// and overlaps the restoration.
pub const DMG: &str =
    "<r>ðus ælfred <dmg agent=\"fire\">us ealdsp</dmg>ell reahte cyning westsexna</r>";

/// The four distributed documents, labelled by hierarchy.
pub fn documents() -> Vec<(&'static str, &'static str)> {
    vec![("phys", PHYS), ("ling", LING), ("res", RES), ("dmg", DMG)]
}

/// Parse the fragment into its GODDAG (the structure the paper's Figure 2
/// draws).
pub fn goddag() -> Goddag {
    sacx::parse_distributed(&documents()).expect("the Figure 1 reconstruction always parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use goddag::check_invariants;

    #[test]
    fn four_encodings_share_content() {
        for (name, doc) in documents() {
            let d = sacx::extract(doc, name).unwrap();
            assert_eq!(d.content, CONTENT, "hierarchy {name}");
            assert_eq!(d.root_name.local, "r", "hierarchy {name}");
        }
    }

    #[test]
    fn goddag_has_paper_structure() {
        let g = goddag();
        check_invariants(&g).unwrap();
        assert_eq!(g.hierarchy_count(), 4);
        assert_eq!(g.find_elements("line").len(), 2);
        assert_eq!(g.find_elements("w").len(), 7);
        assert_eq!(g.find_elements("s").len(), 1);
        assert_eq!(g.find_elements("res").len(), 1);
        assert_eq!(g.find_elements("dmg").len(), 1);
    }

    #[test]
    fn conflicts_match_paper_description() {
        // Paper §2: "some of <w> markup are in conflict with <line>, <res>,
        // or <dmg>".
        let g = goddag();
        let res = g.find_elements("res")[0];
        let dmg = g.find_elements("dmg")[0];
        let s = g.find_elements("s")[0];
        let lines = g.find_elements("line");
        let words = g.find_elements("w");
        // The line break splits "ealdspell" → a w overlaps a line.
        assert!(words.iter().any(|&w| lines.iter().any(|&l| g.span(w).overlaps(g.span(l)))));
        // res starts mid-word ("ea|ldspell") → overlaps that w.
        assert!(words.iter().any(|&w| g.span(w).overlaps(g.span(res))));
        // dmg ends mid-word ("ealdsp|ell") → overlaps that w.
        assert!(words.iter().any(|&w| g.span(w).overlaps(g.span(dmg))));
        // res crosses the line boundary.
        assert!(lines.iter().filter(|&&l| g.span(l).intersects(g.span(res))).count() == 2);
        // dmg overlaps res.
        assert!(g.span(dmg).overlaps(g.span(res)));
        // The sentence crosses both lines (contains-or-overlaps them).
        assert!(lines.iter().all(|&l| g.span(s).intersects(g.span(l))));
    }

    #[test]
    fn single_document_union_impossible() {
        // The encodings genuinely conflict: merging all four into one
        // document must force fragmentation.
        let g = goddag();
        let frag = sacx::count_fragments(&g, &sacx::FragmentationOptions::default()).unwrap();
        assert!(frag >= 2, "expected several fragmented elements, got {frag}");
    }
}
