//! The synthetic manuscript generator: parameterized concurrent hierarchies
//! over pseudo-Old-English text.
//!
//! Reproduces exactly the feature classes the paper lists (§2: "manuscript
//! physical structure (lines, pages), document structure (words, sentences,
//! verses), text restorations, manuscript damages") with controlled size and
//! overlap density — the workload for every experiment in EXPERIMENTS.md.

use crate::text::{join_words, WordGen};
use goddag::{Goddag, GoddagBuilder, HierarchyId};
use xmlcore::{Attribute, QName};

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct Params {
    /// Number of words of content.
    pub words: usize,
    /// RNG seed (same seed ⇒ same manuscript).
    pub seed: u64,
    /// Mean words per physical line.
    pub words_per_line: usize,
    /// Lines per page.
    pub lines_per_page: usize,
    /// Mean words per sentence.
    pub words_per_sentence: usize,
    /// Probability that a word gets a `<w>` element.
    pub word_markup_prob: f64,
    /// Fraction of words covered by damage ranges (0 disables the editorial
    /// hierarchy).
    pub damage_density: f64,
    /// Fraction of words covered by restoration ranges.
    pub restoration_density: f64,
    /// Include the physical hierarchy.
    pub physical: bool,
    /// Include the linguistic hierarchy.
    pub linguistic: bool,
}

impl Default for Params {
    fn default() -> Params {
        Params {
            words: 500,
            seed: 42,
            words_per_line: 8,
            lines_per_page: 20,
            words_per_sentence: 12,
            word_markup_prob: 1.0,
            damage_density: 0.08,
            restoration_density: 0.05,
            physical: true,
            linguistic: true,
        }
    }
}

impl Params {
    /// Sized constructor with defaults otherwise.
    pub fn sized(words: usize) -> Params {
        Params { words, ..Params::default() }
    }

    /// How many hierarchies this parameter set produces.
    pub fn hierarchy_count(&self) -> usize {
        usize::from(self.physical)
            + usize::from(self.linguistic)
            + usize::from(self.damage_density > 0.0 || self.restoration_density > 0.0)
    }
}

/// A generated manuscript: the GODDAG plus the word inventory.
pub struct Manuscript {
    /// The document.
    pub goddag: Goddag,
    /// Byte range of every word.
    pub word_ranges: Vec<(usize, usize)>,
    /// Names of the hierarchies generated, in id order.
    pub hierarchy_names: Vec<String>,
}

impl Manuscript {
    /// The distributed-documents view (one XML document per hierarchy).
    pub fn distributed(&self) -> Vec<(String, String)> {
        self.goddag.to_distributed().expect("generated documents serialize")
    }
}

/// Generate a manuscript.
pub fn generate(params: &Params) -> Manuscript {
    let mut gen = WordGen::new(params.seed);
    let words = gen.words(params.words);
    let (content, word_ranges) = join_words(&words);

    let mut b = GoddagBuilder::new(QName::parse("r").unwrap());
    b.content(content.clone());
    let mut hierarchy_names = Vec::new();

    if params.physical {
        let phys = b.hierarchy("phys");
        hierarchy_names.push("phys".to_string());
        build_physical(&mut b, phys, params, &mut gen, &word_ranges);
    }
    if params.linguistic {
        let ling = b.hierarchy("ling");
        hierarchy_names.push("ling".to_string());
        build_linguistic(&mut b, ling, params, &mut gen, &word_ranges);
    }
    if params.damage_density > 0.0 || params.restoration_density > 0.0 {
        let edit = b.hierarchy("edit");
        hierarchy_names.push("edit".to_string());
        build_editorial(&mut b, edit, params, &mut gen, &word_ranges, &content);
    }

    let goddag = b.finish().expect("generator emits well-nested per-hierarchy ranges");
    Manuscript { goddag, word_ranges, hierarchy_names }
}

/// Pages of lines; lines end mid-content relative to sentences, which is the
/// overlap the paper's Figure 1 shows.
fn build_physical(
    b: &mut GoddagBuilder,
    h: HierarchyId,
    params: &Params,
    gen: &mut WordGen,
    word_ranges: &[(usize, usize)],
) {
    let n = word_ranges.len();
    let mut line_bounds: Vec<(usize, usize)> = Vec::new(); // word index ranges
    let mut w = 0usize;
    while w < n {
        let jitter = params.words_per_line.max(2) / 2;
        let len =
            params.words_per_line.max(1) + gen.jitter(0, jitter.max(1) * 2).saturating_sub(jitter);
        let end = (w + len.max(1)).min(n);
        line_bounds.push((w, end));
        w = end;
    }
    let mut line_no = 0usize;
    let mut page_no = 0usize;
    let mut i = 0usize;
    while i < line_bounds.len() {
        page_no += 1;
        let page_end = (i + params.lines_per_page.max(1)).min(line_bounds.len());
        let page_start_byte = word_ranges[line_bounds[i].0].0;
        let page_end_byte = word_ranges[line_bounds[page_end - 1].1 - 1].1;
        b.range(
            h,
            "page",
            vec![Attribute::new("no", page_no.to_string())],
            page_start_byte,
            page_end_byte,
        )
        .expect("page ranges are word-aligned");
        for &(ws, we) in &line_bounds[i..page_end] {
            line_no += 1;
            b.range(
                h,
                "line",
                vec![Attribute::new("n", line_no.to_string())],
                word_ranges[ws].0,
                word_ranges[we - 1].1,
            )
            .expect("line ranges are word-aligned");
        }
        i = page_end;
    }
}

/// Sentences of words (sentence boundaries independent of line boundaries).
fn build_linguistic(
    b: &mut GoddagBuilder,
    h: HierarchyId,
    params: &Params,
    gen: &mut WordGen,
    word_ranges: &[(usize, usize)],
) {
    let n = word_ranges.len();
    let mut s_no = 0usize;
    let mut w = 0usize;
    while w < n {
        let jitter = params.words_per_sentence.max(2) / 2;
        let len = params.words_per_sentence.max(1)
            + gen.jitter(0, jitter.max(1) * 2).saturating_sub(jitter);
        let end = (w + len.max(1)).min(n);
        s_no += 1;
        b.range(
            h,
            "s",
            vec![Attribute::new("n", s_no.to_string())],
            word_ranges[w].0,
            word_ranges[end - 1].1,
        )
        .expect("sentence ranges are word-aligned");
        for (wi, &(ws, we)) in word_ranges[w..end].iter().enumerate() {
            if gen.chance(params.word_markup_prob) {
                b.range(h, "w", vec![Attribute::new("n", (w + wi + 1).to_string())], ws, we)
                    .expect("word ranges are word-aligned");
            }
        }
        w = end;
    }
}

/// Damage/restoration ranges that *deliberately* start and end mid-word, so
/// they overlap both the physical and linguistic hierarchies.
fn build_editorial(
    b: &mut GoddagBuilder,
    h: HierarchyId,
    params: &Params,
    gen: &mut WordGen,
    word_ranges: &[(usize, usize)],
    content: &str,
) {
    let n = word_ranges.len();
    if n == 0 {
        return;
    }
    let mut spans: Vec<(usize, usize, &'static str)> = Vec::new();
    let mut place = |density: f64, tag: &'static str, gen: &mut WordGen| {
        if density <= 0.0 {
            return;
        }
        let target_words = ((n as f64) * density).ceil() as usize;
        let mut covered = 0usize;
        let mut attempt = 0usize;
        while covered < target_words && attempt < n * 4 {
            attempt += 1;
            let start_word = gen.jitter(0, n);
            let span_words = 1 + gen.jitter(0, 4);
            let end_word = (start_word + span_words).min(n - 1);
            // Mid-word start/end to force overlap with <w> markup.
            let (ws, we) = (word_ranges[start_word], word_ranges[end_word]);
            let start = mid_char(content, ws.0, ws.1);
            let end = mid_char(content, we.0, we.1).min(content.len());
            if start >= end {
                continue;
            }
            // Editorial ranges must not cross each other (same hierarchy).
            if spans.iter().any(|&(s, e, _)| start < e && s < end) {
                continue;
            }
            spans.push((start, end, tag));
            covered += end_word - start_word + 1;
        }
    };
    place(params.damage_density, "dmg", gen);
    place(params.restoration_density, "res", gen);
    spans.sort();
    for (i, (start, end, tag)) in spans.into_iter().enumerate() {
        b.range(h, tag, vec![Attribute::new("id", format!("{tag}{}", i + 1))], start, end)
            .expect("editorial ranges are disjoint");
    }
}

/// A single mixed-content host: one `<s>` spanning `words` `<w>` elements
/// with a non-whitespace run (` · `) between consecutive words, under a
/// `ling` hierarchy — `2·words − 1` child items. This is the shape overlap
/// annotation produces on dense hosts and the standard workload for the
/// prevalidation benchmarks, the `prevalid_repro` example, and the CI perf
/// smoke test. Returns the document, the hierarchy, and each word's byte
/// range.
pub fn mixed_host(words: usize) -> (Goddag, HierarchyId, Vec<(usize, usize)>) {
    assert!(words > 0, "a host needs at least one word");
    let mut content = String::new();
    let mut ranges = Vec::new();
    for i in 0..words {
        if i > 0 {
            content.push_str(" · ");
        }
        let word = format!("word{i}");
        let s = content.len();
        content.push_str(&word);
        ranges.push((s, content.len()));
    }
    let mut b = GoddagBuilder::new(QName::parse("r").unwrap());
    b.content(content);
    let h = b.hierarchy("ling");
    b.range(h, "s", vec![], ranges[0].0, ranges.last().unwrap().1)
        .expect("sentence range is word-aligned");
    for &(s, e) in &ranges {
        b.range(h, "w", vec![], s, e).expect("word ranges are word-aligned");
    }
    (b.finish().expect("generator emits well-nested ranges"), h, ranges)
}

/// A char boundary near the middle of `[s, e)`.
fn mid_char(content: &str, s: usize, e: usize) -> usize {
    let mut m = s + (e - s) / 2;
    while m < e && !content.is_char_boundary(m) {
        m += 1;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use goddag::check_invariants;

    #[test]
    fn generates_valid_goddag() {
        let ms = generate(&Params::default());
        check_invariants(&ms.goddag).unwrap();
        assert_eq!(ms.goddag.hierarchy_count(), 3);
        assert!(ms.goddag.element_count() > 500); // words + lines + pages + ...
    }

    #[test]
    fn deterministic() {
        let a = generate(&Params::default());
        let b = generate(&Params::default());
        assert_eq!(a.goddag.content(), b.goddag.content());
        assert_eq!(a.goddag.element_count(), b.goddag.element_count());
    }

    #[test]
    fn sized_scaling() {
        let small = generate(&Params::sized(100));
        let large = generate(&Params::sized(1000));
        assert!(large.goddag.content_len() > small.goddag.content_len() * 5);
        assert!(large.goddag.element_count() > small.goddag.element_count() * 5);
    }

    #[test]
    fn produces_real_overlap() {
        let ms = generate(&Params::default());
        let g = &ms.goddag;
        // At least one damage/restoration overlaps a word or line.
        let ev = expath::Evaluator::with_index(g);
        let hits = ev.select("//dmg/overlapping::* | //res/overlapping::*").unwrap();
        assert!(!hits.is_empty(), "editorial markup must overlap other hierarchies");
        // And sentences overlap lines somewhere.
        let s_lines = ev.select("//s/overlapping::phys:line").unwrap();
        assert!(!s_lines.is_empty());
    }

    #[test]
    fn hierarchies_togglable() {
        let p = Params {
            physical: false,
            damage_density: 0.0,
            restoration_density: 0.0,
            ..Params::default()
        };
        let ms = generate(&p);
        assert_eq!(ms.goddag.hierarchy_count(), 1);
        assert_eq!(ms.hierarchy_names, ["ling"]);
    }

    #[test]
    fn distributed_docs_reparse() {
        let ms = generate(&Params::sized(120));
        let docs = ms.distributed();
        assert_eq!(docs.len(), 3);
        let g2 = sacx::parse_distributed(&docs).unwrap();
        assert_eq!(g2.content(), ms.goddag.content());
        assert_eq!(g2.element_count(), ms.goddag.element_count());
    }

    #[test]
    fn mixed_host_shape() {
        let (g, h, ranges) = mixed_host(5);
        check_invariants(&g).unwrap();
        assert_eq!(ranges.len(), 5);
        let s = g.find_elements("s")[0];
        // 5 <w> children + 4 non-whitespace text runs between them.
        assert_eq!(g.children_in(s, h).len(), 9);
        assert_eq!(g.find_elements("w").len(), 5);
    }

    #[test]
    fn word_ranges_match_content() {
        let ms = generate(&Params::sized(50));
        let content = ms.goddag.content();
        for &(s, e) in &ms.word_ranges {
            assert!(content.is_char_boundary(s) && content.is_char_boundary(e));
            assert!(!content[s..e].contains(' '));
        }
    }
}
