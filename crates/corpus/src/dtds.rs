//! Hierarchy DTDs for the manuscript vocabularies (substituting for the TEI
//! P4 DTDs the paper's edition uses — same formal power: element
//! declarations, content models, attribute lists).

use xmlcore::dtd::{parse_dtd, Dtd};

/// Physical structure: pages of lines (mixed content lines), page breaks.
pub const PHYS_DTD: &str = "
    <!ELEMENT r (#PCDATA | page | line | pb)*>
    <!ELEMENT page (#PCDATA | line | pb)*>
    <!ATTLIST page no NMTOKEN #IMPLIED>
    <!ELEMENT line (#PCDATA)>
    <!ATTLIST line n NMTOKEN #IMPLIED>
    <!ELEMENT pb EMPTY>
    <!ATTLIST pb no NMTOKEN #IMPLIED>
";

/// Document structure: sentences, phrases, words.
pub const LING_DTD: &str = "
    <!ELEMENT r (#PCDATA | s | w)*>
    <!ELEMENT s (#PCDATA | phrase | w)*>
    <!ATTLIST s n NMTOKEN #IMPLIED>
    <!ELEMENT phrase (#PCDATA | w)*>
    <!ELEMENT w (#PCDATA)>
    <!ATTLIST w n NMTOKEN #IMPLIED type CDATA #IMPLIED>
";

/// Editorial annotations: damage, restoration, additions.
pub const EDIT_DTD: &str = "
    <!ELEMENT r (#PCDATA | dmg | res | add)*>
    <!ELEMENT dmg (#PCDATA | res)*>
    <!ATTLIST dmg id ID #IMPLIED agent CDATA #IMPLIED>
    <!ELEMENT res (#PCDATA)>
    <!ATTLIST res id ID #IMPLIED resp CDATA #IMPLIED>
    <!ELEMENT add (#PCDATA)>
";

/// Parsed physical DTD.
pub fn phys() -> Dtd {
    parse_dtd(PHYS_DTD).expect("PHYS_DTD parses")
}

/// Parsed linguistic DTD.
pub fn ling() -> Dtd {
    parse_dtd(LING_DTD).expect("LING_DTD parses")
}

/// Parsed editorial DTD.
pub fn edit() -> Dtd {
    parse_dtd(EDIT_DTD).expect("EDIT_DTD parses")
}

/// Attach the standard DTDs to a generated manuscript's hierarchies by name.
pub fn attach_standard(g: &mut goddag::Goddag) {
    for (name, dtd) in [("phys", phys()), ("ling", ling()), ("edit", edit())] {
        if let Some(h) = g.hierarchy_by_name(name) {
            g.set_dtd(h, dtd).expect("hierarchy id from the same document");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_dtds_parse() {
        assert!(phys().element("line").is_some());
        assert!(ling().element("w").is_some());
        assert!(edit().element("dmg").is_some());
    }

    #[test]
    fn generated_manuscript_validates() {
        let ms = crate::manuscript::generate(&crate::manuscript::Params::sized(200));
        let mut g = ms.goddag;
        attach_standard(&mut g);
        for (h, report) in goddag::validate_all(&g) {
            assert!(
                report.is_valid(),
                "hierarchy {h} invalid: {:?}",
                &report.errors[..report.errors.len().min(5)]
            );
        }
    }

    #[test]
    fn figure1_validates_against_dtds() {
        let mut g = crate::figure1::goddag();
        // figure1 hierarchies: phys, ling, res, dmg — res/dmg both use the
        // editorial vocabulary.
        attach_standard(&mut g);
        for name in ["res", "dmg"] {
            let h = g.hierarchy_by_name(name).unwrap();
            g.set_dtd(h, edit()).unwrap();
        }
        for (h, report) in goddag::validate_all(&g) {
            assert!(report.is_valid(), "hierarchy {h}: {:?}", report.errors);
        }
    }
}
