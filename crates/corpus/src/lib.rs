//! # corpus — workloads for the reproduction
//!
//! The paper demonstrates on an image-based electronic edition of the
//! 10th-century Old English Boethius manuscript (BL MS Cotton Otho A. vi),
//! which we cannot ship. This crate provides the substitute documented in
//! DESIGN.md §3.5:
//!
//! * [`manuscript::generate`] — a parameterized synthetic manuscript with
//!   the paper's exact feature classes (pages/lines, sentences/words,
//!   damages/restorations) and controlled size, hierarchy count and overlap
//!   density;
//! * [`figure1`] — a pinned reconstruction of the paper's Figure 1 fragment
//!   (four conflicting encodings of one piece of Old English);
//! * [`dtds`] — hierarchy DTDs standing in for the TEI P4 schemas.

pub mod dtds;
pub mod figure1;
pub mod manuscript;
pub mod text;

pub use manuscript::{generate, mixed_host, Manuscript, Params};
