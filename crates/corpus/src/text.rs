//! Pseudo-Old-English text generation.
//!
//! The paper demos on the 10th-century OE manuscript of Boethius'
//! *Consolation of Philosophy* (British Library MS Cotton Otho A. vi), which
//! we cannot ship. The framework's behaviour depends only on the *shape* of
//! the text (word/sentence lengths, markup positions), so we synthesize
//! OE-looking words from a syllable inventory drawn from the period's
//! phonology — enough to make examples readable and encodings realistic.

/// Minimal deterministic PRNG (splitmix64) — the build environment resolves
/// no external crates, so this stands in for `rand::StdRng`. Statistical
/// quality is irrelevant here: only determinism per seed and a roughly
/// uniform spread matter for workload shape.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Onsets, nuclei and codas sampled from Old English orthography.
const ONSETS: &[&str] = &[
    "", "b", "c", "d", "f", "g", "h", "hl", "hr", "hw", "l", "m", "n", "r", "s", "sc", "st", "sw",
    "t", "th", "þ", "ð", "w", "wr",
];
const NUCLEI: &[&str] = &["a", "æ", "e", "ea", "eo", "i", "ie", "o", "u", "y"];
const CODAS: &[&str] = &[
    "", "", "d", "f", "g", "l", "ld", "m", "n", "nd", "ng", "nn", "r", "rd", "s", "st", "t", "ð",
    "þ",
];

/// A deterministic pseudo-Old-English word source.
pub struct WordGen {
    rng: SplitMix64,
}

impl WordGen {
    /// Seeded construction — the same seed yields the same corpus.
    pub fn new(seed: u64) -> WordGen {
        WordGen { rng: SplitMix64(seed) }
    }

    /// One word of 1–3 syllables.
    pub fn word(&mut self) -> String {
        let syllables = 1 + self.rng.below(3);
        let mut w = String::new();
        for _ in 0..syllables {
            w.push_str(ONSETS[self.rng.below(ONSETS.len())]);
            w.push_str(NUCLEI[self.rng.below(NUCLEI.len())]);
            w.push_str(CODAS[self.rng.below(CODAS.len())]);
        }
        w
    }

    /// `n` words.
    pub fn words(&mut self, n: usize) -> Vec<String> {
        (0..n).map(|_| self.word()).collect()
    }

    /// Random number in a range (shared RNG for structure jitter).
    pub fn jitter(&mut self, lo: usize, hi: usize) -> usize {
        if lo >= hi {
            lo
        } else {
            lo + self.rng.below(hi - lo)
        }
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        self.rng.unit_f64() < p.clamp(0.0, 1.0)
    }
}

/// Join words with single spaces, returning the content and each word's
/// byte range.
pub fn join_words(words: &[String]) -> (String, Vec<(usize, usize)>) {
    let mut content = String::new();
    let mut ranges = Vec::with_capacity(words.len());
    for (i, w) in words.iter().enumerate() {
        if i > 0 {
            content.push(' ');
        }
        let start = content.len();
        content.push_str(w);
        ranges.push((start, content.len()));
    }
    (content, ranges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<String> = WordGen::new(7).words(20);
        let b: Vec<String> = WordGen::new(7).words(20);
        let c: Vec<String> = WordGen::new(8).words(20);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn words_are_nonempty_and_wordlike() {
        let words = WordGen::new(1).words(200);
        for w in &words {
            assert!(!w.is_empty());
            assert!(w.chars().all(|c| c.is_alphabetic()), "{w:?}");
        }
    }

    #[test]
    fn join_words_ranges_are_exact() {
        let words = vec!["swa".to_string(), "hwa".into(), "ðe".into()];
        let (content, ranges) = join_words(&words);
        assert_eq!(content, "swa hwa ðe");
        for (w, &(s, e)) in words.iter().zip(&ranges) {
            assert_eq!(&content[s..e], w);
        }
    }

    #[test]
    fn jitter_bounds() {
        let mut g = WordGen::new(3);
        for _ in 0..100 {
            let v = g.jitter(2, 5);
            assert!((2..5).contains(&v));
        }
        assert_eq!(g.jitter(4, 4), 4);
    }
}
