//! Hierarchy tagging via QName prefixes.
//!
//! Single-document representations (fragmentation, milestones) need to say
//! which hierarchy each element belongs to. The convention — also usable
//! with real namespace declarations — is: the element's prefix names its
//! hierarchy (`phys:line` → hierarchy `phys`), and unprefixed elements belong
//! to the configured default hierarchy.

use xmlcore::QName;

/// Split an element name into `(hierarchy name, local name)`.
pub fn split_prefix(name: &QName, default_hierarchy: &str) -> (String, String) {
    match &name.prefix {
        Some(p) => (p.clone(), name.local.clone()),
        None => (default_hierarchy.to_string(), name.local.clone()),
    }
}

/// The exported element name for an element whose hierarchy is `hierarchy`:
/// unprefixed when it belongs to the default hierarchy, `hierarchy:local`
/// otherwise. Any original prefix is replaced by the hierarchy name.
pub fn exported_name(name: &QName, hierarchy: &str, default_hierarchy: &str) -> QName {
    if hierarchy == default_hierarchy {
        QName::local(name.local.clone())
    } else {
        QName::prefixed(hierarchy, name.local.clone())
    }
}

/// Hierarchy names in first-appearance order, with the default hierarchy
/// included (first) iff it is actually used.
pub fn hierarchy_registry(prefixes: &[String], default_hierarchy: &str) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    if prefixes.iter().any(|p| p == default_hierarchy) {
        out.push(default_hierarchy.to_string());
    }
    for p in prefixes {
        if !out.contains(p) {
            out.push(p.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_with_and_without_prefix() {
        let q = QName::parse("phys:line").unwrap();
        assert_eq!(split_prefix(&q, "main"), ("phys".into(), "line".into()));
        let q = QName::parse("w").unwrap();
        assert_eq!(split_prefix(&q, "main"), ("main".into(), "w".into()));
    }

    #[test]
    fn exported_name_prefixes_non_default() {
        let q = QName::parse("line").unwrap();
        assert_eq!(exported_name(&q, "phys", "main").to_string(), "phys:line");
        assert_eq!(exported_name(&q, "main", "main").to_string(), "line");
        // An original prefix is replaced by the hierarchy name.
        let q = QName::parse("old:line").unwrap();
        assert_eq!(exported_name(&q, "phys", "main").to_string(), "phys:line");
    }

    #[test]
    fn registry_order_and_default() {
        let prefixes = vec!["phys".to_string(), "main".into(), "ling".into(), "phys".into()];
        assert_eq!(hierarchy_registry(&prefixes, "main"), ["main", "phys", "ling"]);
        let no_default = vec!["phys".to_string(), "ling".into()];
        assert_eq!(hierarchy_registry(&no_default, "main"), ["phys", "ling"]);
    }
}
