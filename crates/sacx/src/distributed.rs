//! The distributed-documents representation: N well-formed XML documents
//! with identical content and identical root, one per hierarchy (the
//! paper's Figure 1 and the "virtual union of XML documents" of §3).

use crate::error::{Result, SacxError};
use crate::extract::{extract, ExtractedDoc};
use goddag::{Goddag, GoddagBuilder};

/// Verify that all extracted documents agree on root name and content.
pub(crate) fn check_agreement(docs: &[(String, ExtractedDoc)]) -> Result<()> {
    let Some((_, first)) = docs.first() else {
        return Err(SacxError::Empty);
    };
    for (label, d) in &docs[1..] {
        if d.root_name != first.root_name {
            return Err(SacxError::RootMismatch {
                expected: first.root_name.to_string(),
                found: d.root_name.to_string(),
                hierarchy: label.clone(),
            });
        }
        if d.content != first.content {
            let offset = first
                .content
                .bytes()
                .zip(d.content.bytes())
                .position(|(a, b)| a != b)
                .unwrap_or_else(|| first.content.len().min(d.content.len()));
            let ctx = |s: &str| -> String {
                let from = s.floor_char_boundary_compat(offset.saturating_sub(4));
                let to = s.floor_char_boundary_compat((offset + 8).min(s.len()));
                s[from..to].to_string()
            };
            return Err(SacxError::ContentMismatch {
                hierarchy: label.clone(),
                offset,
                expected: ctx(&first.content),
                found: ctx(&d.content),
            });
        }
    }
    Ok(())
}

// `str::floor_char_boundary` is unstable; provide the same behaviour.
trait FloorCharBoundary {
    fn floor_char_boundary_compat(&self, index: usize) -> usize;
}

impl FloorCharBoundary for str {
    fn floor_char_boundary_compat(&self, index: usize) -> usize {
        if index >= self.len() {
            return self.len();
        }
        let mut i = index;
        while !self.is_char_boundary(i) {
            i -= 1;
        }
        i
    }
}

/// Parse a distributed document: one `(hierarchy name, xml text)` pair per
/// hierarchy. Returns the unified GODDAG.
pub fn parse_distributed<N, X>(docs: &[(N, X)]) -> Result<Goddag>
where
    N: AsRef<str>,
    X: AsRef<str>,
{
    let extracted: Vec<(String, ExtractedDoc)> = docs
        .iter()
        .map(|(name, xml)| Ok((name.as_ref().to_string(), extract(xml.as_ref(), name.as_ref())?)))
        .collect::<Result<_>>()?;
    check_agreement(&extracted)?;

    let (_, first) = &extracted[0];
    let mut b = GoddagBuilder::new(first.root_name.clone());
    b.root_attrs(first.root_attrs.clone());
    b.content(first.content.clone());
    for (label, doc) in &extracted {
        let h = b.hierarchy(label.clone());
        for r in &doc.ranges {
            b.range_spec(goddag::RangeSpec {
                hierarchy: h,
                name: r.name.clone(),
                attrs: r.attrs.clone(),
                start: r.start,
                end: r.end,
            });
        }
    }
    Ok(b.finish()?)
}

/// Export a GODDAG back to the distributed representation (one document per
/// hierarchy). This is [`Goddag::to_distributed`] with SACX error wrapping —
/// provided here so the import/export pair lives in one module.
pub fn export_distributed(g: &Goddag) -> Result<Vec<(String, String)>> {
    Ok(g.to_distributed()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use goddag::check_invariants;

    const PHYS: &str = "<r><line>swa hwa swe</line><line>nu sculon</line></r>";
    const LING: &str = "<r><w>swa</w> <w>hwa</w> <s><w>swenu</w> <w>sculon</w></s></r>";

    #[test]
    fn parse_two_hierarchies() {
        // Both docs must share content: "swa hwa swenu sculon".
        let g = parse_distributed(&[("phys", PHYS), ("ling", LING)]).unwrap();
        assert_eq!(g.content(), "swa hwa swenu sculon");
        assert_eq!(g.hierarchy_count(), 2);
        assert_eq!(g.find_elements("line").len(), 2);
        assert_eq!(g.find_elements("w").len(), 4);
        check_invariants(&g).unwrap();
        // The sentence crosses the line boundary.
        let s = g.find_elements("s")[0];
        let lines = g.find_elements("line");
        assert!(g.span(s).overlaps(g.span(lines[1])) || g.span(s).overlaps(g.span(lines[0])));
    }

    #[test]
    fn roundtrip_export_import() {
        let g = parse_distributed(&[("phys", PHYS), ("ling", LING)]).unwrap();
        let docs = export_distributed(&g).unwrap();
        let g2 = parse_distributed(&docs).unwrap();
        assert_eq!(g2.content(), g.content());
        assert_eq!(g2.element_count(), g.element_count());
        for h in g.hierarchy_ids() {
            assert_eq!(g.to_xml(h).unwrap(), g2.to_xml(h).unwrap());
        }
    }

    #[test]
    fn content_mismatch_reported_with_offset() {
        let err = parse_distributed(&[("a", "<r>abcdef</r>"), ("b", "<r>abcXef</r>")]).unwrap_err();
        match err {
            SacxError::ContentMismatch { offset, hierarchy, .. } => {
                assert_eq!(offset, 3);
                assert_eq!(hierarchy, "b");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn root_mismatch_reported() {
        let err = parse_distributed(&[("a", "<r>x</r>"), ("b", "<root>x</root>")]).unwrap_err();
        assert!(matches!(err, SacxError::RootMismatch { .. }));
    }

    #[test]
    fn length_mismatch_reported() {
        let err = parse_distributed(&[("a", "<r>abc</r>"), ("b", "<r>abcd</r>")]).unwrap_err();
        match err {
            SacxError::ContentMismatch { offset, .. } => assert_eq!(offset, 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn empty_input_rejected() {
        let docs: [(&str, &str); 0] = [];
        assert!(matches!(parse_distributed(&docs), Err(SacxError::Empty)));
    }

    #[test]
    fn single_document_degenerates_to_dom_like() {
        let g = parse_distributed(&[("only", PHYS)]).unwrap();
        assert_eq!(g.hierarchy_count(), 1);
        assert_eq!(g.to_xml(goddag::HierarchyId(0)).unwrap(), PHYS);
    }

    #[test]
    fn crossing_within_one_document_rejected() {
        // A single doc can't even express crossing markup (the reader
        // rejects it), so this arrives via two ranges in one hierarchy being
        // fed from elsewhere — covered by goddag tests. Here: malformed XML.
        let err = parse_distributed(&[("a", "<r><x><y></x></y></r>")]).unwrap_err();
        assert!(matches!(err, SacxError::Xml { .. }));
    }

    #[test]
    fn four_hierarchies_figure1_style() {
        // A miniature of the paper's Figure 1: same content, 4 encodings.
        let content = "ða ic þa ðis leoð";
        let phys = format!("<r><line>{}</line></r>", content);
        let ling = "<r><w>ða</w> <w>ic</w> <w>þa</w> <w>ðis</w> <w>leoð</w></r>".to_string();
        let res = "<r>ða ic <res>þa ðis</res> leoð</r>".to_string();
        let dmg = "<r>ða <dmg>ic þa</dmg> ðis leoð</r>".to_string();
        let g = parse_distributed(&[
            ("phys", phys.as_str()),
            ("ling", ling.as_str()),
            ("res", res.as_str()),
            ("dmg", dmg.as_str()),
        ])
        .unwrap();
        assert_eq!(g.hierarchy_count(), 4);
        assert_eq!(g.content(), content);
        check_invariants(&g).unwrap();
        // dmg overlaps res (ic þa vs þa ðis).
        let d = g.find_elements("dmg")[0];
        let r = g.find_elements("res")[0];
        assert!(g.span(d).overlaps(g.span(r)));
    }
}
