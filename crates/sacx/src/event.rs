//! The merged SAX-for-concurrent-XML event stream (SACX proper).
//!
//! `merge_events` interleaves the markup events of all hierarchies into a
//! single stream ordered by content offset, with deterministic tie-breaking
//! (ends before empties before starts; outer-before-inner for starts,
//! inner-before-outer for ends). Streaming consumers — validators, filters,
//! progress meters — can subscribe via [`SacxHandler`] without materializing
//! a GODDAG; the GODDAG builder itself is just one consumer of the same
//! ordering rules.

use crate::extract::ExtractedDoc;
use goddag::HierarchyId;
use xmlcore::{Attribute, QName};

/// One event in the merged concurrent-markup stream.
#[derive(Debug, Clone, PartialEq)]
pub enum SacxEvent {
    /// An element of `hierarchy` opens at `offset`.
    Start { hierarchy: HierarchyId, name: QName, attrs: Vec<Attribute>, offset: usize },
    /// An element of `hierarchy` closes at `offset`.
    End { hierarchy: HierarchyId, name: QName, offset: usize },
    /// An empty element (milestone) of `hierarchy` at `offset`.
    Empty { hierarchy: HierarchyId, name: QName, attrs: Vec<Attribute>, offset: usize },
    /// The content bytes `start..end` (uninterrupted by any markup event).
    Text { start: usize, end: usize },
}

impl SacxEvent {
    /// The content offset the event fires at.
    pub fn offset(&self) -> usize {
        match self {
            SacxEvent::Start { offset, .. }
            | SacxEvent::End { offset, .. }
            | SacxEvent::Empty { offset, .. } => *offset,
            SacxEvent::Text { start, .. } => *start,
        }
    }
}

/// Callback interface for streaming consumption.
pub trait SacxHandler {
    /// Start of an element in `hierarchy`.
    fn start_element(&mut self, hierarchy: HierarchyId, name: &QName, attrs: &[Attribute]);
    /// End of an element in `hierarchy`.
    fn end_element(&mut self, hierarchy: HierarchyId, name: &QName);
    /// An empty element in `hierarchy`.
    fn empty_element(&mut self, hierarchy: HierarchyId, name: &QName, attrs: &[Attribute]) {
        self.start_element(hierarchy, name, attrs);
        self.end_element(hierarchy, name);
    }
    /// A run of shared text content.
    fn characters(&mut self, text: &str);
}

/// Merge the extracted documents (one per hierarchy, in hierarchy-id order)
/// into a single event stream.
///
/// Tie-breaking at equal offsets follows the GODDAG builder exactly:
/// 1. `End` events (inner ranges first);
/// 2. `Empty` events (document order);
/// 3. `Start` events (outer ranges first);
///
/// and among equal keys, hierarchy id then extraction order.
pub fn merge_events(docs: &[ExtractedDoc]) -> Vec<SacxEvent> {
    #[derive(Clone)]
    struct Raw {
        offset: usize,
        class: u8, // 0 = end, 1 = empty, 2 = start
        // Sub-keys resolved below.
        other_end: usize,
        hierarchy: u16,
        order: usize,
        ev: SacxEvent,
    }
    let mut raw: Vec<Raw> = Vec::new();
    for (h, doc) in docs.iter().enumerate() {
        let hid = HierarchyId(h as u16);
        for (i, r) in doc.ranges.iter().enumerate() {
            if r.empty || r.start == r.end {
                raw.push(Raw {
                    offset: r.start,
                    class: 1,
                    other_end: r.start,
                    hierarchy: h as u16,
                    order: i,
                    ev: SacxEvent::Empty {
                        hierarchy: hid,
                        name: r.name.clone(),
                        attrs: r.attrs.clone(),
                        offset: r.start,
                    },
                });
            } else {
                raw.push(Raw {
                    offset: r.start,
                    class: 2,
                    other_end: r.end,
                    hierarchy: h as u16,
                    order: i,
                    ev: SacxEvent::Start {
                        hierarchy: hid,
                        name: r.name.clone(),
                        attrs: r.attrs.clone(),
                        offset: r.start,
                    },
                });
                raw.push(Raw {
                    offset: r.end,
                    class: 0,
                    other_end: r.start,
                    hierarchy: h as u16,
                    order: i,
                    ev: SacxEvent::End { hierarchy: hid, name: r.name.clone(), offset: r.end },
                });
            }
        }
    }
    raw.sort_by(|a, b| {
        (a.offset, a.class).cmp(&(b.offset, b.class)).then_with(|| match a.class {
            // Ends: inner first — larger start offset, then later order.
            0 => b
                .other_end
                .cmp(&a.other_end)
                .then(a.hierarchy.cmp(&b.hierarchy))
                .then(b.order.cmp(&a.order)),
            // Empties: hierarchy, then document order.
            1 => a.hierarchy.cmp(&b.hierarchy).then(a.order.cmp(&b.order)),
            // Starts: outer first — larger end offset, then earlier order.
            _ => b
                .other_end
                .cmp(&a.other_end)
                .then(a.hierarchy.cmp(&b.hierarchy))
                .then(a.order.cmp(&b.order)),
        })
    });

    // Interleave text segments between event offsets.
    let content_len = docs.first().map_or(0, |d| d.content.len());
    let mut out: Vec<SacxEvent> = Vec::with_capacity(raw.len() * 2);
    let mut cursor = 0usize;
    for r in raw {
        if r.offset > cursor {
            out.push(SacxEvent::Text { start: cursor, end: r.offset });
            cursor = r.offset;
        }
        out.push(r.ev);
    }
    if cursor < content_len {
        out.push(SacxEvent::Text { start: cursor, end: content_len });
    }
    out
}

/// Drive a handler over a merged stream.
pub fn drive<H: SacxHandler>(events: &[SacxEvent], content: &str, handler: &mut H) {
    for ev in events {
        match ev {
            SacxEvent::Start { hierarchy, name, attrs, .. } => {
                handler.start_element(*hierarchy, name, attrs)
            }
            SacxEvent::End { hierarchy, name, .. } => handler.end_element(*hierarchy, name),
            SacxEvent::Empty { hierarchy, name, attrs, .. } => {
                handler.empty_element(*hierarchy, name, attrs)
            }
            SacxEvent::Text { start, end } => handler.characters(&content[*start..*end]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::extract;

    fn merged(docs: &[&str]) -> (Vec<SacxEvent>, String) {
        let extracted: Vec<ExtractedDoc> =
            docs.iter().enumerate().map(|(i, d)| extract(d, &format!("h{i}")).unwrap()).collect();
        let content = extracted[0].content.clone();
        (merge_events(&extracted), content)
    }

    #[test]
    fn single_doc_stream_order() {
        let (evs, _) = merged(&["<r><a>xy</a>z</r>"]);
        let kinds: Vec<&str> = evs
            .iter()
            .map(|e| match e {
                SacxEvent::Start { .. } => "S",
                SacxEvent::End { .. } => "E",
                SacxEvent::Empty { .. } => "M",
                SacxEvent::Text { .. } => "T",
            })
            .collect();
        assert_eq!(kinds, ["S", "T", "E", "T"]);
    }

    #[test]
    fn overlap_interleaves_by_offset() {
        // h0: <a> covers 0..4; h1: <b> covers 2..6 of "abcdef".
        let (evs, _) = merged(&["<r><a>abcd</a>ef</r>", "<r>ab<b>cdef</b></r>"]);
        let trace: Vec<String> = evs
            .iter()
            .map(|e| match e {
                SacxEvent::Start { name, offset, .. } => format!("S{name}@{offset}"),
                SacxEvent::End { name, offset, .. } => format!("E{name}@{offset}"),
                SacxEvent::Empty { name, offset, .. } => format!("M{name}@{offset}"),
                SacxEvent::Text { start, end } => format!("T{start}..{end}"),
            })
            .collect();
        assert_eq!(trace, ["Sa@0", "T0..2", "Sb@2", "T2..4", "Ea@4", "T4..6", "Eb@6"]);
    }

    #[test]
    fn ties_ends_before_starts() {
        // a ends exactly where b starts.
        let (evs, _) = merged(&["<r><a>ab</a><b>cd</b></r>"]);
        let pos_ea = evs
            .iter()
            .position(|e| matches!(e, SacxEvent::End { name, .. } if name.local == "a"))
            .unwrap();
        let pos_sb = evs
            .iter()
            .position(|e| matches!(e, SacxEvent::Start { name, .. } if name.local == "b"))
            .unwrap();
        assert!(pos_ea < pos_sb);
    }

    #[test]
    fn outer_starts_first_inner_ends_first() {
        let (evs, _) = merged(&["<r><o><i>x</i>y</o></r>"]);
        let starts: Vec<_> = evs
            .iter()
            .filter_map(|e| match e {
                SacxEvent::Start { name, .. } => Some(name.local.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(starts, ["o", "i"]);
        // Co-located end at 1 for i; o ends later — check i's end comes first.
        let ends: Vec<_> = evs
            .iter()
            .filter_map(|e| match e {
                SacxEvent::End { name, .. } => Some(name.local.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(ends, ["i", "o"]);
    }

    #[test]
    fn empty_elements_between_ends_and_starts() {
        let (evs, _) = merged(&["<r><a>ab</a><pb/><b>cd</b></r>"]);
        let trace: Vec<&str> = evs
            .iter()
            .map(|e| match e {
                SacxEvent::Start { .. } => "S",
                SacxEvent::End { .. } => "E",
                SacxEvent::Empty { .. } => "M",
                SacxEvent::Text { .. } => "T",
            })
            .collect();
        assert_eq!(trace, ["S", "T", "E", "M", "S", "T", "E"]);
    }

    #[test]
    fn handler_sees_full_text() {
        struct Collect {
            text: String,
            starts: usize,
            ends: usize,
        }
        impl SacxHandler for Collect {
            fn start_element(&mut self, _: HierarchyId, _: &QName, _: &[Attribute]) {
                self.starts += 1;
            }
            fn end_element(&mut self, _: HierarchyId, _: &QName) {
                self.ends += 1;
            }
            fn characters(&mut self, text: &str) {
                self.text.push_str(text);
            }
        }
        let (evs, content) = merged(&["<r><a>abcd</a>ef</r>", "<r>ab<b>cdef</b></r>"]);
        let mut h = Collect { text: String::new(), starts: 0, ends: 0 };
        drive(&evs, &content, &mut h);
        assert_eq!(h.text, "abcdef");
        assert_eq!(h.starts, 2);
        assert_eq!(h.ends, 2);
    }
}
