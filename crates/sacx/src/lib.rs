//! # sacx — parsing concurrent XML
//!
//! The SACX parser (Iacob, Dekhtyar & Kaneko, "Parsing Concurrent XML", WIDM
//! 2004) and the representation drivers of the framework (Dekhtyar & Iacob,
//! DKE 52(2), 2005): everything that moves documents between surface XML
//! representations and the GODDAG model.
//!
//! * [`parse_distributed`] / [`export_distributed`] — N documents with the
//!   same content, one per hierarchy (the paper's Figure 1 form).
//! * [`FragmentationDriver`] — single document, overlap resolved by
//!   fragmenting elements with `cx:join` glue (TEI solution 1).
//! * [`MilestoneDriver`] — single document, non-dominant hierarchies
//!   flattened to empty-element pairs (TEI solution 2).
//! * [`StandoffDriver`] — base text + annotation records.
//! * [`merge_events`] / [`SacxHandler`] — the merged SAX-style event stream
//!   for streaming consumers.
//!
//! ```
//! let g = sacx::parse_distributed(&[
//!     ("phys", "<r><line>swa hwa</line></r>"),
//!     ("ling", "<r>swa <w>hwa</w></r>"),
//! ]).unwrap();
//! assert_eq!(g.hierarchy_count(), 2);
//! ```

mod distributed;
mod error;
mod event;
mod extract;
mod fragmentation;
mod milestone;
mod prefix;
mod standoff;

pub mod driver;

pub use distributed::{export_distributed, parse_distributed};
pub use driver::{builtin_drivers, Driver, FragmentationDriver, MilestoneDriver, StandoffDriver};
pub use error::{Result, SacxError};
pub use event::{drive, merge_events, SacxEvent, SacxHandler};
pub use extract::{extract, ExtractedDoc, ExtractedRange};
pub use fragmentation::{
    count_fragments, export_fragmentation, import_fragmentation, FragmentationOptions, CX_JOIN,
};
pub use milestone::{export_milestone, import_milestone, MilestoneOptions, CX_MID, CX_MS};
pub use standoff::{
    escape_token, export_standoff, import_standoff, unescape_token, Annotation, StandoffDoc,
};
