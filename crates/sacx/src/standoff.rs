//! Stand-off annotation: the representation that separates content from
//! markup entirely — a base text plus `(hierarchy, tag, start, end)` records.
//!
//! This is the most direct surface form of the GODDAG (ranges *are* the
//! model) and the interchange format used by annotation pipelines. The
//! serialized form is a simple line-oriented text format:
//!
//! ```text
//! #cxml-standoff v1
//! root r id=ms1
//! hierarchy phys
//! hierarchy ling
//! content 18
//! one two three four
//! annot 0 line 0 7 n=1
//! annot 1 w 0 3
//! ```
//!
//! Attribute values are percent-encoded (`%xx`) so they survive whitespace
//! and newlines.

use crate::error::{Result, SacxError};
use goddag::{Goddag, GoddagBuilder, HierarchyId, RangeSpec};
use std::fmt::Write as _;
use xmlcore::{Attribute, QName};

/// One stand-off annotation record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Annotation {
    /// Index into [`StandoffDoc::hierarchies`].
    pub hierarchy: u16,
    /// Element name (local).
    pub tag: String,
    /// Content byte range (empty when `start == end`).
    pub start: usize,
    /// End offset (exclusive).
    pub end: usize,
    /// `(name, value)` attribute pairs.
    pub attrs: Vec<(String, String)>,
}

/// A complete stand-off document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StandoffDoc {
    /// Shared root element name.
    pub root: String,
    /// Root attributes.
    pub root_attrs: Vec<(String, String)>,
    /// Hierarchy names.
    pub hierarchies: Vec<String>,
    /// The base text.
    pub content: String,
    /// Annotations in document order (outer-first for equal spans).
    pub annotations: Vec<Annotation>,
}

/// Percent-escape a string into a single token free of spaces, newlines,
/// `=` and non-ASCII bytes — the escaping used for names and attribute
/// values in the stand-off text format (and reused by `cxpersist`'s WAL
/// codec, which layers its own empty-string convention on top). Non-ASCII
/// bytes are escaped byte-wise: pushing them as `char`s would re-encode
/// each UTF-8 byte as its own code point and mangle the value on
/// re-import.
pub fn escape_token(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'%' | b'\n' | b'\r' | b' ' | b'=' | 0..=0x1f | 0x80.. => {
                let _ = write!(out, "%{b:02x}");
            }
            _ => out.push(b as char),
        }
    }
    out
}

/// Undo [`escape_token`]. Errors carry a bare detail string so callers in
/// other crates can wrap them in their own error types.
pub fn unescape_token(s: &str) -> std::result::Result<String, String> {
    let mut bytes: Vec<u8> = Vec::with_capacity(s.len());
    let raw = s.as_bytes();
    let mut i = 0;
    while i < raw.len() {
        if raw[i] == b'%' {
            let hex = raw.get(i + 1..i + 3).ok_or("truncated percent escape")?;
            let hex = std::str::from_utf8(hex).map_err(|_| "invalid percent escape".to_string())?;
            let b = u8::from_str_radix(hex, 16)
                .map_err(|_| format!("invalid percent escape %{hex}"))?;
            bytes.push(b);
            i += 3;
        } else {
            bytes.push(raw[i]);
            i += 1;
        }
    }
    String::from_utf8(bytes).map_err(|_| "escape does not decode to UTF-8".to_string())
}

fn enc(s: &str) -> String {
    escape_token(s)
}

fn dec(s: &str, line: usize) -> Result<String> {
    unescape_token(s).map_err(|detail| SacxError::Standoff { line, detail })
}

impl StandoffDoc {
    /// Build the stand-off view of a GODDAG.
    pub fn from_goddag(g: &Goddag) -> StandoffDoc {
        StandoffDoc::from_goddag_with_ids(g).0
    }

    /// Build the stand-off view and also report which element produced each
    /// annotation (`ids[i]` is the [`goddag::NodeId`] behind
    /// `annotations[i]`).
    ///
    /// The annotation order is a *structural* document order: span start
    /// ascending, span end descending, hierarchy, then nesting depth
    /// (parents before children). Depth — not node id — breaks the tie
    /// between same-hierarchy elements with identical spans, because edits
    /// can leave a parent with a higher id than its child, and
    /// [`StandoffDoc::to_goddag`] nests equal spans outer-first in
    /// annotation order. The order is therefore id-independent, which is
    /// what lets a persistence layer re-derive the same element sequence on
    /// a freshly imported copy and map recorded ids onto it.
    pub fn from_goddag_with_ids(g: &Goddag) -> (StandoffDoc, Vec<goddag::NodeId>) {
        // (span start, -span end, hierarchy, depth) — the structural sort key.
        type Key = (u32, i64, u16, u32);
        let mut annotations: Vec<(goddag::NodeId, Key, Annotation)> = Vec::new();
        for h in g.hierarchy_ids() {
            for e in g.elements_in(h) {
                let (start, end) = g.char_range(e);
                let span = g.span(e);
                let mut depth = 0u32;
                let mut cur = e;
                while let Some(p) = g.parent_in(cur, h) {
                    if p == g.root() {
                        break;
                    }
                    depth += 1;
                    cur = p;
                }
                annotations.push((
                    e,
                    (span.start, -(span.end as i64), h.0, depth),
                    Annotation {
                        hierarchy: h.0,
                        tag: g.name(e).expect("named").local.clone(),
                        start,
                        end,
                        attrs: g
                            .attrs(e)
                            .iter()
                            .map(|a| (a.name.to_string(), a.value.clone()))
                            .collect(),
                    },
                ));
            }
        }
        // The key is total over live elements: equal spans within one
        // hierarchy force an ancestor chain (crossing is impossible), so
        // depths differ; distinct hierarchies differ in the third component.
        annotations.sort_by_key(|(_, key, _)| *key);
        let ids = annotations.iter().map(|(e, _, _)| *e).collect();
        let doc = StandoffDoc {
            root: g.name(g.root()).expect("root is named").to_string(),
            root_attrs: g
                .attrs(g.root())
                .iter()
                .map(|a| (a.name.to_string(), a.value.clone()))
                .collect(),
            hierarchies: g
                .hierarchy_ids()
                .map(|h| g.hierarchy(h).expect("live id").name.clone())
                .collect(),
            content: g.content(),
            annotations: annotations.into_iter().map(|(_, _, a)| a).collect(),
        };
        (doc, ids)
    }

    /// Materialize the GODDAG.
    pub fn to_goddag(&self) -> Result<Goddag> {
        let root = QName::parse(&self.root)
            .map_err(|e| SacxError::Standoff { line: 0, detail: format!("bad root name: {e}") })?;
        let mut b = GoddagBuilder::new(root);
        b.root_attrs(
            self.root_attrs.iter().map(|(n, v)| Attribute::new(n.as_str(), v.clone())).collect(),
        );
        b.content(self.content.clone());
        let hids: Vec<HierarchyId> =
            self.hierarchies.iter().map(|n| b.hierarchy(n.clone())).collect();
        for a in &self.annotations {
            let h = *hids.get(a.hierarchy as usize).ok_or(SacxError::Standoff {
                line: 0,
                detail: format!("annotation references unknown hierarchy {}", a.hierarchy),
            })?;
            let name = QName::parse(&a.tag).map_err(|e| SacxError::Standoff {
                line: 0,
                detail: format!("bad tag name {:?}: {e}", a.tag),
            })?;
            b.range_spec(RangeSpec {
                hierarchy: h,
                name,
                attrs: a.attrs.iter().map(|(n, v)| Attribute::new(n.as_str(), v.clone())).collect(),
                start: a.start,
                end: a.end,
            });
        }
        Ok(b.finish()?)
    }

    /// Serialize to the line-oriented text format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("#cxml-standoff v1\n");
        let _ = write!(out, "root {}", enc(&self.root));
        for (n, v) in &self.root_attrs {
            let _ = write!(out, " {}={}", enc(n), enc(v));
        }
        out.push('\n');
        for h in &self.hierarchies {
            let _ = writeln!(out, "hierarchy {}", enc(h));
        }
        let _ = writeln!(out, "content {}", self.content.len());
        out.push_str(&self.content);
        out.push('\n');
        for a in &self.annotations {
            let _ = write!(out, "annot {} {} {} {}", a.hierarchy, enc(&a.tag), a.start, a.end);
            for (n, v) in &a.attrs {
                let _ = write!(out, " {}={}", enc(n), enc(v));
            }
            out.push('\n');
        }
        out
    }

    /// Parse the line-oriented text format.
    pub fn parse_text(input: &str) -> Result<StandoffDoc> {
        let mut rest = input;
        let next_line = |rest: &mut &str| -> Option<String> {
            if rest.is_empty() {
                return None;
            }
            match rest.find('\n') {
                Some(i) => {
                    let l = rest[..i].to_string();
                    *rest = &rest[i + 1..];
                    Some(l)
                }
                None => {
                    let l = rest.to_string();
                    *rest = "";
                    Some(l)
                }
            }
        };

        let header = next_line(&mut rest)
            .ok_or(SacxError::Standoff { line: 1, detail: "empty input".into() })?;
        if header.trim() != "#cxml-standoff v1" {
            return Err(SacxError::Standoff { line: 1, detail: "bad magic line".into() });
        }

        let mut root: Option<String> = None;
        let mut root_attrs: Vec<(String, String)> = Vec::new();
        let mut hierarchies: Vec<String> = Vec::new();
        let mut content: Option<String> = None;
        let mut annotations: Vec<Annotation> = Vec::new();
        let mut ln = 1usize;
        while let Some(line) = next_line(&mut rest) {
            ln += 1;
            if line.trim().is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split(' ');
            match parts.next() {
                Some("root") => {
                    let name = parts.next().ok_or(SacxError::Standoff {
                        line: ln,
                        detail: "root needs a name".into(),
                    })?;
                    root = Some(dec(name, ln)?);
                    for kv in parts {
                        let (k, v) = kv.split_once('=').ok_or(SacxError::Standoff {
                            line: ln,
                            detail: format!("bad attribute {kv:?}"),
                        })?;
                        root_attrs.push((dec(k, ln)?, dec(v, ln)?));
                    }
                }
                Some("hierarchy") => {
                    let name = parts.next().ok_or(SacxError::Standoff {
                        line: ln,
                        detail: "hierarchy needs a name".into(),
                    })?;
                    hierarchies.push(dec(name, ln)?);
                }
                Some("content") => {
                    let len: usize =
                        parts.next().and_then(|s| s.parse().ok()).ok_or(SacxError::Standoff {
                            line: ln,
                            detail: "content needs a byte length".into(),
                        })?;
                    if rest.len() < len {
                        return Err(SacxError::Standoff {
                            line: ln,
                            detail: format!(
                                "content length {len} exceeds remaining input {}",
                                rest.len()
                            ),
                        });
                    }
                    if !rest.is_char_boundary(len) {
                        return Err(SacxError::Standoff {
                            line: ln,
                            detail: "content length splits a UTF-8 char".into(),
                        });
                    }
                    content = Some(rest[..len].to_string());
                    rest = &rest[len..];
                    // Consume the newline terminating the content block.
                    if let Some(r) = rest.strip_prefix('\n') {
                        rest = r;
                    }
                }
                Some("annot") => {
                    let h: u16 =
                        parts.next().and_then(|s| s.parse().ok()).ok_or(SacxError::Standoff {
                            line: ln,
                            detail: "annot needs a hierarchy index".into(),
                        })?;
                    let tag = dec(
                        parts.next().ok_or(SacxError::Standoff {
                            line: ln,
                            detail: "annot needs a tag".into(),
                        })?,
                        ln,
                    )?;
                    let start: usize =
                        parts.next().and_then(|s| s.parse().ok()).ok_or(SacxError::Standoff {
                            line: ln,
                            detail: "annot needs a start offset".into(),
                        })?;
                    let end: usize =
                        parts.next().and_then(|s| s.parse().ok()).ok_or(SacxError::Standoff {
                            line: ln,
                            detail: "annot needs an end offset".into(),
                        })?;
                    let mut attrs = Vec::new();
                    for kv in parts {
                        if kv.is_empty() {
                            continue;
                        }
                        let (k, v) = kv.split_once('=').ok_or(SacxError::Standoff {
                            line: ln,
                            detail: format!("bad attribute {kv:?}"),
                        })?;
                        attrs.push((dec(k, ln)?, dec(v, ln)?));
                    }
                    annotations.push(Annotation { hierarchy: h, tag, start, end, attrs });
                }
                Some(other) => {
                    return Err(SacxError::Standoff {
                        line: ln,
                        detail: format!("unknown directive {other:?}"),
                    })
                }
                None => {}
            }
        }
        Ok(StandoffDoc {
            root: root.ok_or(SacxError::Standoff { line: ln, detail: "missing root".into() })?,
            root_attrs,
            hierarchies,
            content: content
                .ok_or(SacxError::Standoff { line: ln, detail: "missing content".into() })?,
            annotations,
        })
    }
}

/// Convenience: GODDAG → stand-off text.
pub fn export_standoff(g: &Goddag) -> String {
    StandoffDoc::from_goddag(g).to_text()
}

/// Convenience: stand-off text → GODDAG.
pub fn import_standoff(input: &str) -> Result<Goddag> {
    StandoffDoc::parse_text(input)?.to_goddag()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributed::parse_distributed;
    use goddag::check_invariants;

    fn sample() -> Goddag {
        parse_distributed(&[
            ("phys", "<r><line n=\"1\">swa hwa swe</line><line n=\"2\">nu sculon</line></r>"),
            ("ling", "<r><w>swa</w> <w>hwa</w> <s><w>swenu</w> <w>sculon</w></s></r>"),
        ])
        .unwrap()
    }

    #[test]
    fn text_roundtrip() {
        let g = sample();
        let text = export_standoff(&g);
        let g2 = import_standoff(&text).unwrap();
        check_invariants(&g2).unwrap();
        assert_eq!(g2.content(), g.content());
        assert_eq!(g2.element_count(), g.element_count());
        assert_eq!(export_standoff(&g2), text);
    }

    #[test]
    fn struct_roundtrip() {
        let g = sample();
        let doc = StandoffDoc::from_goddag(&g);
        assert_eq!(doc.hierarchies, ["phys", "ling"]);
        assert_eq!(doc.annotations.len(), 7);
        let g2 = doc.to_goddag().unwrap();
        assert_eq!(
            g2.to_xml(goddag::HierarchyId(0)).unwrap(),
            g.to_xml(goddag::HierarchyId(0)).unwrap()
        );
    }

    #[test]
    fn escaping_attrs_and_names() {
        let g = parse_distributed(&[("a", "<r><w note=\"two words = tricky\nnewline\">x</w></r>")])
            .unwrap();
        let text = export_standoff(&g);
        let g2 = import_standoff(&text).unwrap();
        let w = g2.find_elements("w")[0];
        assert_eq!(g2.attr(w, "note"), Some("two words = tricky\nnewline"));
    }

    #[test]
    fn non_ascii_attr_values_roundtrip() {
        let g = parse_distributed(&[("a", "<r><w lemma=\"swā þæt\">x</w></r>")]).unwrap();
        let text = export_standoff(&g);
        assert!(text.lines().last().unwrap().is_ascii(), "annotations stay ASCII-clean");
        let g2 = import_standoff(&text).unwrap();
        let w = g2.find_elements("w")[0];
        assert_eq!(g2.attr(w, "lemma"), Some("swā þæt"));
    }

    #[test]
    fn content_with_newlines_survives() {
        let g = parse_distributed(&[("a", "<r>line one\nline two\n</r>")]).unwrap();
        let text = export_standoff(&g);
        let g2 = import_standoff(&text).unwrap();
        assert_eq!(g2.content(), "line one\nline two\n");
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(matches!(
            StandoffDoc::parse_text("not standoff"),
            Err(SacxError::Standoff { line: 1, .. })
        ));
    }

    #[test]
    fn truncated_content_rejected() {
        let bad = "#cxml-standoff v1\nroot r\ncontent 100\nshort";
        assert!(matches!(StandoffDoc::parse_text(bad), Err(SacxError::Standoff { .. })));
    }

    #[test]
    fn unknown_hierarchy_index_rejected() {
        let bad = "#cxml-standoff v1\nroot r\nhierarchy a\ncontent 2\nxy\nannot 5 w 0 1\n";
        let doc = StandoffDoc::parse_text(bad).unwrap();
        assert!(matches!(doc.to_goddag(), Err(SacxError::Standoff { .. })));
    }

    #[test]
    fn unknown_directive_rejected() {
        let bad = "#cxml-standoff v1\nroot r\nwat 1\ncontent 0\n\n";
        assert!(matches!(StandoffDoc::parse_text(bad), Err(SacxError::Standoff { .. })));
    }

    #[test]
    fn equal_spans_roundtrip_parent_first_even_with_inverted_ids() {
        // Wrap "abcd" in <inner>, wrap "abcdefg" in <outer> (which becomes
        // inner's parent with a *higher* node id), then delete "efg": the
        // spans are now equal while the parent still has the higher id.
        // Export order must follow nesting, not ids, or the re-import would
        // flip the chain.
        let mut g = parse_distributed(&[("a", "<r>abcdefg</r>")]).unwrap();
        let h = g.hierarchy_by_name("a").unwrap();
        let inner =
            g.insert_element(h, xmlcore::QName::parse("inner").unwrap(), vec![], 0, 4).unwrap();
        let outer =
            g.insert_element(h, xmlcore::QName::parse("outer").unwrap(), vec![], 0, 7).unwrap();
        g.delete_text(4, 7).unwrap();
        assert_eq!(g.parent_in(inner, h), Some(outer));
        assert_eq!(g.char_range(inner), g.char_range(outer));
        assert!(outer > inner, "the parent must have the higher id for this test to bite");

        let (doc, ids) = StandoffDoc::from_goddag_with_ids(&g);
        assert_eq!(doc.annotations.len(), 2);
        assert_eq!(
            doc.annotations.iter().map(|a| a.tag.as_str()).collect::<Vec<_>>(),
            ["outer", "inner"],
            "equal spans must serialize outermost-first"
        );
        assert_eq!(ids[0], outer);

        let g2 = doc.to_goddag().unwrap();
        check_invariants(&g2).unwrap();
        assert_eq!(g2.to_xml(goddag::HierarchyId(0)).unwrap(), g.to_xml(h).unwrap());
        // And the re-derived annotation order matches element-for-element.
        let (doc2, ids2) = StandoffDoc::from_goddag_with_ids(&g2);
        assert_eq!(doc2.annotations, doc.annotations);
        assert_eq!(ids2.len(), ids.len());
    }

    #[test]
    fn with_ids_parallels_annotations() {
        let g = sample();
        let (doc, ids) = StandoffDoc::from_goddag_with_ids(&g);
        assert_eq!(doc.annotations.len(), ids.len());
        for (a, &e) in doc.annotations.iter().zip(&ids) {
            assert_eq!(g.name(e).unwrap().local, a.tag);
            assert_eq!(g.char_range(e), (a.start, a.end));
            assert_eq!(g.hierarchy_of(e).unwrap().0, a.hierarchy);
        }
    }

    #[test]
    fn empty_document_roundtrip() {
        let g = parse_distributed(&[("a", "<r/>")]).unwrap();
        let text = export_standoff(&g);
        let g2 = import_standoff(&text).unwrap();
        assert_eq!(g2.content(), "");
        assert_eq!(g2.element_count(), 0);
    }
}
