//! The fragmentation representation (TEI Guidelines solution 1, paper §2):
//! a *single* well-formed document holding all hierarchies, where any element
//! that would cross another is split into fragments glued together by a
//! shared id attribute (`cx:join`).
//!
//! * **Export**: a two-pass sweep over all hierarchies' ranges. Pass 1
//!   simulates the tag stack to discover which elements must fragment; pass 2
//!   emits the document, force-closing and reopening crossing elements with
//!   `cx:join` ids.
//! * **Import**: fragments with the same `cx:join` id merge back into one
//!   logical element; hierarchy membership comes from the name prefix
//!   (`phys:line` → hierarchy `phys`, unprefixed → the default hierarchy).
//!
//! Round-trip: `import(export(g))` reproduces `g`'s elements, spans and
//! attributes exactly (tested below and in the property suite).

use crate::error::{Result, SacxError};
use crate::extract::{extract, ExtractedRange};
use crate::prefix::{exported_name, hierarchy_registry, split_prefix};
use goddag::{Goddag, GoddagBuilder, HierarchyId, RangeSpec};
use std::collections::{BTreeMap, HashSet};
use xmlcore::{Attribute, QName, Writer};

/// The fragment-glue attribute.
pub const CX_JOIN: &str = "cx:join";

/// Options for the fragmentation driver.
#[derive(Debug, Clone)]
pub struct FragmentationOptions {
    /// Hierarchy name used for unprefixed elements.
    pub default_hierarchy: String,
}

impl Default for FragmentationOptions {
    fn default() -> FragmentationOptions {
        FragmentationOptions { default_hierarchy: "main".into() }
    }
}

/// A logical element gathered from the GODDAG for export.
struct Logical {
    name: QName,
    attrs: Vec<Attribute>,
    start: usize,
    end: usize,
    empty: bool,
}

/// Export a GODDAG as a single fragmented document.
pub fn export_fragmentation(g: &Goddag, opts: &FragmentationOptions) -> Result<String> {
    let elems = collect_logical(g, opts);
    let events = build_events(&elems);
    // Pass 1: find which elements fragment.
    let fragmented = sweep(&elems, &events, g, None)?;
    // Pass 2: emit.
    let mut writer = Writer::new();
    writer.start_with(g.name(g.root()).expect("root is named"), g.attrs(g.root()));
    let mut emit = Emit { writer, join_seq: 0, join_ids: BTreeMap::new(), fragmented };
    sweep(&elems, &events, g, Some(&mut emit))?;
    emit.writer.end().map_err(wrap_xml)?;
    emit.writer.finish().map_err(wrap_xml)
}

fn wrap_xml(e: xmlcore::XmlError) -> SacxError {
    SacxError::Fragmentation(e.to_string())
}

fn collect_logical(g: &Goddag, opts: &FragmentationOptions) -> Vec<Logical> {
    let mut elems: Vec<(NodeOrd, Logical)> = Vec::new();
    for h in g.hierarchy_ids() {
        let hname = &g.hierarchy(h).expect("live id").name;
        for e in g.elements_in(h) {
            let (start, end) = g.char_range(e);
            let name = exported_name(
                g.name(e).expect("elements are named"),
                hname,
                &opts.default_hierarchy,
            );
            elems.push((
                g.doc_order_key(e),
                Logical {
                    name,
                    attrs: g.attrs(e).to_vec(),
                    start,
                    end,
                    empty: g.span(e).is_empty(),
                },
            ));
        }
    }
    elems.sort_by_key(|(k, _)| *k);
    elems.into_iter().map(|(_, l)| l).collect()
}

type NodeOrd = (u32, i64, u8, u16, u32);

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EvClass {
    End = 0,
    Empty = 1,
    Start = 2,
}

#[derive(Debug, Clone, Copy)]
struct Ev {
    offset: usize,
    class: EvClass,
    elem: usize,
}

fn build_events(elems: &[Logical]) -> Vec<Ev> {
    let mut events = Vec::with_capacity(elems.len() * 2);
    for (i, l) in elems.iter().enumerate() {
        if l.empty || l.start == l.end {
            events.push(Ev { offset: l.start, class: EvClass::Empty, elem: i });
        } else {
            events.push(Ev { offset: l.start, class: EvClass::Start, elem: i });
            events.push(Ev { offset: l.end, class: EvClass::End, elem: i });
        }
    }
    events.sort_by(|a, b| {
        (a.offset, a.class).cmp(&(b.offset, b.class)).then_with(|| match a.class {
            // Starts: outer first (larger end), then collection order.
            EvClass::Start => elems[b.elem].end.cmp(&elems[a.elem].end).then(a.elem.cmp(&b.elem)),
            // Ends: handled dynamically by the stack; static order is a hint.
            EvClass::End => elems[b.elem].start.cmp(&elems[a.elem].start).then(b.elem.cmp(&a.elem)),
            EvClass::Empty => a.elem.cmp(&b.elem),
        })
    });
    events
}

struct Emit {
    writer: Writer,
    join_seq: usize,
    join_ids: BTreeMap<usize, String>,
    fragmented: HashSet<usize>,
}

impl Emit {
    fn open(&mut self, elems: &[Logical], i: usize) {
        let l = &elems[i];
        let mut attrs = l.attrs.clone();
        if self.fragmented.contains(&i) {
            let id = self.join_ids.entry(i).or_insert_with(|| {
                self.join_seq += 1;
                format!("j{}", self.join_seq)
            });
            attrs.push(Attribute::new(CX_JOIN, id.clone()));
        }
        self.writer.start_with(&l.name, &attrs);
    }

    /// Reopen a continuation fragment: join id only, no original attributes
    /// (they live on the first fragment).
    fn reopen(&mut self, elems: &[Logical], i: usize) {
        let l = &elems[i];
        let id = self.join_ids.get(&i).expect("fragmented element has a join id").clone();
        self.writer.start_with(&l.name, &[Attribute::new(CX_JOIN, id)]);
    }
}

/// The shared sweep: with `emit == None` it only records which elements get
/// force-closed (pass 1); with a writer it produces the document (pass 2,
/// where `emit.fragmented` comes from pass 1).
fn sweep(
    elems: &[Logical],
    events: &[Ev],
    g: &Goddag,
    mut emit: Option<&mut Emit>,
) -> Result<HashSet<usize>> {
    let content = g.content();
    let mut fragmented: HashSet<usize> = HashSet::new();
    let mut stack: Vec<usize> = Vec::new();
    let mut cursor = 0usize;
    let mut i = 0usize;
    while i < events.len() {
        let offset = events[i].offset;
        // Text up to this offset.
        if offset > cursor {
            if let Some(e) = emit.as_deref_mut() {
                e.writer.text(&content[cursor..offset]);
            }
            cursor = offset;
        }
        // Gather all events at this offset.
        let mut ends: HashSet<usize> = HashSet::new();
        let mut empties: Vec<usize> = Vec::new();
        let mut starts: Vec<usize> = Vec::new();
        while i < events.len() && events[i].offset == offset {
            match events[i].class {
                EvClass::End => {
                    ends.insert(events[i].elem);
                }
                EvClass::Empty => empties.push(events[i].elem),
                EvClass::Start => starts.push(events[i].elem),
            }
            i += 1;
        }
        // Close ends, force-closing (fragmenting) anything in the way.
        let mut reopen: Vec<usize> = Vec::new();
        while !ends.is_empty() {
            let top = *stack.last().ok_or_else(|| {
                SacxError::Fragmentation("internal: end event with empty stack".into())
            })?;
            stack.pop();
            if let Some(e) = emit.as_deref_mut() {
                e.writer.end().map_err(wrap_xml)?;
            }
            if ends.remove(&top) {
                // Real close.
            } else {
                // Forced close: `top` continues past this offset.
                fragmented.insert(top);
                reopen.push(top);
            }
        }
        for &r in reopen.iter().rev() {
            if let Some(e) = emit.as_deref_mut() {
                e.reopen(elems, r);
            }
            stack.push(r);
        }
        // Empties.
        for m in empties {
            if let Some(e) = emit.as_deref_mut() {
                let l = &elems[m];
                e.writer.empty(&l.name, &l.attrs);
            }
        }
        // Starts.
        for s in starts {
            if let Some(e) = emit.as_deref_mut() {
                e.open(elems, s);
            }
            stack.push(s);
        }
    }
    // Trailing text.
    if cursor < content.len() {
        if let Some(e) = emit {
            e.writer.text(&content[cursor..]);
        }
    }
    debug_assert!(stack.is_empty(), "all elements closed by their end events");
    Ok(fragmented)
}

/// Import a fragmented document into a GODDAG.
pub fn import_fragmentation(xml: &str, opts: &FragmentationOptions) -> Result<Goddag> {
    let doc = extract(xml, "fragmentation")?;

    // Merge fragments by join id; keep everything in start-tag order.
    struct Pending {
        order: usize,
        name: QName,
        attrs: Vec<Attribute>,
        start: usize,
        end: usize,
        last_end: usize,
    }
    let mut merged: BTreeMap<String, Pending> = BTreeMap::new();
    let mut plain: Vec<(usize, ExtractedRange)> = Vec::new();
    for (order, r) in doc.ranges.iter().enumerate() {
        let join = r.attrs.iter().find(|a| a.name.as_str() == CX_JOIN);
        match join {
            None => plain.push((order, r.clone())),
            Some(j) => {
                let id = j.value.clone();
                match merged.get_mut(&id) {
                    None => {
                        let attrs: Vec<Attribute> = r
                            .attrs
                            .iter()
                            .filter(|a| a.name.as_str() != CX_JOIN)
                            .cloned()
                            .collect();
                        merged.insert(
                            id,
                            Pending {
                                order,
                                name: r.name.clone(),
                                attrs,
                                start: r.start,
                                end: r.end,
                                last_end: r.end,
                            },
                        );
                    }
                    Some(p) => {
                        if p.name != r.name {
                            return Err(SacxError::Fragmentation(format!(
                                "fragments with join id {:?} have different names <{}> vs <{}>",
                                j.value, p.name, r.name
                            )));
                        }
                        if r.start < p.last_end {
                            return Err(SacxError::Fragmentation(format!(
                                "fragments with join id {:?} overlap (at byte {})",
                                j.value, r.start
                            )));
                        }
                        p.last_end = r.end;
                        p.end = p.end.max(r.end);
                    }
                }
            }
        }
    }

    // Final logical ranges in original start order.
    let mut logical: Vec<(usize, QName, Vec<Attribute>, usize, usize)> = Vec::new();
    for (order, r) in plain {
        logical.push((order, r.name, r.attrs, r.start, r.end));
    }
    for (_, p) in merged {
        logical.push((p.order, p.name, p.attrs, p.start, p.end));
    }
    logical.sort_by_key(|(order, ..)| *order);

    // Hierarchies from prefixes, in first-appearance order.
    let prefixes: Vec<String> =
        logical.iter().map(|(_, name, ..)| split_prefix(name, &opts.default_hierarchy).0).collect();
    let registry = hierarchy_registry(&prefixes, &opts.default_hierarchy);

    let mut b = GoddagBuilder::new(doc.root_name.clone());
    b.root_attrs(doc.root_attrs.clone());
    b.content(doc.content.clone());
    let mut hids: BTreeMap<String, HierarchyId> = BTreeMap::new();
    for name in &registry {
        hids.insert(name.clone(), b.hierarchy(name.clone()));
    }
    for (_, name, attrs, start, end) in logical {
        let (hname, local) = split_prefix(&name, &opts.default_hierarchy);
        let h = hids[&hname];
        b.range_spec(RangeSpec { hierarchy: h, name: QName::local(local), attrs, start, end });
    }
    Ok(b.finish()?)
}

/// Count the fragments a GODDAG would need in this representation — a cheap
/// measure of "how overlapping" a document is (used by benches and examples).
pub fn count_fragments(g: &Goddag, opts: &FragmentationOptions) -> Result<usize> {
    let elems = collect_logical(g, opts);
    let events = build_events(&elems);
    let fragmented = sweep(&elems, &events, g, None)?;
    Ok(fragmented.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributed::parse_distributed;
    use goddag::check_invariants;

    fn opts() -> FragmentationOptions {
        FragmentationOptions::default()
    }

    fn sample() -> Goddag {
        parse_distributed(&[
            ("phys", "<r><line>swa hwa swe</line><line>nu sculon</line></r>"),
            ("ling", "<r><w>swa</w> <w>hwa</w> <s><w>swenu</w> <w>sculon</w></s></r>"),
        ])
        .unwrap()
    }

    #[test]
    fn export_produces_wellformed_single_doc() {
        let g = sample();
        let xml = export_fragmentation(&g, &opts()).unwrap();
        let dom = xmlcore::dom::Document::parse(&xml).unwrap();
        assert_eq!(dom.text_content(dom.root()), g.content());
    }

    #[test]
    fn crossing_elements_get_join_ids() {
        let g = sample();
        let xml = export_fragmentation(&g, &opts()).unwrap();
        // The sentence <s> crosses the line boundary, so it (or the line)
        // must appear fragmented.
        assert!(xml.contains(CX_JOIN), "{xml}");
        assert!(count_fragments(&g, &opts()).unwrap() >= 1);
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let g = sample();
        let xml = export_fragmentation(&g, &opts()).unwrap();
        let g2 = import_fragmentation(&xml, &opts()).unwrap();
        check_invariants(&g2).unwrap();
        assert_eq!(g2.content(), g.content());
        assert_eq!(g2.element_count(), g.element_count());
        // Same spans per element name multiset.
        let spans = |g: &Goddag| {
            let mut v: Vec<(String, usize, usize)> = g
                .elements()
                .map(|e| {
                    let (s, en) = g.char_range(e);
                    (g.name(e).unwrap().local.clone(), s, en)
                })
                .collect();
            v.sort();
            v
        };
        assert_eq!(spans(&g), spans(&g2));
    }

    #[test]
    fn hierarchies_recovered_from_prefixes() {
        let g = sample();
        let xml = export_fragmentation(&g, &opts()).unwrap();
        let g2 = import_fragmentation(&xml, &opts()).unwrap();
        assert_eq!(g2.hierarchy_count(), g.hierarchy_count());
        assert!(g2.hierarchy_by_name("phys").is_some());
        assert!(g2.hierarchy_by_name("ling").is_some());
    }

    #[test]
    fn attributes_survive_roundtrip() {
        let g = parse_distributed(&[
            ("phys", r#"<r><line n="1">ab cd</line></r>"#),
            ("ling", r#"<r><w type="noun">ab</w> <s id="s1">cd</s></r>"#),
        ])
        .unwrap();
        let xml = export_fragmentation(&g, &opts()).unwrap();
        let g2 = import_fragmentation(&xml, &opts()).unwrap();
        let line = g2.find_elements("line")[0];
        assert_eq!(g2.attr(line, "n"), Some("1"));
        let w = g2.find_elements("w")[0];
        assert_eq!(g2.attr(w, "type"), Some("noun"));
    }

    #[test]
    fn empty_elements_roundtrip() {
        let g = parse_distributed(&[
            ("phys", "<r>ab<pb n=\"2\"/>cd</r>"),
            ("ling", "<r><w>abcd</w></r>"),
        ])
        .unwrap();
        let xml = export_fragmentation(&g, &opts()).unwrap();
        let g2 = import_fragmentation(&xml, &opts()).unwrap();
        let pb = g2.find_elements("pb")[0];
        assert!(g2.span(pb).is_empty());
        assert_eq!(g2.attr(pb, "n"), Some("2"));
    }

    #[test]
    fn no_overlap_no_fragments() {
        let g = parse_distributed(&[
            ("phys", "<r><line>ab</line><line>cd</line></r>"),
            ("ling", "<r><w>ab</w><w>cd</w></r>"),
        ])
        .unwrap();
        assert_eq!(count_fragments(&g, &opts()).unwrap(), 0);
        let xml = export_fragmentation(&g, &opts()).unwrap();
        assert!(!xml.contains(CX_JOIN));
    }

    #[test]
    fn import_rejects_mismatched_fragment_names() {
        let xml = r#"<r><a cx:join="j1">x</a><b cx:join="j1">y</b></r>"#;
        assert!(matches!(import_fragmentation(xml, &opts()), Err(SacxError::Fragmentation(_))));
    }

    #[test]
    fn import_rejects_overlapping_fragments() {
        // Same join id but the "fragments" overlap — impossible from a real
        // fragmentation, reject.
        let xml = r#"<r><a cx:join="j1">xy</a></r>"#;
        // Single fragment is fine; craft overlap via nesting instead:
        let ok = import_fragmentation(xml, &opts());
        assert!(ok.is_ok());
        let bad = r#"<r><a cx:join="j1">x<a cx:join="j1">y</a></a></r>"#;
        assert!(matches!(import_fragmentation(bad, &opts()), Err(SacxError::Fragmentation(_))));
    }

    #[test]
    fn three_hierarchy_pairwise_overlap() {
        let g = parse_distributed(&[
            ("a", "<r><x>0123</x>45678</r>"),
            ("b", "<r>01<y>2345</y>678</r>"),
            ("c", "<r>0123<z>45</z>678</r>"),
        ])
        .unwrap();
        let xml = export_fragmentation(&g, &opts()).unwrap();
        let g2 = import_fragmentation(&xml, &opts()).unwrap();
        assert_eq!(g2.element_count(), 3);
        let x = g2.find_elements("x")[0];
        let y = g2.find_elements("y")[0];
        assert!(g2.span(x).overlaps(g2.span(y)));
        check_invariants(&g2).unwrap();
    }
}
