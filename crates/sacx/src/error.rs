//! SACX error types.

use std::fmt;

/// Errors raised while parsing or exporting concurrent XML.
#[derive(Debug, Clone, PartialEq)]
pub enum SacxError {
    /// Underlying XML parse error (with the hierarchy it came from).
    Xml { hierarchy: String, source: xmlcore::XmlError },
    /// Underlying GODDAG construction error.
    Goddag(goddag::GoddagError),
    /// Distributed documents must share the same root element name.
    RootMismatch { expected: String, found: String, hierarchy: String },
    /// Distributed documents must have byte-identical content; the first
    /// divergence is reported.
    ContentMismatch {
        hierarchy: String,
        /// Byte offset of the first divergence.
        offset: usize,
        /// A few bytes of context from the reference document.
        expected: String,
        /// A few bytes of context from the offending document.
        found: String,
    },
    /// A fragmented element's pieces could not be merged (non-adjacent
    /// fragments, missing join id, ...).
    Fragmentation(String),
    /// Milestones could not be paired (unmatched start/end, crossing pairs
    /// with the same id, ...).
    Milestone(String),
    /// Stand-off syntax error.
    Standoff { line: usize, detail: String },
    /// No documents supplied.
    Empty,
}

impl fmt::Display for SacxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SacxError::Xml { hierarchy, source } => {
                write!(f, "XML error in hierarchy {hierarchy:?}: {source}")
            }
            SacxError::Goddag(e) => write!(f, "GODDAG error: {e}"),
            SacxError::RootMismatch { expected, found, hierarchy } => write!(
                f,
                "root element mismatch: hierarchy {hierarchy:?} has <{found}>, expected <{expected}>"
            ),
            SacxError::ContentMismatch { hierarchy, offset, expected, found } => write!(
                f,
                "content mismatch in hierarchy {hierarchy:?} at byte {offset}: expected {expected:?}, found {found:?}"
            ),
            SacxError::Fragmentation(s) => write!(f, "fragmentation error: {s}"),
            SacxError::Milestone(s) => write!(f, "milestone error: {s}"),
            SacxError::Standoff { line, detail } => {
                write!(f, "stand-off format error at line {line}: {detail}")
            }
            SacxError::Empty => write!(f, "no documents supplied"),
        }
    }
}

impl std::error::Error for SacxError {}

impl From<goddag::GoddagError> for SacxError {
    fn from(e: goddag::GoddagError) -> SacxError {
        SacxError::Goddag(e)
    }
}

/// Result alias for SACX operations.
pub type Result<T> = std::result::Result<T, SacxError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_content_mismatch() {
        let e = SacxError::ContentMismatch {
            hierarchy: "ling".into(),
            offset: 42,
            expected: "abc".into(),
            found: "abd".into(),
        };
        let s = e.to_string();
        assert!(s.contains("42") && s.contains("ling"), "{s}");
    }
}
