//! The driver abstraction: "concurrent XML can be imported into/exported
//! from our software suite from/to a wide range of representations" (paper
//! §4, *Document manipulation*).
//!
//! Every single-file representation implements [`Driver`]; the
//! distributed-documents representation (many files) has its own entry
//! points in [`crate::distributed`].

use crate::error::Result;
use crate::fragmentation::{export_fragmentation, import_fragmentation, FragmentationOptions};
use crate::milestone::{export_milestone, import_milestone, MilestoneOptions};
use crate::standoff::{export_standoff, import_standoff};
use goddag::Goddag;

/// A bidirectional converter between a surface representation and the GODDAG.
pub trait Driver {
    /// Human-readable representation name.
    fn name(&self) -> &str;
    /// Parse the surface form into a GODDAG.
    fn import(&self, input: &str) -> Result<Goddag>;
    /// Serialize a GODDAG into the surface form.
    fn export(&self, g: &Goddag) -> Result<String>;
}

/// Driver for the fragmentation representation (`cx:join` glue).
#[derive(Debug, Clone, Default)]
pub struct FragmentationDriver {
    /// Options (default hierarchy name).
    pub options: FragmentationOptions,
}

impl Driver for FragmentationDriver {
    fn name(&self) -> &str {
        "fragmentation"
    }
    fn import(&self, input: &str) -> Result<Goddag> {
        import_fragmentation(input, &self.options)
    }
    fn export(&self, g: &Goddag) -> Result<String> {
        export_fragmentation(g, &self.options)
    }
}

/// Driver for the milestone representation (`cx:ms` empty-element pairs).
#[derive(Debug, Clone)]
pub struct MilestoneDriver {
    /// Which hierarchy keeps its real tree.
    pub options: MilestoneOptions,
}

impl MilestoneDriver {
    /// Dominant-hierarchy constructor.
    pub fn new(dominant: impl Into<String>) -> MilestoneDriver {
        MilestoneDriver { options: MilestoneOptions::new(dominant) }
    }
}

impl Driver for MilestoneDriver {
    fn name(&self) -> &str {
        "milestone"
    }
    fn import(&self, input: &str) -> Result<Goddag> {
        import_milestone(input, &self.options.dominant)
    }
    fn export(&self, g: &Goddag) -> Result<String> {
        export_milestone(g, &self.options)
    }
}

/// Driver for the stand-off representation.
#[derive(Debug, Clone, Default)]
pub struct StandoffDriver;

impl Driver for StandoffDriver {
    fn name(&self) -> &str {
        "standoff"
    }
    fn import(&self, input: &str) -> Result<Goddag> {
        import_standoff(input)
    }
    fn export(&self, g: &Goddag) -> Result<String> {
        Ok(export_standoff(g))
    }
}

/// All built-in single-file drivers, for iteration in tests/benches.
pub fn builtin_drivers(dominant: &str) -> Vec<Box<dyn Driver>> {
    vec![
        Box::new(FragmentationDriver::default()),
        Box::new(MilestoneDriver::new(dominant)),
        Box::new(StandoffDriver),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributed::parse_distributed;

    fn sample() -> Goddag {
        parse_distributed(&[
            ("phys", "<r><line>ab cd</line><line>ef</line></r>"),
            ("ling", "<r><w>ab</w> <s>cdef</s></r>"),
        ])
        .unwrap()
    }

    #[test]
    fn every_builtin_driver_roundtrips() {
        let g = sample();
        for driver in builtin_drivers("phys") {
            let out = driver.export(&g).unwrap_or_else(|e| {
                panic!("{} export failed: {e}", driver.name());
            });
            let g2 = driver.import(&out).unwrap_or_else(|e| {
                panic!("{} import failed: {e}\n{out}", driver.name());
            });
            assert_eq!(g2.content(), g.content(), "{}", driver.name());
            assert_eq!(g2.element_count(), g.element_count(), "{}", driver.name());
            goddag::check_invariants(&g2)
                .unwrap_or_else(|e| panic!("{} invariants: {e}", driver.name()));
        }
    }

    #[test]
    fn driver_names_distinct() {
        let names: Vec<String> =
            builtin_drivers("phys").iter().map(|d| d.name().to_string()).collect();
        assert_eq!(names, ["fragmentation", "milestone", "standoff"]);
    }

    #[test]
    fn cross_representation_conversion() {
        // distributed -> fragmentation -> GODDAG -> milestone -> GODDAG:
        // the model survives any chain of representations.
        let g = sample();
        let frag = FragmentationDriver::default();
        let ms = MilestoneDriver::new("phys");
        let g2 = frag.import(&frag.export(&g).unwrap()).unwrap();
        let g3 = ms.import(&ms.export(&g2).unwrap()).unwrap();
        assert_eq!(g3.content(), g.content());
        assert_eq!(g3.element_count(), g.element_count());
    }
}
