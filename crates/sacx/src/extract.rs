//! The per-document SAX pass: extract content and markup ranges from one XML
//! document.
//!
//! This is the front half of SACX (Iacob, Dekhtyar & Kaneko, WIDM 2004): each
//! surface document is reduced to its text content plus a set of byte-offset
//! ranges; the back half (merging + GODDAG construction) operates purely on
//! ranges and never re-touches the XML.

use crate::error::{Result, SacxError};
use xmlcore::{Attribute, Event, QName, Reader};

/// One markup range extracted from a document, with byte offsets into the
/// document's text content.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtractedRange {
    /// Element name as written (prefix retained).
    pub name: QName,
    /// Attributes as written.
    pub attrs: Vec<Attribute>,
    /// Content byte offset of the first covered byte.
    pub start: usize,
    /// Content byte offset one past the last covered byte.
    pub end: usize,
    /// True when the element was written as an empty tag (`<pb/>`). An
    /// element with no content written as `<a></a>` has `empty == false` but
    /// `start == end`.
    pub empty: bool,
}

/// The result of extracting one document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtractedDoc {
    /// Root element name.
    pub root_name: QName,
    /// Root element attributes.
    pub root_attrs: Vec<Attribute>,
    /// Concatenated text content (the shared content of the distributed
    /// document).
    pub content: String,
    /// Markup ranges in start-tag (document) order, root excluded.
    pub ranges: Vec<ExtractedRange>,
}

/// Extract content + ranges from one XML document. Comments and processing
/// instructions are discarded (documented representation loss: GODDAG models
/// element structure over content).
pub fn extract(xml: &str, hierarchy_label: &str) -> Result<ExtractedDoc> {
    let mut reader = Reader::new(xml);
    let mut content = String::new();
    let mut root_name: Option<QName> = None;
    let mut root_attrs: Vec<Attribute> = Vec::new();
    let mut ranges: Vec<ExtractedRange> = Vec::new();
    // Stack of open range indices (`usize::MAX` marks the root itself).
    let mut stack: Vec<usize> = Vec::new();

    loop {
        let ev = reader
            .next_event()
            .map_err(|source| SacxError::Xml { hierarchy: hierarchy_label.to_string(), source })?;
        match ev {
            Event::StartElement { name, attrs, .. } => {
                if root_name.is_none() {
                    root_name = Some(name);
                    root_attrs = attrs;
                    stack.push(usize::MAX);
                } else {
                    stack.push(ranges.len());
                    ranges.push(ExtractedRange {
                        name,
                        attrs,
                        start: content.len(),
                        end: usize::MAX,
                        empty: false,
                    });
                }
            }
            Event::EmptyElement { name, attrs, .. } => {
                if root_name.is_none() {
                    // `<r/>` as the entire document.
                    root_name = Some(name);
                    root_attrs = attrs;
                } else {
                    ranges.push(ExtractedRange {
                        name,
                        attrs,
                        start: content.len(),
                        end: content.len(),
                        empty: true,
                    });
                }
            }
            Event::EndElement { .. } => {
                let top = stack.pop().expect("reader guarantees balance");
                if top != usize::MAX {
                    ranges[top].end = content.len();
                }
            }
            Event::Text { text, .. } => content.push_str(&text),
            Event::Comment { .. } | Event::ProcessingInstruction { .. } => {}
            Event::Eof => break,
        }
    }

    let root_name = root_name.ok_or(SacxError::Xml {
        hierarchy: hierarchy_label.to_string(),
        source: xmlcore::XmlError::NoRootElement,
    })?;
    debug_assert!(ranges.iter().all(|r| r.end != usize::MAX));
    Ok(ExtractedDoc { root_name, root_attrs, content, ranges })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extract_simple() {
        let d = extract("<r><line>one two</line> three</r>", "phys").unwrap();
        assert_eq!(d.root_name.local, "r");
        assert_eq!(d.content, "one two three");
        assert_eq!(d.ranges.len(), 1);
        assert_eq!(d.ranges[0].name.local, "line");
        assert_eq!((d.ranges[0].start, d.ranges[0].end), (0, 7));
    }

    #[test]
    fn extract_nested_order() {
        let d = extract("<r><a>x<b>y</b></a><c>z</c></r>", "t").unwrap();
        let names: Vec<_> = d.ranges.iter().map(|r| r.name.local.clone()).collect();
        assert_eq!(names, ["a", "b", "c"]);
        assert_eq!((d.ranges[0].start, d.ranges[0].end), (0, 2));
        assert_eq!((d.ranges[1].start, d.ranges[1].end), (1, 2));
        assert_eq!((d.ranges[2].start, d.ranges[2].end), (2, 3));
    }

    #[test]
    fn extract_empty_elements() {
        let d = extract("<r>ab<pb n=\"2\"/>cd</r>", "phys").unwrap();
        assert_eq!(d.ranges.len(), 1);
        let pb = &d.ranges[0];
        assert!(pb.empty);
        assert_eq!((pb.start, pb.end), (2, 2));
        assert_eq!(pb.attrs[0].value, "2");
    }

    #[test]
    fn empty_content_element_not_marked_empty() {
        let d = extract("<r>ab<a></a>cd</r>", "t").unwrap();
        assert!(!d.ranges[0].empty);
        assert_eq!((d.ranges[0].start, d.ranges[0].end), (2, 2));
    }

    #[test]
    fn root_attrs_captured() {
        let d = extract(r#"<r id="x">t</r>"#, "t").unwrap();
        assert_eq!(d.root_attrs[0].value, "x");
    }

    #[test]
    fn entities_resolved_in_content_offsets() {
        let d = extract("<r>a&amp;b<w>c</w></r>", "t").unwrap();
        assert_eq!(d.content, "a&bc");
        assert_eq!((d.ranges[0].start, d.ranges[0].end), (3, 4));
    }

    #[test]
    fn comments_and_pis_skipped() {
        let d = extract("<r>a<!-- note -->b<?app x?>c</r>", "t").unwrap();
        assert_eq!(d.content, "abc");
        assert!(d.ranges.is_empty());
    }

    #[test]
    fn malformed_reports_hierarchy() {
        let err = extract("<r><a></r></a>", "ling").unwrap_err();
        match err {
            SacxError::Xml { hierarchy, .. } => assert_eq!(hierarchy, "ling"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn multibyte_content_offsets_are_bytes() {
        let d = extract("<r>æ<w>þ</w></r>", "t").unwrap();
        assert_eq!(d.content, "æþ");
        assert_eq!((d.ranges[0].start, d.ranges[0].end), (2, 4));
    }

    #[test]
    fn empty_root_document() {
        let d = extract("<r/>", "t").unwrap();
        assert_eq!(d.content, "");
        assert!(d.ranges.is_empty());
    }
}
