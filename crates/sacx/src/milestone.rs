//! The milestone representation (TEI Guidelines solution 2, paper §2): one
//! *dominant* hierarchy keeps its real element tree; every other hierarchy's
//! element is flattened into a pair of empty elements marking its start and
//! end (`<ling:s cx:ms="start" cx:mid="m1"/> ... <ling:s cx:ms="end"
//! cx:mid="m1"/>`), which can never conflict with anything.
//!
//! Import pairs milestones by `cx:mid` and rebuilds the ranges; the exported
//! document is always well-formed regardless of how heavily the hierarchies
//! overlap.

use crate::error::{Result, SacxError};
use crate::extract::extract;
use crate::prefix::{exported_name, hierarchy_registry, split_prefix};
use goddag::{Goddag, GoddagBuilder, HierarchyId, RangeSpec};
use std::collections::BTreeMap;
use xmlcore::{Attribute, QName, Writer};

/// Milestone role attribute: `start`, `end` or `point`.
pub const CX_MS: &str = "cx:ms";
/// Milestone pairing id attribute.
pub const CX_MID: &str = "cx:mid";

/// Options for the milestone driver.
#[derive(Debug, Clone)]
pub struct MilestoneOptions {
    /// The hierarchy serialized as a real element tree. Everything else
    /// becomes milestones.
    pub dominant: String,
}

impl MilestoneOptions {
    /// Dominant-hierarchy constructor.
    pub fn new(dominant: impl Into<String>) -> MilestoneOptions {
        MilestoneOptions { dominant: dominant.into() }
    }
}

/// One flattened milestone tag awaiting emission.
#[derive(Debug)]
struct Ms {
    offset: usize,
    /// 0 = end, 1 = point, 2 = start (ends first at equal offsets).
    class: u8,
    name: QName,
    attrs: Vec<Attribute>,
}

/// Export a GODDAG as a single milestone document.
pub fn export_milestone(g: &Goddag, opts: &MilestoneOptions) -> Result<String> {
    let dominant = g.hierarchy_by_name(&opts.dominant).ok_or_else(|| {
        SacxError::Milestone(format!("unknown dominant hierarchy {:?}", opts.dominant))
    })?;

    // Milestone events from all non-dominant hierarchies.
    let mut events: Vec<Ms> = Vec::new();
    let mut mid_seq = 0usize;
    for h in g.hierarchy_ids() {
        if h == dominant {
            continue;
        }
        let hname = g.hierarchy(h).expect("live id").name.clone();
        let mut ordered: Vec<_> = g.elements_in(h).collect();
        ordered.sort_by_key(|&e| g.doc_order_key(e));
        for e in ordered {
            let (start, end) = g.char_range(e);
            let name = exported_name(g.name(e).expect("named"), &hname, "\u{0}never");
            mid_seq += 1;
            let mid = format!("m{mid_seq}");
            if g.span(e).is_empty() {
                let mut attrs = g.attrs(e).to_vec();
                attrs.push(Attribute::new(CX_MS, "point"));
                events.push(Ms { offset: start, class: 1, name, attrs });
            } else {
                let mut attrs = g.attrs(e).to_vec();
                attrs.push(Attribute::new(CX_MS, "start"));
                attrs.push(Attribute::new(CX_MID, mid.clone()));
                events.push(Ms { offset: start, class: 2, name: name.clone(), attrs });
                events.push(Ms {
                    offset: end,
                    class: 0,
                    name,
                    attrs: vec![Attribute::new(CX_MS, "end"), Attribute::new(CX_MID, mid)],
                });
            }
        }
    }
    events.sort_by_key(|a| (a.offset, a.class));

    // Serialize the dominant hierarchy, interleaving milestones at leaf
    // boundaries (leaves split at *all* hierarchies' boundaries, so every
    // milestone offset is a leaf boundary).
    let mut w = Writer::new();
    w.start_with(g.name(g.root()).expect("root is named"), g.attrs(g.root()));
    let mut ev_i = 0usize;
    write_node(g, dominant, g.root(), &mut w, &events, &mut ev_i)?;
    // Trailing milestones (at content end).
    while ev_i < events.len() {
        w.empty(&events[ev_i].name, &events[ev_i].attrs);
        ev_i += 1;
    }
    w.end().map_err(wrap)?;
    w.finish().map_err(wrap)
}

fn wrap(e: xmlcore::XmlError) -> SacxError {
    SacxError::Milestone(e.to_string())
}

fn write_node(
    g: &Goddag,
    h: HierarchyId,
    n: goddag::NodeId,
    w: &mut Writer,
    events: &[Ms],
    ev_i: &mut usize,
) -> Result<()> {
    for &c in g.children_in(n, h) {
        if let Some(text) = g.leaf_text(c) {
            let (start, _) = g.char_range(c);
            // Milestones at or before this leaf's start go first.
            while *ev_i < events.len() && events[*ev_i].offset <= start {
                w.empty(&events[*ev_i].name, &events[*ev_i].attrs);
                *ev_i += 1;
            }
            w.text(text);
        } else {
            let name = g.name(c).expect("elements are named");
            let attrs = g.attrs(c);
            let (cstart, _) = g.char_range(c);
            while *ev_i < events.len() && events[*ev_i].offset < cstart {
                w.empty(&events[*ev_i].name, &events[*ev_i].attrs);
                *ev_i += 1;
            }
            if g.children_in(c, h).is_empty() {
                w.empty(name, attrs);
            } else {
                w.start_with(name, attrs);
                write_node(g, h, c, w, events, ev_i)?;
                w.end().map_err(wrap)?;
            }
        }
    }
    Ok(())
}

/// Import a milestone document into a GODDAG.
///
/// `default_hierarchy` names the hierarchy for unprefixed real elements (the
/// dominant tree).
pub fn import_milestone(xml: &str, default_hierarchy: &str) -> Result<Goddag> {
    let doc = extract(xml, "milestone")?;

    // Partition: milestone elements vs real elements.
    struct Open {
        order: usize,
        name: QName,
        attrs: Vec<Attribute>,
        start: usize,
    }
    let mut open: BTreeMap<String, Open> = BTreeMap::new();
    let mut logical: Vec<(usize, QName, Vec<Attribute>, usize, usize)> = Vec::new();
    for (order, r) in doc.ranges.iter().enumerate() {
        let role = r.attrs.iter().find(|a| a.name.as_str() == CX_MS).map(|a| a.value.as_str());
        match role {
            None => logical.push((order, r.name.clone(), r.attrs.clone(), r.start, r.end)),
            Some("point") => {
                let attrs: Vec<Attribute> = r
                    .attrs
                    .iter()
                    .filter(|a| a.name.as_str() != CX_MS && a.name.as_str() != CX_MID)
                    .cloned()
                    .collect();
                logical.push((order, r.name.clone(), attrs, r.start, r.start));
            }
            Some("start") => {
                let mid = r
                    .attrs
                    .iter()
                    .find(|a| a.name.as_str() == CX_MID)
                    .ok_or_else(|| {
                        SacxError::Milestone(format!(
                            "start milestone <{}> without {CX_MID}",
                            r.name
                        ))
                    })?
                    .value
                    .clone();
                if open.contains_key(&mid) {
                    return Err(SacxError::Milestone(format!("duplicate start for id {mid:?}")));
                }
                let attrs: Vec<Attribute> = r
                    .attrs
                    .iter()
                    .filter(|a| a.name.as_str() != CX_MS && a.name.as_str() != CX_MID)
                    .cloned()
                    .collect();
                open.insert(mid, Open { order, name: r.name.clone(), attrs, start: r.start });
            }
            Some("end") => {
                let mid = r
                    .attrs
                    .iter()
                    .find(|a| a.name.as_str() == CX_MID)
                    .ok_or_else(|| {
                        SacxError::Milestone(format!("end milestone <{}> without {CX_MID}", r.name))
                    })?
                    .value
                    .clone();
                let o = open.remove(&mid).ok_or_else(|| {
                    SacxError::Milestone(format!("end milestone with unmatched id {mid:?}"))
                })?;
                if o.name != r.name {
                    return Err(SacxError::Milestone(format!(
                        "milestone pair {mid:?} has mismatched names <{}> vs <{}>",
                        o.name, r.name
                    )));
                }
                logical.push((o.order, o.name, o.attrs, o.start, r.start));
            }
            Some(other) => {
                return Err(SacxError::Milestone(format!(
                    "unknown {CX_MS} role {other:?} on <{}>",
                    r.name
                )))
            }
        }
    }
    if let Some((mid, o)) = open.into_iter().next() {
        return Err(SacxError::Milestone(format!(
            "start milestone <{}> (id {mid:?}) never ends",
            o.name
        )));
    }
    logical.sort_by_key(|(order, ..)| *order);

    // Hierarchies from prefixes.
    let prefixes: Vec<String> =
        logical.iter().map(|(_, name, ..)| split_prefix(name, default_hierarchy).0).collect();
    let registry = hierarchy_registry(&prefixes, default_hierarchy);

    let mut b = GoddagBuilder::new(doc.root_name.clone());
    b.root_attrs(doc.root_attrs.clone());
    b.content(doc.content.clone());
    let mut hids: BTreeMap<String, HierarchyId> = BTreeMap::new();
    for name in &registry {
        hids.insert(name.clone(), b.hierarchy(name.clone()));
    }
    for (_, name, attrs, start, end) in logical {
        let (hname, local) = split_prefix(&name, default_hierarchy);
        b.range_spec(RangeSpec {
            hierarchy: hids[&hname],
            name: QName::local(local),
            attrs,
            start,
            end,
        });
    }
    Ok(b.finish()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributed::parse_distributed;
    use goddag::check_invariants;

    fn sample() -> Goddag {
        parse_distributed(&[
            ("phys", "<r><line>swa hwa swe</line><line>nu sculon</line></r>"),
            ("ling", "<r><w>swa</w> <w>hwa</w> <s><w>swenu</w> <w>sculon</w></s></r>"),
        ])
        .unwrap()
    }

    #[test]
    fn export_is_wellformed_and_content_preserving() {
        let g = sample();
        let xml = export_milestone(&g, &MilestoneOptions::new("phys")).unwrap();
        let dom = xmlcore::dom::Document::parse(&xml).unwrap();
        assert_eq!(dom.text_content(dom.root()), g.content());
        // Dominant tree intact, others milestoned.
        assert!(xml.contains("<line>"));
        assert!(xml.contains("cx:ms=\"start\""));
        assert!(xml.contains("cx:ms=\"end\""));
    }

    #[test]
    fn roundtrip_preserves_elements_and_spans() {
        let g = sample();
        let xml = export_milestone(&g, &MilestoneOptions::new("phys")).unwrap();
        let g2 = import_milestone(&xml, "phys").unwrap();
        check_invariants(&g2).unwrap();
        assert_eq!(g2.content(), g.content());
        assert_eq!(g2.element_count(), g.element_count());
        let spans = |g: &Goddag| {
            let mut v: Vec<(String, usize, usize)> = g
                .elements()
                .map(|e| {
                    let (s, en) = g.char_range(e);
                    (g.name(e).unwrap().local.clone(), s, en)
                })
                .collect();
            v.sort();
            v
        };
        assert_eq!(spans(&g), spans(&g2));
    }

    #[test]
    fn dominant_choice_changes_surface_not_model() {
        let g = sample();
        let x1 = export_milestone(&g, &MilestoneOptions::new("phys")).unwrap();
        let x2 = export_milestone(&g, &MilestoneOptions::new("ling")).unwrap();
        assert_ne!(x1, x2);
        let g1 = import_milestone(&x1, "phys").unwrap();
        let g2 = import_milestone(&x2, "ling").unwrap();
        assert_eq!(g1.element_count(), g2.element_count());
    }

    #[test]
    fn unknown_dominant_rejected() {
        let g = sample();
        assert!(matches!(
            export_milestone(&g, &MilestoneOptions::new("nope")),
            Err(SacxError::Milestone(_))
        ));
    }

    #[test]
    fn point_milestones_roundtrip() {
        let g = parse_distributed(&[
            ("phys", "<r>ab<pb n=\"2\"/>cd</r>"),
            ("ling", "<r><w>abcd</w></r>"),
        ])
        .unwrap();
        let xml = export_milestone(&g, &MilestoneOptions::new("ling")).unwrap();
        assert!(xml.contains("cx:ms=\"point\""));
        let g2 = import_milestone(&xml, "ling").unwrap();
        let pb = g2.find_elements("pb")[0];
        assert!(g2.span(pb).is_empty());
        assert_eq!(g2.attr(pb, "n"), Some("2"));
    }

    #[test]
    fn unmatched_milestones_rejected() {
        let bad = r#"<r><s cx:ms="start" cx:mid="m1"/>text</r>"#;
        assert!(matches!(import_milestone(bad, "main"), Err(SacxError::Milestone(_))));
        let bad2 = r#"<r>text<s cx:ms="end" cx:mid="m9"/></r>"#;
        assert!(matches!(import_milestone(bad2, "main"), Err(SacxError::Milestone(_))));
    }

    #[test]
    fn mismatched_pair_names_rejected() {
        let bad = r#"<r><a cx:ms="start" cx:mid="m1"/>x<b cx:ms="end" cx:mid="m1"/></r>"#;
        assert!(matches!(import_milestone(bad, "main"), Err(SacxError::Milestone(_))));
    }

    #[test]
    fn unknown_role_rejected() {
        let bad = r#"<r><a cx:ms="middle" cx:mid="m1"/>x</r>"#;
        assert!(matches!(import_milestone(bad, "main"), Err(SacxError::Milestone(_))));
    }
}
