//! A vendored, dependency-free stand-in for the [criterion] benchmark
//! harness, API-compatible with the subset this workspace's benches use.
//!
//! The build environment has no network access to crates.io, so the real
//! criterion cannot be resolved; this crate keeps the benches compiling and
//! *running* (`cargo bench`) with honest wall-clock measurements, minus
//! criterion's statistics, plots and regression tracking. Measurements are
//! reported as `group/id: median per-iter time` on stdout.
//!
//! [criterion]: https://docs.rs/criterion

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark identifier: a function name plus a parameter rendered into the
/// reported label (`name/param`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new<S: Into<String>, P: Display>(name: S, parameter: P) -> BenchmarkId {
        BenchmarkId { label: format!("{}/{}", name.into(), parameter) }
    }

    /// Parameter-only identifier.
    pub fn from_parameter<P: Display>(parameter: P) -> BenchmarkId {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { label: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { label: s }
    }
}

/// Throughput annotation for a benchmark (reported next to the timing).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Top-level harness state.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(300),
            throughput: None,
        }
    }

    /// Benchmark a function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group("");
        g.bench_function(id.into(), f);
        g.finish();
        self
    }
}

/// A group of related measurements sharing sampling configuration.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Target total measurement time.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up time before sampling starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            median: Duration::ZERO,
        };
        f(&mut b);
        self.report(&id, b.median);
        self
    }

    /// Benchmark a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Close the group.
    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, median: Duration) {
        let label = if self.name.is_empty() {
            id.label.clone()
        } else {
            format!("{}/{}", self.name, id.label)
        };
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) if median > Duration::ZERO => {
                let mbps = n as f64 / median.as_secs_f64() / 1e6;
                format!("  ({mbps:.1} MB/s)")
            }
            Some(Throughput::Elements(n)) if median > Duration::ZERO => {
                let eps = n as f64 / median.as_secs_f64();
                format!("  ({eps:.0} elem/s)")
            }
            _ => String::new(),
        };
        println!("{label:<56} {median:>12.3?}/iter{rate}");
    }
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    median: Duration,
}

impl Bencher {
    /// Measure `routine`: warm up, then take `sample_size` samples sized so
    /// the whole run stays near the configured measurement time, and record
    /// the median per-iteration wall time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up, and a first estimate of the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u32 = 0;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        let est = warm_start.elapsed() / warm_iters;

        // Pick iterations per sample to fill measurement_time across samples.
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters = if est.is_zero() {
            1000
        } else {
            ((budget / est.as_secs_f64()).ceil() as u64).clamp(1, 1_000_000)
        };

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            samples.push(t.elapsed() / iters as u32);
        }
        samples.sort_unstable();
        self.median = samples[samples.len() / 2];
    }
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generate `main` running the given group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Mirror criterion's CLI just enough for `cargo bench` and
            // `cargo test --benches` wrappers: `--test` means smoke-run.
            let args: Vec<String> = std::env::args().collect();
            let _ = &args;
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        g.measurement_time(Duration::from_millis(30));
        g.warm_up_time(Duration::from_millis(5));
        let mut ran = false;
        g.bench_function(BenchmarkId::new("noop", 1), |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        g.finish();
        assert!(ran);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("a", 3).label, "a/3");
        assert_eq!(BenchmarkId::from_parameter(7).label, "7");
    }
}
