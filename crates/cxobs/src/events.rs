//! The bounded recent-events ring: a structured log for post-mortems.

use std::collections::VecDeque;
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// One structured event: what happened (`kind` is a stable machine-
/// readable tag, `detail` the human-readable specifics) and when —
/// twice. `at_micros` is monotonic microseconds since the ring was
/// created (wall-clock-free, so a transcript replays meaningfully
/// across clock adjustments); `at_unix_micros` anchors the same
/// monotonic offset to the wall clock sampled once at ring creation,
/// so events correlate with external timelines (flight-recorder
/// traces, other processes' logs) yet stay strictly monotone even if
/// the system clock steps mid-run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Monotone sequence number (1-based; gaps never occur — overflow
    /// drops the *oldest* entries, not numbers).
    pub seq: u64,
    /// Microseconds since the ring was created.
    pub at_micros: u64,
    /// Microseconds since the Unix epoch: the ring's creation wall
    /// time plus this event's monotonic offset.
    pub at_unix_micros: u64,
    /// Stable tag, e.g. `"checkpoint"`, `"gate.reject"`,
    /// `"follower.parked"`.
    pub kind: &'static str,
    /// Free-form specifics.
    pub detail: String,
}

#[derive(Default)]
struct Inner {
    next_seq: u64,
    dropped: u64,
    buf: VecDeque<Event>,
}

/// A bounded ring of recent [`Event`]s. Recording takes one short mutex
/// (events are rare — state transitions, errors, generations — never
/// per-operation); overflow drops the oldest entry and counts it, so
/// the ring can never grow without bound and loss is always visible.
pub struct EventRing {
    on: bool,
    cap: usize,
    start: Instant,
    /// Wall clock at creation — sampled exactly once, so
    /// `at_unix_micros` inherits the monotonic clock's ordering.
    epoch_unix_micros: u64,
    inner: Mutex<Inner>,
}

fn lock(m: &Mutex<Inner>) -> MutexGuard<'_, Inner> {
    // Poison recovery: the ring's writers push one complete event and pop
    // whole entries, so a panicked holder leaves valid (at worst slightly
    // stale) telemetry — dropping diagnostics over it would be backwards.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl EventRing {
    /// A ring keeping at most `cap` events (`cap` 0 records nothing).
    pub fn new(cap: usize) -> EventRing {
        let epoch_unix_micros = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map_or(0, |d| d.as_micros().min(u64::MAX as u128) as u64);
        EventRing {
            on: cap > 0,
            cap,
            start: Instant::now(),
            epoch_unix_micros,
            inner: Mutex::default(),
        }
    }

    /// Append an event, evicting (and counting) the oldest on overflow.
    pub fn record(&self, kind: &'static str, detail: impl Into<String>) {
        if !self.on {
            return;
        }
        let at_micros = self.start.elapsed().as_micros().min(u64::MAX as u128) as u64;
        let at_unix_micros = self.epoch_unix_micros.saturating_add(at_micros);
        let mut inner = lock(&self.inner);
        inner.next_seq += 1;
        let seq = inner.next_seq;
        if inner.buf.len() >= self.cap {
            inner.buf.pop_front();
            inner.dropped += 1;
        }
        inner.buf.push_back(Event { seq, at_micros, at_unix_micros, kind, detail: detail.into() });
    }

    /// The retained events, oldest first (a copy — the ring keeps them).
    pub fn recent(&self) -> Vec<Event> {
        lock(&self.inner).buf.iter().cloned().collect()
    }

    /// Take all retained events out of the ring, oldest first.
    pub fn drain(&self) -> Vec<Event> {
        lock(&self.inner).buf.drain(..).collect()
    }

    /// The retained events of one kind, oldest first — the post-mortem
    /// question is almost always "show me every `store.degraded`", not
    /// the whole interleaved trail.
    pub fn of_kind(&self, kind: &str) -> Vec<Event> {
        lock(&self.inner).buf.iter().filter(|e| e.kind == kind).cloned().collect()
    }

    /// Events evicted by overflow since creation.
    pub fn dropped(&self) -> u64 {
        lock(&self.inner).dropped
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        lock(&self.inner).buf.len()
    }

    /// Whether the ring is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The retention bound.
    pub fn capacity(&self) -> usize {
        self.cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let ring = EventRing::new(4);
        for i in 0..10 {
            ring.record("tick", format!("event {i}"));
        }
        let kept = ring.recent();
        assert_eq!(kept.len(), 4);
        assert_eq!(ring.dropped(), 6);
        // The newest four survive, sequence numbers intact and ordered.
        assert_eq!(kept.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![7, 8, 9, 10]);
        assert_eq!(kept.last().unwrap().detail, "event 9");
        // Timestamps are monotone — the wall-anchored ones too, since
        // they are the same monotonic offset plus a fixed epoch.
        assert!(kept.windows(2).all(|w| w[0].at_micros <= w[1].at_micros));
        assert!(kept.windows(2).all(|w| w[0].at_unix_micros <= w[1].at_unix_micros));
        // Anchored = epoch + offset: differences agree exactly.
        let (a, b) = (&kept[0], &kept[3]);
        assert_eq!(b.at_unix_micros - a.at_unix_micros, b.at_micros - a.at_micros);
        // And the anchor is a plausible wall time (after 2020-01-01).
        assert!(a.at_unix_micros > 1_577_836_800_000_000);
    }

    #[test]
    fn drain_empties_but_keeps_numbering() {
        let ring = EventRing::new(8);
        ring.record("a", "1");
        ring.record("b", "2");
        assert_eq!(ring.drain().len(), 2);
        assert!(ring.is_empty());
        ring.record("c", "3");
        assert_eq!(ring.recent()[0].seq, 3, "sequence numbers continue across drains");
    }

    #[test]
    fn of_kind_filters_without_disturbing_the_ring() {
        let ring = EventRing::new(8);
        ring.record("degraded", "shard 0");
        ring.record("healed", "shard 0");
        ring.record("degraded", "shard 2");
        let degraded = ring.of_kind("degraded");
        assert_eq!(degraded.len(), 2);
        assert_eq!(degraded[0].detail, "shard 0");
        assert_eq!(degraded[1].detail, "shard 2");
        assert!(degraded.windows(2).all(|w| w[0].seq < w[1].seq));
        assert!(ring.of_kind("missing").is_empty());
        assert_eq!(ring.len(), 3, "filtering copies, never drains");
    }

    #[test]
    fn zero_capacity_records_nothing() {
        let ring = EventRing::new(0);
        ring.record("x", "y");
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 0);
    }
}
