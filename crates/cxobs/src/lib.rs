//! # cxobs — instrumentation for the whole stack
//!
//! A dependency-free observability substrate: every layer of the store
//! stack (in-memory store, durable store, replication, cluster) hangs its
//! signals on one [`Registry`] per store and renders them through one
//! [`Observable`] trait. Three metric kinds, all lock-free on the hot
//! path:
//!
//! * [`Counter`] — monotone event counts (relaxed `fetch_add`);
//! * [`Gauge`] — levels that go up and down (in-flight writers, queue
//!   depth), with RAII tracking ([`Gauge::track`]);
//! * [`Histogram`] — fixed log2-bucket latency distributions in
//!   nanoseconds, with exact `count`/`sum` and approximate
//!   p50/p90/p99 ([`HistogramSnapshot::quantile`]). Recording is two
//!   relaxed `fetch_add`s plus a bucket index from `leading_zeros` —
//!   cheap enough for WAL appends and gate decisions.
//!
//! Latency is captured with **span timers**: [`Histogram::time`] wraps a
//! closure, [`Histogram::span`] returns a guard that records on drop
//! (early returns included), and [`Registry::time`] is the
//! string-addressed convenience (`obs.time("wal.append", || …)`) for
//! paths that don't hold a handle.
//!
//! Rare, high-signal moments (follower state transitions, terminal
//! errors, checkpoint generations, migrations, gate rejections) go into a
//! bounded [`EventRing`] — a structured recent-events log drainable for
//! post-mortems, oldest entries dropped (and counted) on overflow.
//!
//! Everything renders as Prometheus-style text (`name{label="v"} value`)
//! through [`Exposition`]: a label stack lets a cluster wrap each shard's
//! output in `shard="i"`, and [`Observable`] is the one-method trait every
//! store-shaped type implements to contribute its lines.
//!
//! A [`Registry::disabled`] registry turns every record into a branch
//! (span timers skip the clock reads entirely), which is what the
//! `perf_smoke` overhead guard compares against.
//!
//! ```
//! use cxobs::Registry;
//!
//! let obs = Registry::new();
//! let requests = obs.counter("cx_requests_total");
//! let latency = obs.histogram("cx_request_ns");
//! for _ in 0..100 {
//!     requests.bump();
//!     latency.time(|| { /* serve */ });
//! }
//! obs.event("demo", "served 100 requests");
//! assert_eq!(requests.get(), 100);
//! assert_eq!(latency.snapshot().count, 100);
//! let text = obs.render();
//! assert!(text.contains("cx_requests_total 100"));
//! assert!(text.contains("cx_request_ns{quantile=\"0.99\"}"));
//! ```

mod events;
mod expose;
mod metrics;
mod registry;

pub use events::{Event, EventRing};
pub use expose::{Exposition, Observable};
pub use metrics::{Counter, Gauge, GaugeGuard, Histogram, HistogramSnapshot, Span, BUCKETS};
pub use registry::Registry;
