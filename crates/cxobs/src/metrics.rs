//! The three metric kinds: counters, gauges, log2-bucket histograms.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Number of histogram buckets. Bucket `i` holds values in
/// `[2^i, 2^(i+1))` nanoseconds (bucket 0 also holds 0), so the top
/// bucket starts at `2^47` ns ≈ 39 hours — far past any latency this
/// stack can produce; larger values clamp into it.
pub const BUCKETS: usize = 48;

/// A monotone event counter. `bump`/`add` are single relaxed
/// `fetch_add`s; a disabled counter (from [`crate::Registry::disabled`])
/// is a branch.
#[derive(Debug)]
pub struct Counter {
    on: bool,
    value: AtomicU64,
}

impl Counter {
    pub(crate) fn new(on: bool) -> Counter {
        Counter { on, value: AtomicU64::new(0) }
    }

    /// Count one event.
    pub fn bump(&self) {
        self.add(1);
    }

    /// Count `n` events.
    pub fn add(&self, n: u64) {
        if self.on {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// The current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A level that moves both ways — in-flight requests, queue depth,
/// threads alive. [`Gauge::track`] gives RAII in-flight accounting.
#[derive(Debug)]
pub struct Gauge {
    on: bool,
    value: AtomicI64,
}

impl Gauge {
    pub(crate) fn new(on: bool) -> Gauge {
        Gauge { on, value: AtomicI64::new(0) }
    }

    /// Add `n` (negative to subtract).
    pub fn add(&self, n: i64) {
        if self.on {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Decrement by one.
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Overwrite the level.
    pub fn set(&self, v: i64) {
        if self.on {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// The current level.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Raise the gauge by one for the lifetime of the returned guard —
    /// the in-flight pattern: the level drops again on drop, early
    /// returns and unwinds included.
    pub fn track(&self) -> GaugeGuard<'_> {
        self.track_n(1)
    }

    /// [`Gauge::track`] for `n` units at once (e.g. a fan-out spawning
    /// `n` worker threads).
    pub fn track_n(&self, n: i64) -> GaugeGuard<'_> {
        self.add(n);
        GaugeGuard { gauge: self, n }
    }
}

/// RAII handle from [`Gauge::track`]: undoes its increment on drop.
#[derive(Debug)]
pub struct GaugeGuard<'a> {
    gauge: &'a Gauge,
    n: i64,
}

impl Drop for GaugeGuard<'_> {
    fn drop(&mut self) {
        self.gauge.add(-self.n);
    }
}

/// A fixed log2-bucket latency histogram over nanoseconds: exact
/// `count` and `sum`, bucketed distribution for approximate quantiles.
/// Recording is two relaxed `fetch_add`s plus one more for the bucket;
/// no locks, no allocation.
#[derive(Debug)]
pub struct Histogram {
    on: bool,
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
    /// Per-bucket **exemplar**: the tag (a `cxtrace` trace id; 0 =
    /// none) of the last tagged observation that landed in the bucket —
    /// what links a fat p99 bucket to one concrete retained trace.
    exemplars: [AtomicU64; BUCKETS],
}

/// The bucket a value lands in: `floor(log2(max(ns, 1)))`, clamped.
fn bucket_of(ns: u64) -> usize {
    (63 - (ns | 1).leading_zeros() as usize).min(BUCKETS - 1)
}

impl Histogram {
    pub(crate) fn new(on: bool) -> Histogram {
        Histogram {
            on,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            exemplars: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Whether this histogram records anything (false on a disabled
    /// registry — [`Histogram::time`]/[`Histogram::span`] then skip the
    /// clock reads too).
    pub fn enabled(&self) -> bool {
        self.on
    }

    /// Record one observation, in nanoseconds.
    pub fn record_ns(&self, ns: u64) {
        self.record_ns_tagged(ns, 0);
    }

    /// Record one observation carrying an exemplar tag (a trace id;
    /// 0 = untagged). A nonzero tag overwrites the bucket's exemplar.
    pub fn record_ns_tagged(&self, ns: u64, tag: u64) {
        if !self.on {
            return;
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(ns, Ordering::Relaxed);
        let b = bucket_of(ns);
        self.buckets[b].fetch_add(1, Ordering::Relaxed);
        if tag != 0 {
            self.exemplars[b].store(tag, Ordering::Relaxed);
        }
    }

    /// Record one observation from a [`Duration`].
    pub fn record(&self, d: Duration) {
        self.record_ns(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Time a closure and record its latency — the span timer for
    /// straight-line paths. Disabled histograms run the closure bare.
    pub fn time<R>(&self, f: impl FnOnce() -> R) -> R {
        self.time_tagged(0, f)
    }

    /// [`Histogram::time`] with an exemplar tag on the observation.
    pub fn time_tagged<R>(&self, tag: u64, f: impl FnOnce() -> R) -> R {
        if !self.on {
            return f();
        }
        let start = Instant::now();
        let r = f();
        self.record_ns_tagged(start.elapsed().as_nanos().min(u64::MAX as u128) as u64, tag);
        r
    }

    /// Start a span that records on drop — for paths with early returns
    /// or latency that spans a scope rather than a closure.
    pub fn span(&self) -> Span<'_> {
        self.span_tagged(0)
    }

    /// [`Histogram::span`] with an exemplar tag on the recorded
    /// observation.
    pub fn span_tagged(&self, tag: u64) -> Span<'_> {
        Span { hist: self, start: if self.on { Some(Instant::now()) } else { None }, tag }
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum_ns: self.sum.load(Ordering::Relaxed),
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            exemplars: std::array::from_fn(|i| self.exemplars[i].load(Ordering::Relaxed)),
        }
    }
}

/// An in-flight span from [`Histogram::span`]: records elapsed time on
/// drop.
#[derive(Debug)]
pub struct Span<'a> {
    hist: &'a Histogram,
    start: Option<Instant>,
    tag: u64,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.hist.record_ns_tagged(
                start.elapsed().as_nanos().min(u64::MAX as u128) as u64,
                self.tag,
            );
        }
    }
}

/// A consistent-enough copy of a [`Histogram`] (fields are read
/// relaxed; under concurrent recording the totals may straddle an
/// in-flight observation, which quantile estimation tolerates).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Exact sum of all observations, nanoseconds.
    pub sum_ns: u64,
    /// Per-bucket observation counts (bucket `i` = `[2^i, 2^(i+1))` ns).
    pub buckets: [u64; BUCKETS],
    /// Per-bucket exemplar tags (last tagged observation's trace id,
    /// 0 = none).
    pub exemplars: [u64; BUCKETS],
}

impl HistogramSnapshot {
    /// The approximate `q`-quantile (0 < q ≤ 1), in nanoseconds: the
    /// upper bound of the bucket holding the rank-`ceil(q·count)`
    /// observation — at most 2× the true value, and monotone in `q`.
    /// Zero when nothing was recorded.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return if i + 1 >= 64 { u64::MAX } else { (1u64 << (i + 1)) - 1 };
            }
        }
        u64::MAX
    }

    /// Median latency, nanoseconds.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile latency, nanoseconds.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile latency, nanoseconds.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Exact mean latency, nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of((1 << 47) - 1), 46);
        assert_eq!(bucket_of(1 << 47), 47);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1, "huge values clamp");
    }

    #[test]
    fn histogram_count_sum_and_quantiles() {
        let h = Histogram::new(true);
        // 90 fast observations (~1 µs) and 10 slow ones (~1 ms).
        for _ in 0..90 {
            h.record_ns(1_000);
        }
        for _ in 0..10 {
            h.record_ns(1_000_000);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.sum_ns, 90 * 1_000 + 10 * 1_000_000);
        assert_eq!(s.mean_ns(), s.sum_ns / 100);
        // p50 sits in the 1 µs bucket ([1024, 2048)); p99 in the 1 ms one.
        assert!(s.p50() >= 1_000 && s.p50() < 2_048, "p50 = {}", s.p50());
        assert!(s.p99() >= 1_000_000 && s.p99() < 2_097_152, "p99 = {}", s.p99());
        assert!(s.p50() <= s.p90() && s.p90() <= s.p99(), "quantiles are monotone");
        assert!(s.quantile(1.0) >= s.p99(), "the max quantile dominates p99");
    }

    #[test]
    fn empty_histogram_is_all_zeroes() {
        let s = Histogram::new(true).snapshot();
        assert_eq!((s.count, s.sum_ns, s.p50(), s.p99(), s.mean_ns()), (0, 0, 0, 0, 0));
    }

    #[test]
    fn span_and_time_record() {
        let h = Histogram::new(true);
        h.time(|| std::thread::sleep(Duration::from_micros(50)));
        {
            let _span = h.span();
            std::thread::sleep(Duration::from_micros(50));
        }
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert!(s.sum_ns >= 100_000, "both spans measured at least the sleep");
    }

    #[test]
    fn exemplars_remember_the_last_tagged_observation_per_bucket() {
        let h = Histogram::new(true);
        h.record_ns(1_000);
        let s = h.snapshot();
        assert_eq!(s.exemplars, [0; BUCKETS], "untagged observations leave no exemplar");
        h.record_ns_tagged(1_000, 0xabc);
        h.record_ns_tagged(1_000, 0xdef);
        h.record_ns_tagged(1_000_000, 0x123);
        h.record_ns(1_000); // tagless: must not clobber the exemplar
        let s = h.snapshot();
        assert_eq!(s.exemplars[bucket_of(1_000)], 0xdef, "last tag wins");
        assert_eq!(s.exemplars[bucket_of(1_000_000)], 0x123);
        h.time_tagged(0x77, || ());
        drop(h.span_tagged(0x88));
        let s = h.snapshot();
        assert!(s.exemplars.contains(&0x77) || s.exemplars.contains(&0x88));
        assert_eq!(s.count, 7);
    }

    #[test]
    fn disabled_metrics_record_nothing() {
        let c = Counter::new(false);
        c.bump();
        assert_eq!(c.get(), 0);
        let g = Gauge::new(false);
        g.inc();
        assert_eq!(g.get(), 0);
        let h = Histogram::new(false);
        h.record_ns(7);
        assert_eq!(h.time(|| 42), 42);
        drop(h.span());
        assert_eq!(h.snapshot().count, 0);
    }

    #[test]
    fn gauge_tracking_is_unwind_safe() {
        let g = Arc::new(Gauge::new(true));
        {
            let _a = g.track();
            let _b = g.track_n(3);
            assert_eq!(g.get(), 4);
        }
        assert_eq!(g.get(), 0);
        let g2 = Arc::clone(&g);
        let _ = std::thread::spawn(move || {
            let _guard = g2.track();
            panic!("unwind drops the guard");
        })
        .join();
        assert_eq!(g.get(), 0, "panicking holder released its unit");
    }

    #[test]
    fn concurrent_bumps_are_never_lost() {
        let c = Arc::new(Counter::new(true));
        let h = Arc::new(Histogram::new(true));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let (c, h) = (Arc::clone(&c), Arc::clone(&h));
                std::thread::spawn(move || {
                    for i in 0..10_000 {
                        c.bump();
                        h.record_ns(i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 80_000);
        let s = h.snapshot();
        assert_eq!(s.count, 80_000);
        assert_eq!(s.buckets.iter().sum::<u64>(), 80_000, "every observation landed in a bucket");
    }
}
