//! Text exposition: Prometheus-style `name{label="v"} value` lines.

use std::fmt::{Display, Write};

/// A text exposition under construction: a line buffer plus a **label
/// stack**. Labels pushed with [`Exposition::push_label`] are stamped on
/// every line written until popped — how a cluster wraps each shard's
/// whole output in `shard="i"` without the shard knowing it is being
/// wrapped.
#[derive(Debug, Default)]
pub struct Exposition {
    labels: Vec<(String, String)>,
    buf: String,
}

/// Escape a label value per the Prometheus text format.
fn escape_into(buf: &mut String, v: &str) {
    for c in v.chars() {
        match c {
            '\\' => buf.push_str("\\\\"),
            '"' => buf.push_str("\\\""),
            '\n' => buf.push_str("\\n"),
            c => buf.push(c),
        }
    }
}

impl Exposition {
    /// An empty exposition.
    pub fn new() -> Exposition {
        Exposition::default()
    }

    /// Stamp `key="value"` on every line written until the matching
    /// [`Exposition::pop_label`].
    pub fn push_label(&mut self, key: &str, value: impl Display) {
        self.labels.push((key.to_string(), value.to_string()));
    }

    /// Undo the most recent [`Exposition::push_label`].
    pub fn pop_label(&mut self) {
        self.labels.pop();
    }

    /// Write one `name{stack labels} value` line.
    pub fn write(&mut self, name: &str, value: impl Display) {
        self.write_with(name, &[], value);
    }

    /// Write one line carrying the stacked labels plus `extra` ones
    /// (stack first, so per-metric labels like `quantile` read last).
    pub fn write_with(&mut self, name: &str, extra: &[(&str, &str)], value: impl Display) {
        self.write_with_exemplar(name, extra, value, None);
    }

    /// [`Exposition::write_with`] plus an OpenMetrics-style exemplar
    /// suffix: ` # {trace_id="<id>"}` — how a histogram bucket links to
    /// the concrete trace that last landed in it.
    pub fn write_with_exemplar(
        &mut self,
        name: &str,
        extra: &[(&str, &str)],
        value: impl Display,
        exemplar: Option<&str>,
    ) {
        self.buf.push_str(name);
        if !self.labels.is_empty() || !extra.is_empty() {
            self.buf.push('{');
            let mut first = true;
            let stacked = self.labels.iter().map(|(k, v)| (k.as_str(), v.as_str()));
            for (k, v) in stacked.chain(extra.iter().copied()) {
                if !first {
                    self.buf.push(',');
                }
                first = false;
                self.buf.push_str(k);
                self.buf.push_str("=\"");
                escape_into(&mut self.buf, v);
                self.buf.push('"');
            }
            self.buf.push('}');
        }
        self.buf.push(' ');
        let _ = write!(self.buf, "{value}");
        if let Some(ex) = exemplar {
            self.buf.push_str(" # {trace_id=\"");
            escape_into(&mut self.buf, ex);
            self.buf.push_str("\"}");
        }
        self.buf.push('\n');
    }

    /// The finished text.
    pub fn finish(self) -> String {
        self.buf
    }

    /// The text so far (the buffer keeps growing).
    pub fn as_str(&self) -> &str {
        &self.buf
    }
}

/// Anything that can describe its current state as exposition lines.
/// Implemented by every store-shaped layer of the stack (`Store`,
/// `DurableStore`, `ReplicaStore`, `Primary`, `Cluster`); compose by
/// calling [`Observable::expose_into`] on parts under pushed labels.
pub trait Observable {
    /// Append this component's `name{label="v"} value` lines.
    fn expose_into(&self, out: &mut Exposition);

    /// Render this component alone as exposition text.
    fn exposition(&self) -> String {
        let mut out = Exposition::new();
        self.expose_into(&mut out);
        out.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_and_labeled_lines() {
        let mut e = Exposition::new();
        e.write("cx_docs", 3);
        e.push_label("shard", 1);
        e.write("cx_docs", 2);
        e.write_with("cx_edit_ns", &[("quantile", "0.5")], 4095);
        e.pop_label();
        e.write("cx_total", 5);
        assert_eq!(
            e.finish(),
            "cx_docs 3\n\
             cx_docs{shard=\"1\"} 2\n\
             cx_edit_ns{shard=\"1\",quantile=\"0.5\"} 4095\n\
             cx_total 5\n"
        );
    }

    #[test]
    fn label_values_are_escaped() {
        let mut e = Exposition::new();
        e.write_with("cx_event", &[("detail", "say \"hi\"\nback\\slash")], 1);
        assert_eq!(e.finish(), "cx_event{detail=\"say \\\"hi\\\"\\nback\\\\slash\"} 1\n");
    }

    #[test]
    fn observable_default_renders() {
        struct Two;
        impl Observable for Two {
            fn expose_into(&self, out: &mut Exposition) {
                out.write("two", 2);
            }
        }
        assert_eq!(Two.exposition(), "two 2\n");
    }
}
