//! The metric registry: named handles, idempotent registration, render.

use crate::events::EventRing;
use crate::expose::Exposition;
use crate::metrics::{Counter, Gauge, Histogram};
use std::collections::BTreeMap;
use std::sync::{Arc, PoisonError, RwLock};

/// How many events the registry's ring retains by default.
const EVENT_CAP: usize = 256;

/// `(name, static labels)` — the registry key. Two registrations with
/// the same name but different labels are distinct series (the per-shard
/// gauge pattern).
type Key = (String, Vec<(String, String)>);

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A registry of named metrics plus one [`EventRing`]. One registry
/// backs one store stack: the layers (`Store`, `DurableStore`,
/// replication, cluster) register their handles here once and bump them
/// lock-free; [`Registry::expose_into`] renders everything as
/// `name{label="v"} value` lines, sorted by name for deterministic
/// output.
///
/// Registration is idempotent — asking for an existing `(name, labels)`
/// pair returns the same handle — and kind-checked: re-registering a
/// name as a different metric kind panics (it is a programming error,
/// not a runtime condition).
pub struct Registry {
    on: bool,
    metrics: RwLock<BTreeMap<Key, Metric>>,
    events: EventRing,
}

impl Default for Registry {
    fn default() -> Registry {
        Registry::new()
    }
}

impl Registry {
    /// A live registry.
    pub fn new() -> Registry {
        Registry { on: true, metrics: RwLock::default(), events: EventRing::new(EVENT_CAP) }
    }

    /// A no-op registry: handles exist and render (as zeroes), but
    /// recording is a branch and span timers skip the clock entirely —
    /// the baseline the instrumentation-overhead guard compares against.
    pub fn disabled() -> Registry {
        Registry { on: false, metrics: RwLock::default(), events: EventRing::new(0) }
    }

    /// Whether metrics recorded through this registry are kept.
    pub fn is_enabled(&self) -> bool {
        self.on
    }

    /// The named counter (registered on first use).
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.counter_with(name, &[])
    }

    /// A counter carrying static labels, e.g. `("shard", "2")`.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.register(
            name,
            labels,
            || Metric::Counter(Arc::new(Counter::new(self.on))),
            |m| match m {
                Metric::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
        )
    }

    /// The named gauge (registered on first use).
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.gauge_with(name, &[])
    }

    /// A gauge carrying static labels.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        self.register(
            name,
            labels,
            || Metric::Gauge(Arc::new(Gauge::new(self.on))),
            |m| match m {
                Metric::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
        )
    }

    /// The named histogram (registered on first use).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with(name, &[])
    }

    /// A histogram carrying static labels.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        self.register(
            name,
            labels,
            || Metric::Histogram(Arc::new(Histogram::new(self.on))),
            |m| match m {
                Metric::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
        )
    }

    /// Time a closure into the named histogram — the string-addressed
    /// span timer (`obs.time("wal.append", || …)`). Hot paths should
    /// hold the [`Registry::histogram`] handle instead and call
    /// [`Histogram::time`] directly; this pays one map lookup.
    pub fn time<R>(&self, name: &str, f: impl FnOnce() -> R) -> R {
        if !self.on {
            return f();
        }
        self.histogram(name).time(f)
    }

    /// Record an event into the ring.
    pub fn event(&self, kind: &'static str, detail: impl Into<String>) {
        self.events.record(kind, detail);
    }

    /// The recent-events ring.
    pub fn events(&self) -> &EventRing {
        &self.events
    }

    // Poison recovery (both `metrics` acquisitions below): the map's only
    // writer inserts one fully-constructed metric per critical section,
    // so a panicked holder leaves a smaller but valid registry.
    fn register<T>(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Metric,
        get: impl Fn(&Metric) -> Option<T>,
    ) -> T {
        let key = || {
            (
                name.to_string(),
                labels.iter().map(|&(k, v)| (k.to_string(), v.to_string())).collect(),
            )
        };
        let lookup = key();
        if let Some(m) = self.metrics.read().unwrap_or_else(PoisonError::into_inner).get(&lookup) {
            return get(m).unwrap_or_else(|| {
                panic!("metric {name:?} is already registered as a {}", m.kind())
            });
        }
        let mut map = self.metrics.write().unwrap_or_else(PoisonError::into_inner);
        let m = map.entry(lookup).or_insert_with(make);
        get(m).unwrap_or_else(|| panic!("metric {name:?} is already registered as a {}", m.kind()))
    }

    /// Append every registered metric as exposition lines (sorted by
    /// name, then labels): counters and gauges one line each, histograms
    /// in Prometheus-conformant order — cumulative `{name}_bucket`
    /// lines with ascending `le` upper bounds (non-empty buckets plus
    /// the mandatory `le="+Inf"` line, whose value equals the exact
    /// count), then `{name}_sum`, then `{name}_count` — followed by the
    /// legacy `quantile="0.5|0.9|0.99"` convenience series (all values
    /// in nanoseconds for `_ns`-suffixed names). Buckets holding a
    /// tagged observation carry an exemplar suffix
    /// `# {trace_id="<016x>"}`.
    pub fn expose_into(&self, out: &mut Exposition) {
        // Poison recovery: registration (the only writer) inserts whole
        // metrics, so a recovered read sees a valid registry — and hiding
        // telemetry after a panic would hide the incident being diagnosed.
        let map = self.metrics.read().unwrap_or_else(PoisonError::into_inner);
        for ((name, labels), metric) in map.iter() {
            let labels: Vec<(&str, &str)> =
                labels.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
            match metric {
                Metric::Counter(c) => out.write_with(name, &labels, c.get()),
                Metric::Gauge(g) => out.write_with(name, &labels, g.get()),
                Metric::Histogram(h) => {
                    let s = h.snapshot();
                    let bucket = format!("{name}_bucket");
                    let mut cum = 0u64;
                    for (i, &n) in s.buckets.iter().enumerate() {
                        if n == 0 {
                            continue;
                        }
                        cum += n;
                        // Bucket i holds [2^i, 2^(i+1)) ns of integer
                        // observations: the inclusive upper bound is
                        // 2^(i+1)-1.
                        let le = ((1u64 << (i + 1)) - 1).to_string();
                        let mut with_le = labels.clone();
                        with_le.push(("le", le.as_str()));
                        let ex = (s.exemplars[i] != 0).then(|| format!("{:016x}", s.exemplars[i]));
                        out.write_with_exemplar(&bucket, &with_le, cum, ex.as_deref());
                    }
                    let mut with_inf = labels.clone();
                    with_inf.push(("le", "+Inf"));
                    out.write_with(&bucket, &with_inf, s.count);
                    out.write_with(&format!("{name}_sum"), &labels, s.sum_ns);
                    out.write_with(&format!("{name}_count"), &labels, s.count);
                    for (q, v) in [("0.5", s.p50()), ("0.9", s.p90()), ("0.99", s.p99())] {
                        let mut with_q = labels.clone();
                        with_q.push(("quantile", q));
                        out.write_with(name, &with_q, v);
                    }
                }
            }
        }
    }

    /// Render this registry alone as exposition text.
    pub fn render(&self) -> String {
        let mut out = Exposition::new();
        self.expose_into(&mut out);
        out.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_and_shared() {
        let r = Registry::new();
        let a = r.counter("cx_things_total");
        let b = r.counter("cx_things_total");
        a.bump();
        b.bump();
        assert_eq!(a.get(), 2, "both handles name the same counter");
        // Distinct labels are distinct series.
        let s0 = r.gauge_with("cx_depth", &[("shard", "0")]);
        let s1 = r.gauge_with("cx_depth", &[("shard", "1")]);
        s0.set(4);
        assert_eq!(s1.get(), 0);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("cx_x");
        r.gauge("cx_x");
    }

    #[test]
    fn render_is_sorted_and_complete() {
        let r = Registry::new();
        r.counter("cx_b_total").add(2);
        r.gauge("cx_a").set(-3);
        r.histogram("cx_lat_ns").record_ns(1000);
        let text = r.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines,
            vec![
                "cx_a -3",
                "cx_b_total 2",
                "cx_lat_ns_bucket{le=\"1023\"} 1",
                "cx_lat_ns_bucket{le=\"+Inf\"} 1",
                "cx_lat_ns_sum 1000",
                "cx_lat_ns_count 1",
                "cx_lat_ns{quantile=\"0.5\"} 1023",
                "cx_lat_ns{quantile=\"0.9\"} 1023",
                "cx_lat_ns{quantile=\"0.99\"} 1023",
            ]
        );
    }

    #[test]
    fn bucket_lines_are_cumulative_and_exemplars_render() {
        let r = Registry::new();
        let h = r.histogram("cx_lat_ns");
        h.record_ns(1); // bucket 0, le="1"
        h.record_ns_tagged(1000, 0xabcd); // bucket 9, le="1023"
        let text = r.render();
        assert!(text.contains("cx_lat_ns_bucket{le=\"1\"} 1\n"), "{text}");
        assert!(
            text.contains("cx_lat_ns_bucket{le=\"1023\"} 2 # {trace_id=\"000000000000abcd\"}\n"),
            "{text}"
        );
        assert!(text.contains("cx_lat_ns_bucket{le=\"+Inf\"} 2\n"), "{text}");
    }

    #[test]
    fn string_addressed_timer_registers_and_records() {
        let r = Registry::new();
        assert_eq!(r.time("cx_step_ns", || 7), 7);
        assert_eq!(r.histogram("cx_step_ns").snapshot().count, 1);
        // Disabled registries run the closure bare and keep nothing.
        let off = Registry::disabled();
        assert_eq!(off.time("cx_step_ns", || 7), 7);
        assert_eq!(off.histogram("cx_step_ns").snapshot().count, 0);
        off.event("x", "dropped");
        assert!(off.events().is_empty());
    }

    #[test]
    fn registry_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Registry>();
    }
}
