//! Prometheus text-format conformance for histogram exposition: the
//! rendered page is parsed line-by-line and checked against the rules a
//! real scraper enforces — `_bucket` lines cumulative with ascending
//! `le` ending in a mandatory `+Inf`, `_sum` and `_count` present
//! exactly once per series, and `+Inf` equal to `_count`.

use cxobs::Registry;

/// Split one exposition line into (metric name, `le` label if any,
/// value text). Exemplar suffixes (` # {...}`) are stripped first, as a
/// Prometheus parser would.
fn parse_line(line: &str) -> (String, Option<String>, String) {
    let line = line.split(" # ").next().unwrap();
    let (series, value) = line.rsplit_once(' ').expect("value after last space");
    let (name, le) = match series.split_once('{') {
        None => (series.to_string(), None),
        Some((name, rest)) => {
            let labels = rest.strip_suffix('}').expect("closing brace");
            let le = labels.split(',').find_map(|kv| {
                let (k, v) = kv.split_once('=')?;
                (k == "le").then(|| v.trim_matches('"').to_string())
            });
            (name.to_string(), le)
        }
    };
    (name, le, value.to_string())
}

#[test]
fn histogram_exposition_is_prometheus_conformant() {
    let r = Registry::new();
    let h = r.histogram("cx_lat_ns");
    h.record_ns(1);
    h.record_ns(500);
    h.record_ns(500);
    h.record_ns(1_000_000);
    r.histogram("cx_empty_ns"); // registered, never recorded
    let text = r.render();

    for family in ["cx_lat_ns", "cx_empty_ns"] {
        let bucket_name = format!("{family}_bucket");
        let mut bucket_lines: Vec<(Option<String>, u64)> = Vec::new();
        let mut sum = None;
        let mut count = None;
        let mut first_bucket_idx = None;
        let mut sum_idx = None;
        let mut count_idx = None;
        for (idx, line) in text.lines().enumerate() {
            let (name, le, value) = parse_line(line);
            if name == bucket_name {
                first_bucket_idx.get_or_insert(idx);
                bucket_lines.push((le, value.parse().unwrap()));
            } else if name == format!("{family}_sum") {
                assert!(sum.is_none(), "one _sum line per series");
                sum = Some(value.parse::<u64>().unwrap());
                sum_idx = Some(idx);
            } else if name == format!("{family}_count") {
                assert!(count.is_none(), "one _count line per series");
                count = Some(value.parse::<u64>().unwrap());
                count_idx = Some(idx);
            }
        }
        let (sum, count) = (sum.expect("_sum rendered"), count.expect("_count rendered"));

        // Order: every _bucket line precedes _sum, which precedes _count.
        assert!(first_bucket_idx.unwrap() < sum_idx.unwrap(), "{family}: buckets before _sum");
        assert!(sum_idx.unwrap() < count_idx.unwrap(), "{family}: _sum before _count");

        // The +Inf bucket is mandatory, last, and equals _count.
        let (last_le, last_val) = bucket_lines.last().expect("at least the +Inf bucket");
        assert_eq!(last_le.as_deref(), Some("+Inf"), "{family}: last bucket is +Inf");
        assert_eq!(*last_val, count, "{family}: +Inf equals _count");
        assert!(
            bucket_lines[..bucket_lines.len() - 1].iter().all(|(le, _)| le.is_some()),
            "{family}: every bucket line carries le"
        );

        // Finite le bounds strictly ascend; cumulative values never
        // decrease and never exceed the count.
        let finite: Vec<(u64, u64)> = bucket_lines[..bucket_lines.len() - 1]
            .iter()
            .map(|(le, v)| (le.as_deref().unwrap().parse().unwrap(), *v))
            .collect();
        assert!(finite.windows(2).all(|w| w[0].0 < w[1].0), "{family}: le ascends");
        assert!(finite.windows(2).all(|w| w[0].1 <= w[1].1), "{family}: cumulative");
        assert!(finite.iter().all(|&(_, v)| v <= count), "{family}: bounded by count");

        match family {
            "cx_lat_ns" => {
                assert_eq!(count, 4);
                assert_eq!(sum, 1 + 500 + 500 + 1_000_000);
                // 1 → le=1; 500,500 → le=511; 1_000_000 → le=1048575.
                assert_eq!(finite, vec![(1, 1), (511, 3), (1_048_575, 4)]);
            }
            "cx_empty_ns" => {
                assert_eq!((count, sum), (0, 0));
                assert!(finite.is_empty(), "no observations, only +Inf");
            }
            _ => unreachable!(),
        }
    }
}

#[test]
fn labeled_histograms_keep_their_labels_on_every_line() {
    let r = Registry::new();
    r.histogram_with("cx_req_ns", &[("verb", "edit")]).record_ns(100);
    let text = r.render();
    assert!(text.contains("cx_req_ns_bucket{verb=\"edit\",le=\"127\"} 1"), "{text}");
    assert!(text.contains("cx_req_ns_bucket{verb=\"edit\",le=\"+Inf\"} 1"), "{text}");
    assert!(text.contains("cx_req_ns_sum{verb=\"edit\"} 100"), "{text}");
    assert!(text.contains("cx_req_ns_count{verb=\"edit\"} 1"), "{text}");
}
