//! The write-ahead-log codec: a compact, versioned, line-oriented text
//! format with per-record CRCs and monotonic LSNs.
//!
//! A WAL file is a header line followed by records:
//!
//! ```text
//! #cxwal v1
//! 1 ins 0 anon blob 142 1a2b3c4d
//! <142 bytes of raw DocBlob text>
//! 2 edit 0 5 instext 0 swa%20hwa 5e6f7a8b
//! 3 edit 0 6 insel ling w 0 7 n=1 9c0d1e2f
//! ```
//!
//! Every record starts with one line `<lsn> <kind> <fields…> <crc32>`,
//! where the CRC covers the record body (everything before the final
//! space). Strings are percent-escaped so they survive the space/newline
//! framing; the empty string is spelled as a lone `%` (otherwise
//! unproducible — a `%` always introduces two hex digits). `ins` records
//! carry the document blob as a *length-prefixed raw payload block* after
//! the line (escaping it would ~triple its size; the blob's own CRC footer
//! guards its integrity). Torn or bit-flipped trailing records are
//! detected by [`scan`]: the first record that fails framing, parsing or
//! its CRC ends the valid prefix, and everything after it is dropped.

use crate::blob::DocBlob;
use crate::error::PersistError;
use cxstore::{DocId, EditOp};
use std::fmt::Write as _;

/// First line of every WAL file (version-bumps on format changes).
pub const WAL_HEADER: &str = "#cxwal v1\n";

// ---------------------------------------------------------------------
// CRC-32 (IEEE, reflected) — dependency-free, table-driven.
// ---------------------------------------------------------------------

const fn crc_table() -> [u32; 256] {
    let mut t = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        t[i] = c;
        i += 1;
    }
    t
}

const CRC_TABLE: [u32; 256] = crc_table();

/// CRC-32 (IEEE 802.3) of a byte string.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------
// String escaping
// ---------------------------------------------------------------------

/// Percent-escape a string into a single space-free token —
/// [`sacx::escape_token`] plus one WAL-specific convention: `""` becomes a
/// lone `%` (otherwise unproducible, since a `%` always introduces two hex
/// digits), because WAL tokens are positional and an empty token would
/// break the space framing.
pub(crate) fn enc(s: &str) -> String {
    if s.is_empty() {
        return "%".to_string();
    }
    sacx::escape_token(s)
}

/// Undo [`enc`].
pub(crate) fn dec(s: &str, line: usize) -> Result<String, PersistError> {
    if s == "%" {
        return Ok(String::new());
    }
    sacx::unescape_token(s).map_err(|detail| PersistError::Codec { line, detail })
}

fn bad(line: usize, detail: impl Into<String>) -> PersistError {
    PersistError::Codec { line, detail: detail.into() }
}

/// Parse one numeric token or fail with "expected `what`" — shared by the
/// record, blob and manifest parsers.
pub(crate) fn parse_tok<T: std::str::FromStr>(
    tok: Option<&str>,
    line: usize,
    what: &str,
) -> Result<T, PersistError> {
    tok.and_then(|s| s.parse().ok()).ok_or_else(|| bad(line, format!("expected {what}")))
}

use parse_tok as num;

// ---------------------------------------------------------------------
// Records
// ---------------------------------------------------------------------

/// One logged operation (the payload of a [`WalRecord`]).
#[derive(Debug, Clone, PartialEq)]
pub enum WalOp {
    /// A document edit. `epoch` is the document's edit epoch *before* the
    /// op was applied — recovery verifies it against the replaying
    /// document to detect divergence.
    Edit {
        /// Target document.
        doc: DocId,
        /// Edit epoch the document was at when the record was appended.
        epoch: u64,
        /// The operation itself.
        op: EditOp,
    },
    /// A document entered the store (the full blob rides in the log so
    /// documents inserted after the last snapshot survive a crash).
    DocInsert {
        /// The handle the document received.
        doc: DocId,
        /// Name bound at insertion, if any.
        name: Option<String>,
        /// Complete serialized document.
        blob: DocBlob,
    },
    /// A document left the store.
    DocRemove {
        /// The removed handle.
        doc: DocId,
    },
    /// A name was bound (or re-bound) to a document.
    BindName {
        /// Target document.
        doc: DocId,
        /// The name.
        name: String,
    },
    /// A name was unbound without removing its document — how a cluster
    /// retires one shard's binding when a name moves to a document on a
    /// different shard (a plain rebind only shadows within one store).
    UnbindName {
        /// The name.
        name: String,
    },
}

/// One WAL record: a monotonic log sequence number plus the operation.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// Log sequence number (1-based, strictly increasing within a file).
    pub lsn: u64,
    /// The logged operation.
    pub op: WalOp,
}

/// Encode a record: one CRC'd line, plus — for `DocInsert` only — the raw
/// document blob as a length-prefixed payload block after the line.
/// Framing the blob raw instead of percent-escaping it keeps document
/// inserts at ~1× their blob size rather than ~3× (spaces, newlines and
/// non-ASCII dominate document text); the blob's own CRC footer covers the
/// payload's integrity, the record CRC covers the declared length.
pub fn encode_record(lsn: u64, op: &WalOp) -> String {
    let mut body = format!("{lsn} ");
    let mut payload = None;
    match op {
        WalOp::Edit { doc, epoch, op } => {
            let _ = write!(body, "edit {} {epoch} ", doc.raw());
            encode_op(&mut body, op);
        }
        WalOp::DocInsert { doc, name, blob } => {
            let _ = write!(body, "ins {} ", doc.raw());
            match name {
                Some(n) => {
                    let _ = write!(body, "named {} ", enc(n));
                }
                None => body.push_str("anon "),
            }
            let text = blob.to_text();
            debug_assert!(text.ends_with('\n'), "blob text is newline-terminated");
            let _ = write!(body, "blob {}", text.len());
            payload = Some(text);
        }
        WalOp::DocRemove { doc } => {
            let _ = write!(body, "rm {}", doc.raw());
        }
        WalOp::BindName { doc, name } => {
            let _ = write!(body, "bind {} {}", doc.raw(), enc(name));
        }
        WalOp::UnbindName { name } => {
            let _ = write!(body, "unbind {}", enc(name));
        }
    }
    let crc = crc32(body.as_bytes());
    let _ = write!(body, " {crc:08x}");
    body.push('\n');
    if let Some(payload) = payload {
        body.push_str(&payload);
    }
    body
}

fn encode_op(out: &mut String, op: &EditOp) {
    match op {
        EditOp::InsertElement { hierarchy, tag, attrs, start, end } => {
            let _ = write!(out, "insel {} {} {start} {end}", enc(hierarchy), enc(tag));
            for (k, v) in attrs {
                let _ = write!(out, " {}={}", enc(k), enc(v));
            }
        }
        EditOp::RemoveElement(n) => {
            let _ = write!(out, "rmel {}", n.0);
        }
        EditOp::InsertText { offset, text } => {
            let _ = write!(out, "instext {offset} {}", enc(text));
        }
        EditOp::DeleteText { start, end } => {
            let _ = write!(out, "deltext {start} {end}");
        }
        EditOp::SetAttr { node, name, value } => {
            let _ = write!(out, "setattr {} {} {}", node.0, enc(name), enc(value));
        }
        EditOp::RemoveAttr { node, name } => {
            let _ = write!(out, "rmattr {} {}", node.0, enc(name));
        }
    }
}

/// Decode one record starting at the beginning of `input` (which may hold
/// further records after it), verifying the line CRC and — for `DocInsert`
/// — consuming and validating the length-prefixed payload block. Returns
/// the record and the number of bytes consumed. `line_no` is used in error
/// messages only.
pub fn decode_record(input: &[u8], line_no: usize) -> Result<(WalRecord, usize), PersistError> {
    let nl = input
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| bad(line_no, "record without trailing newline"))?;
    let line =
        std::str::from_utf8(&input[..nl]).map_err(|_| bad(line_no, "record line is not UTF-8"))?;
    let (body, crc_tok) =
        line.rsplit_once(' ').ok_or_else(|| bad(line_no, "record without CRC field"))?;
    let crc = u32::from_str_radix(crc_tok, 16).map_err(|_| bad(line_no, "malformed CRC"))?;
    if crc_tok.len() != 8 || crc != crc32(body.as_bytes()) {
        return Err(bad(line_no, "CRC mismatch"));
    }
    let mut consumed = nl + 1;
    let mut parts = body.split(' ');
    let lsn: u64 = num(parts.next(), line_no, "LSN")?;
    let kind = parts.next().ok_or_else(|| bad(line_no, "missing record kind"))?;
    let op = match kind {
        "edit" => {
            let doc = DocId::from_raw(num(parts.next(), line_no, "doc id")?);
            let epoch: u64 = num(parts.next(), line_no, "epoch")?;
            let op = decode_op(&mut parts, line_no)?;
            WalOp::Edit { doc, epoch, op }
        }
        "ins" => {
            let doc = DocId::from_raw(num(parts.next(), line_no, "doc id")?);
            let name = match parts.next() {
                Some("anon") => None,
                Some("named") => {
                    Some(dec(parts.next().ok_or_else(|| bad(line_no, "missing name"))?, line_no)?)
                }
                _ => return Err(bad(line_no, "expected anon|named")),
            };
            if parts.next() != Some("blob") {
                return Err(bad(line_no, "expected blob length"));
            }
            let len: usize = num(parts.next(), line_no, "blob length")?;
            let end =
                consumed.checked_add(len).ok_or_else(|| bad(line_no, "blob length overflows"))?;
            let payload =
                input.get(consumed..end).ok_or_else(|| bad(line_no, "torn blob payload"))?;
            let payload = std::str::from_utf8(payload)
                .map_err(|_| bad(line_no, "blob payload is not UTF-8"))?;
            let blob = DocBlob::parse_text(payload)?;
            consumed += len;
            WalOp::DocInsert { doc, name, blob }
        }
        "rm" => WalOp::DocRemove { doc: DocId::from_raw(num(parts.next(), line_no, "doc id")?) },
        "bind" => {
            let doc = DocId::from_raw(num(parts.next(), line_no, "doc id")?);
            let name = dec(parts.next().ok_or_else(|| bad(line_no, "missing name"))?, line_no)?;
            WalOp::BindName { doc, name }
        }
        "unbind" => {
            let name = dec(parts.next().ok_or_else(|| bad(line_no, "missing name"))?, line_no)?;
            WalOp::UnbindName { name }
        }
        other => return Err(bad(line_no, format!("unknown record kind {other:?}"))),
    };
    if parts.next().is_some() {
        return Err(bad(line_no, "trailing fields after record"));
    }
    Ok((WalRecord { lsn, op }, consumed))
}

fn decode_op<'a>(
    parts: &mut impl Iterator<Item = &'a str>,
    line_no: usize,
) -> Result<EditOp, PersistError> {
    let kind = parts.next().ok_or_else(|| bad(line_no, "missing op kind"))?;
    Ok(match kind {
        "insel" => {
            let hierarchy =
                dec(parts.next().ok_or_else(|| bad(line_no, "missing hierarchy"))?, line_no)?;
            let tag = dec(parts.next().ok_or_else(|| bad(line_no, "missing tag"))?, line_no)?;
            let start: usize = num(parts.next(), line_no, "start")?;
            let end: usize = num(parts.next(), line_no, "end")?;
            let mut attrs = Vec::new();
            for kv in parts.by_ref() {
                let (k, v) = kv
                    .split_once('=')
                    .ok_or_else(|| bad(line_no, format!("bad attribute {kv:?}")))?;
                attrs.push((dec(k, line_no)?, dec(v, line_no)?));
            }
            EditOp::InsertElement { hierarchy, tag, attrs, start, end }
        }
        "rmel" => EditOp::RemoveElement(goddag::NodeId(num(parts.next(), line_no, "node id")?)),
        "instext" => EditOp::InsertText {
            offset: num(parts.next(), line_no, "offset")?,
            text: dec(parts.next().ok_or_else(|| bad(line_no, "missing text"))?, line_no)?,
        },
        "deltext" => EditOp::DeleteText {
            start: num(parts.next(), line_no, "start")?,
            end: num(parts.next(), line_no, "end")?,
        },
        "setattr" => EditOp::SetAttr {
            node: goddag::NodeId(num(parts.next(), line_no, "node id")?),
            name: dec(parts.next().ok_or_else(|| bad(line_no, "missing name"))?, line_no)?,
            value: dec(parts.next().ok_or_else(|| bad(line_no, "missing value"))?, line_no)?,
        },
        "rmattr" => EditOp::RemoveAttr {
            node: goddag::NodeId(num(parts.next(), line_no, "node id")?),
            name: dec(parts.next().ok_or_else(|| bad(line_no, "missing name"))?, line_no)?,
        },
        other => return Err(bad(line_no, format!("unknown op kind {other:?}"))),
    })
}

/// Framing-only walk of one record: return its LSN and total byte length
/// (payload block included) without CRC verification or payload parsing.
/// For trusted files the writer itself produced — WAL rotation uses this
/// to find a cut offset in O(line bytes) instead of fully decoding every
/// retired document blob.
pub(crate) fn skip_record(input: &[u8]) -> Option<(u64, usize)> {
    let nl = input.iter().position(|&b| b == b'\n')?;
    let line = std::str::from_utf8(&input[..nl]).ok()?;
    let mut parts = line.split(' ');
    let lsn: u64 = parts.next()?.parse().ok()?;
    let mut consumed = nl + 1;
    if parts.next() == Some("ins") {
        // `ins <doc> anon|named [<name>] blob <len> <crc>` — the length is
        // the second-to-last token.
        let toks: Vec<&str> = parts.collect();
        let len: usize = toks.get(toks.len().checked_sub(2)?)?.parse().ok()?;
        consumed = consumed.checked_add(len)?;
    }
    (consumed <= input.len()).then_some((lsn, consumed))
}

// ---------------------------------------------------------------------
// File scanning
// ---------------------------------------------------------------------

/// Result of scanning a WAL file's bytes.
#[derive(Debug)]
pub struct WalScan {
    /// Records of the valid prefix, in file order.
    pub records: Vec<WalRecord>,
    /// Byte length of the valid prefix (header plus intact records) — the
    /// offset a recovering writer truncates to before appending.
    pub valid_len: usize,
    /// Bytes dropped after the valid prefix (torn or corrupt tail).
    pub dropped_bytes: usize,
    /// Whether anything was dropped.
    pub torn: bool,
}

/// Scan a WAL file: decode the longest valid prefix, stopping at the
/// first torn (no trailing newline), corrupt (CRC/parse failure) or
/// non-monotonic record. Everything after the stop point is reported as
/// dropped, never replayed.
pub fn scan(bytes: &[u8]) -> Result<WalScan, PersistError> {
    scan_tail(bytes, 0)
}

/// [`scan`] that *frame-skips* the leading records with
/// `lsn <= skip_through` instead of decoding them — recovery uses this for
/// the region a loaded snapshot already covers, so cold-start cost scales
/// with the live tail, not the retired document blobs still sitting in the
/// log. Skipped records are not returned and their content is not
/// verified (the snapshot, not the log, is authoritative for that range);
/// the tail past `skip_through` gets the full CRC-checked decode.
pub fn scan_tail(bytes: &[u8], skip_through: u64) -> Result<WalScan, PersistError> {
    let header = WAL_HEADER.as_bytes();
    if bytes.len() < header.len() || &bytes[..header.len()] != header {
        // An empty or garbage file has no valid prefix at all; callers
        // treat this as "no log" for a fresh file and as corruption
        // otherwise.
        return Err(PersistError::Codec { line: 1, detail: "missing WAL header".into() });
    }
    let mut records = Vec::new();
    let mut pos = header.len();
    let mut line_no = 1usize;
    let mut last_lsn = 0u64;
    while pos < bytes.len() {
        match skip_record(&bytes[pos..]) {
            Some((lsn, used)) if lsn > last_lsn && lsn <= skip_through => {
                last_lsn = lsn;
                pos += used;
                line_no += 1;
            }
            _ => break,
        }
    }
    while pos < bytes.len() {
        line_no += 1;
        let Ok((rec, used)) = decode_record(&bytes[pos..], line_no) else {
            break; // torn or corrupt: the valid prefix ends here
        };
        if rec.lsn <= last_lsn {
            break; // replayed garbage that happens to checksum (or a rewind)
        }
        last_lsn = rec.lsn;
        records.push(rec);
        pos += used;
    }
    Ok(WalScan {
        records,
        valid_len: pos,
        dropped_bytes: bytes.len() - pos,
        torn: pos < bytes.len(),
    })
}

// ---------------------------------------------------------------------
// Batch scanning (log shipping)
// ---------------------------------------------------------------------

/// Result of scanning a shipped record batch.
#[derive(Debug)]
pub struct BatchScan {
    /// Records of the valid prefix, in shipping order.
    pub records: Vec<WalRecord>,
    /// Byte length of the valid prefix.
    pub valid_len: usize,
    /// Whether a torn/corrupt tail was dropped (the receiver re-requests
    /// from its last applied LSN).
    pub torn: bool,
}

/// Scan a shipped batch: raw concatenated record bytes (no file header),
/// as produced by slicing a WAL file's tail. Decodes the longest valid
/// prefix whose LSNs are strictly increasing and greater than `after`;
/// the first torn, corrupt or non-monotonic record ends the prefix and
/// everything past it is dropped — the receiver's cue to re-request from
/// its last applied LSN. A batch cut at *any* byte boundary therefore
/// yields a (possibly empty) valid prefix, never garbage.
pub fn scan_batch(bytes: &[u8], after: u64) -> BatchScan {
    let mut records = Vec::new();
    let mut pos = 0usize;
    let mut last_lsn = after;
    while pos < bytes.len() {
        let Ok((rec, used)) = decode_record(&bytes[pos..], records.len() + 1) else {
            break;
        };
        if rec.lsn <= last_lsn {
            break;
        }
        last_lsn = rec.lsn;
        records.push(rec);
        pos += used;
    }
    BatchScan { records, valid_len: pos, torn: pos < bytes.len() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn enc_dec_roundtrip_hard_strings() {
        for s in ["", "%", "a b", "x=y", "line\nbreak", "tab\there", "æøå", "100%"] {
            let e = enc(s);
            assert!(!e.contains(' ') && !e.contains('\n') && !e.contains('='), "{e:?}");
            assert_eq!(dec(&e, 1).unwrap(), s);
        }
    }

    #[test]
    fn record_roundtrip_all_kinds() {
        let ops = vec![
            WalOp::Edit {
                doc: DocId::from_raw(3),
                epoch: 17,
                op: EditOp::InsertElement {
                    hierarchy: "ling".into(),
                    tag: "w".into(),
                    attrs: vec![("n".into(), "two words".into()), ("".into(), "".into())],
                    start: 0,
                    end: 7,
                },
            },
            WalOp::Edit {
                doc: DocId::from_raw(0),
                epoch: 0,
                op: EditOp::RemoveElement(goddag::NodeId(9)),
            },
            WalOp::Edit {
                doc: DocId::from_raw(1),
                epoch: 2,
                op: EditOp::InsertText { offset: 4, text: "swa hwa\n".into() },
            },
            WalOp::Edit {
                doc: DocId::from_raw(1),
                epoch: 3,
                op: EditOp::DeleteText { start: 1, end: 2 },
            },
            WalOp::Edit {
                doc: DocId::from_raw(2),
                epoch: 8,
                op: EditOp::SetAttr {
                    node: goddag::NodeId(4),
                    name: "lemma".into(),
                    value: "=tricky value=".into(),
                },
            },
            WalOp::Edit {
                doc: DocId::from_raw(2),
                epoch: 9,
                op: EditOp::RemoveAttr { node: goddag::NodeId(4), name: "lemma".into() },
            },
            WalOp::DocRemove { doc: DocId::from_raw(7) },
            WalOp::BindName { doc: DocId::from_raw(7), name: "the manuscript".into() },
            WalOp::UnbindName { name: "the manuscript".into() },
            WalOp::UnbindName { name: "spaced out name".into() },
        ];
        for (i, op) in ops.into_iter().enumerate() {
            let encoded = encode_record(i as u64 + 1, &op);
            assert!(encoded.ends_with('\n'));
            let (rec, used) = decode_record(encoded.as_bytes(), 1).unwrap();
            assert_eq!(used, encoded.len());
            assert_eq!(rec.lsn, i as u64 + 1);
            assert_eq!(rec.op, op);
        }
    }

    #[test]
    fn doc_insert_payload_framing_roundtrips() {
        let g = sacx::parse_distributed(&[(
            "a",
            "<r><w note=\"spaces = hard\ntruly\">swā hwa</w></r>",
        )])
        .unwrap();
        let blob = DocBlob::capture(&g);
        let op = WalOp::DocInsert { doc: DocId::from_raw(4), name: Some("the ms".into()), blob };
        let encoded = encode_record(9, &op);
        // The blob rides raw (length-prefixed), not percent-escaped: the
        // record costs about its blob size, not 3×.
        let blob_len = match &op {
            WalOp::DocInsert { blob, .. } => blob.to_text().len(),
            _ => unreachable!(),
        };
        assert!(encoded.len() < blob_len + 128, "{} vs blob {}", encoded.len(), blob_len);
        let (rec, used) = decode_record(encoded.as_bytes(), 1).unwrap();
        assert_eq!(used, encoded.len());
        assert_eq!(rec.op, op);
        // A truncated payload is torn, not misparsed.
        assert!(decode_record(&encoded.as_bytes()[..encoded.len() - 10], 1).is_err());
        // Records after the payload still frame correctly.
        let mut file = encoded.clone();
        file.push_str(&encode_record(10, &WalOp::DocRemove { doc: DocId::from_raw(4) }));
        let mut wal = WAL_HEADER.to_string();
        wal.push_str(&file);
        let s = scan(wal.as_bytes()).unwrap();
        assert_eq!(s.records.len(), 2);
        assert!(!s.torn);
    }

    #[test]
    fn skip_record_matches_full_decode() {
        let g = sacx::parse_distributed(&[("a", "<r><w>swā</w> hwa</r>")]).unwrap();
        let ops = [
            WalOp::DocInsert { doc: DocId::from_raw(1), name: None, blob: DocBlob::capture(&g) },
            WalOp::DocInsert {
                doc: DocId::from_raw(2),
                name: Some("m s".into()),
                blob: DocBlob::capture(&g),
            },
            WalOp::DocRemove { doc: DocId::from_raw(1) },
            WalOp::Edit {
                doc: DocId::from_raw(2),
                epoch: 3,
                op: EditOp::InsertText { offset: 0, text: "x".into() },
            },
        ];
        for (i, op) in ops.iter().enumerate() {
            let encoded = encode_record(i as u64 + 1, op);
            let (lsn, used) = skip_record(encoded.as_bytes()).unwrap();
            let (rec, full_used) = decode_record(encoded.as_bytes(), 1).unwrap();
            assert_eq!((lsn, used), (rec.lsn, full_used), "op {i}");
        }
        // Torn inputs skip to None, never past the buffer.
        assert!(skip_record(b"9 ins 1 anon blob 400 deadbeef\nshort").is_none());
        assert!(skip_record(b"no newline").is_none());
    }

    #[test]
    fn corrupt_records_rejected() {
        let line = encode_record(5, &WalOp::DocRemove { doc: DocId::from_raw(1) });
        assert!(decode_record(line.as_bytes(), 1).is_ok());
        // Flip one byte of the body: CRC catches it.
        let mut flipped = line.clone().into_bytes();
        flipped[0] ^= 1;
        assert!(decode_record(&flipped, 1).is_err());
        // Truncate the CRC (and the newline with it).
        assert!(decode_record(&line.as_bytes()[..line.len() - 2], 1).is_err());
        // Missing newline = torn.
        assert!(decode_record(line.trim_end_matches('\n').as_bytes(), 1).is_err());
    }

    #[test]
    fn scan_stops_at_torn_tail() {
        let mut file = WAL_HEADER.to_string();
        for lsn in 1..=3u64 {
            file.push_str(&encode_record(lsn, &WalOp::DocRemove { doc: DocId::from_raw(lsn) }));
        }
        let full = scan(file.as_bytes()).unwrap();
        assert_eq!(full.records.len(), 3);
        assert!(!full.torn);
        assert_eq!(full.valid_len, file.len());

        // Drop the trailing newline: the last record is torn.
        let torn = scan(&file.as_bytes()[..file.len() - 1]).unwrap();
        assert_eq!(torn.records.len(), 2);
        assert!(torn.torn);

        // Corrupt a byte in the middle record: it and everything after drop.
        let mut bytes = file.clone().into_bytes();
        let second_start = WAL_HEADER.len()
            + encode_record(1, &WalOp::DocRemove { doc: DocId::from_raw(1) }).len();
        bytes[second_start + 3] ^= 0x40;
        let cut = scan(&bytes).unwrap();
        assert_eq!(cut.records.len(), 1);
        assert!(cut.torn);
    }

    #[test]
    fn scan_rejects_non_monotonic_lsns() {
        let mut file = WAL_HEADER.to_string();
        file.push_str(&encode_record(2, &WalOp::DocRemove { doc: DocId::from_raw(1) }));
        file.push_str(&encode_record(2, &WalOp::DocRemove { doc: DocId::from_raw(2) }));
        let s = scan(file.as_bytes()).unwrap();
        assert_eq!(s.records.len(), 1);
        assert!(s.torn);
    }

    #[test]
    fn scan_requires_header() {
        assert!(scan(b"").is_err());
        assert!(scan(b"not a wal\n").is_err());
    }

    #[test]
    fn scan_batch_tolerates_any_cut() {
        let mut batch = Vec::new();
        for lsn in 4..=7u64 {
            batch.extend_from_slice(
                encode_record(lsn, &WalOp::DocRemove { doc: DocId::from_raw(lsn) }).as_bytes(),
            );
        }
        let full = scan_batch(&batch, 3);
        assert_eq!(full.records.len(), 4);
        assert!(!full.torn);
        for cut in 0..batch.len() {
            let s = scan_batch(&batch[..cut], 3);
            assert!(s.valid_len <= cut);
            assert_eq!(s.torn, s.valid_len < cut);
            // The prefix is exactly the records that fit whole.
            for (i, rec) in s.records.iter().enumerate() {
                assert_eq!(rec.lsn, 4 + i as u64, "cut at {cut}");
            }
        }
        // Records at or below `after` end the prefix (stale retransmission).
        assert_eq!(scan_batch(&batch, 4).records.len(), 0);
    }
}
