//! # cxpersist — durable stores for concurrent XML
//!
//! The framework's stand-off serialization (`sacx::export_standoff`) is the
//! natural on-disk form of a GODDAG — base text plus `(hierarchy, tag,
//! range)` records — but the `cxstore` repository is memory-only: a restart
//! loses every document and every gated edit. This crate makes a store
//! durable and warm-restartable:
//!
//! * **Write-ahead log** — every mutation ([`cxstore::EditOp`], document
//!   insert/remove, name bindings) is encoded as a compact, versioned,
//!   line-oriented record with a per-record CRC-32 and a monotonic LSN, and
//!   appended — under the document's write lock, after validation, *before*
//!   the mutation — via `cxstore::Store::edit_with_log`. Fsync cadence is a
//!   [`FsyncPolicy`]: every op, every N ops, or time-interval.
//! * **Snapshots** — [`DurableStore::checkpoint`] writes each document as a
//!   [`DocBlob`] (stand-off text + hierarchy DTDs + the id layout and edit
//!   epoch that make replay deterministic) plus a CRC-guarded manifest,
//!   atomically (`.tmp` + rename). Retention keeps two generations: the
//!   previous snapshot survives as a fallback, and the log drops only the
//!   prefix both snapshots cover — so a later-damaged snapshot still
//!   recovers to the exact same state from the older snapshot + log tail.
//! * **Incremental checkpoints** — a checkpoint re-captures only the
//!   documents whose edit epoch changed since the previous validated
//!   generation; unchanged blobs are hard-linked (or copied) from it, so
//!   checkpoint cost scales with the dirty set.
//! * **Log shipping surface** — [`DurableStore::wal_tail`] slices
//!   LSN-contiguous record bytes for replication followers,
//!   [`DurableStore::capture_snapshot`] produces a shippable
//!   [`StoreSnapshot`] bootstrap, [`scan_batch`] decodes a shipped batch
//!   tolerating a torn tail, and [`DurableStore::adopt`] turns an applied
//!   replica state into a new writable store (follower promotion). The
//!   `cxrepl` crate builds the primary/replica/transport layer on these.
//! * **Recovery** — [`DurableStore::open`] loads the newest snapshot that
//!   validates end-to-end (falling back to older ones), replays the log
//!   tail past the snapshot LSN, verifies every replayed edit's recorded
//!   epoch against the live document (divergence refuses to open rather
//!   than serve wrong data), and drops only a torn/CRC-failed tail.
//!
//! The recovered store is equivalent to the pre-crash store down to node
//! ids, edit epochs, and byte-identical stand-off exports — pinned by the
//! crate's kill-and-recover tests.
//!
//! ```no_run
//! use cxpersist::DurableStore;
//! use cxstore::EditOp;
//!
//! let store = DurableStore::open("/var/lib/cxml/corpus")?;
//! let id = store.insert_named("ms", corpus::figure1::goddag())?;
//! store.edit(id, EditOp::InsertText { offset: 0, text: "swa ".into() })?;
//! store.checkpoint()?;
//! // …process dies, restarts…
//! let store = DurableStore::open("/var/lib/cxml/corpus")?;
//! assert_eq!(store.store().id_by_name("ms")?, id);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod blob;
mod codec;
mod durable;
mod error;
mod snapshot;

pub use blob::DocBlob;
pub use codec::{
    crc32, decode_record, encode_record, scan, scan_batch, scan_tail, BatchScan, WalOp, WalRecord,
    WalScan, WAL_HEADER,
};
pub use durable::{
    expose_faults, CheckpointInfo, DurableStore, FsyncPolicy, Options, RecoveryReport, StoreHealth,
    TailShipment, WalPosition,
};
pub use error::{PersistError, Result};
pub use snapshot::{Manifest, ManifestDoc, StoreSnapshot};
