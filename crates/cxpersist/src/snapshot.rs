//! Checkpoints: one directory per snapshot, holding a CRC-guarded manifest
//! plus one [`DocBlob`] file per document.
//!
//! Layout under the store directory:
//!
//! ```text
//! store/
//!   wal.log               ← the write-ahead log (codec.rs)
//!   snap-0000000000000042/
//!     manifest.txt        ← lsn, id allocator, doc table, name bindings
//!     doc-0.blob          ← DocBlob text, one per document
//!     doc-3.blob
//! ```
//!
//! A snapshot is written to a `.tmp` directory first and renamed into
//! place, so a crash mid-checkpoint leaves either the old state or a fully
//! formed new directory; the loader additionally validates the manifest
//! CRC and every blob before trusting a snapshot, falling back to the next
//! newest otherwise.

use crate::blob::DocBlob;
use crate::codec::{crc32, dec, enc, parse_tok};
use crate::error::{PersistError, Result};
use cxstore::{DocId, Store};
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// Magic first line of a manifest.
const MANIFEST_HEADER: &str = "#cxmanifest v1";

/// One document listed in a [`Manifest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestDoc {
    /// Raw [`DocId`].
    pub doc: u64,
    /// Edit epoch at snapshot time (cross-checked against the blob).
    pub epoch: u64,
    /// Blob file name within the snapshot directory.
    pub file: String,
}

/// The snapshot manifest: everything the store needs besides the blobs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Manifest {
    /// WAL position the snapshot captures: recovery replays only records
    /// with a larger LSN.
    pub lsn: u64,
    /// Doc-id allocator position (ids are never reused, even across
    /// restarts).
    pub next_doc: u64,
    /// Documents, in id order.
    pub docs: Vec<ManifestDoc>,
    /// `name → raw id` bindings, sorted by name.
    pub names: Vec<(String, u64)>,
}

impl Manifest {
    /// Serialize with a trailing CRC line.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(MANIFEST_HEADER);
        out.push('\n');
        let _ = writeln!(out, "lsn {}", self.lsn);
        let _ = writeln!(out, "next {}", self.next_doc);
        for d in &self.docs {
            let _ = writeln!(out, "doc {} {} {}", d.doc, d.epoch, enc(&d.file));
        }
        for (n, id) in &self.names {
            let _ = writeln!(out, "name {} {id}", enc(n));
        }
        let crc = crc32(out.as_bytes());
        let _ = writeln!(out, "crc {crc:08x}");
        out
    }

    /// Parse and CRC-verify.
    pub fn parse_text(input: &str) -> Result<Manifest> {
        let bad = |line: usize, detail: String| PersistError::Codec { line, detail };
        let stripped = input.strip_suffix('\n').unwrap_or(input);
        let (body, footer) =
            stripped.rsplit_once('\n').ok_or_else(|| bad(1, "manifest too short".into()))?;
        let body = format!("{body}\n");
        let crc_expect = footer
            .strip_prefix("crc ")
            .and_then(|h| u32::from_str_radix(h, 16).ok())
            .ok_or_else(|| bad(0, "missing manifest crc".into()))?;
        if crc32(body.as_bytes()) != crc_expect {
            return Err(bad(0, "manifest CRC mismatch".into()));
        }
        let mut lines = body.lines().enumerate();
        let (_, header) = lines.next().ok_or_else(|| bad(1, "empty manifest".into()))?;
        if header.trim() != MANIFEST_HEADER {
            return Err(bad(1, "bad manifest magic".into()));
        }
        let mut m = Manifest::default();
        let mut saw_lsn = false;
        for (i, line) in lines {
            let ln = i + 1;
            let mut parts = line.split(' ');
            match parts.next() {
                Some("lsn") => {
                    m.lsn = parse_tok(parts.next(), ln, "lsn")?;
                    saw_lsn = true;
                }
                Some("next") => m.next_doc = parse_tok(parts.next(), ln, "next id")?,
                Some("doc") => {
                    let doc: u64 = parse_tok(parts.next(), ln, "doc id")?;
                    let epoch: u64 = parse_tok(parts.next(), ln, "epoch")?;
                    let file =
                        dec(parts.next().ok_or_else(|| bad(ln, "missing blob file".into()))?, ln)?;
                    m.docs.push(ManifestDoc { doc, epoch, file });
                }
                Some("name") => {
                    let name =
                        dec(parts.next().ok_or_else(|| bad(ln, "missing name".into()))?, ln)?;
                    let id: u64 = parse_tok(parts.next(), ln, "doc id")?;
                    m.names.push((name, id));
                }
                Some(other) => {
                    return Err(bad(ln, format!("unknown manifest directive {other:?}")))
                }
                None => {}
            }
        }
        if !saw_lsn {
            return Err(bad(0, "manifest missing lsn".into()));
        }
        Ok(m)
    }
}

// ---------------------------------------------------------------------
// Wire snapshots (replication bootstrap)
// ---------------------------------------------------------------------

/// A complete store state as one shippable artifact: the replication
/// bootstrap form. Where on-disk snapshots spread a manifest plus one blob
/// file per document across a directory, a `StoreSnapshot` carries the
/// same information — WAL position, id-allocator position, every
/// document's [`DocBlob`], the name bindings — in a single self-delimiting
/// text so it can travel over a byte transport. Blob integrity rides on
/// each blob's own CRC footer; the trailing `end` line guards against
/// truncation of the artifact as a whole.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreSnapshot {
    /// WAL position the snapshot captures: shipped records with a larger
    /// LSN apply on top.
    pub lsn: u64,
    /// Doc-id allocator position.
    pub next_doc: u64,
    /// `(raw id, blob)` per document, in id order.
    pub docs: Vec<(u64, DocBlob)>,
    /// `name → raw id` bindings, sorted by name.
    pub names: Vec<(String, u64)>,
}

impl StoreSnapshot {
    /// Capture a consistent snapshot of `store` at WAL position `lsn`.
    /// The caller is responsible for quiescing mutators (the durable
    /// store's checkpoint gate) so the captured state actually is the
    /// state at `lsn`.
    pub fn capture(store: &Store, lsn: u64) -> Result<StoreSnapshot> {
        let mut docs = Vec::new();
        for id in store.doc_ids() {
            docs.push((id.raw(), store.with_doc(id, DocBlob::capture)?));
        }
        Ok(StoreSnapshot {
            lsn,
            next_doc: store.next_doc_raw(),
            docs,
            names: store.name_bindings().into_iter().map(|(n, id)| (n, id.raw())).collect(),
        })
    }

    /// Load the snapshot into an *empty* store (the receiver clears its
    /// state first when re-bootstrapping).
    pub fn restore_into(&self, store: &Store) -> Result<()> {
        for (raw, blob) in &self.docs {
            let g = blob.restore()?;
            store.insert_with_id(DocId::from_raw(*raw), g)?;
        }
        for (name, id) in &self.names {
            store.bind_name(name.clone(), DocId::from_raw(*id))?;
        }
        store.reserve_doc_ids(self.next_doc);
        Ok(())
    }

    /// Serialize to the wire text form.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("#cxsnap v1\n");
        let _ = writeln!(out, "lsn {}", self.lsn);
        let _ = writeln!(out, "next {}", self.next_doc);
        for (name, id) in &self.names {
            let _ = writeln!(out, "name {} {id}", enc(name));
        }
        for (raw, blob) in &self.docs {
            let text = blob.to_text();
            let _ = writeln!(out, "doc {raw} {}", text.len());
            out.push_str(&text);
        }
        out.push_str("end\n");
        out
    }

    /// Parse the wire text form. Truncation (a missing `end` line, a short
    /// blob) and blob corruption are errors — the receiver re-requests.
    pub fn parse_text(input: &str) -> Result<StoreSnapshot> {
        let bad = |line: usize, detail: String| PersistError::Codec { line, detail };
        let mut rest = input;
        let mut ln = 0usize;
        let next_line = |rest: &mut &str| -> Option<String> {
            let i = rest.find('\n')?;
            let l = rest[..i].to_string();
            *rest = &rest[i + 1..];
            Some(l)
        };
        let header = next_line(&mut rest).ok_or_else(|| bad(1, "empty snapshot".into()))?;
        if header.trim() != "#cxsnap v1" {
            return Err(bad(1, "bad snapshot magic".into()));
        }
        let mut snap = StoreSnapshot { lsn: 0, next_doc: 0, docs: Vec::new(), names: Vec::new() };
        let mut saw_lsn = false;
        let mut complete = false;
        while let Some(line) = next_line(&mut rest) {
            ln += 1;
            let mut parts = line.split(' ');
            match parts.next() {
                Some("lsn") => {
                    snap.lsn = parse_tok(parts.next(), ln, "lsn")?;
                    saw_lsn = true;
                }
                Some("next") => snap.next_doc = parse_tok(parts.next(), ln, "next id")?,
                Some("name") => {
                    let name =
                        dec(parts.next().ok_or_else(|| bad(ln, "missing name".into()))?, ln)?;
                    let id: u64 = parse_tok(parts.next(), ln, "doc id")?;
                    snap.names.push((name, id));
                }
                Some("doc") => {
                    let raw: u64 = parse_tok(parts.next(), ln, "doc id")?;
                    let len: usize = parse_tok(parts.next(), ln, "blob length")?;
                    if rest.len() < len || !rest.is_char_boundary(len) {
                        return Err(bad(ln, "blob length out of bounds".into()));
                    }
                    let blob = DocBlob::parse_text(&rest[..len])?;
                    rest = &rest[len..];
                    snap.docs.push((raw, blob));
                }
                Some("end") => {
                    complete = true;
                    break;
                }
                Some(other) => {
                    return Err(bad(ln, format!("unknown snapshot directive {other:?}")))
                }
                None => {}
            }
        }
        if !saw_lsn {
            return Err(bad(0, "snapshot missing lsn".into()));
        }
        if !complete {
            return Err(bad(ln, "snapshot truncated (missing end marker)".into()));
        }
        Ok(snap)
    }
}

/// `snap-<lsn, 16 hex digits>` — hex-padded so lexicographic order is
/// numeric order.
pub(crate) fn snapshot_dir_name(lsn: u64) -> String {
    format!("snap-{lsn:016x}")
}

/// Inverse of [`snapshot_dir_name`].
pub(crate) fn parse_snapshot_dir(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("snap-")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// Fsync a directory (so renames/creations inside it are durable).
pub(crate) fn sync_dir(path: &Path) -> std::io::Result<()> {
    fs::File::open(path)?.sync_all()
}

/// What a snapshot write did, blob by blob.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct SnapshotWrite {
    /// Documents in the snapshot.
    pub docs: usize,
    /// Bytes the snapshot references (fresh and reused blobs + manifest).
    pub bytes: u64,
    /// Blobs newly captured and written (the document changed since the
    /// previous generation, or there was none).
    pub fresh_docs: usize,
    /// Blobs reused from the previous generation (hard-linked or copied —
    /// the document's edit epoch was unchanged).
    pub reused_docs: usize,
}

/// Write a complete snapshot of `store` at WAL position `lsn` into
/// `dir/snap-<lsn>`, durably. When `prev` names a *validated* previous
/// generation, any document whose edit epoch is unchanged since it reuses
/// that generation's blob file — hard-linked when the filesystem allows,
/// copied otherwise — instead of re-capturing and re-writing it, so
/// checkpoint cost scales with the dirty set, not the corpus.
pub(crate) fn write_snapshot(
    dir: &Path,
    store: &Store,
    lsn: u64,
    prev: Option<(&Path, &Manifest)>,
) -> Result<SnapshotWrite> {
    let final_path = dir.join(snapshot_dir_name(lsn));
    let tmp_path = dir.join(format!("{}.tmp", snapshot_dir_name(lsn)));
    if tmp_path.exists() {
        fs::remove_dir_all(&tmp_path)?;
    }
    fs::create_dir_all(&tmp_path)?;

    let mut docs = Vec::new();
    let mut out = SnapshotWrite::default();
    for id in store.doc_ids() {
        let file = format!("doc-{}.blob", id.raw());
        let path = tmp_path.join(&file);
        // Unchanged since the previous generation? Reuse its blob — the
        // blob capture is deterministic, so equal epochs mean a
        // byte-identical file. The previous generation was validated
        // end-to-end (blob CRCs included) before being offered here, so
        // reuse cannot launder bit rot into the new snapshot.
        let epoch = store.epoch(id)?;
        let reused = prev.and_then(|(prev_dir, m)| {
            let d = m.docs.iter().find(|d| d.doc == id.raw() && d.epoch == epoch)?;
            let src = prev_dir.join(&d.file);
            fs::hard_link(&src, &path).or_else(|_| fs::copy(&src, &path).map(|_| ())).ok()?;
            Some(fs::metadata(&path).ok().map_or(0, |m| m.len()))
        });
        let blob_bytes = match reused {
            Some(len) => {
                out.reused_docs += 1;
                len
            }
            None => {
                let blob = store.with_doc(id, DocBlob::capture)?;
                debug_assert_eq!(blob.epoch, epoch, "checkpoint gate holds mutators out");
                let text = blob.to_text();
                fs::write(&path, &text)?;
                out.fresh_docs += 1;
                text.len() as u64
            }
        };
        fs::File::open(&path)?.sync_all()?;
        out.bytes += blob_bytes;
        docs.push(ManifestDoc { doc: id.raw(), epoch, file });
    }
    let manifest = Manifest {
        lsn,
        next_doc: store.next_doc_raw(),
        docs,
        names: store.name_bindings().into_iter().map(|(n, id)| (n, id.raw())).collect(),
    };
    let text = manifest.to_text();
    out.bytes += text.len() as u64;
    let mpath = tmp_path.join("manifest.txt");
    fs::write(&mpath, &text)?;
    fs::File::open(&mpath)?.sync_all()?;
    sync_dir(&tmp_path)?;

    if final_path.exists() {
        // A previous checkpoint at the same LSN (no intervening traffic):
        // replace it.
        fs::remove_dir_all(&final_path)?;
    }
    // Failpoint: a crash/ENOSPC at the publish step. The `.tmp` directory
    // is left behind (ignored by recovery, replaced by the next attempt)
    // and the previous generation stays authoritative — exactly the
    // atomicity the rename is for.
    cxfault::io_check("checkpoint.rename")?;
    fs::rename(&tmp_path, &final_path)?;
    sync_dir(dir)?;
    out.docs = manifest.docs.len();
    Ok(out)
}

/// All snapshot directories under `dir`, newest first.
pub(crate) fn list_snapshots(dir: &Path) -> Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    if !dir.exists() {
        return Ok(out);
    }
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(lsn) = entry.file_name().to_str().and_then(parse_snapshot_dir) {
            if entry.file_type()?.is_dir() {
                out.push((lsn, entry.path()));
            }
        }
    }
    out.sort_by_key(|&(lsn, _)| std::cmp::Reverse(lsn));
    Ok(out)
}

/// Load one snapshot into a fresh [`Store`]. Validates the manifest CRC,
/// every blob's CRC, and the manifest-vs-blob epoch agreement; any failure
/// rejects the whole snapshot (the caller falls back to an older one).
pub(crate) fn load_snapshot(path: &Path) -> Result<(Store, Manifest)> {
    let corrupt = |detail: String| PersistError::Corrupt { path: path.to_path_buf(), detail };
    let manifest = Manifest::parse_text(&fs::read_to_string(path.join("manifest.txt"))?)?;
    let store = Store::new();
    for d in &manifest.docs {
        let blob = DocBlob::parse_text(&fs::read_to_string(path.join(&d.file))?)?;
        if blob.epoch != d.epoch {
            return Err(corrupt(format!(
                "doc {}: blob epoch {} disagrees with manifest epoch {}",
                d.doc, blob.epoch, d.epoch
            )));
        }
        let g = blob.restore()?;
        store.insert_with_id(DocId::from_raw(d.doc), g)?;
    }
    for (name, id) in &manifest.names {
        store
            .bind_name(name.clone(), DocId::from_raw(*id))
            .map_err(|e| corrupt(format!("name {name:?}: {e}")))?;
    }
    store.reserve_doc_ids(manifest.next_doc);
    Ok((store, manifest))
}

/// Cheap end-to-end validation of a snapshot directory: manifest CRC +
/// LSN agreement, every blob's CRC and its epoch cross-check — everything
/// [`load_snapshot`] checks short of actually rebuilding the documents.
/// Returns the parsed manifest so callers can reuse unchanged blobs
/// (incremental checkpoints) or retire WAL records against it. A snapshot
/// may only serve as a retention floor or blob-reuse source when it is
/// demonstrably restorable.
pub(crate) fn validated_manifest(lsn: u64, path: &Path) -> Option<Manifest> {
    let text = fs::read_to_string(path.join("manifest.txt")).ok()?;
    let manifest = Manifest::parse_text(&text).ok()?;
    if manifest.lsn != lsn {
        return None;
    }
    let ok = manifest.docs.iter().all(|d| {
        fs::read_to_string(path.join(&d.file))
            .ok()
            .and_then(|text| DocBlob::parse_text(&text).ok())
            .is_some_and(|blob| blob.epoch == d.epoch)
    });
    ok.then_some(manifest)
}

/// Remove snapshot directories older than `keep_lsn`, plus stray `.tmp`
/// directories. Best-effort (pruning failures never fail a checkpoint).
pub(crate) fn prune_snapshots(dir: &Path, keep_lsn: u64) {
    let Ok(entries) = fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let stale_tmp = name.starts_with("snap-") && name.ends_with(".tmp");
        let old_snap = parse_snapshot_dir(name).is_some_and(|lsn| lsn < keep_lsn);
        if stale_tmp || old_snap {
            let _ = fs::remove_dir_all(entry.path());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_roundtrip() {
        let m = Manifest {
            lsn: 42,
            next_doc: 9,
            docs: vec![
                ManifestDoc { doc: 0, epoch: 3, file: "doc-0.blob".into() },
                ManifestDoc { doc: 7, epoch: 19, file: "doc-7.blob".into() },
            ],
            names: vec![("a manuscript".into(), 0), ("ms".into(), 7)],
        };
        let text = m.to_text();
        assert_eq!(Manifest::parse_text(&text).unwrap(), m);
    }

    #[test]
    fn manifest_corruption_detected() {
        let m = Manifest { lsn: 1, next_doc: 1, docs: vec![], names: vec![] };
        let text = m.to_text();
        let mut bytes = text.clone().into_bytes();
        bytes[15] ^= 0x01;
        assert!(Manifest::parse_text(&String::from_utf8(bytes).unwrap()).is_err());
        assert!(Manifest::parse_text("").is_err());
    }

    #[test]
    fn store_snapshot_roundtrip_and_truncation() {
        let store = Store::new();
        let a = store.insert_named("a ms", corpus::figure1::goddag());
        let b = store.insert(corpus::figure1::goddag());
        store.bind_name("alias", b).unwrap();
        let snap = StoreSnapshot::capture(&store, 17).unwrap();
        let text = snap.to_text();
        let again = StoreSnapshot::parse_text(&text).unwrap();
        assert_eq!(again, snap);

        let fresh = Store::new();
        again.restore_into(&fresh).unwrap();
        assert_eq!(fresh.doc_ids(), store.doc_ids());
        assert_eq!(fresh.name_bindings(), store.name_bindings());
        assert_eq!(fresh.next_doc_raw(), store.next_doc_raw());
        assert_eq!(
            fresh.with_doc(a, sacx::export_standoff).unwrap(),
            store.with_doc(a, sacx::export_standoff).unwrap()
        );

        // Any truncation is detected (blob CRC, length bound, or the
        // missing end marker), never silently half-loaded.
        for mut cut in [text.len() - 1, text.len() - 5, text.len() / 2, 20] {
            while !text.is_char_boundary(cut) {
                cut -= 1;
            }
            assert!(StoreSnapshot::parse_text(&text[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn snapshot_dir_names() {
        assert_eq!(snapshot_dir_name(66), "snap-0000000000000042");
        assert_eq!(parse_snapshot_dir("snap-0000000000000042"), Some(66));
        assert_eq!(parse_snapshot_dir("snap-42"), None);
        assert_eq!(parse_snapshot_dir("wal.log"), None);
    }
}
