//! Checkpoints: one directory per snapshot, holding a CRC-guarded manifest
//! plus one [`DocBlob`] file per document.
//!
//! Layout under the store directory:
//!
//! ```text
//! store/
//!   wal.log               ← the write-ahead log (codec.rs)
//!   snap-0000000000000042/
//!     manifest.txt        ← lsn, id allocator, doc table, name bindings
//!     doc-0.blob          ← DocBlob text, one per document
//!     doc-3.blob
//! ```
//!
//! A snapshot is written to a `.tmp` directory first and renamed into
//! place, so a crash mid-checkpoint leaves either the old state or a fully
//! formed new directory; the loader additionally validates the manifest
//! CRC and every blob before trusting a snapshot, falling back to the next
//! newest otherwise.

use crate::blob::DocBlob;
use crate::codec::{crc32, dec, enc, parse_tok};
use crate::error::{PersistError, Result};
use cxstore::{DocId, Store};
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// Magic first line of a manifest.
const MANIFEST_HEADER: &str = "#cxmanifest v1";

/// One document listed in a [`Manifest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestDoc {
    /// Raw [`DocId`].
    pub doc: u64,
    /// Edit epoch at snapshot time (cross-checked against the blob).
    pub epoch: u64,
    /// Blob file name within the snapshot directory.
    pub file: String,
}

/// The snapshot manifest: everything the store needs besides the blobs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Manifest {
    /// WAL position the snapshot captures: recovery replays only records
    /// with a larger LSN.
    pub lsn: u64,
    /// Doc-id allocator position (ids are never reused, even across
    /// restarts).
    pub next_doc: u64,
    /// Documents, in id order.
    pub docs: Vec<ManifestDoc>,
    /// `name → raw id` bindings, sorted by name.
    pub names: Vec<(String, u64)>,
}

impl Manifest {
    /// Serialize with a trailing CRC line.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(MANIFEST_HEADER);
        out.push('\n');
        let _ = writeln!(out, "lsn {}", self.lsn);
        let _ = writeln!(out, "next {}", self.next_doc);
        for d in &self.docs {
            let _ = writeln!(out, "doc {} {} {}", d.doc, d.epoch, enc(&d.file));
        }
        for (n, id) in &self.names {
            let _ = writeln!(out, "name {} {id}", enc(n));
        }
        let crc = crc32(out.as_bytes());
        let _ = writeln!(out, "crc {crc:08x}");
        out
    }

    /// Parse and CRC-verify.
    pub fn parse_text(input: &str) -> Result<Manifest> {
        let bad = |line: usize, detail: String| PersistError::Codec { line, detail };
        let stripped = input.strip_suffix('\n').unwrap_or(input);
        let (body, footer) =
            stripped.rsplit_once('\n').ok_or_else(|| bad(1, "manifest too short".into()))?;
        let body = format!("{body}\n");
        let crc_expect = footer
            .strip_prefix("crc ")
            .and_then(|h| u32::from_str_radix(h, 16).ok())
            .ok_or_else(|| bad(0, "missing manifest crc".into()))?;
        if crc32(body.as_bytes()) != crc_expect {
            return Err(bad(0, "manifest CRC mismatch".into()));
        }
        let mut lines = body.lines().enumerate();
        let (_, header) = lines.next().ok_or_else(|| bad(1, "empty manifest".into()))?;
        if header.trim() != MANIFEST_HEADER {
            return Err(bad(1, "bad manifest magic".into()));
        }
        let mut m = Manifest::default();
        let mut saw_lsn = false;
        for (i, line) in lines {
            let ln = i + 1;
            let mut parts = line.split(' ');
            match parts.next() {
                Some("lsn") => {
                    m.lsn = parse_tok(parts.next(), ln, "lsn")?;
                    saw_lsn = true;
                }
                Some("next") => m.next_doc = parse_tok(parts.next(), ln, "next id")?,
                Some("doc") => {
                    let doc: u64 = parse_tok(parts.next(), ln, "doc id")?;
                    let epoch: u64 = parse_tok(parts.next(), ln, "epoch")?;
                    let file =
                        dec(parts.next().ok_or_else(|| bad(ln, "missing blob file".into()))?, ln)?;
                    m.docs.push(ManifestDoc { doc, epoch, file });
                }
                Some("name") => {
                    let name =
                        dec(parts.next().ok_or_else(|| bad(ln, "missing name".into()))?, ln)?;
                    let id: u64 = parse_tok(parts.next(), ln, "doc id")?;
                    m.names.push((name, id));
                }
                Some(other) => {
                    return Err(bad(ln, format!("unknown manifest directive {other:?}")))
                }
                None => {}
            }
        }
        if !saw_lsn {
            return Err(bad(0, "manifest missing lsn".into()));
        }
        Ok(m)
    }
}

/// `snap-<lsn, 16 hex digits>` — hex-padded so lexicographic order is
/// numeric order.
pub(crate) fn snapshot_dir_name(lsn: u64) -> String {
    format!("snap-{lsn:016x}")
}

/// Inverse of [`snapshot_dir_name`].
pub(crate) fn parse_snapshot_dir(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("snap-")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// Fsync a directory (so renames/creations inside it are durable).
pub(crate) fn sync_dir(path: &Path) -> std::io::Result<()> {
    fs::File::open(path)?.sync_all()
}

/// Write a complete snapshot of `store` at WAL position `lsn` into
/// `dir/snap-<lsn>`, durably. Returns `(docs, bytes)` written.
pub(crate) fn write_snapshot(dir: &Path, store: &Store, lsn: u64) -> Result<(usize, u64)> {
    let final_path = dir.join(snapshot_dir_name(lsn));
    let tmp_path = dir.join(format!("{}.tmp", snapshot_dir_name(lsn)));
    if tmp_path.exists() {
        fs::remove_dir_all(&tmp_path)?;
    }
    fs::create_dir_all(&tmp_path)?;

    let mut docs = Vec::new();
    let mut bytes = 0u64;
    for id in store.doc_ids() {
        let blob = store.with_doc(id, DocBlob::capture)?;
        let file = format!("doc-{}.blob", id.raw());
        let text = blob.to_text();
        bytes += text.len() as u64;
        let path = tmp_path.join(&file);
        fs::write(&path, &text)?;
        fs::File::open(&path)?.sync_all()?;
        docs.push(ManifestDoc { doc: id.raw(), epoch: blob.epoch, file });
    }
    let manifest = Manifest {
        lsn,
        next_doc: store.next_doc_raw(),
        docs,
        names: store.name_bindings().into_iter().map(|(n, id)| (n, id.raw())).collect(),
    };
    let text = manifest.to_text();
    bytes += text.len() as u64;
    let mpath = tmp_path.join("manifest.txt");
    fs::write(&mpath, &text)?;
    fs::File::open(&mpath)?.sync_all()?;
    sync_dir(&tmp_path)?;

    if final_path.exists() {
        // A previous checkpoint at the same LSN (no intervening traffic):
        // replace it.
        fs::remove_dir_all(&final_path)?;
    }
    fs::rename(&tmp_path, &final_path)?;
    sync_dir(dir)?;
    Ok((manifest.docs.len(), bytes))
}

/// All snapshot directories under `dir`, newest first.
pub(crate) fn list_snapshots(dir: &Path) -> Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    if !dir.exists() {
        return Ok(out);
    }
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(lsn) = entry.file_name().to_str().and_then(parse_snapshot_dir) {
            if entry.file_type()?.is_dir() {
                out.push((lsn, entry.path()));
            }
        }
    }
    out.sort_by_key(|&(lsn, _)| std::cmp::Reverse(lsn));
    Ok(out)
}

/// Load one snapshot into a fresh [`Store`]. Validates the manifest CRC,
/// every blob's CRC, and the manifest-vs-blob epoch agreement; any failure
/// rejects the whole snapshot (the caller falls back to an older one).
pub(crate) fn load_snapshot(path: &Path) -> Result<(Store, Manifest)> {
    let corrupt = |detail: String| PersistError::Corrupt { path: path.to_path_buf(), detail };
    let manifest = Manifest::parse_text(&fs::read_to_string(path.join("manifest.txt"))?)?;
    let store = Store::new();
    for d in &manifest.docs {
        let blob = DocBlob::parse_text(&fs::read_to_string(path.join(&d.file))?)?;
        if blob.epoch != d.epoch {
            return Err(corrupt(format!(
                "doc {}: blob epoch {} disagrees with manifest epoch {}",
                d.doc, blob.epoch, d.epoch
            )));
        }
        let g = blob.restore()?;
        store.insert_with_id(DocId::from_raw(d.doc), g)?;
    }
    for (name, id) in &manifest.names {
        store
            .bind_name(name.clone(), DocId::from_raw(*id))
            .map_err(|e| corrupt(format!("name {name:?}: {e}")))?;
    }
    store.reserve_doc_ids(manifest.next_doc);
    Ok((store, manifest))
}

/// Cheap end-to-end validation of a snapshot directory: manifest CRC +
/// LSN agreement, every blob's CRC and its epoch cross-check — everything
/// [`load_snapshot`] checks short of actually rebuilding the documents.
/// The checkpoint retention floor uses this: WAL records may only be
/// retired against a fallback generation that is demonstrably restorable.
pub(crate) fn validate_snapshot(lsn: u64, path: &Path) -> bool {
    let Ok(text) = fs::read_to_string(path.join("manifest.txt")) else { return false };
    let Ok(manifest) = Manifest::parse_text(&text) else { return false };
    if manifest.lsn != lsn {
        return false;
    }
    manifest.docs.iter().all(|d| {
        fs::read_to_string(path.join(&d.file))
            .ok()
            .and_then(|text| DocBlob::parse_text(&text).ok())
            .is_some_and(|blob| blob.epoch == d.epoch)
    })
}

/// Remove snapshot directories older than `keep_lsn`, plus stray `.tmp`
/// directories. Best-effort (pruning failures never fail a checkpoint).
pub(crate) fn prune_snapshots(dir: &Path, keep_lsn: u64) {
    let Ok(entries) = fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let stale_tmp = name.starts_with("snap-") && name.ends_with(".tmp");
        let old_snap = parse_snapshot_dir(name).is_some_and(|lsn| lsn < keep_lsn);
        if stale_tmp || old_snap {
            let _ = fs::remove_dir_all(entry.path());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_roundtrip() {
        let m = Manifest {
            lsn: 42,
            next_doc: 9,
            docs: vec![
                ManifestDoc { doc: 0, epoch: 3, file: "doc-0.blob".into() },
                ManifestDoc { doc: 7, epoch: 19, file: "doc-7.blob".into() },
            ],
            names: vec![("a manuscript".into(), 0), ("ms".into(), 7)],
        };
        let text = m.to_text();
        assert_eq!(Manifest::parse_text(&text).unwrap(), m);
    }

    #[test]
    fn manifest_corruption_detected() {
        let m = Manifest { lsn: 1, next_doc: 1, docs: vec![], names: vec![] };
        let text = m.to_text();
        let mut bytes = text.clone().into_bytes();
        bytes[15] ^= 0x01;
        assert!(Manifest::parse_text(&String::from_utf8(bytes).unwrap()).is_err());
        assert!(Manifest::parse_text("").is_err());
    }

    #[test]
    fn snapshot_dir_names() {
        assert_eq!(snapshot_dir_name(66), "snap-0000000000000042");
        assert_eq!(parse_snapshot_dir("snap-0000000000000042"), Some(66));
        assert_eq!(parse_snapshot_dir("snap-42"), None);
        assert_eq!(parse_snapshot_dir("wal.log"), None);
    }
}
