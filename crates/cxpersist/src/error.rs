//! Persistence-layer errors.

use std::fmt;
use std::path::PathBuf;

/// Shorthand result type.
pub type Result<T> = std::result::Result<T, PersistError>;

/// Anything that can go wrong while logging, snapshotting or recovering.
#[derive(Debug)]
pub enum PersistError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// The wrapped store refused an operation.
    Store(cxstore::StoreError),
    /// A serialized artifact (WAL record, document blob, manifest) failed
    /// to decode or failed its integrity checks.
    Codec {
        /// 1-based line within the artifact (0 when not line-addressable).
        line: usize,
        /// What was wrong.
        detail: String,
    },
    /// On-disk state is inconsistent with itself — e.g. a replayed epoch
    /// diverging from what the log recorded. Refusing to serve from it.
    Corrupt {
        /// The offending file or directory.
        path: PathBuf,
        /// What was inconsistent.
        detail: String,
    },
    /// The store is in the read-only **Degraded** state: a WAL append or
    /// fsync failed (disk full, pulled volume), so writes are refused
    /// until [`crate::DurableStore::heal`] re-probes the disk
    /// successfully. Reads keep working throughout.
    Degraded {
        /// The failure that degraded the store.
        detail: String,
    },
    /// A compare-and-set edit's guard did not match
    /// ([`crate::DurableStore::edit_guarded`]): the document's pre-op
    /// epoch was `current`, not `expected`. Nothing was logged or
    /// applied. Remote clients use this to make edit retries safe — a
    /// replayed edit that already landed comes back stale instead of
    /// applying twice.
    StaleEdit {
        /// The epoch the caller expected.
        expected: u64,
        /// The document's actual pre-op epoch.
        current: u64,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::Store(e) => write!(f, "store error: {e}"),
            PersistError::Codec { line, detail } => {
                if *line == 0 {
                    write!(f, "decode error: {detail}")
                } else {
                    write!(f, "decode error at line {line}: {detail}")
                }
            }
            PersistError::Corrupt { path, detail } => {
                write!(f, "corrupt store at {}: {detail}", path.display())
            }
            PersistError::Degraded { detail } => {
                write!(f, "store is degraded (read-only): {detail}")
            }
            PersistError::StaleEdit { expected, current } => {
                write!(f, "stale edit guard: expected epoch {expected}, document is at {current}")
            }
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> PersistError {
        PersistError::Io(e)
    }
}

impl From<cxstore::StoreError> for PersistError {
    fn from(e: cxstore::StoreError) -> PersistError {
        PersistError::Store(e)
    }
}
