//! Complete on-disk form of one document: stand-off content + everything
//! stand-off alone does not carry but warm restart needs.
//!
//! Stand-off (`sacx::export_standoff`) is the paper's natural serialization
//! — base text plus `(hierarchy, tag, range)` records — but a recovered
//! store must also be able to *replay* logged edits against the re-imported
//! document, and logged edits speak in pre-crash [`goddag::NodeId`]s and
//! edit epochs. A [`DocBlob`] therefore additionally records:
//!
//! * each hierarchy's **DTD** (so the prevalidation gate re-arms),
//! * the **id layout**: original arena length, the original id of every
//!   element (in stand-off annotation order — an id-independent structural
//!   order, see [`sacx::StandoffDoc::from_goddag_with_ids`]) and of every
//!   leaf (in frontier order, with its byte offset so extra leaf boundaries
//!   from past splits are re-created),
//! * the **edit epoch** the document was at.
//!
//! [`DocBlob::restore`] re-imports the stand-off, re-splits the frontier,
//! relabels the arena to the recorded layout ([`goddag::Goddag`]'s
//! `relabel_nodes`) and restores the epoch — after which the document is
//! id-for-id and epoch-for-epoch equivalent to the captured one, and log
//! replay is deterministic.

use crate::codec::{crc32, dec, enc, parse_tok};
use crate::error::PersistError;
use goddag::{Goddag, NodeId};
use sacx::StandoffDoc;
use std::fmt::Write as _;

/// A complete serialized document (see module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct DocBlob {
    /// Stand-off text (`sacx` v1 format).
    pub standoff: String,
    /// `(hierarchy index, DTD external-subset text)` for each hierarchy
    /// that carries a schema.
    pub dtds: Vec<(u16, String)>,
    /// Arena length at capture (ids are never reused, so future edit
    /// allocations start here).
    pub arena_len: u32,
    /// Root node id (always 0 in documents this workspace builds; recorded
    /// for validation).
    pub root: u32,
    /// Edit epoch at capture.
    pub epoch: u64,
    /// Original element ids, parallel to the stand-off annotations.
    pub elems: Vec<u32>,
    /// Original `(leaf id, byte offset)` pairs in frontier order.
    pub leaves: Vec<(u32, usize)>,
}

impl DocBlob {
    /// Capture a document.
    pub fn capture(g: &Goddag) -> DocBlob {
        let (doc, elem_ids) = StandoffDoc::from_goddag_with_ids(g);
        let mut dtds = Vec::new();
        for h in g.hierarchy_ids() {
            // invariant: `h` comes from this goddag's own hierarchy_ids.
            if let Some(dtd) = &g.hierarchy(h).expect("live id").dtd {
                dtds.push((h.0, dtd.to_text()));
            }
        }
        DocBlob {
            standoff: doc.to_text(),
            dtds,
            arena_len: g.arena_len() as u32,
            root: g.root().0,
            epoch: g.edit_epoch(),
            elems: elem_ids.iter().map(|e| e.0).collect(),
            leaves: g
                .leaves()
                .iter()
                .map(|&l| {
                    let (start, _) = g.char_range(l);
                    (l.0, start)
                })
                .collect(),
        }
    }

    /// Rebuild the document: re-import the stand-off, re-create recorded
    /// leaf boundaries, relabel the arena to the recorded id layout,
    /// re-attach DTDs, restore the epoch.
    pub fn restore(&self) -> Result<Goddag, PersistError> {
        let corrupt = |detail: String| PersistError::Codec { line: 0, detail };
        let mut g = sacx::import_standoff(&self.standoff)
            .map_err(|e| corrupt(format!("stand-off import failed: {e}")))?;
        // Frontier refinement: boundaries that earlier splits created but no
        // surviving annotation implies.
        for &(_, off) in &self.leaves {
            g.split_leaf_at(off).map_err(|e| corrupt(format!("bad leaf boundary {off}: {e}")))?;
        }
        if g.leaves().len() != self.leaves.len() {
            return Err(corrupt(format!(
                "frontier mismatch: imported {} leaves, recorded {}",
                g.leaves().len(),
                self.leaves.len()
            )));
        }
        // The id map: annotation order on the fresh import is the same
        // structural order the capture recorded, so positions line up.
        let (_, new_elems) = StandoffDoc::from_goddag_with_ids(&g);
        if new_elems.len() != self.elems.len() {
            return Err(corrupt(format!(
                "element mismatch: imported {}, recorded {}",
                new_elems.len(),
                self.elems.len()
            )));
        }
        if g.root().0 != self.root {
            return Err(corrupt(format!("root id mismatch: {} vs {}", g.root(), self.root)));
        }
        let mut assignments = vec![NodeId(u32::MAX); g.arena_len()];
        assignments[g.root().idx()] = g.root();
        for (i, &l) in g.leaves().to_vec().iter().enumerate() {
            assignments[l.idx()] = NodeId(self.leaves[i].0);
        }
        for (i, &e) in new_elems.iter().enumerate() {
            assignments[e.idx()] = NodeId(self.elems[i]);
        }
        g.relabel_nodes(&assignments, self.arena_len as usize)
            .map_err(|e| corrupt(format!("relabel failed: {e}")))?;
        for (h, text) in &self.dtds {
            let dtd = xmlcore::dtd::parse_dtd(text)
                .map_err(|e| corrupt(format!("DTD for hierarchy {h} does not parse: {e}")))?;
            g.set_dtd(goddag::HierarchyId(*h), dtd)
                .map_err(|e| corrupt(format!("DTD for hierarchy {h}: {e}")))?;
        }
        g.force_edit_epoch(self.epoch);
        Ok(g)
    }

    /// Serialize to the versioned text format (used verbatim as snapshot
    /// doc files; percent-escaped as a single WAL token for `DocInsert`
    /// records). Ends with a `crc` footer over everything before it.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("#cxblob v1\n");
        let _ = writeln!(out, "arena {} {} {}", self.arena_len, self.root, self.epoch);
        let _ = write!(out, "elems {}", self.elems.len());
        for e in &self.elems {
            let _ = write!(out, " {e}");
        }
        out.push('\n');
        let _ = write!(out, "leaves {}", self.leaves.len());
        for (l, off) in &self.leaves {
            let _ = write!(out, " {l}:{off}");
        }
        out.push('\n');
        for (h, text) in &self.dtds {
            let _ = writeln!(out, "dtd {h} {}", enc(text));
        }
        let _ = writeln!(out, "standoff {}", self.standoff.len());
        out.push_str(&self.standoff);
        if !self.standoff.ends_with('\n') {
            out.push('\n');
        }
        let crc = crc32(out.as_bytes());
        let _ = writeln!(out, "crc {crc:08x}");
        out
    }

    /// Parse the text format, verifying the `crc` footer.
    pub fn parse_text(input: &str) -> Result<DocBlob, PersistError> {
        let bad = |line: usize, detail: String| PersistError::Codec { line, detail };
        let body = input
            .strip_suffix('\n')
            .unwrap_or(input)
            .rsplit_once('\n')
            .map(|(body, last)| (format!("{body}\n"), last.to_string()));
        let Some((body, footer)) = body else {
            return Err(bad(1, "blob too short".into()));
        };
        let crc_expect = footer
            .strip_prefix("crc ")
            .and_then(|h| u32::from_str_radix(h, 16).ok())
            .ok_or_else(|| bad(0, "missing crc footer".into()))?;
        if crc32(body.as_bytes()) != crc_expect {
            return Err(bad(0, "blob CRC mismatch".into()));
        }

        let mut rest = body.as_str();
        let mut ln = 0usize;
        let next_line = |rest: &mut &str| -> Option<String> {
            if rest.is_empty() {
                return None;
            }
            match rest.find('\n') {
                Some(i) => {
                    let l = rest[..i].to_string();
                    *rest = &rest[i + 1..];
                    Some(l)
                }
                None => {
                    let l = rest.to_string();
                    *rest = "";
                    Some(l)
                }
            }
        };

        let header = next_line(&mut rest).ok_or_else(|| bad(1, "empty blob".into()))?;
        if header.trim() != "#cxblob v1" {
            return Err(bad(1, "bad blob magic".into()));
        }
        let mut arena: Option<(u32, u32, u64)> = None;
        let mut elems: Option<Vec<u32>> = None;
        let mut leaves: Option<Vec<(u32, usize)>> = None;
        let mut dtds: Vec<(u16, String)> = Vec::new();
        let mut standoff: Option<String> = None;
        while let Some(line) = next_line(&mut rest) {
            ln += 1;
            let mut parts = line.split(' ');
            match parts.next() {
                Some("arena") => {
                    let len: u32 = parse_tok(parts.next(), ln, "arena length")?;
                    let root: u32 = parse_tok(parts.next(), ln, "root id")?;
                    let epoch: u64 = parse_tok(parts.next(), ln, "epoch")?;
                    arena = Some((len, root, epoch));
                }
                Some("elems") => {
                    let n: usize = parse_tok(parts.next(), ln, "element count")?;
                    let ids: Vec<u32> = parts
                        .map(|t| t.parse())
                        .collect::<Result<_, _>>()
                        .map_err(|_| bad(ln, "bad element id".into()))?;
                    if ids.len() != n {
                        return Err(bad(ln, "element count mismatch".into()));
                    }
                    elems = Some(ids);
                }
                Some("leaves") => {
                    let n: usize = parse_tok(parts.next(), ln, "leaf count")?;
                    let mut ids = Vec::with_capacity(n);
                    for t in parts {
                        let (id, off) = t
                            .split_once(':')
                            .ok_or_else(|| bad(ln, format!("bad leaf entry {t:?}")))?;
                        ids.push((
                            id.parse().map_err(|_| bad(ln, "bad leaf id".into()))?,
                            off.parse().map_err(|_| bad(ln, "bad leaf offset".into()))?,
                        ));
                    }
                    if ids.len() != n {
                        return Err(bad(ln, "leaf count mismatch".into()));
                    }
                    leaves = Some(ids);
                }
                Some("dtd") => {
                    let h: u16 = parse_tok(parts.next(), ln, "hierarchy index")?;
                    let text =
                        dec(parts.next().ok_or_else(|| bad(ln, "missing DTD text".into()))?, ln)?;
                    dtds.push((h, text));
                }
                Some("standoff") => {
                    let len: usize = parse_tok(parts.next(), ln, "stand-off length")?;
                    if rest.len() < len || !rest.is_char_boundary(len) {
                        return Err(bad(ln, "stand-off length out of bounds".into()));
                    }
                    standoff = Some(rest[..len].to_string());
                    rest = &rest[len..];
                    if let Some(r) = rest.strip_prefix('\n') {
                        rest = r;
                    }
                }
                Some(other) => return Err(bad(ln, format!("unknown blob directive {other:?}"))),
                None => {}
            }
        }
        let (arena_len, root, epoch) = arena.ok_or_else(|| bad(ln, "missing arena line".into()))?;
        Ok(DocBlob {
            standoff: standoff.ok_or_else(|| bad(ln, "missing stand-off".into()))?,
            dtds,
            arena_len,
            root,
            epoch,
            elems: elems.ok_or_else(|| bad(ln, "missing elems line".into()))?,
            leaves: leaves.ok_or_else(|| bad(ln, "missing leaves line".into()))?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use goddag::HierarchyId;

    fn sample() -> Goddag {
        let mut g = sacx::parse_distributed(&[
            ("phys", "<r><line n=\"1\">swa hwa swe</line><line n=\"2\">nu sculon</line></r>"),
            ("ling", "<r><w>swa</w> <w>hwa</w> <s><w>swenu</w> <w>sculon</w></s></r>"),
        ])
        .unwrap();
        let h = g.hierarchy_by_name("ling").unwrap();
        g.set_dtd(h, xmlcore::dtd::parse_dtd("<!ELEMENT r ANY> <!ELEMENT w (#PCDATA)>").unwrap())
            .unwrap();
        g
    }

    #[test]
    fn text_roundtrip() {
        let blob = DocBlob::capture(&sample());
        let text = blob.to_text();
        let again = DocBlob::parse_text(&text).unwrap();
        assert_eq!(again, blob);
        // Fixpoint.
        assert_eq!(again.to_text(), text);
    }

    #[test]
    fn corruption_detected() {
        let text = DocBlob::capture(&sample()).to_text();
        let mut bytes = text.clone().into_bytes();
        bytes[20] ^= 0x20;
        let flipped = String::from_utf8(bytes).unwrap();
        assert!(DocBlob::parse_text(&flipped).is_err());
        assert!(DocBlob::parse_text("").is_err());
        assert!(DocBlob::parse_text("#cxblob v1\n").is_err());
    }

    #[test]
    fn restore_reproduces_ids_epochs_and_future_allocations() {
        let mut g = sample();
        // Edit history so the arena has tombstones and extra boundaries.
        let ling = g.hierarchy_by_name("ling").unwrap();
        let e = g.insert_element(ling, xmlcore::QName::parse("w").unwrap(), vec![], 0, 3).unwrap();
        g.remove_element(e).unwrap();
        g.split_leaf_at(1).unwrap();
        g.set_attr(g.root(), "status", "draft").unwrap();

        let blob = DocBlob::capture(&g);
        let r = blob.restore().unwrap();
        goddag::check_invariants(&r).unwrap();
        assert_eq!(r.edit_epoch(), g.edit_epoch());
        assert_eq!(r.arena_len(), g.arena_len());
        assert_eq!(r.leaves(), g.leaves());
        assert_eq!(r.content(), g.content());
        for h in g.hierarchy_ids() {
            assert_eq!(r.to_xml(h).unwrap(), g.to_xml(h).unwrap());
            assert_eq!(
                r.hierarchy(h).unwrap().dtd.is_some(),
                g.hierarchy(h).unwrap().dtd.is_some()
            );
        }
        assert_eq!(
            sacx::export_standoff(&r),
            sacx::export_standoff(&g),
            "stand-off is byte-identical"
        );
        // Same future id allocation: the next edit mints the same id.
        let mut g2 = g.clone();
        let mut r2 = r.clone();
        let a = g2.insert_element(ling, xmlcore::QName::parse("w").unwrap(), vec![], 4, 7).unwrap();
        let b = r2.insert_element(ling, xmlcore::QName::parse("w").unwrap(), vec![], 4, 7).unwrap();
        assert_eq!(a, b);
        assert_eq!(g2.edit_epoch(), r2.edit_epoch());
    }

    #[test]
    fn restore_is_deterministic_for_equal_span_nesting() {
        // The depth-ordered stand-off fix in action: parent id > child id.
        let mut g = sacx::parse_distributed(&[("a", "<r>abcdefg</r>")]).unwrap();
        let h = g.hierarchy_by_name("a").unwrap();
        let inner =
            g.insert_element(h, xmlcore::QName::parse("inner").unwrap(), vec![], 0, 4).unwrap();
        let outer =
            g.insert_element(h, xmlcore::QName::parse("outer").unwrap(), vec![], 0, 7).unwrap();
        g.delete_text(4, 7).unwrap();
        let r = DocBlob::capture(&g).restore().unwrap();
        assert_eq!(r.parent_in(inner, h), Some(outer));
        assert_eq!(r.to_xml(HierarchyId(0)).unwrap(), g.to_xml(HierarchyId(0)).unwrap());
    }
}
