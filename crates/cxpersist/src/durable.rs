//! [`DurableStore`]: a [`cxstore::Store`] whose mutations survive process
//! death.
//!
//! Every mutation is appended to the write-ahead log *before* it touches
//! the in-memory store (via [`cxstore::Store::edit_with_log`], the append
//! runs under the document's write lock, after validation, before the
//! mutation), and fsynced according to the configured [`FsyncPolicy`].
//! [`DurableStore::checkpoint`] writes a stand-off snapshot of every
//! document plus a manifest and rotates the log (keeping the previous
//! snapshot and the records past it as a fallback generation);
//! [`DurableStore::open`] loads the newest snapshot that validates —
//! falling back to the previous one — and replays the log tail past it,
//! dropping only a torn/corrupt tail.
//!
//! Lock order (deadlock-free by construction): `gate → document → wal`.
//! Mutators hold the checkpoint gate shared, then the document lock, then
//! the WAL mutex for the append; the checkpointer holds the gate
//! exclusively, which drains all in-flight mutators before it reads
//! documents and rotates the log.

use crate::blob::DocBlob;
use crate::codec::{encode_record, scan_tail, skip_record, WalOp, WAL_HEADER};
use crate::error::{PersistError, Result};
use crate::snapshot::{
    list_snapshots, load_snapshot, prune_snapshots, sync_dir, validated_manifest, write_snapshot,
    StoreSnapshot,
};
use cxobs::{Exposition, Gauge, Histogram, Observable, Registry};
use cxstore::{DocId, EditOp, EditOutcome, Store, StoreStats};
use goddag::Goddag;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::{Mutex, MutexGuard, PoisonError, RwLock};
use std::time::{Duration, Instant};

/// When the WAL file is fsynced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// After every record — maximum durability, one `fdatasync` per edit.
    EveryOp,
    /// After every `n` records (and on [`DurableStore::sync`],
    /// checkpoints, and drop). A crash loses at most `n - 1` acknowledged
    /// edits.
    EveryN(u32),
    /// At most one sync per interval, piggybacked on appends.
    Interval(Duration),
    /// Never automatically — only explicit [`DurableStore::sync`],
    /// checkpoints, and drop. For bulk loads and tests.
    Never,
}

/// Open-time configuration.
#[derive(Debug, Clone)]
pub struct Options {
    /// WAL fsync policy. Default: [`FsyncPolicy::EveryOp`].
    pub fsync: FsyncPolicy,
}

impl Default for Options {
    fn default() -> Options {
        Options { fsync: FsyncPolicy::EveryOp }
    }
}

/// Write-path health of a [`DurableStore`].
///
/// A store degrades — once, explicitly — when a WAL append or fsync
/// fails (the ENOSPC / pulled-volume class): every already-acknowledged
/// edit is still durable and every read keeps working, but further
/// writes are refused with [`PersistError::Degraded`] instead of
/// half-failing one by one. [`DurableStore::heal`] re-probes the disk
/// and, on success, returns the store to `Healthy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreHealth {
    /// Writes and reads both served.
    Healthy,
    /// Read-only: the WAL could not be extended or made durable.
    Degraded,
}

/// What [`DurableStore::open`] found and did.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// LSN of the snapshot that was loaded (`None` on a cold start).
    pub snapshot_lsn: Option<u64>,
    /// Newer snapshot directories that failed validation and were skipped.
    pub snapshots_skipped: usize,
    /// Documents restored from the snapshot.
    pub recovered_docs: usize,
    /// WAL records applied during replay.
    pub replayed_ops: u64,
    /// Replayed records the store rejected — the deterministic re-failure
    /// of operations that were logged but failed structurally pre-crash.
    pub replayed_rejected: u64,
    /// Bytes of torn/corrupt WAL tail dropped (never replayed).
    pub torn_bytes_dropped: usize,
}

/// Outcome of a checkpoint.
#[derive(Debug, Clone, Copy)]
pub struct CheckpointInfo {
    /// The snapshot's LSN (WAL records at or below it are now retired).
    pub lsn: u64,
    /// Documents written.
    pub docs: usize,
    /// Snapshot bytes referenced (fresh and reused blobs + manifest).
    pub bytes: u64,
    /// Blobs newly captured because the document changed since the
    /// previous generation (or there was none).
    pub fresh_docs: usize,
    /// Blobs reused from the previous generation — the document's edit
    /// epoch was unchanged, so the checkpoint hard-linked (or copied) the
    /// existing file instead of re-serializing the document.
    pub reused_docs: usize,
}

/// A WAL position: the last assigned LSN plus the byte length of the
/// valid log prefix that holds it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalPosition {
    /// Last assigned log sequence number.
    pub lsn: u64,
    /// Valid log bytes (header included).
    pub bytes: u64,
}

/// What [`DurableStore::wal_tail`] can hand a log-shipping caller.
#[derive(Debug)]
pub enum TailShipment {
    /// No records past the requested LSN — the follower is caught up.
    CaughtUp,
    /// Raw record bytes (each self-framed and CRC'd by the WAL codec),
    /// LSN-contiguous starting at `first`.
    Records {
        /// LSN of the first shipped record (always `after + 1`).
        first: u64,
        /// LSN of the last shipped record.
        last: u64,
        /// The record bytes, sliceable straight into a shipping batch.
        bytes: Vec<u8>,
    },
    /// The requested LSN predates the oldest retained record (a checkpoint
    /// retired it) — the follower needs a snapshot bootstrap instead.
    SnapshotNeeded,
}

/// The WAL writer: file handle plus append/sync bookkeeping, behind one
/// mutex so record order equals file order.
struct WalState {
    file: File,
    /// Last assigned LSN.
    lsn: u64,
    /// Logical file length (valid bytes); used to truncate away a
    /// partially written record after an append error.
    len: u64,
    /// Appends since the last sync.
    dirty: u32,
    last_sync: Instant,
}

#[derive(Default)]
struct PersistCounters {
    wal_appends: AtomicU64,
    wal_bytes: AtomicU64,
    wal_fsyncs: AtomicU64,
    checkpoints: AtomicU64,
    tail_cache_hits: AtomicU64,
    tail_cache_misses: AtomicU64,
}

/// The durability layer's latency histograms, registered on the wrapped
/// store's [`Registry`] so one exposition covers both layers.
struct PersistMetrics {
    /// One WAL append (encode + write + any policy-due fsync).
    wal_append_ns: Arc<Histogram>,
    /// One `fdatasync` of the log.
    wal_fsync_ns: Arc<Histogram>,
    /// A whole checkpoint (snapshot + rotation + pruning).
    checkpoint_ns: Arc<Histogram>,
    /// The WAL replay phase of [`DurableStore::open`].
    recovery_replay_ns: Arc<Histogram>,
    /// 1 while the store is in the read-only Degraded state, else 0.
    degraded: Arc<Gauge>,
}

impl PersistMetrics {
    fn new(r: &Registry) -> PersistMetrics {
        PersistMetrics {
            wal_append_ns: r.histogram("cx_wal_append_ns"),
            wal_fsync_ns: r.histogram("cx_wal_fsync_ns"),
            checkpoint_ns: r.histogram("cx_checkpoint_ns"),
            recovery_replay_ns: r.histogram("cx_recovery_replay_ns"),
            degraded: r.gauge("cx_store_degraded"),
        }
    }
}

/// Cap on remembered tail positions. Each tailing follower occupies one
/// slot (its `after` advances fetch by fetch, replacing its old entry);
/// 16 covers a realistic fan-out without unbounded growth.
const TAIL_CACHE_CAP: usize = 16;

/// The per-follower WAL offset cache: `lsn → byte offset of the first
/// record past it`, learned from previous [`DurableStore::wal_tail`]
/// slices. Steady-state tailing seeks straight to the position instead of
/// frame-skipping the whole file — O(slice) per fetch, not O(file).
/// Entries are valid for one rotation epoch (a checkpoint's log rotation
/// rewrites the file and shifts every offset); the fast path additionally
/// CRC-verifies the first record it lands on, so a stale entry can only
/// ever cost a fallback scan, never ship wrong bytes.
#[derive(Default)]
struct TailCache {
    /// Rotation epoch the offsets describe.
    rotation: u64,
    /// `(after, absolute byte offset where record `after + 1` starts)`.
    entries: Vec<(u64, u64)>,
}

/// Poison-tolerant: the WAL mutex guards plain state (file handle,
/// LSN/byte counters, tail cache). A panic while it is held — an
/// injected `cxfault::Fault::Panic` at a WAL failpoint, or an
/// out-of-memory mid-append — leaves counters that describe whatever
/// actually reached the file; recovering the guard lets `Drop` still
/// flush and `wal_tail` still ship, and reopen-time recovery re-derives
/// the authoritative tail from the bytes themselves.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A durable, warm-restartable document store. See the module docs.
pub struct DurableStore {
    store: Store,
    dir: PathBuf,
    /// Checkpoint gate: mutators shared, checkpoint exclusive.
    gate: RwLock<()>,
    wal: Mutex<WalState>,
    policy: FsyncPolicy,
    counters: PersistCounters,
    metrics: PersistMetrics,
    recovery: RecoveryReport,
    /// Bumped (under the WAL mutex) whenever the log file is rewritten —
    /// the [`TailCache`] invalidation signal.
    rotations: AtomicU64,
    tail_cache: Mutex<TailCache>,
    /// Set on the first WAL append/fsync failure; checked (one relaxed
    /// load) at the top of every mutation. See [`StoreHealth`].
    degraded: AtomicBool,
    /// Human-readable cause of the degradation (empty while healthy).
    degraded_reason: Mutex<String>,
}

impl DurableStore {
    // ------------------------------------------------------------------
    // Lifecycle
    // ------------------------------------------------------------------

    /// Open (or create) the store at `dir` with default [`Options`],
    /// recovering whatever state the directory holds.
    pub fn open(dir: impl Into<PathBuf>) -> Result<DurableStore> {
        DurableStore::open_with(dir, Options::default())
    }

    /// [`DurableStore::open`] with explicit options.
    pub fn open_with(dir: impl Into<PathBuf>, options: Options) -> Result<DurableStore> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let mut report = RecoveryReport::default();

        // 1. Newest snapshot that validates end-to-end. Snapshots that
        // fail validation are quarantined (renamed aside) so they can
        // never be mistaken for a live generation again — in particular,
        // the next checkpoint must not pick a known-bad snapshot as its
        // retention floor and retire the WAL records the good fallback
        // still needs.
        let mut store = None;
        let mut snap_lsn = 0u64;
        for (lsn, path) in list_snapshots(&dir)? {
            match load_snapshot(&path) {
                Ok((s, manifest)) => {
                    report.snapshot_lsn = Some(lsn);
                    report.recovered_docs = manifest.docs.len();
                    snap_lsn = lsn;
                    store = Some(s);
                    break;
                }
                Err(_) => {
                    report.snapshots_skipped += 1;
                    let mut bad = path.clone();
                    bad.as_mut_os_string().push(".bad");
                    let _ = fs::remove_dir_all(&bad);
                    let _ = fs::rename(&path, &bad);
                }
            }
        }
        let store = store.unwrap_or_default();
        let metrics = PersistMetrics::new(store.registry());

        // 2. Scan the log and replay the tail past the snapshot.
        let replay_start = Instant::now();
        let wal_path = dir.join("wal.log");
        let mut lsn = snap_lsn;
        let mut valid_len = WAL_HEADER.len() as u64;
        let mut fresh = true;
        if wal_path.exists() {
            let bytes = fs::read(&wal_path)?;
            // A strict prefix of the header is the residue of a first open
            // that crashed between writing and syncing it — nothing can
            // have been acknowledged yet, so the file is provably fresh,
            // not corrupt.
            if !bytes.is_empty() && !WAL_HEADER.as_bytes().starts_with(&bytes) {
                fresh = false;
                // Frame-skip the snapshot-covered prefix: its content is
                // superseded, so cold start pays only for the live tail.
                let scan = scan_tail(&bytes, snap_lsn).map_err(|e| PersistError::Corrupt {
                    path: wal_path.clone(),
                    detail: format!("unreadable WAL: {e}"),
                })?;
                report.torn_bytes_dropped = scan.dropped_bytes;
                valid_len = scan.valid_len as u64;
                let mut removed = std::collections::HashSet::new();
                for rec in scan.records {
                    if rec.lsn <= snap_lsn {
                        continue; // retired by the snapshot
                    }
                    lsn = rec.lsn;
                    Self::replay(&store, &wal_path, rec.lsn, rec.op, &mut removed, &mut report)?;
                }
            }
        }

        if !fresh {
            metrics.recovery_replay_ns.record(replay_start.elapsed());
            store.registry().event(
                "recovery",
                format!(
                    "snapshot {:?}: {} docs, {} ops replayed, {} torn bytes dropped",
                    report.snapshot_lsn,
                    report.recovered_docs,
                    report.replayed_ops,
                    report.torn_bytes_dropped
                ),
            );
        }

        // 3. Re-open the log for appending, with the torn tail cut off.
        let mut file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .read(true)
            .write(true)
            .open(&wal_path)?;
        if fresh {
            file.write_all(WAL_HEADER.as_bytes())?;
            file.sync_all()?;
            sync_dir(&dir)?;
            valid_len = WAL_HEADER.len() as u64;
        } else {
            file.set_len(valid_len)?;
            if report.torn_bytes_dropped > 0 {
                file.sync_all()?;
            }
        }
        file.seek(SeekFrom::Start(valid_len))?;

        Ok(DurableStore {
            store,
            dir,
            gate: RwLock::new(()),
            wal: Mutex::new(WalState {
                file,
                lsn,
                len: valid_len,
                dirty: 0,
                last_sync: Instant::now(),
            }),
            policy: options.fsync,
            counters: PersistCounters::default(),
            metrics,
            recovery: report,
            rotations: AtomicU64::new(0),
            tail_cache: Mutex::default(),
            degraded: AtomicBool::new(false),
            degraded_reason: Mutex::new(String::new()),
        })
    }

    fn replay(
        store: &Store,
        wal_path: &Path,
        lsn: u64,
        op: WalOp,
        removed: &mut std::collections::HashSet<u64>,
        report: &mut RecoveryReport,
    ) -> Result<()> {
        let corrupt = |detail: String| PersistError::Corrupt {
            path: wal_path.to_path_buf(),
            detail: format!("record {lsn}: {detail}"),
        };
        match op {
            WalOp::Edit { doc, epoch, op } => {
                let cur = match store.epoch(doc) {
                    Ok(cur) => cur,
                    // An edit may be logged just after a concurrent remove
                    // of the same document (the remove appends under the
                    // store gate, not the document lock): the pre-crash
                    // outcome was a mutation on an already-detached entry,
                    // observably gone either way. Only edits targeting a
                    // document the log never removed indicate real
                    // corruption.
                    Err(_) if removed.contains(&doc.raw()) => {
                        report.replayed_rejected += 1;
                        return Ok(());
                    }
                    Err(_) => return Err(corrupt(format!("edit targets unknown document {doc}"))),
                };
                if cur != epoch {
                    return Err(corrupt(format!(
                        "replay diverged on {doc}: log expects epoch {epoch}, document is at {cur}"
                    )));
                }
                // Ungated apply: the pre-crash gate already passed this op
                // (gate-rejected edits never reach the log), so replay
                // skips re-paying prevalidation — the same contract the
                // replication followers rely on.
                match store.apply_replicated(doc, op) {
                    Ok(_) => report.replayed_ops += 1,
                    // A logged op that failed structurally pre-crash fails
                    // identically here (the log runs ahead of the mutation).
                    Err(_) => report.replayed_rejected += 1,
                }
            }
            WalOp::DocInsert { doc, name, blob } => {
                let g = blob.restore()?;
                store.insert_with_id(doc, g).map_err(|e| corrupt(format!("insert: {e}")))?;
                if let Some(name) = name {
                    store.bind_name(name, doc).map_err(|e| corrupt(format!("bind: {e}")))?;
                }
                report.replayed_ops += 1;
            }
            WalOp::DocRemove { doc } => {
                store.remove(doc);
                removed.insert(doc.raw());
                report.replayed_ops += 1;
            }
            WalOp::BindName { doc, name } => match store.bind_name(name, doc) {
                Ok(()) => report.replayed_ops += 1,
                // Same remove-race tolerance as edits.
                Err(_) => report.replayed_rejected += 1,
            },
            WalOp::UnbindName { name } => {
                // Unbinding an already-unbound name is a no-op, not
                // corruption (the snapshot may already reflect the unbind).
                store.unbind_name(&name);
                report.replayed_ops += 1;
            }
        }
        Ok(())
    }

    /// What recovery found when this store was opened.
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// The directory this store persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The last log sequence number assigned.
    pub fn last_lsn(&self) -> u64 {
        lock(&self.wal).lsn
    }

    /// The current WAL position: last assigned LSN plus valid byte length.
    /// Replication lag is observable as the difference between a primary's
    /// position and a follower's last applied LSN.
    pub fn wal_position(&self) -> WalPosition {
        let w = lock(&self.wal);
        WalPosition { lsn: w.lsn, bytes: w.len }
    }

    /// Read the raw WAL tail past `after` for log shipping: up to
    /// `max_bytes` of record bytes (always at least one whole record),
    /// LSN-contiguous from `after + 1`. Returns
    /// [`TailShipment::SnapshotNeeded`] when a checkpoint already retired
    /// the requested records, and [`TailShipment::CaughtUp`] when `after`
    /// is the head. Errors when `after` lies beyond the head — a follower
    /// claiming records this primary never wrote (split history).
    pub fn wal_tail(&self, after: u64, max_bytes: usize) -> Result<TailShipment> {
        // Under the WAL mutex: validate the position and make everything
        // about to be shipped durable. Shipping implies durability —
        // under the lazy fsync policies a record can sit in the page
        // cache, and a follower must never *apply* a record the primary
        // could still lose in a crash (the follower would hold history no
        // recovered primary ever had, and the re-assigned LSN would make
        // the streams diverge permanently). The fsync batches whatever is
        // pending (a no-op under `EveryOp` or when clean). The rotation
        // epoch is read under the same mutex (rotations bump it there), so
        // `(head, rotation)` is a coherent pair.
        let (head, rotation) = {
            let mut w = lock(&self.wal);
            if after == w.lsn {
                return Ok(TailShipment::CaughtUp);
            }
            if after > w.lsn {
                return Err(PersistError::Corrupt {
                    path: self.dir.join("wal.log"),
                    detail: format!(
                        "follower claims LSN {after}, but this log ends at {} — diverged history",
                        w.lsn
                    ),
                });
            }
            self.sync_locked(&mut w)?;
            (w.lsn, self.rotations.load(Ordering::Relaxed))
        };
        // All file reads run *outside* the mutex so shipping never stalls
        // the edit path. Two races are possible and both are benign,
        // because records defend themselves (framing + LSN): a checkpoint
        // may swap in the rotated file (retired records are gone — if the
        // follower needed them the contiguity check below reports
        // `SnapshotNeeded`), and a concurrent append may leave a torn
        // record at the end (the frame walk stops before it; shipping is
        // capped at `head`, the LSN made durable above, regardless).
        let wal_path = self.dir.join("wal.log");

        // Fast path: a previous slice remembered where record `after + 1`
        // starts in this rotation epoch, so steady-state tailing seeks and
        // reads only the live tail — O(slice), not O(file). The landing is
        // verified with a full CRC decode of the first record before
        // anything ships: a stale or raced entry costs a fallback scan,
        // never wrong bytes.
        let cached = {
            let c = lock(&self.tail_cache);
            if c.rotation == rotation {
                c.entries.iter().find(|&&(a, _)| a == after).map(|&(_, off)| off)
            } else {
                None
            }
        };
        if let Some(offset) = cached {
            let mut file = File::open(&wal_path)?;
            if offset <= file.metadata()?.len() {
                file.seek(SeekFrom::Start(offset))?;
                // Bounded read: the slice cap plus one record's worth of
                // slack, not offset..EOF — a follower far behind must pay
                // O(batch) per fetch, not O(remaining tail). A record cut
                // off by the window reads as a torn tail, which the frame
                // walk stops at cleanly; if even the *first* record
                // exceeds the window (one giant blob), its decode fails
                // and the full scan below ships it regardless of size.
                let window = (max_bytes as u64).saturating_add(1 << 20);
                let mut bytes = Vec::new();
                file.take(window).read_to_end(&mut bytes)?;
                if matches!(crate::codec::decode_record(&bytes, 1), Ok((rec, _)) if rec.lsn == after + 1)
                {
                    self.counters.tail_cache_hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(self.slice_tail(bytes, 0, offset, after, head, max_bytes, rotation));
                }
            }
        }

        // Slow path (a follower's first fetch; any cache anomaly): read
        // the whole file and frame-skip the records the follower already
        // holds.
        self.counters.tail_cache_misses.fetch_add(1, Ordering::Relaxed);
        let bytes = fs::read(&wal_path)?;
        let mut pos = if bytes.starts_with(WAL_HEADER.as_bytes()) { WAL_HEADER.len() } else { 0 };
        let mut first = None;
        while pos < bytes.len() {
            match skip_record(&bytes[pos..]) {
                Some((lsn, used)) if lsn <= after => pos += used,
                Some((lsn, _)) => {
                    first = Some(lsn);
                    break;
                }
                None => break,
            }
        }
        // The tail must continue exactly at `after + 1`; anything else
        // means a checkpoint retired the records in between.
        if first != Some(after + 1) {
            return Ok(TailShipment::SnapshotNeeded);
        }
        Ok(self.slice_tail(bytes, pos, 0, after, head, max_bytes, rotation))
    }

    /// Slice LSN-contiguous records out of `bytes`: the record with LSN
    /// `after + 1` is known to start at `bytes[start]` (both callers
    /// verified it), `base` is the absolute file offset of `bytes[0]`.
    /// Ships at least one record, caps near `max_bytes`, stops at `head`
    /// (records appended after the durability sync), and remembers the end
    /// position so the next fetch at the shipped LSN seeks instead of
    /// scanning.
    #[allow(clippy::too_many_arguments)]
    fn slice_tail(
        &self,
        mut bytes: Vec<u8>,
        start: usize,
        base: u64,
        after: u64,
        head: u64,
        max_bytes: usize,
        rotation: u64,
    ) -> TailShipment {
        let mut pos = start;
        let mut last = after;
        while pos < bytes.len() {
            let Some((lsn, used)) = skip_record(&bytes[pos..]) else { break };
            if lsn > head {
                break; // appended after the sync — not durable yet
            }
            if pos + used - start > max_bytes && last > after {
                break; // cap reached (but always ship at least one record)
            }
            last = lsn;
            pos += used;
        }
        {
            let mut c = lock(&self.tail_cache);
            // Never poison a newer epoch's entries with offsets read from
            // an older file (`c.rotation > rotation`: a rotation completed
            // while this slice ran and someone already repopulated).
            if c.rotation < rotation {
                c.rotation = rotation;
                c.entries.clear();
            }
            if c.rotation == rotation {
                // Two positions were just learned: where this slice began
                // (a retrying follower re-fetches the same `after`) and
                // where it ended (a healthy follower fetches `last` next).
                for (lsn, off) in [(after, base + start as u64), (last, base + pos as u64)] {
                    if let Some(e) = c.entries.iter_mut().find(|e| e.0 == lsn) {
                        e.1 = off;
                    } else {
                        if c.entries.len() >= TAIL_CACHE_CAP {
                            c.entries.remove(0);
                        }
                        c.entries.push((lsn, off));
                    }
                }
            }
        }
        bytes.drain(..start);
        bytes.truncate(pos - start);
        TailShipment::Records { first: after + 1, last, bytes }
    }

    /// Capture a consistent [`StoreSnapshot`] of the whole store at the
    /// current WAL position — the replication bootstrap artifact. Briefly
    /// blocks mutations (holds the checkpoint gate exclusively) so the
    /// captured state is exactly the state at the returned LSN, and syncs
    /// the log first — a shipped snapshot, like shipped records, must not
    /// contain state the primary could still lose.
    pub fn capture_snapshot(&self) -> Result<StoreSnapshot> {
        let _exclusive = write_gate(&self.gate);
        let lsn = {
            let mut w = lock(&self.wal);
            self.sync_locked(&mut w)?;
            w.lsn
        };
        // Failpoint: a bootstrap capture that fails after the sync — the
        // fetch errors (the follower retries), nothing degrades.
        cxfault::io_check("snapshot.capture")?;
        StoreSnapshot::capture(&self.store, lsn)
    }

    /// Turn an in-memory store into a durable one at `dir` — the promotion
    /// path: a replica that must start accepting writes adopts its applied
    /// state as the new authoritative history. Writes a full snapshot at
    /// `lsn` (durable before any new edit is acknowledged) and opens a
    /// fresh WAL continuing from that LSN. Refuses a directory that
    /// already holds a store.
    pub fn adopt(
        dir: impl Into<PathBuf>,
        store: Store,
        lsn: u64,
        options: Options,
    ) -> Result<DurableStore> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        if dir.join("wal.log").exists() || !list_snapshots(&dir)?.is_empty() {
            return Err(PersistError::Corrupt {
                path: dir,
                detail: "refusing to adopt into a directory that already holds a store".into(),
            });
        }
        let write = write_snapshot(&dir, &store, lsn, None)?;
        let mut file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .read(true)
            .write(true)
            .open(dir.join("wal.log"))?;
        file.write_all(WAL_HEADER.as_bytes())?;
        file.sync_all()?;
        sync_dir(&dir)?;
        let metrics = PersistMetrics::new(store.registry());
        Ok(DurableStore {
            store,
            dir,
            gate: RwLock::new(()),
            wal: Mutex::new(WalState {
                file,
                lsn,
                len: WAL_HEADER.len() as u64,
                dirty: 0,
                last_sync: Instant::now(),
            }),
            policy: options.fsync,
            counters: PersistCounters::default(),
            metrics,
            recovery: RecoveryReport {
                snapshot_lsn: Some(lsn),
                recovered_docs: write.docs,
                ..RecoveryReport::default()
            },
            rotations: AtomicU64::new(0),
            tail_cache: Mutex::default(),
            degraded: AtomicBool::new(false),
            degraded_reason: Mutex::new(String::new()),
        })
    }

    /// The wrapped in-memory store, for the read paths ([`Store::query`],
    /// [`Store::query_all`], [`Store::suggest_tags`], …).
    ///
    /// **Do not mutate through this reference** — `Store::insert`,
    /// `Store::edit`, `Store::remove` and `Store::with_doc_mut` called
    /// here bypass the log, and the bypassed changes are silently lost on
    /// restart (worse: later logged edits may fail to replay against the
    /// diverged state). All mutations go through the `DurableStore`
    /// methods.
    pub fn store(&self) -> &Store {
        &self.store
    }

    // ------------------------------------------------------------------
    // Logged mutations
    // ------------------------------------------------------------------

    /// Apply one [`EditOp`], durably: the record is appended (and synced
    /// per policy) before the document changes.
    pub fn edit(&self, id: DocId, op: EditOp) -> Result<EditOutcome> {
        self.ensure_writable()?;
        let _shared = read_gate(&self.gate);
        match self.store.edit_with_log(id, op, |op, epoch| {
            self.append(WalOp::Edit { doc: id, epoch, op: op.clone() })
        }) {
            Ok(result) => result.map_err(PersistError::Store),
            Err(log_err) => Err(log_err),
        }
    }

    /// [`DurableStore::edit`] with a compare-and-set guard: the op
    /// applies only if the document's pre-op epoch equals `expected`,
    /// failing with [`PersistError::StaleEdit`] otherwise. The check runs
    /// inside the [`cxstore::Store::edit_with_log`] hook — under the
    /// document's write lock, before anything reaches the WAL — so it is
    /// a true CAS, not a racy check-then-edit: two guarded writers with
    /// the same expectation cannot both apply.
    pub fn edit_guarded(&self, id: DocId, expected: u64, op: EditOp) -> Result<EditOutcome> {
        self.ensure_writable()?;
        let _shared = read_gate(&self.gate);
        // The closure's error type distinguishes "guard mismatch" (the
        // document is untouched and nothing was logged) from a real
        // append failure.
        enum GuardFail {
            Stale(u64),
            Log(PersistError),
        }
        match self.store.edit_with_log(id, op, |op, epoch| {
            if epoch != expected {
                return Err(GuardFail::Stale(epoch));
            }
            self.append(WalOp::Edit { doc: id, epoch, op: op.clone() }).map_err(GuardFail::Log)
        }) {
            Ok(result) => result.map_err(PersistError::Store),
            Err(GuardFail::Stale(current)) => Err(PersistError::StaleEdit { expected, current }),
            Err(GuardFail::Log(e)) => Err(e),
        }
    }

    /// Add a document; its full blob rides in the log so it survives a
    /// crash before the next checkpoint.
    pub fn insert(&self, g: Goddag) -> Result<DocId> {
        self.insert_inner(None, g, None)
    }

    /// Add a document under a name.
    pub fn insert_named(&self, name: impl Into<String>, g: Goddag) -> Result<DocId> {
        self.insert_inner(Some(name.into()), g, None)
    }

    /// Add a document whose id is drawn from the `residue (mod modulus)`
    /// range — the write-sharding insert: shard `i` of `n` primaries mints
    /// only ids `≡ i (mod n)`, so a hash router maps every unmoved
    /// document back to the shard that owns it without any lookup table.
    pub fn insert_aligned(
        &self,
        name: Option<String>,
        g: Goddag,
        modulus: u64,
        residue: u64,
    ) -> Result<DocId> {
        self.insert_inner(name, g, Some((modulus, residue)))
    }

    fn insert_inner(
        &self,
        name: Option<String>,
        g: Goddag,
        align: Option<(u64, u64)>,
    ) -> Result<DocId> {
        self.ensure_writable()?;
        let _shared = read_gate(&self.gate);
        let blob = DocBlob::capture(&g);
        // The WAL mutex serializes id allocation among durable inserts, so
        // the logged id and the applied id cannot be interleaved apart.
        let mut w = lock(&self.wal);
        let id = DocId::from_raw(match align {
            None => self.store.next_doc_raw(),
            Some((m, r)) => self.store.allocate_doc_raw_aligned(m, r),
        });
        self.append_locked(&mut w, WalOp::DocInsert { doc: id, name: name.clone(), blob })?;
        self.store.insert_with_id(id, g)?;
        if let Some(name) = name {
            self.store.bind_name(name, id)?;
        }
        Ok(id)
    }

    /// Install a migrated document under its original handle — the
    /// receiving half of a cluster `move_doc`. The blob (captured on the
    /// source primary under the document's lock) is logged verbatim as a
    /// `DocInsert` record, so the hand-off is durable before the source
    /// tombstones its copy, and the restored document is id-for-id and
    /// epoch-for-epoch the source's (future edits replay identically).
    /// `names` are the source's bindings for the document, re-bound (and
    /// logged) here. Refuses a live handle.
    pub fn receive_doc(&self, id: DocId, blob: &DocBlob, names: &[String]) -> Result<()> {
        self.ensure_writable()?;
        let _shared = read_gate(&self.gate);
        let g = blob.restore()?;
        {
            // The liveness check runs under the WAL mutex — the lock every
            // durable id claim holds — so a racing insert cannot take the
            // handle between the check and the append. Checking outside
            // would let a durably-logged DocInsert record precede a failed
            // local apply, and replicas of this shard would diverge on it.
            let mut w = lock(&self.wal);
            if self.store.contains(id) {
                return Err(PersistError::Store(cxstore::StoreError::IdInUse(id)));
            }
            self.append_locked(
                &mut w,
                WalOp::DocInsert { doc: id, name: None, blob: blob.clone() },
            )?;
            self.store.insert_with_id(id, g)?;
        }
        for name in names {
            self.append(WalOp::BindName { doc: id, name: name.clone() })?;
            self.store.bind_name(name.clone(), id)?;
        }
        Ok(())
    }

    /// Drop a document (and all of its name bindings), durably. Returns
    /// whether the handle was live.
    pub fn remove(&self, id: DocId) -> Result<bool> {
        self.ensure_writable()?;
        let _shared = read_gate(&self.gate);
        if !self.store.contains(id) {
            return Ok(false); // nothing to log
        }
        self.append(WalOp::DocRemove { doc: id })?;
        Ok(self.store.remove(id))
    }

    /// Resolve a name and drop that document, durably.
    pub fn remove_named(&self, name: &str) -> Result<DocId> {
        self.ensure_writable()?;
        let _shared = read_gate(&self.gate);
        let id = self.store.id_by_name(name)?;
        self.append(WalOp::DocRemove { doc: id })?;
        self.store.remove(id);
        Ok(id)
    }

    /// Bind (or rebind) a name to a live document, durably.
    pub fn bind_name(&self, name: impl Into<String>, id: DocId) -> Result<()> {
        self.ensure_writable()?;
        let _shared = read_gate(&self.gate);
        let name = name.into();
        if !self.store.contains(id) {
            return Err(PersistError::Store(cxstore::StoreError::NoSuchDoc(id)));
        }
        self.append(WalOp::BindName { doc: id, name: name.clone() })?;
        self.store.bind_name(name, id)?;
        Ok(())
    }

    /// Drop a name binding without touching its document, durably. Returns
    /// the id the name was bound to (`None` — and nothing logged — when it
    /// was unbound already).
    pub fn unbind_name(&self, name: &str) -> Result<Option<DocId>> {
        self.ensure_writable()?;
        let _shared = read_gate(&self.gate);
        if self.store.id_by_name(name).is_err() {
            return Ok(None); // nothing to log
        }
        self.append(WalOp::UnbindName { name: name.to_string() })?;
        Ok(self.store.unbind_name(name))
    }

    fn append(&self, op: WalOp) -> Result<()> {
        let mut w = lock(&self.wal);
        self.append_locked(&mut w, op)
    }

    fn append_locked(&self, w: &mut WalState, op: WalOp) -> Result<()> {
        let _span = self.metrics.wal_append_ns.span_tagged(cxtrace::current_trace_id());
        let trace = cxtrace::span("wal.append");
        trace.attr("lsn", w.lsn + 1);
        let pre_len = w.len;
        let line = encode_record(w.lsn + 1, &op);
        // Failpoint: an append that never reaches the disk (`Io`, the
        // ENOSPC class) or gets cut mid-record (`TornWrite`). Both take
        // the same cleanup path a real `write_all` failure would: cut the
        // file back to the last good record — the log stays a valid
        // prefix, the operation is refused before it mutates memory — and
        // degrade the store.
        if let Some(fault) = cxfault::fire("wal.append") {
            if let cxfault::InjectedFault::Torn(frac) = fault {
                let keep = cxfault::torn_len(line.len(), frac);
                let _ = w.file.write_all(&line.as_bytes()[..keep]);
            }
            let _ = w.file.set_len(pre_len);
            let _ = w.file.seek(SeekFrom::Start(pre_len));
            let e = cxfault::io_error("wal.append");
            self.enter_degraded(&format!("WAL append failed: {e}"));
            trace.err(format!("injected: {e}"));
            return Err(e.into());
        }
        if let Err(e) = w.file.write_all(line.as_bytes()) {
            // Cut any partial write back to the last good record so the
            // file stays a valid prefix.
            let _ = w.file.set_len(pre_len);
            let _ = w.file.seek(SeekFrom::Start(pre_len));
            self.enter_degraded(&format!("WAL append failed: {e}"));
            trace.err(e.to_string());
            return Err(e.into());
        }
        w.lsn += 1;
        w.len += line.len() as u64;
        w.dirty += 1;
        self.counters.wal_appends.fetch_add(1, Ordering::Relaxed);
        self.counters.wal_bytes.fetch_add(line.len() as u64, Ordering::Relaxed);
        let due = match self.policy {
            FsyncPolicy::EveryOp => true,
            FsyncPolicy::EveryN(n) => w.dirty >= n.max(1),
            FsyncPolicy::Interval(d) => w.last_sync.elapsed() >= d,
            FsyncPolicy::Never => false,
        };
        if due {
            if let Err(e) = self.sync_locked(w) {
                // The append error aborts the caller's operation before it
                // is applied in memory, so the record must not survive
                // either — a phantom record would poison a later replay
                // (the next edit re-logs the same pre-op epoch, and the
                // phantom would consume it first).
                let _ = w.file.set_len(pre_len);
                let _ = w.file.seek(SeekFrom::Start(pre_len));
                w.len = pre_len;
                w.lsn -= 1;
                w.dirty = w.dirty.saturating_sub(1);
                return Err(e);
            }
        }
        Ok(())
    }

    fn sync_locked(&self, w: &mut WalState) -> Result<()> {
        if w.dirty > 0 {
            let trace = cxtrace::span("wal.fsync");
            // Failpoint + real fsync share one error path: records are
            // sitting in the page cache with no way to make them durable,
            // so the store degrades (the caller additionally rolls back
            // its own record when this failure aborts an append).
            let r = cxfault::io_check("wal.fsync").and_then(|()| {
                self.metrics
                    .wal_fsync_ns
                    .time_tagged(cxtrace::current_trace_id(), || w.file.sync_data())
            });
            if let Err(e) = r {
                self.enter_degraded(&format!("WAL fsync failed: {e}"));
                trace.err(e.to_string());
                return Err(e.into());
            }
            self.counters.wal_fsyncs.fetch_add(1, Ordering::Relaxed);
            w.dirty = 0;
        }
        w.last_sync = Instant::now();
        Ok(())
    }

    /// Force an fsync of everything appended so far (a durability barrier
    /// under the lazier policies).
    pub fn sync(&self) -> Result<()> {
        let mut w = lock(&self.wal);
        self.sync_locked(&mut w)
    }

    // ------------------------------------------------------------------
    // Health
    // ------------------------------------------------------------------

    /// Current write-path health.
    pub fn health(&self) -> StoreHealth {
        if self.degraded.load(Ordering::Acquire) {
            StoreHealth::Degraded
        } else {
            StoreHealth::Healthy
        }
    }

    /// Why the store is degraded (`None` while healthy).
    pub fn degraded_reason(&self) -> Option<String> {
        if self.degraded.load(Ordering::Acquire) {
            Some(lock(&self.degraded_reason).clone())
        } else {
            None
        }
    }

    /// Refuse a mutation while degraded — the check every logged write
    /// starts with. One relaxed-ish atomic load when healthy.
    fn ensure_writable(&self) -> Result<()> {
        if self.degraded.load(Ordering::Acquire) {
            return Err(PersistError::Degraded { detail: lock(&self.degraded_reason).clone() });
        }
        Ok(())
    }

    /// Transition to Degraded (idempotent — only the first failure logs
    /// the event and records the reason).
    fn enter_degraded(&self, reason: &str) {
        if self.degraded.compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire).is_ok()
        {
            *lock(&self.degraded_reason) = reason.to_string();
            self.metrics.degraded.set(1);
            self.store.registry().event("store.degraded", reason.to_string());
        }
    }

    /// Re-probe the write path and, if the disk answers, return the store
    /// to [`StoreHealth::Healthy`]. The probe exercises the same seams
    /// that degrade the store — the failpoints and a real fsync of the
    /// log — so a still-broken disk (or a still-armed fault schedule)
    /// keeps it degraded and returns the probe error. Pending unsynced
    /// records from before the failure become durable as a side effect.
    /// No-op when already healthy.
    pub fn heal(&self) -> Result<StoreHealth> {
        if !self.degraded.load(Ordering::Acquire) {
            return Ok(StoreHealth::Healthy);
        }
        let mut w = lock(&self.wal);
        cxfault::io_check("wal.append")?;
        cxfault::io_check("wal.fsync")?;
        self.metrics.wal_fsync_ns.time(|| w.file.sync_data())?;
        w.dirty = 0;
        w.last_sync = Instant::now();
        self.degraded.store(false, Ordering::Release);
        *lock(&self.degraded_reason) = String::new();
        self.metrics.degraded.set(0);
        self.store.registry().event("store.healed", "write path re-probed OK");
        Ok(StoreHealth::Healthy)
    }

    // ------------------------------------------------------------------
    // Checkpointing
    // ------------------------------------------------------------------

    /// Write a snapshot of every document plus the manifest, durably, then
    /// rotate the log and prune retired snapshots. Blocks mutations for
    /// the duration (reads continue).
    ///
    /// Retention keeps *two* generations: the new snapshot plus the
    /// previous one, and every WAL record past the previous snapshot's
    /// LSN. Should the new snapshot later fail validation (bit rot, torn
    /// disk), recovery falls back to the previous snapshot and reaches the
    /// exact same state by replaying the retained log tail. Only records
    /// covered by *both* snapshots are dropped.
    ///
    /// Checkpoints are *incremental*: a document whose edit epoch is
    /// unchanged since the previous validated generation reuses that
    /// generation's blob file (hard link where the filesystem allows),
    /// so cost scales with the dirty set. The reuse means both retained
    /// generations share one inode for such a document — the fallback
    /// guarantee above is byte-independent for dirty documents and the
    /// manifests, while rot in a shared clean-doc blob fails both
    /// generations for that document and recovery refuses loudly rather
    /// than serving partial state (reuse sources are CRC-validated
    /// end-to-end at checkpoint time, so rot never launders forward).
    pub fn checkpoint(&self) -> Result<CheckpointInfo> {
        // A checkpoint must rotate the log it retires; while the write
        // path is broken that is exactly the kind of half-completed disk
        // surgery the degraded state exists to prevent.
        self.ensure_writable()?;
        let _span = self.metrics.checkpoint_ns.span_tagged(cxtrace::current_trace_id());
        let _trace = cxtrace::span("checkpoint");
        let _exclusive = write_gate(&self.gate);
        let mut w = lock(&self.wal);
        // Everything up to w.lsn is in memory (mutators are drained); the
        // snapshot captures exactly that state.
        self.sync_locked(&mut w)?;
        let lsn = w.lsn;
        // The newest *older* snapshot that validates end-to-end (manifest
        // + blob CRCs + epochs) serves two roles: its blobs are reused for
        // documents whose epoch is unchanged (incremental checkpointing),
        // and it is the retention floor — a bit-rotted snapshot must
        // neither contribute blobs nor retire the WAL records (and the
        // older good snapshot) that real fallback needs.
        let prev = list_snapshots(&self.dir)?
            .into_iter()
            .filter(|&(l, _)| l < lsn)
            .find_map(|(l, path)| validated_manifest(l, &path).map(|m| (l, path, m)));
        let write = write_snapshot(
            &self.dir,
            &self.store,
            lsn,
            prev.as_ref().map(|(_, path, m)| (path.as_path(), m)),
        )?;
        let floor = prev.as_ref().map_or(0, |&(l, _, _)| l);
        self.drop_wal_prefix(&mut w, floor)?;
        prune_snapshots(&self.dir, floor);
        self.counters.checkpoints.fetch_add(1, Ordering::Relaxed);
        self.store.registry().event(
            "checkpoint",
            format!(
                "lsn {lsn}: {} docs ({} fresh, {} reused), {} bytes",
                write.docs, write.fresh_docs, write.reused_docs, write.bytes
            ),
        );
        Ok(CheckpointInfo {
            lsn,
            docs: write.docs,
            bytes: write.bytes,
            fresh_docs: write.fresh_docs,
            reused_docs: write.reused_docs,
        })
    }

    /// Rewrite the WAL without its retired prefix (records with
    /// `lsn <= keep_after` — covered by every retained snapshot), via a
    /// durable tmp-file + rename swap. No-op when nothing is retired.
    fn drop_wal_prefix(&self, w: &mut WalState, keep_after: u64) -> Result<()> {
        let dir = &self.dir;
        let wal_path = dir.join("wal.log");
        let bytes = fs::read(&wal_path)?;
        // Records are LSN-ordered in the file, so the retired part is a
        // byte prefix; walk record framing (payload blocks skipped, not
        // parsed — the file is our own, synced output) until the first
        // record past `keep_after`.
        let mut cut = WAL_HEADER.len();
        while cut < bytes.len() {
            match crate::codec::skip_record(&bytes[cut..]) {
                Some((lsn, used)) if lsn <= keep_after => cut += used,
                _ => break,
            }
        }
        if cut == WAL_HEADER.len() {
            return Ok(()); // nothing retired
        }
        let tmp_path = dir.join("wal.log.tmp");
        let mut tmp = File::create(&tmp_path)?;
        tmp.write_all(WAL_HEADER.as_bytes())?;
        tmp.write_all(&bytes[cut..])?;
        tmp.sync_all()?;
        // `tmp` (cursor already at end) becomes the writer handle *before*
        // the rename: once the rename unlinks the old inode there must be
        // no failure window in which the writer could keep appending
        // acknowledged, fsynced edits to a file nothing will ever read
        // again. If the rename fails, the old file is untouched and the
        // old handle stays in place.
        fs::rename(&tmp_path, &wal_path)?;
        w.file = tmp;
        w.len = (WAL_HEADER.len() + (bytes.len() - cut)) as u64;
        w.dirty = 0;
        // Every byte offset the tail cache learned describes the unlinked
        // file; bump the epoch (still under the WAL mutex) so tailers
        // re-scan once and re-learn positions in the rewritten log.
        self.rotations.fetch_add(1, Ordering::Relaxed);
        self.store.registry().event("wal.rotate", format!("retired through lsn {keep_after}"));
        sync_dir(dir)?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Observability
    // ------------------------------------------------------------------

    /// Tail fetches served from the offset cache (seek instead of a whole
    /// -file scan) since this store was opened.
    pub fn tail_cache_hits(&self) -> u64 {
        self.counters.tail_cache_hits.load(Ordering::Relaxed)
    }

    /// Tail fetches that fell back to a whole-file scan (first fetch per
    /// follower; any cache anomaly or rotation).
    pub fn tail_cache_misses(&self) -> u64 {
        self.counters.tail_cache_misses.load(Ordering::Relaxed)
    }

    /// [`Store::stats`] plus the WAL / checkpoint / recovery counters.
    pub fn stats(&self) -> StoreStats {
        let mut s = self.store.stats();
        s.wal_appends = self.counters.wal_appends.load(Ordering::Relaxed);
        s.wal_bytes = self.counters.wal_bytes.load(Ordering::Relaxed);
        s.wal_fsyncs = self.counters.wal_fsyncs.load(Ordering::Relaxed);
        s.checkpoints = self.counters.checkpoints.load(Ordering::Relaxed);
        s.replayed_ops = self.recovery.replayed_ops;
        s.recovered_docs = self.recovery.recovered_docs as u64;
        s.tail_cache_hits = self.counters.tail_cache_hits.load(Ordering::Relaxed);
        s.tail_cache_misses = self.counters.tail_cache_misses.load(Ordering::Relaxed);
        s
    }

    /// The metric registry shared with the wrapped store (the layers
    /// above — replication, clustering — hang their metrics here too).
    pub fn registry(&self) -> &Arc<Registry> {
        self.store.registry()
    }
}

/// Append `cx_fault_hits_total` / `cx_fault_fires_total` series — one
/// pair per configured failpoint site — to an exposition page. The
/// failpoint registry is process-global (sites are reached from any
/// layer), so callers emit this once per page rather than once per
/// store; the cluster exposition does.
pub fn expose_faults(out: &mut Exposition) {
    for s in cxfault::site_stats() {
        out.write_with("cx_fault_hits_total", &[("site", &s.site)], s.hits);
        out.write_with("cx_fault_fires_total", &[("site", &s.site)], s.fires);
    }
}

impl Observable for DurableStore {
    /// The durable stats snapshot (WAL, checkpoint, recovery, and tail
    /// -cache counters included) plus every registry metric.
    fn expose_into(&self, out: &mut Exposition) {
        self.stats().expose_into(out);
        self.store.registry().expose_into(out);
    }
}

impl Drop for DurableStore {
    fn drop(&mut self) {
        // Best-effort flush of anything a lazy policy left unsynced.
        let mut w = lock(&self.wal);
        let _ = self.sync_locked(&mut w);
    }
}

// Poison-tolerant: the checkpoint gate guards `()` — there is no data a
// panicked holder could have half-written; the lock exists purely to
// order mutators against checkpoints.
fn read_gate(gate: &RwLock<()>) -> std::sync::RwLockReadGuard<'_, ()> {
    gate.read().unwrap_or_else(PoisonError::into_inner)
}

fn write_gate(gate: &RwLock<()>) -> std::sync::RwLockWriteGuard<'_, ()> {
    gate.write().unwrap_or_else(PoisonError::into_inner)
}
