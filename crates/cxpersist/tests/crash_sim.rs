//! Crash simulation: truncate the WAL at *every* byte boundary of its
//! last record and assert that recovery drops exactly the torn record —
//! never more, never less, never an error.

mod common;

use common::TempDir;
use cxpersist::{scan, DurableStore, WAL_HEADER};
use cxstore::EditOp;
use std::fs;

#[test]
fn truncation_at_every_byte_of_the_last_record_drops_only_it() {
    // Build a real store with a handful of logged ops.
    let dir = TempDir::new("crashsim-src");
    let n_edits = 6usize;
    {
        let store = DurableStore::open(dir.path()).unwrap();
        let id = store.insert_named("d", corpus::figure1::goddag()).unwrap();
        for i in 0..n_edits {
            store.edit(id, EditOp::InsertText { offset: 0, text: format!("x{i} ") }).unwrap();
        }
        drop(store);
    }
    let wal = fs::read(dir.path().join("wal.log")).unwrap();
    let full = scan(&wal).unwrap();
    assert!(!full.torn);
    assert_eq!(full.records.len(), n_edits + 1, "one insert + the edits");

    // Offset where the last record begins.
    let last_line_len = wal[..wal.len() - 1] // skip final newline
        .iter()
        .rev()
        .position(|&b| b == b'\n')
        .unwrap()
        + 1; // re-include the final newline
    let last_start = wal.len() - last_line_len;
    assert!(last_start > WAL_HEADER.len());

    // The expected state after losing the last record: replay all but it.
    let expected_after_loss = {
        let dir2 = TempDir::new("crashsim-ref");
        fs::write(dir2.path().join("wal.log"), &wal[..last_start]).unwrap();
        let store = DurableStore::open(dir2.path()).unwrap();
        let id = store.store().id_by_name("d").unwrap();
        store.store().with_doc(id, sacx::export_standoff).unwrap()
    };
    let expected_full = {
        let dir2 = TempDir::new("crashsim-ref2");
        fs::write(dir2.path().join("wal.log"), &wal).unwrap();
        let store = DurableStore::open(dir2.path()).unwrap();
        let id = store.store().id_by_name("d").unwrap();
        store.store().with_doc(id, sacx::export_standoff).unwrap()
    };
    assert_ne!(expected_after_loss, expected_full, "the last record must matter");

    // Now the sweep: cut the file at every byte boundary inside the last
    // record (cut == last_start loses it cleanly; cut == len-1 loses only
    // its newline — still torn).
    for cut in last_start..wal.len() {
        let dir2 = TempDir::new("crashsim-cut");
        fs::write(dir2.path().join("wal.log"), &wal[..cut]).unwrap();
        let store = DurableStore::open(dir2.path())
            .unwrap_or_else(|e| panic!("cut at {cut} must still recover: {e}"));
        let r = store.recovery();
        assert_eq!(
            r.replayed_ops,
            (n_edits + 1 - 1) as u64,
            "cut at {cut}: exactly the torn record is dropped"
        );
        assert_eq!(r.torn_bytes_dropped, cut - last_start, "cut at {cut}");
        let id = store.store().id_by_name("d").unwrap();
        let export = store.store().with_doc(id, sacx::export_standoff).unwrap();
        assert_eq!(export, expected_after_loss, "cut at {cut}");

        // The torn tail is physically truncated away, and the store keeps
        // accepting (and correctly numbering) new records.
        let on_disk = fs::metadata(dir2.path().join("wal.log")).unwrap().len();
        assert_eq!(on_disk, last_start as u64, "cut at {cut}: tail cut off");
        store.edit(id, EditOp::InsertText { offset: 0, text: "post ".into() }).unwrap();
        drop(store);
        let reread = fs::read(dir2.path().join("wal.log")).unwrap();
        let rescan = scan(&reread).unwrap();
        assert!(!rescan.torn, "cut at {cut}: appended log is clean again");
        assert_eq!(rescan.records.len(), n_edits + 1, "cut at {cut}");
    }
}

#[test]
fn bitflip_in_middle_record_drops_the_tail() {
    let dir = TempDir::new("bitflip");
    {
        let store = DurableStore::open(dir.path()).unwrap();
        let id = store.insert_named("d", corpus::figure1::goddag()).unwrap();
        for i in 0..4 {
            store.edit(id, EditOp::InsertText { offset: 0, text: format!("y{i} ") }).unwrap();
        }
    }
    let path = dir.path().join("wal.log");
    let mut wal = fs::read(&path).unwrap();
    // Flip a byte inside the third record's body (records are found by
    // real framing — the first one carries a multi-line blob payload).
    let mut starts = vec![];
    let mut pos = WAL_HEADER.len();
    while pos < wal.len() {
        starts.push(pos);
        let (_, used) = cxpersist::decode_record(&wal[pos..], 0).unwrap();
        pos += used;
    }
    let victim = starts[2] + 5;
    wal[victim] ^= 0x01;
    fs::write(&path, &wal).unwrap();

    let store = DurableStore::open(dir.path()).unwrap();
    // Records 1..=2 replay; 3.. are gone (tail after corruption is never
    // trusted, even if later records still checksum).
    assert_eq!(store.recovery().replayed_ops, 2);
    assert!(store.recovery().torn_bytes_dropped > 0);
}

#[test]
fn torn_header_from_first_open_is_treated_as_fresh() {
    // Crash between the very first header write and its sync leaves a
    // strict prefix of the header — provably nothing was acknowledged, so
    // open must treat the directory as fresh, not corrupt.
    let dir = TempDir::new("tornheader");
    fs::write(dir.path().join("wal.log"), &WAL_HEADER.as_bytes()[..4]).unwrap();
    let store = DurableStore::open(dir.path()).unwrap();
    assert!(store.store().is_empty());
    store.insert_named("d", corpus::figure1::goddag()).unwrap();
    drop(store);
    let store = DurableStore::open(dir.path()).unwrap();
    assert!(store.store().id_by_name("d").is_ok());
}

#[test]
fn corrupt_snapshot_falls_back_to_older_one_with_identical_state() {
    let dir = TempDir::new("snapfall");
    {
        let store = DurableStore::open(dir.path()).unwrap();
        let id = store.insert_named("d", corpus::figure1::goddag()).unwrap();
        store.edit(id, EditOp::InsertText { offset: 0, text: "a ".into() }).unwrap();
        store.checkpoint().unwrap();
    }
    // Second generation: more work, another checkpoint, even more work —
    // then corrupt the *newest* snapshot.
    let (old_snap, new_snap, expected) = {
        let store = DurableStore::open(dir.path()).unwrap();
        let id = store.store().id_by_name("d").unwrap();
        let old_lsn = store.last_lsn();
        store.edit(id, EditOp::InsertText { offset: 0, text: "b ".into() }).unwrap();
        store.checkpoint().unwrap();
        let new_lsn = store.last_lsn();
        store.edit(id, EditOp::InsertText { offset: 0, text: "c ".into() }).unwrap();
        let export = store.store().with_doc(id, sacx::export_standoff).unwrap();
        (old_lsn, new_lsn, export)
    };
    assert!(new_snap > old_snap);
    // Both snapshot generations are retained.
    let mut snaps: Vec<_> = fs::read_dir(dir.path())
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().starts_with("snap-"))
        .map(|e| e.path())
        .collect();
    snaps.sort();
    assert_eq!(snaps.len(), 2, "previous snapshot kept as fallback");
    let newest_manifest = snaps[1].join("manifest.txt");
    let mut bytes = fs::read(&newest_manifest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    fs::write(&newest_manifest, &bytes).unwrap();

    // Recovery skips the damaged snapshot, loads the previous one, and
    // replays the retained WAL tail — reaching the exact pre-crash state.
    let store = DurableStore::open(dir.path()).unwrap();
    assert_eq!(store.recovery().snapshot_lsn, Some(old_snap), "fell back to the older snapshot");
    assert_eq!(store.recovery().snapshots_skipped, 1);
    assert!(store.recovery().replayed_ops >= 2, "the 'b' and 'c' edits replay from the log");
    let id = store.store().id_by_name("d").unwrap();
    let export = store.store().with_doc(id, sacx::export_standoff).unwrap();
    assert_eq!(export, expected, "fallback recovery reaches the identical state");

    // The damaged snapshot was quarantined at open, so the next checkpoint
    // cannot adopt it as its retention floor; after checkpoint + reopen the
    // full state is still there.
    let names: Vec<String> = fs::read_dir(dir.path())
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    assert!(names.iter().any(|n| n.ends_with(".bad")), "corrupt snapshot quarantined: {names:?}");
    store.checkpoint().unwrap();
    drop(store);
    let store = DurableStore::open(dir.path()).unwrap();
    let id = store.store().id_by_name("d").unwrap();
    let export = store.store().with_doc(id, sacx::export_standoff).unwrap();
    assert_eq!(export, expected, "state survives checkpoint after fallback");
}

#[test]
fn cold_start_with_unreplayable_wal_refuses_to_open() {
    // If every snapshot is lost AND the log's prefix was already retired,
    // the remaining records reference documents the store cannot rebuild.
    // That must be a loud failure, not a silently empty store.
    let dir = TempDir::new("loudfail");
    {
        let store = DurableStore::open(dir.path()).unwrap();
        let id = store.insert_named("d", corpus::figure1::goddag()).unwrap();
        store.checkpoint().unwrap(); // gen 1
        store.edit(id, EditOp::InsertText { offset: 0, text: "x ".into() }).unwrap();
        store.checkpoint().unwrap(); // gen 2: retires the insert record
        store.edit(id, EditOp::InsertText { offset: 0, text: "y ".into() }).unwrap();
    }
    for entry in fs::read_dir(dir.path()).unwrap().flatten() {
        if entry.file_name().to_string_lossy().starts_with("snap-") {
            fs::remove_dir_all(entry.path()).unwrap();
        }
    }
    match DurableStore::open(dir.path()) {
        Err(err) => assert!(
            matches!(err, cxpersist::PersistError::Corrupt { .. }),
            "expected loud corruption error, got {err}"
        ),
        Ok(_) => panic!("open must refuse an unreplayable directory"),
    }
}
