//! Property test: random `EditOp` / `WalOp` sequences survive the WAL
//! codec byte-for-byte — encode → decode is the identity on whole files,
//! records, and every string field (including the empty string, spaces,
//! separators, newlines and non-ASCII).

use cxpersist::{decode_record, encode_record, scan, WalOp, WAL_HEADER};
use cxstore::{DocId, EditOp};
use goddag::NodeId;
use proptest::prelude::*;

/// Deterministic op generator driven by one seed.
struct Gen(TestRng);

/// Strings chosen to stress the escaping: separators, escapes, newlines,
/// non-ASCII, emptiness.
const STRINGS: &[&str] = &[
    "",
    "w",
    "phrase",
    "two words",
    "a=b",
    "%",
    "%20",
    "line\nbreak",
    "tab\there",
    "swā þæt",
    "…—…",
    " leading and trailing ",
    "crc 00000000",
];

impl Gen {
    fn string(&mut self) -> String {
        STRINGS[self.0.below(STRINGS.len() as u64) as usize].to_string()
    }

    fn attrs(&mut self) -> Vec<(String, String)> {
        (0..self.0.below(4)).map(|_| (self.string(), self.string())).collect()
    }

    fn edit_op(&mut self) -> EditOp {
        match self.0.below(6) {
            0 => EditOp::InsertElement {
                hierarchy: self.string(),
                tag: self.string(),
                attrs: self.attrs(),
                start: self.0.below(1000) as usize,
                end: self.0.below(1000) as usize,
            },
            1 => EditOp::RemoveElement(NodeId(self.0.below(u32::MAX as u64) as u32)),
            2 => EditOp::InsertText { offset: self.0.below(1000) as usize, text: self.string() },
            3 => EditOp::DeleteText {
                start: self.0.below(1000) as usize,
                end: self.0.below(1000) as usize,
            },
            4 => EditOp::SetAttr {
                node: NodeId(self.0.below(u32::MAX as u64) as u32),
                name: self.string(),
                value: self.string(),
            },
            _ => EditOp::RemoveAttr {
                node: NodeId(self.0.below(u32::MAX as u64) as u32),
                name: self.string(),
            },
        }
    }

    fn wal_op(&mut self) -> WalOp {
        match self.0.below(8) {
            0 => WalOp::DocRemove { doc: DocId::from_raw(self.0.below(100)) },
            1 => WalOp::BindName { doc: DocId::from_raw(self.0.below(100)), name: self.string() },
            _ => WalOp::Edit {
                doc: DocId::from_raw(self.0.below(100)),
                epoch: self.0.next_u64() >> 1,
                op: self.edit_op(),
            },
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn random_op_sequences_roundtrip(seed in 0u64..u64::MAX, len in 1usize..40) {
        let mut gen = Gen(TestRng::from_name(&format!("codec-{seed}")));
        let ops: Vec<WalOp> = (0..len).map(|_| gen.wal_op()).collect();

        // Record-level roundtrip. (The generator emits only single-line
        // record kinds; DocInsert payload framing is pinned by unit and
        // recovery tests.)
        let mut file = WAL_HEADER.to_string();
        for (i, op) in ops.iter().enumerate() {
            let lsn = i as u64 + 1;
            let line = encode_record(lsn, op);
            let (rec, used) = decode_record(line.as_bytes(), i + 2).unwrap();
            prop_assert_eq!(used, line.len());
            prop_assert_eq!(rec.lsn, lsn);
            prop_assert_eq!(&rec.op, op, "seed {} record {}", seed, i);
            file.push_str(&line);
        }

        // File-level roundtrip through the scanner.
        let s = scan(file.as_bytes()).unwrap();
        prop_assert!(!s.torn, "seed {}", seed);
        prop_assert_eq!(s.valid_len, file.len());
        prop_assert_eq!(s.records.len(), ops.len());
        for (rec, op) in s.records.iter().zip(&ops) {
            prop_assert_eq!(&rec.op, op, "seed {}", seed);
        }

        // And a torn tail never breaks the prefix: cut inside the last
        // record at a seed-chosen byte.
        let last_start = file[..file.len() - 1].rfind('\n').unwrap() + 1;
        let cut = last_start + (gen.0.below((file.len() - last_start) as u64) as usize);
        let s = scan(&file.as_bytes()[..cut]).unwrap();
        prop_assert_eq!(s.records.len(), ops.len() - 1, "seed {} cut {}", seed, cut);
        // A cut exactly at the record boundary loses it cleanly (no torn
        // bytes); any later cut leaves a torn tail.
        prop_assert_eq!(s.torn, cut != last_start, "seed {} cut {}", seed, cut);
    }
}

use proptest::TestRng;
