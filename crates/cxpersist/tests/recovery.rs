//! Kill-and-recover equivalence: a store rebuilt from its directory must
//! be indistinguishable from the pre-crash store — byte-identical
//! stand-off export, identical epochs, identical handles and names, and
//! identical future id allocation.

mod common;

use common::TempDir;
use cxpersist::{DurableStore, FsyncPolicy, Options, PersistError};
use cxstore::{DocId, EditOp, StoreError};
use std::collections::BTreeMap;

/// A corpus manuscript with the standard DTDs attached (so inserts are
/// prevalidation-gated).
fn manuscript(words: usize, seed: u64) -> goddag::Goddag {
    let mut ms = corpus::generate(&corpus::Params { words, seed, ..corpus::Params::default() });
    corpus::dtds::attach_standard(&mut ms.goddag);
    ms.goddag
}

/// Everything observable we compare across a crash.
#[derive(Debug, PartialEq, Eq)]
struct Observed {
    doc_ids: Vec<u64>,
    names: Vec<(String, u64)>,
    next_doc: u64,
    /// Per doc: stand-off export, edit epoch, arena length.
    docs: BTreeMap<u64, (String, u64, usize)>,
}

fn observe(store: &DurableStore) -> Observed {
    let s = store.store();
    let mut docs = BTreeMap::new();
    for id in s.doc_ids() {
        let export = s.with_doc(id, sacx::export_standoff).unwrap();
        let epoch = s.epoch(id).unwrap();
        let arena = s.with_doc(id, |g| g.arena_len()).unwrap();
        docs.insert(id.raw(), (export, epoch, arena));
    }
    Observed {
        doc_ids: s.doc_ids().iter().map(|id| id.raw()).collect(),
        names: s.name_bindings().into_iter().map(|(n, id)| (n, id.raw())).collect(),
        next_doc: s.next_doc_raw(),
        docs,
    }
}

/// Apply a deterministic mixed workload of `n` ops to `doc`, re-deriving
/// offsets from the live document so text edits keep everything valid.
/// Returns (applied, rejected).
fn mixed_ops(store: &DurableStore, doc: DocId, n: usize, salt: usize) -> (usize, usize) {
    let mut applied = 0;
    let mut rejected = 0;
    let mut inserted: Vec<goddag::NodeId> = Vec::new();
    for i in 0..n {
        let k = i + salt;
        // Fresh structural facts each round (edits move offsets).
        let (len, words) = store
            .store()
            .with_doc(doc, |g| {
                let words: Vec<(usize, usize)> = g
                    .find_elements("w")
                    .into_iter()
                    .map(|w| g.char_range(w))
                    .filter(|(a, b)| a < b)
                    .collect();
                (g.content_len(), words)
            })
            .unwrap();
        let op = match k % 6 {
            0 if !words.is_empty() => {
                // Wrap a run of words in a phrase (ling hierarchy, gated).
                let a = words[k % words.len()].0;
                let b = words[(k + 2) % words.len()].1;
                let (start, end) = if a <= b { (a, b) } else { (b, a) };
                EditOp::InsertElement {
                    hierarchy: "ling".into(),
                    tag: "phrase".into(),
                    attrs: vec![("n".into(), format!("p{k}"))],
                    start,
                    end,
                }
            }
            1 if !words.is_empty() => {
                // Damage annotation (edit hierarchy, gated, overlaps freely).
                let (start, _) = words[k % words.len()];
                let end = (start + 9).min(len);
                EditOp::InsertElement {
                    hierarchy: "edit".into(),
                    tag: "dmg".into(),
                    attrs: vec![("agent".into(), "wærm".into())],
                    start,
                    end: end.max(start),
                }
            }
            2 => EditOp::InsertText { offset: len / 2, text: format!("[{k}]") },
            3 if len > 8 => {
                let start = (k * 7) % (len - 4);
                EditOp::DeleteText { start, end: start + 1 }
            }
            4 if !inserted.is_empty() => {
                let node = inserted[k % inserted.len()];
                EditOp::SetAttr { node, name: "resp".into(), value: format!("ed{k}") }
            }
            _ if !inserted.is_empty() && k % 12 == 5 => {
                EditOp::RemoveElement(inserted.remove(k % inserted.len()))
            }
            _ => EditOp::InsertText { offset: 0, text: "X".into() },
        };
        match store.edit(doc, op) {
            Ok(out) => {
                applied += 1;
                if let Some(node) = out.node {
                    inserted.push(node);
                }
            }
            Err(PersistError::Store(StoreError::EditRejected(_))) => rejected += 1,
            Err(PersistError::Store(StoreError::Goddag(_))) => rejected += 1,
            Err(e) => panic!("unexpected edit failure: {e}"),
        }
    }
    (applied, rejected)
}

#[test]
fn kill_and_recover_without_checkpoint() {
    let dir = TempDir::new("kill-nockpt");
    let (before, applied) = {
        let store = DurableStore::open(dir.path()).unwrap();
        let ms = store.insert_named("ms", manuscript(100, 7)).unwrap();
        let fig = store.insert(corpus::figure1::goddag()).unwrap();
        store.bind_name("figure-1", fig).unwrap();
        let (applied, rejected) = mixed_ops(&store, ms, 60, 0);
        assert!(applied >= 50, "workload must actually apply ≥50 ops, got {applied}");
        assert!(rejected > 0, "the workload should also exercise gate rejections");
        // One op that passes the gate (no DTD on figure1) but fails
        // structurally *after* the WAL append: crossing markup.
        let (a, b) = store
            .store()
            .with_doc(fig, |g| {
                let ws = g.find_elements("w");
                let (a0, _) = g.char_range(ws[0]);
                let (b0, b1) = g.char_range(ws[1]);
                ((a0 + b0) / 2, b1)
            })
            .unwrap();
        let err = store
            .edit(
                fig,
                EditOp::InsertElement {
                    hierarchy: "ling".into(),
                    tag: "x".into(),
                    attrs: vec![],
                    start: a,
                    end: b,
                },
            )
            .unwrap_err();
        assert!(matches!(err, PersistError::Store(StoreError::Goddag(_))), "{err}");
        let before = observe(&store);
        // Crash: no checkpoint, no orderly drop.
        std::mem::forget(store);
        (before, applied)
    };

    let store = DurableStore::open(dir.path()).unwrap();
    assert_eq!(observe(&store), before, "recovered store must match the pre-crash store");
    let r = store.recovery();
    assert_eq!(r.snapshot_lsn, None, "no checkpoint was taken");
    assert!(r.replayed_ops >= applied as u64 + 2, "docs + edits all replay");
    assert!(r.replayed_rejected >= 1, "the logged-but-crossing op re-fails identically");
    assert_eq!(r.torn_bytes_dropped, 0);

    // Future allocations continue exactly where the pre-crash store would
    // have: a fresh insert mints the next arena id.
    let ms = store.store().id_by_name("ms").unwrap();
    let arena = store.store().with_doc(ms, |g| g.arena_len()).unwrap();
    let out = store
        .edit(
            ms,
            EditOp::InsertElement {
                hierarchy: "edit".into(),
                tag: "add".into(),
                attrs: vec![],
                start: 0,
                end: 2,
            },
        )
        .unwrap();
    if let Some(node) = out.node {
        assert!(node.idx() >= arena, "new ids allocate past the recorded arena");
    }
}

#[test]
fn kill_and_recover_with_intermediate_snapshot() {
    let dir = TempDir::new("kill-ckpt");
    let before = {
        let store =
            DurableStore::open_with(dir.path(), Options { fsync: FsyncPolicy::EveryN(4) }).unwrap();
        let ms = store.insert_named("ms", manuscript(80, 11)).unwrap();
        let doomed = store.insert_named("doomed", corpus::figure1::goddag()).unwrap();
        mixed_ops(&store, ms, 30, 0);

        let info = store.checkpoint().unwrap();
        assert_eq!(info.docs, 2);
        assert!(info.lsn > 0);

        // Post-snapshot traffic: more edits, a new doc, a removal, a rebind.
        mixed_ops(&store, ms, 25, 1000);
        let late = store.insert_named("late", manuscript(30, 23)).unwrap();
        mixed_ops(&store, late, 10, 7);
        store.remove(doomed).unwrap();
        store.bind_name("ms-alias", ms).unwrap();
        store.sync().unwrap();
        let before = observe(&store);
        std::mem::forget(store);
        before
    };

    let store = DurableStore::open(dir.path()).unwrap();
    assert_eq!(observe(&store), before);
    let r = store.recovery();
    assert!(r.snapshot_lsn.is_some());
    assert_eq!(r.recovered_docs, 2, "snapshot had two docs");
    assert!(r.replayed_ops > 0, "the WAL tail replays on top");
    // The removed document stays removed and its name is gone.
    assert!(store.store().id_by_name("doomed").is_err());
    // Stats surface the recovery counters.
    let stats = store.stats();
    assert_eq!(stats.recovered_docs, 2);
    assert_eq!(stats.replayed_ops, r.replayed_ops);

    // A second checkpoint + clean reopen converges to the same state.
    store.checkpoint().unwrap();
    drop(store);
    let again = DurableStore::open(dir.path()).unwrap();
    assert_eq!(observe(&again), before);
    assert_eq!(again.recovery().replayed_ops, 0, "everything is in the snapshot now");
}

#[test]
fn reopen_is_idempotent_and_checkpoint_rotates_wal() {
    let dir = TempDir::new("rotate");
    let store = DurableStore::open(dir.path()).unwrap();
    let id = store.insert_named("d", manuscript(40, 3)).unwrap();
    mixed_ops(&store, id, 12, 0);
    let wal_len_gen0 = std::fs::metadata(dir.path().join("wal.log")).unwrap().len();
    assert!(wal_len_gen0 > cxpersist::WAL_HEADER.len() as u64);
    // First checkpoint: no previous snapshot exists, so the whole log is
    // retained as the fallback generation.
    store.checkpoint().unwrap();
    assert_eq!(std::fs::metadata(dir.path().join("wal.log")).unwrap().len(), wal_len_gen0);
    // Second checkpoint after more traffic: records covered by both
    // snapshots retire; only the in-between records remain.
    store.edit(id, EditOp::InsertText { offset: 0, text: "z ".into() }).unwrap();
    store.checkpoint().unwrap();
    let wal_len_gen2 = std::fs::metadata(dir.path().join("wal.log")).unwrap().len();
    assert!(
        wal_len_gen2 < wal_len_gen0 && wal_len_gen2 > cxpersist::WAL_HEADER.len() as u64,
        "second checkpoint retires the shared prefix but keeps the fallback tail \
         ({wal_len_gen2} vs {wal_len_gen0})"
    );
    let snaps: Vec<_> = std::fs::read_dir(dir.path())
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().starts_with("snap-"))
        .collect();
    assert!(snaps.len() <= 2, "at most two snapshot generations are kept");
    let before = observe(&store);
    drop(store);
    for _ in 0..3 {
        let s = DurableStore::open(dir.path()).unwrap();
        assert_eq!(observe(&s), before, "repeated reopens converge");
    }
}

#[test]
fn lazy_fsync_policies_still_recover_after_orderly_drop() {
    for policy in [FsyncPolicy::EveryN(64), FsyncPolicy::Never] {
        let dir = TempDir::new("lazy");
        let before = {
            let store = DurableStore::open_with(dir.path(), Options { fsync: policy }).unwrap();
            let id = store.insert_named("d", manuscript(30, 5)).unwrap();
            mixed_ops(&store, id, 10, 0);
            let before = observe(&store);
            drop(store); // drop flushes pending appends
            before
        };
        let store = DurableStore::open(dir.path()).unwrap();
        assert_eq!(observe(&store), before, "policy {policy:?}");
    }
}
