//! Failpoint-driven write-path faults: an ENOSPC-style failure mid-WAL-
//! append must leave the store readable and **Degraded**, the WAL
//! un-torn on disk, and the rejected edit absent from replay — and
//! [`DurableStore::heal`] must bring the store back once the disk
//! recovers. Companion to the truncate-at-every-byte harness in
//! `crash_sim.rs`: that one tears the log after the fact, this one
//! injects the failure while the record is being written.

mod common;

use common::TempDir;
use cxfault::{Fault, Trigger};
use cxobs::Observable;
use cxpersist::{scan, DurableStore, PersistError, StoreHealth};
use cxstore::EditOp;
use std::fs;

fn export(store: &DurableStore, name: &str) -> String {
    let id = store.store().id_by_name(name).unwrap();
    store.store().with_doc(id, sacx::export_standoff).unwrap()
}

#[test]
fn enospc_mid_append_degrades_but_never_tears_the_wal() {
    let _fp = cxfault::Scenario::setup();
    let dir = TempDir::new("enospc");
    let store = DurableStore::open(dir.path()).unwrap();
    let id = store.insert_named("d", corpus::figure1::goddag()).unwrap();
    for i in 0..4 {
        store.edit(id, EditOp::InsertText { offset: 0, text: format!("x{i} ") }).unwrap();
    }
    let before = export(&store, "d");
    let wal_len = fs::metadata(dir.path().join("wal.log")).unwrap().len();

    // The disk fills: the next append fails like ENOSPC.
    cxfault::configure("wal.append", Trigger::Always, Fault::Io);
    let err = store.edit(id, EditOp::InsertText { offset: 0, text: "LOST ".into() }).unwrap_err();
    assert!(matches!(err, PersistError::Io(_)), "{err}");
    assert_eq!(store.health(), StoreHealth::Degraded);
    assert!(
        store.degraded_reason().unwrap().contains("WAL append"),
        "{:?}",
        store.degraded_reason()
    );

    // Degraded is read-only, not dead: every read path still answers,
    // and the failed edit never touched the in-memory store.
    assert_eq!(export(&store, "d"), before);
    assert!(store.store().query(id, "//w").is_ok());

    // Further writes are refused up front with the typed error — no
    // second trip to the broken disk, no half-applied batch.
    for op in [
        EditOp::InsertText { offset: 0, text: "also lost".into() },
        EditOp::DeleteText { start: 0, end: 1 },
    ] {
        let err = store.edit(id, op).unwrap_err();
        assert!(matches!(err, PersistError::Degraded { .. }), "{err}");
    }
    assert!(matches!(store.insert(corpus::figure1::goddag()), Err(PersistError::Degraded { .. })));

    // The transition left a trail.
    let kinds: Vec<&str> = store.registry().events().recent().iter().map(|e| e.kind).collect();
    assert!(kinds.contains(&"store.degraded"), "{kinds:?}");

    // On disk: the rejected append was rolled back to the pre-edit
    // boundary — not one stray byte, no torn tail.
    let wal = fs::read(dir.path().join("wal.log")).unwrap();
    assert_eq!(wal.len() as u64, wal_len, "failed append left no bytes behind");
    let scanned = scan(&wal).unwrap();
    assert!(!scanned.torn, "WAL is clean, not torn");
    assert_eq!(scanned.records.len(), 5, "one insert + four applied edits");

    // Reopen: replay reproduces exactly the acknowledged state; the
    // rejected edit is absent.
    drop(store);
    cxfault::clear();
    let reopened = DurableStore::open(dir.path()).unwrap();
    assert_eq!(reopened.recovery().torn_bytes_dropped, 0);
    assert_eq!(export(&reopened, "d"), before);
    assert_eq!(reopened.health(), StoreHealth::Healthy, "degradation is not persistent state");
}

#[test]
fn torn_append_rolls_back_to_the_record_boundary() {
    let _fp = cxfault::Scenario::setup();
    let dir = TempDir::new("torn-append");
    let store = DurableStore::open(dir.path()).unwrap();
    let id = store.insert_named("d", corpus::figure1::goddag()).unwrap();
    store.edit(id, EditOp::InsertText { offset: 0, text: "ok ".into() }).unwrap();
    let before = export(&store, "d");
    let wal_len = fs::metadata(dir.path().join("wal.log")).unwrap().len();

    // The write itself tears partway through the record (power loss
    // mid-write, short write on a full disk) — the append path persists
    // the torn prefix, then rolls the file back to the boundary.
    cxfault::configure("wal.append", Trigger::Always, Fault::TornWrite(0.6));
    let err = store.edit(id, EditOp::InsertText { offset: 0, text: "TORN ".into() }).unwrap_err();
    assert!(matches!(err, PersistError::Io(_)), "{err}");
    assert_eq!(store.health(), StoreHealth::Degraded);
    assert_eq!(
        fs::metadata(dir.path().join("wal.log")).unwrap().len(),
        wal_len,
        "the torn prefix was truncated away"
    );
    assert!(!scan(&fs::read(dir.path().join("wal.log")).unwrap()).unwrap().torn);

    // Disk recovers; heal re-probes and the store takes writes again,
    // numbering records as if the failure never happened.
    cxfault::clear();
    assert_eq!(store.heal().unwrap(), StoreHealth::Healthy);
    store.edit(id, EditOp::InsertText { offset: 0, text: "post ".into() }).unwrap();
    assert_ne!(export(&store, "d"), before);
    let after = export(&store, "d");

    drop(store);
    let reopened = DurableStore::open(dir.path()).unwrap();
    assert_eq!(export(&reopened, "d"), after, "reopen replays the exact post-heal bytes");
}

#[test]
fn heal_fails_while_the_disk_is_still_sick_then_succeeds() {
    let _fp = cxfault::Scenario::setup();
    let dir = TempDir::new("heal");
    let store = DurableStore::open(dir.path()).unwrap();
    let id = store.insert_named("d", corpus::figure1::goddag()).unwrap();

    cxfault::configure("wal.append", Trigger::Always, Fault::Io);
    assert!(store.edit(id, EditOp::InsertText { offset: 0, text: "x".into() }).is_err());
    assert_eq!(store.health(), StoreHealth::Degraded);

    // The append path recovered but fsync still fails: heal's re-probe
    // must refuse to clear the flag.
    cxfault::disarm("wal.append");
    cxfault::configure("wal.fsync", Trigger::Always, Fault::Io);
    assert!(store.heal().is_err());
    assert_eq!(store.health(), StoreHealth::Degraded, "a failed probe keeps the store read-only");

    // Disk fully back: heal clears, writes flow, both events on the ring.
    cxfault::clear();
    assert_eq!(store.heal().unwrap(), StoreHealth::Healthy);
    assert_eq!(store.heal().unwrap(), StoreHealth::Healthy, "healing a healthy store is a no-op");
    store.edit(id, EditOp::InsertText { offset: 0, text: "back ".into() }).unwrap();
    let kinds: Vec<&str> = store.registry().events().recent().iter().map(|e| e.kind).collect();
    assert!(kinds.contains(&"store.degraded"), "{kinds:?}");
    assert!(kinds.contains(&"store.healed"), "{kinds:?}");

    // The degraded gauge tracked the lifecycle back to zero.
    let page = store.exposition();
    assert!(page.contains("cx_store_degraded 0"), "{page}");
}

#[test]
fn failed_snapshot_capture_errors_without_degrading() {
    let _fp = cxfault::Scenario::setup();
    let dir = TempDir::new("capture-fault");
    let store = DurableStore::open(dir.path()).unwrap();
    let id = store.insert_named("d", corpus::figure1::goddag()).unwrap();
    let before = export(&store, "d");

    // A bootstrap capture that fails after the log sync: the caller (a
    // follower fetch) sees the error and retries — the primary must not
    // flip read-only over a replication-path hiccup.
    cxfault::configure("snapshot.capture", Trigger::Always, Fault::Io);
    let err = store.capture_snapshot().unwrap_err();
    assert!(matches!(err, PersistError::Io(_)), "{err}");
    assert_eq!(store.health(), StoreHealth::Healthy, "capture failure never degrades");
    store.edit(id, EditOp::InsertText { offset: 0, text: "still writable ".into() }).unwrap();

    // Fault gone: the retried capture ships the post-edit state.
    cxfault::disarm("snapshot.capture");
    let snap = store.capture_snapshot().unwrap();
    assert_eq!(snap.lsn, store.last_lsn());
    assert_ne!(export(&store, "d"), before);
}

#[test]
fn failed_checkpoint_rename_keeps_the_previous_generation_authoritative() {
    let _fp = cxfault::Scenario::setup();
    let dir = TempDir::new("ckpt-rename");
    let store = DurableStore::open(dir.path()).unwrap();
    let id = store.insert_named("d", corpus::figure1::goddag()).unwrap();
    store.checkpoint().unwrap();
    store.edit(id, EditOp::InsertText { offset: 0, text: "after ckpt ".into() }).unwrap();
    let state = export(&store, "d");

    // ENOSPC/crash at the publish rename: the whole checkpoint is one
    // atomic rename away from existing, so a failure there must leave
    // only a `.tmp` leftover — never a half-visible generation.
    cxfault::configure("checkpoint.rename", Trigger::Always, Fault::Io);
    let err = store.checkpoint().unwrap_err();
    assert!(matches!(err, PersistError::Io(_)), "{err}");
    assert_eq!(store.health(), StoreHealth::Healthy, "a failed publish never degrades");
    cxfault::clear();

    // Recovery ignores the `.tmp` debris: a reopen replays the previous
    // generation plus the retained log to the exact acknowledged state.
    drop(store);
    let reopened = DurableStore::open(dir.path()).unwrap();
    assert_eq!(export(&reopened, "d"), state);

    // And the next attempt simply replaces the debris and publishes.
    reopened.checkpoint().unwrap();
    drop(reopened);
    let again = DurableStore::open(dir.path()).unwrap();
    assert_eq!(export(&again, "d"), state);
}
