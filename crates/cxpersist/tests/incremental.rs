//! Incremental checkpoints: a document whose edit epoch is unchanged
//! since the previous generation must reuse that generation's blob
//! (hard-linked, same inode) — only dirty documents get new blobs.

mod common;

use common::TempDir;
use cxpersist::{DurableStore, FsyncPolicy, Options};
use cxstore::EditOp;
use std::fs;
use std::path::{Path, PathBuf};

fn snapshot_dirs(dir: &Path) -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| {
            let n = e.file_name().to_string_lossy().into_owned();
            n.starts_with("snap-") && !n.ends_with(".tmp") && !n.ends_with(".bad")
        })
        .map(|e| e.path())
        .collect();
    out.sort();
    out
}

#[cfg(unix)]
fn inode(path: &Path) -> u64 {
    use std::os::unix::fs::MetadataExt;
    fs::metadata(path).unwrap().ino()
}

#[test]
fn only_dirty_docs_get_new_blobs() {
    let dir = TempDir::new("incr");
    let store = DurableStore::open_with(dir.path(), Options { fsync: FsyncPolicy::Never }).unwrap();
    let a = store.insert_named("a", corpus::figure1::goddag()).unwrap();
    let b = store.insert_named("b", corpus::figure1::goddag()).unwrap();
    let c = store.insert_named("c", corpus::figure1::goddag()).unwrap();
    store.edit(a, EditOp::InsertText { offset: 0, text: "gen1 ".into() }).unwrap();

    // Generation 1: no previous snapshot, everything is fresh.
    let info1 = store.checkpoint().unwrap();
    assert_eq!((info1.docs, info1.fresh_docs, info1.reused_docs), (3, 3, 0));

    // Touch only `a`; generation 2 must re-capture exactly `a`.
    store.edit(a, EditOp::InsertText { offset: 0, text: "gen2 ".into() }).unwrap();
    let info2 = store.checkpoint().unwrap();
    assert_eq!(info2.docs, 3);
    assert_eq!(info2.fresh_docs, 1, "only the dirty doc is re-captured");
    assert_eq!(info2.reused_docs, 2);

    let snaps = snapshot_dirs(dir.path());
    assert_eq!(snaps.len(), 2, "both generations retained");
    // Reused blobs are the same inode (hard link), the dirty one is not,
    // and reuse is still byte-faithful.
    #[cfg(unix)]
    {
        for doc in [b, c] {
            let f = format!("doc-{}.blob", doc.raw());
            assert_eq!(
                inode(&snaps[0].join(&f)),
                inode(&snaps[1].join(&f)),
                "unchanged doc {doc} reuses the previous blob file"
            );
        }
        let fa = format!("doc-{}.blob", a.raw());
        assert_ne!(inode(&snaps[0].join(&fa)), inode(&snaps[1].join(&fa)));
    }
    for doc in [b, c] {
        let f = format!("doc-{}.blob", doc.raw());
        assert_eq!(fs::read(snaps[0].join(&f)).unwrap(), fs::read(snaps[1].join(&f)).unwrap());
    }

    // The incremental snapshot restores bit-for-bit: reopen from it.
    let want: Vec<(u64, String)> = store
        .store()
        .doc_ids()
        .into_iter()
        .map(|id| (id.raw(), store.store().with_doc(id, sacx::export_standoff).unwrap()))
        .collect();
    drop(store);
    let store = DurableStore::open(dir.path()).unwrap();
    assert_eq!(store.recovery().replayed_ops, 0, "everything lives in the snapshot");
    let got: Vec<(u64, String)> = store
        .store()
        .doc_ids()
        .into_iter()
        .map(|id| (id.raw(), store.store().with_doc(id, sacx::export_standoff).unwrap()))
        .collect();
    assert_eq!(got, want);
}

#[test]
fn corrupt_previous_generation_disables_reuse() {
    let dir = TempDir::new("incr-corrupt");
    let store = DurableStore::open_with(dir.path(), Options { fsync: FsyncPolicy::Never }).unwrap();
    let a = store.insert_named("a", corpus::figure1::goddag()).unwrap();
    store.insert_named("b", corpus::figure1::goddag()).unwrap();
    store.checkpoint().unwrap();

    // Bit-rot a blob of generation 1, then take generation 2.
    let snaps = snapshot_dirs(dir.path());
    let victim = snaps[0].join("doc-1.blob");
    let mut bytes = fs::read(&victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x08;
    fs::write(&victim, &bytes).unwrap();

    store.edit(a, EditOp::InsertText { offset: 0, text: "x ".into() }).unwrap();
    let info = store.checkpoint().unwrap();
    // The rotted generation fails validation, so nothing is reused from
    // it — every blob is captured fresh (rot cannot launder forward).
    assert_eq!((info.fresh_docs, info.reused_docs), (2, 0));

    // And the new generation stands on its own.
    drop(store);
    let store = DurableStore::open(dir.path()).unwrap();
    assert_eq!(store.store().len(), 2);
    assert!(store.store().id_by_name("a").is_ok());
}
