//! The WAL tail offset cache: steady-state tailing must seek (O(slice))
//! instead of re-scanning the whole log (O(file)), without ever shipping
//! different bytes than a cold scan would — across appends, byte caps and
//! checkpoint rotations.

mod common;

use common::TempDir;
use cxpersist::{scan_batch, DurableStore, FsyncPolicy, Options, TailShipment};
use cxstore::EditOp;

fn open(dir: &TempDir) -> DurableStore {
    DurableStore::open_with(dir.path(), Options { fsync: FsyncPolicy::Never }).unwrap()
}

/// Fetch everything past `after` in one uncapped call, returning
/// `(last, bytes)`.
fn fetch(store: &DurableStore, after: u64) -> (u64, Vec<u8>) {
    match store.wal_tail(after, usize::MAX).unwrap() {
        TailShipment::Records { first, last, bytes } => {
            assert_eq!(first, after + 1);
            (last, bytes)
        }
        other => panic!("expected records past {after}, got {other:?}"),
    }
}

#[test]
fn cached_fetches_are_byte_identical_to_cold_scans() {
    let dir = TempDir::new("tail-cache-bytes");
    let store = open(&dir);
    let id = store.insert(corpus::figure1::goddag()).unwrap();
    for i in 0..40 {
        store.edit(id, EditOp::InsertText { offset: 0, text: format!("w{i} ") }).unwrap();
    }
    let head = store.last_lsn();

    // Walk the log like a follower (small byte cap, many fetches). The
    // first fetch at each position scans; repeating it hits the cache and
    // must return the identical shipment.
    let mut after = 0u64;
    while after < head {
        let cold = store.wal_tail(after, 256).unwrap();
        let warm = store.wal_tail(after, 256).unwrap();
        match (cold, warm) {
            (
                TailShipment::Records { first: f1, last: l1, bytes: b1 },
                TailShipment::Records { first: f2, last: l2, bytes: b2 },
            ) => {
                assert_eq!((f1, l1), (f2, l2), "position {after}");
                assert_eq!(b1, b2, "position {after}");
                let scan = scan_batch(&b1, after);
                assert!(!scan.torn);
                assert_eq!(scan.records.first().unwrap().lsn, after + 1);
                after = l1;
            }
            other => panic!("unexpected shipments at {after}: {other:?}"),
        }
    }
    assert!(
        store.tail_cache_hits() > 0,
        "the repeat fetches must have been served from the offset cache"
    );
}

#[test]
fn sequential_tailing_seeks_after_the_first_scan() {
    let dir = TempDir::new("tail-cache-seq");
    let store = open(&dir);
    let id = store.insert(corpus::figure1::goddag()).unwrap();

    // A tailing follower: appends interleave with fetches; every fetch
    // after the first starts exactly where the previous slice ended, so
    // every one of them is a cache hit.
    let mut applied = 0u64;
    let mut lsns = Vec::new();
    for round in 0..30 {
        for i in 0..5 {
            store
                .edit(id, EditOp::InsertText { offset: 0, text: format!("r{round}.{i} ") })
                .unwrap();
        }
        loop {
            match store.wal_tail(applied, 512).unwrap() {
                TailShipment::CaughtUp => break,
                TailShipment::Records { first, last, bytes } => {
                    assert_eq!(first, applied + 1);
                    let scan = scan_batch(&bytes, applied);
                    assert!(!scan.torn);
                    lsns.extend(scan.records.iter().map(|r| r.lsn));
                    applied = last;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }
    let head = store.last_lsn();
    assert_eq!(lsns, (1..=head).collect::<Vec<_>>(), "no gaps, no duplicates");
    // Only the very first fetch had no position to reuse.
    assert!(
        store.tail_cache_hits() >= 30,
        "steady-state fetches must seek, got {} hits",
        store.tail_cache_hits()
    );
}

#[test]
fn rotation_invalidates_the_cache_without_corrupting_fetches() {
    let dir = TempDir::new("tail-cache-rotate");
    let store = open(&dir);
    let id = store.insert(corpus::figure1::goddag()).unwrap();
    for i in 0..10 {
        store.edit(id, EditOp::InsertText { offset: 0, text: format!("a{i} ") }).unwrap();
    }
    // Prime the cache at the head region.
    let (last, _) = fetch(&store, 5);
    assert_eq!(last, store.last_lsn());

    // First checkpoint: no previous generation, so nothing is retired yet,
    // but a second one rewrites the file and shifts every offset.
    store.checkpoint().unwrap();
    for i in 0..10 {
        store.edit(id, EditOp::InsertText { offset: 0, text: format!("b{i} ") }).unwrap();
    }
    store.checkpoint().unwrap();
    for i in 0..10 {
        store.edit(id, EditOp::InsertText { offset: 0, text: format!("c{i} ") }).unwrap();
    }

    // A fetch at the pre-rotation position: the records were retired, and
    // the stale cached offset must not fake them back into existence.
    assert!(matches!(store.wal_tail(5, usize::MAX).unwrap(), TailShipment::SnapshotNeeded));

    // A fetch within the retained tail is correct and re-primes the cache.
    let floor = store.recovery().snapshot_lsn.unwrap_or(0);
    let retained_from = 11; // first checkpoint's lsn: retained as fallback generation
    assert!(retained_from > floor || floor == 0);
    let (last, bytes) = fetch(&store, retained_from);
    assert_eq!(last, store.last_lsn());
    let scan = scan_batch(&bytes, retained_from);
    assert!(!scan.torn);
    assert_eq!(scan.records.last().unwrap().lsn, store.last_lsn());
    let hits = store.tail_cache_hits();
    let (last2, bytes2) = fetch(&store, retained_from);
    assert_eq!((last, &bytes), (last2, &bytes2));
    assert_eq!(store.tail_cache_hits(), hits + 1, "re-primed after rotation");
}

#[test]
fn unbind_name_is_durable_and_replayable() {
    // The new UnbindName record end-to-end: logged, recovered, and
    // shippable through wal_tail like any other record.
    let dir = TempDir::new("unbind");
    {
        let store = open(&dir);
        let a = store.insert_named("ms", corpus::figure1::goddag()).unwrap();
        store.bind_name("alias", a).unwrap();
        assert_eq!(store.unbind_name("ms").unwrap(), Some(a));
        assert_eq!(store.unbind_name("ms").unwrap(), None, "second unbind logs nothing");
        store.sync().unwrap();
    }
    let store = open(&dir);
    let a = store.store().id_by_name("alias").unwrap();
    assert!(store.store().id_by_name("ms").is_err(), "unbind survived the restart");
    assert!(store.store().contains(a), "the document itself survived");
    // And across a checkpointed restart too.
    store.checkpoint().unwrap();
    drop(store);
    let store = open(&dir);
    assert!(store.store().id_by_name("ms").is_err());
    assert_eq!(store.store().name_bindings().len(), 1);
}
