//! cxfault — a dependency-free, deterministic failpoint registry.
//!
//! Production code names its fragile seams (`cxfault::fire("wal.append")`
//! at the top of the WAL append path, `io_check("wal.fsync")` before the
//! real fsync); tests arm those sites with a [`Trigger`] policy and a
//! [`Fault`] action, then drive ordinary workloads and watch the stack
//! absorb the failures. Nothing here is probabilistic unless asked:
//! [`Trigger::Nth`] and [`Trigger::EveryN`] count hits, and
//! [`Trigger::Probability`] draws from a per-site splitmix64 stream
//! seeded at configure time, so a fault schedule replays identically
//! run after run.
//!
//! # Cost when idle
//!
//! The fast path of [`fire`] is one relaxed atomic load of the armed-site
//! count; with nothing configured that is a fraction of a nanosecond of
//! straight-line code and no lock. Compiling with the `off` feature goes
//! further and turns every entry point into a constant no-op the
//! optimizer deletes entirely.
//!
//! # Test isolation
//!
//! The registry is global (sites are reached from arbitrary call depths;
//! threading a handle through every layer would defeat the point), so
//! concurrently running tests would trample each other's schedules.
//! [`Scenario::setup`] takes a process-wide lock and clears the registry
//! on both entry and drop — every test that arms failpoints starts with
//! `let _fp = cxfault::Scenario::setup();` and runs serialized against
//! other such tests, while fault-free tests proceed unaffected (their
//! `fire` calls never leave the fast path).

// With `off` the registry internals are compiled out but their
// definitions remain for the inert API stubs.
#![cfg_attr(feature = "off", allow(dead_code, unused_imports))]

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Duration;

/// The splitmix64 PRNG step — tiny, seedable, and good enough for fault
/// schedules and jitter. Public because dependents (backoff jitter, test
/// schedules) want the same deterministic stream without a rand crate.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// When an armed site actually fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Trigger {
    /// Every hit fires.
    Always,
    /// Exactly the n-th hit (1-based) fires, once.
    Nth(u64),
    /// Every n-th hit fires (n=3 → hits 3, 6, 9, …).
    EveryN(u64),
    /// Each hit fires with probability `p`, drawn from the site's seeded
    /// splitmix64 stream — deterministic for a fixed seed and hit order.
    Probability(f64),
}

/// What a firing site does to its caller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// Report an injected I/O failure (ENOSPC-style: the operation did
    /// not happen).
    Io,
    /// Report a torn write: the caller should persist only the given
    /// fraction (0.0–1.0) of its payload, then fail.
    TornWrite(f64),
    /// Sleep for the duration, then proceed normally — a slow disk or
    /// congested peer, not a broken one.
    Delay(Duration),
    /// Panic at the site (poisons locks held across it — the cascade the
    /// poison-tolerant guards must absorb).
    Panic,
}

/// What [`fire`] asks the call site to do. `Delay` and `Panic` are
/// executed inside [`fire`] itself, so sites only ever see the two
/// faults that need site-specific handling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InjectedFault {
    /// Fail the operation with an injected I/O error ([`io_error`]
    /// builds a consistent one).
    Io,
    /// Write only this fraction of the payload, then fail.
    Torn(f64),
}

struct Site {
    trigger: Trigger,
    fault: Fault,
    /// splitmix64 state for `Probability` draws.
    rng: u64,
    hits: u64,
    fires: u64,
}

/// Hit/fire counts for one configured site (see [`site_stats`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteStats {
    pub site: String,
    pub hits: u64,
    pub fires: u64,
}

/// Number of armed sites — the [`fire`] fast path checks only this.
static ARMED: AtomicUsize = AtomicUsize::new(0);

fn registry() -> &'static Mutex<HashMap<String, Site>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, Site>>> = OnceLock::new();
    REGISTRY.get_or_init(Mutex::default)
}

fn lock_registry() -> MutexGuard<'static, HashMap<String, Site>> {
    // Poison recovery: a panic while holding the registry lock (only
    // possible through Fault::Panic, which fires after the guard is
    // dropped, or a caller panicking mid-configure) leaves plain counters
    // — safe to reuse.
    registry().lock().unwrap_or_else(PoisonError::into_inner)
}

/// Arm `site` with a default seed. See [`configure_seeded`].
pub fn configure(site: impl Into<String>, trigger: Trigger, fault: Fault) {
    configure_seeded(site, trigger, fault, 0xc0ffee);
}

/// Arm `site`: subsequent [`fire`] calls at that site evaluate `trigger`
/// and, when due, perform `fault`. `seed` feeds the site's private
/// splitmix64 stream (only `Trigger::Probability` draws from it); the
/// site name is folded in so two sites armed with the same seed still
/// see independent streams. Re-configuring a site resets its counters.
#[cfg_attr(feature = "off", allow(unused_variables))]
pub fn configure_seeded(site: impl Into<String>, trigger: Trigger, fault: Fault, seed: u64) {
    #[cfg(not(feature = "off"))]
    {
        let name = site.into();
        let mut h = seed;
        for b in name.bytes() {
            h = splitmix64(&mut h) ^ u64::from(b);
        }
        let mut map = lock_registry();
        map.insert(name, Site { trigger, fault, rng: h, hits: 0, fires: 0 });
        ARMED.store(map.len(), Ordering::Release);
    }
}

/// Disarm one site (its counters are discarded).
#[cfg_attr(feature = "off", allow(unused_variables))]
pub fn disarm(site: &str) {
    #[cfg(not(feature = "off"))]
    {
        let mut map = lock_registry();
        map.remove(site);
        ARMED.store(map.len(), Ordering::Release);
    }
}

/// Disarm every site.
pub fn clear() {
    #[cfg(not(feature = "off"))]
    {
        let mut map = lock_registry();
        map.clear();
        ARMED.store(0, Ordering::Release);
    }
}

/// Evaluate the failpoint at `site`. Returns `None` (by far the common
/// case — one relaxed load when nothing is armed) unless the site is
/// armed and its trigger fires, in which case `Delay` sleeps and `Panic`
/// panics right here, while `Io` / `TornWrite` are returned for the call
/// site to enact.
#[cfg(not(feature = "off"))]
#[inline]
pub fn fire(site: &str) -> Option<InjectedFault> {
    if ARMED.load(Ordering::Relaxed) == 0 {
        return None;
    }
    fire_slow(site)
}

/// With the `off` feature: a constant the optimizer erases.
#[cfg(feature = "off")]
#[inline(always)]
pub fn fire(_site: &str) -> Option<InjectedFault> {
    None
}

#[cfg(not(feature = "off"))]
#[cold]
fn fire_slow(site: &str) -> Option<InjectedFault> {
    let fault = {
        let mut map = lock_registry();
        let s = map.get_mut(site)?;
        s.hits += 1;
        let due = match s.trigger {
            Trigger::Always => true,
            Trigger::Nth(n) => s.hits == n,
            Trigger::EveryN(n) => n > 0 && s.hits.is_multiple_of(n),
            Trigger::Probability(p) => (splitmix64(&mut s.rng) as f64 / u64::MAX as f64) < p,
        };
        if !due {
            return None;
        }
        s.fires += 1;
        s.fault
        // Lock released here: Delay must not stall other sites, and
        // Panic must not poison the registry.
    };
    match fault {
        Fault::Io => Some(InjectedFault::Io),
        Fault::TornWrite(frac) => Some(InjectedFault::Torn(frac.clamp(0.0, 1.0))),
        Fault::Delay(d) => {
            std::thread::sleep(d);
            None
        }
        Fault::Panic => panic!("cxfault: injected panic at failpoint `{site}`"),
    }
}

/// The I/O error an injected fault reports — distinguishable in logs by
/// its message, ordinary `io::Error` to everything else (exactly how a
/// real ENOSPC would arrive).
pub fn io_error(site: &str) -> std::io::Error {
    std::io::Error::other(format!("injected fault at failpoint `{site}`"))
}

/// Fire the site and fold any injected fault into an `io::Result` —
/// the one-liner for seams where "torn" and "failed" collapse to the
/// same thing (fsync, rename).
pub fn io_check(site: &str) -> std::io::Result<()> {
    match fire(site) {
        Some(_) => Err(io_error(site)),
        None => Ok(()),
    }
}

/// How many bytes of a `full`-byte payload a torn write should keep:
/// `frac` of them, but always at least one byte short of complete so the
/// tear is real (and never negative).
pub fn torn_len(full: usize, frac: f64) -> usize {
    let keep = (full as f64 * frac.clamp(0.0, 1.0)) as usize;
    keep.min(full.saturating_sub(1))
}

/// Lifetime hit count for `site` (0 if never armed).
pub fn hits(site: &str) -> u64 {
    stat(site).map(|(h, _)| h).unwrap_or(0)
}

/// Lifetime fire count for `site` (0 if never armed).
pub fn fires(site: &str) -> u64 {
    stat(site).map(|(_, f)| f).unwrap_or(0)
}

#[cfg_attr(feature = "off", allow(unused_variables))]
fn stat(site: &str) -> Option<(u64, u64)> {
    #[cfg(feature = "off")]
    return None;
    #[cfg(not(feature = "off"))]
    {
        let map = lock_registry();
        map.get(site).map(|s| (s.hits, s.fires))
    }
}

/// Hit/fire counts for every configured site, sorted by name — the feed
/// for `cx_fault_*` metric exposition.
pub fn site_stats() -> Vec<SiteStats> {
    #[cfg(feature = "off")]
    return Vec::new();
    #[cfg(not(feature = "off"))]
    {
        let map = lock_registry();
        let mut v: Vec<SiteStats> = map
            .iter()
            .map(|(k, s)| SiteStats { site: k.clone(), hits: s.hits, fires: s.fires })
            .collect();
        v.sort_by(|a, b| a.site.cmp(&b.site));
        v
    }
}

static SCENARIO: Mutex<()> = Mutex::new(());

/// Serializes fault-injecting tests and guarantees a clean registry on
/// both entry and exit. Hold it for the test's whole body:
///
/// ```
/// let _fp = cxfault::Scenario::setup();
/// cxfault::configure("wal.append", cxfault::Trigger::Nth(3), cxfault::Fault::Io);
/// // … drive the workload …
/// // drop clears every site even if the test panics first
/// ```
pub struct Scenario {
    _guard: MutexGuard<'static, ()>,
}

impl Scenario {
    /// Take the process-wide fault lock and clear the registry.
    pub fn setup() -> Scenario {
        // A previous test panicking mid-scenario poisons this mutex; the
        // protected state is the (cleared-on-entry) registry, so the
        // guard is safe to reuse.
        let guard = SCENARIO.lock().unwrap_or_else(PoisonError::into_inner);
        clear();
        Scenario { _guard: guard }
    }
}

impl Drop for Scenario {
    fn drop(&mut self) {
        clear();
    }
}

#[cfg(all(test, not(feature = "off")))]
mod tests {
    use super::*;

    #[test]
    fn unarmed_sites_are_silent() {
        let _fp = Scenario::setup();
        assert_eq!(fire("nobody.configured"), None);
        assert_eq!(hits("nobody.configured"), 0);
    }

    #[test]
    fn nth_fires_exactly_once() {
        let _fp = Scenario::setup();
        configure("t.nth", Trigger::Nth(3), Fault::Io);
        let fired: Vec<bool> = (0..6).map(|_| fire("t.nth").is_some()).collect();
        assert_eq!(fired, vec![false, false, true, false, false, false]);
        assert_eq!(hits("t.nth"), 6);
        assert_eq!(fires("t.nth"), 1);
    }

    #[test]
    fn every_n_keeps_cadence() {
        let _fp = Scenario::setup();
        configure("t.cadence", Trigger::EveryN(3), Fault::Io);
        let fired: Vec<bool> = (0..9).map(|_| fire("t.cadence").is_some()).collect();
        assert_eq!(fired, vec![false, false, true, false, false, true, false, false, true]);
    }

    #[test]
    fn probability_replays_identically_for_a_seed() {
        let _fp = Scenario::setup();
        let run = || -> Vec<bool> {
            configure_seeded("t.prob", Trigger::Probability(0.4), Fault::Io, 42);
            (0..64).map(|_| fire("t.prob").is_some()).collect()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seed, same hit order → same schedule");
        let fired = a.iter().filter(|&&f| f).count();
        assert!((10..=40).contains(&fired), "p=0.4 over 64 hits fired {fired} times");
        // A different seed gives a different schedule.
        configure_seeded("t.prob", Trigger::Probability(0.4), Fault::Io, 43);
        let c: Vec<bool> = (0..64).map(|_| fire("t.prob").is_some()).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn torn_write_reports_clamped_fraction() {
        let _fp = Scenario::setup();
        configure("t.torn", Trigger::Always, Fault::TornWrite(1.7));
        assert_eq!(fire("t.torn"), Some(InjectedFault::Torn(1.0)));
        assert_eq!(torn_len(100, 1.0), 99, "a tear always drops at least one byte");
        assert_eq!(torn_len(100, 0.5), 50);
        assert_eq!(torn_len(0, 0.5), 0);
    }

    #[test]
    fn delay_sleeps_then_proceeds() {
        let _fp = Scenario::setup();
        configure("t.delay", Trigger::Always, Fault::Delay(Duration::from_millis(15)));
        let t0 = std::time::Instant::now();
        assert_eq!(fire("t.delay"), None, "delay is transparent to the caller");
        assert!(t0.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn io_check_surfaces_the_site_name() {
        let _fp = Scenario::setup();
        configure("t.sync", Trigger::Always, Fault::Io);
        let err = io_check("t.sync").unwrap_err();
        assert!(err.to_string().contains("t.sync"), "got: {err}");
        assert!(io_check("t.other").is_ok());
    }

    #[test]
    fn stats_enumerate_configured_sites() {
        let _fp = Scenario::setup();
        configure("t.b", Trigger::Always, Fault::Io);
        configure("t.a", Trigger::EveryN(2), Fault::Io);
        fire("t.b");
        fire("t.a");
        let stats = site_stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].site, "t.a");
        assert_eq!(stats[0], SiteStats { site: "t.a".into(), hits: 1, fires: 0 });
        assert_eq!(stats[1], SiteStats { site: "t.b".into(), hits: 1, fires: 1 });
        disarm("t.b");
        assert_eq!(site_stats().len(), 1);
    }

    #[test]
    #[should_panic(expected = "injected panic at failpoint `t.boom`")]
    fn panic_action_panics_at_the_site() {
        let _fp = Scenario::setup();
        configure("t.boom", Trigger::Always, Fault::Panic);
        fire("t.boom");
    }
}
