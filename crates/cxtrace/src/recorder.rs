//! The process-wide flight recorder: bounded retention of finished
//! traces, with slow/error traces held in their own ring so normal
//! churn can never evict them.

use crate::span::SpanRecord;
use cxobs::Exposition;
use std::collections::VecDeque;
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

/// Retention and classification knobs for the flight recorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// How many ordinary completed traces to retain.
    pub retain: usize,
    /// How many slow/error traces to retain (their own ring — ordinary
    /// traffic never evicts them, and they never evict ordinary slots).
    pub retain_slow: usize,
    /// A trace at least this long is classified slow.
    pub slow_threshold: Duration,
    /// Per-trace span cap; spans past it are counted dropped.
    pub max_spans_per_trace: usize,
    /// How many traces may be open (not yet finalized) at once; opening
    /// past the cap evicts the oldest open trace.
    pub max_open: usize,
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig {
            retain: 32,
            retain_slow: 32,
            slow_threshold: Duration::from_millis(100),
            max_spans_per_trace: 512,
            max_open: 64,
        }
    }
}

/// One completed trace as retained by the flight recorder.
#[derive(Debug, Clone, PartialEq)]
pub struct FinishedTrace {
    /// The id shared by every span below.
    pub trace_id: u64,
    /// Every recorded span, in the order thread buffers flushed them.
    pub spans: Vec<SpanRecord>,
    /// Earliest span start, nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// Latest span end minus earliest span start.
    pub duration_ns: u64,
    /// Ran at least [`TraceConfig::slow_threshold`].
    pub slow: bool,
    /// At least one span carries an error annotation.
    pub error: bool,
    /// Spans lost to per-trace or per-thread caps.
    pub dropped_spans: u64,
}

impl FinishedTrace {
    /// The root span: the one with no parent, falling back to the
    /// earliest span when the true root was dropped.
    pub fn root(&self) -> Option<&SpanRecord> {
        self.spans
            .iter()
            .find(|s| s.parent_id == 0)
            .or_else(|| self.spans.iter().min_by_key(|s| s.start_ns))
    }

    fn summary(&self) -> TraceSummary {
        TraceSummary {
            trace_id: self.trace_id,
            root: self.root().map_or("?", |s| s.name),
            start_ns: self.start_ns,
            duration_ns: self.duration_ns,
            spans: self.spans.len(),
            slow: self.slow,
            error: self.error,
        }
    }
}

/// One line of `recent()`/`slow()` output: enough to pick a trace
/// worth fetching in full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSummary {
    /// The id to pass to [`find`].
    pub trace_id: u64,
    /// The root span's name.
    pub root: &'static str,
    /// Earliest span start, nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// Whole-trace wall time.
    pub duration_ns: u64,
    /// Recorded span count.
    pub spans: usize,
    /// Classified slow.
    pub slow: bool,
    /// Holds an error-annotated span.
    pub error: bool,
}

/// Recorder lifetime counters, exposed as `cx_trace_*`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Traces opened (a reopened late fan-out counts again).
    pub started: u64,
    /// Traces finalized.
    pub finished: u64,
    /// Finalized traces classified slow.
    pub slow: u64,
    /// Finalized traces holding an error span.
    pub error: u64,
    /// Spans ingested.
    pub spans: u64,
    /// Spans lost to caps.
    pub dropped_spans: u64,
    /// Open traces evicted before finalizing.
    pub dropped_traces: u64,
    /// Traces currently open.
    pub open: u64,
}

struct OpenTrace {
    trace_id: u64,
    spans: Vec<SpanRecord>,
    open_roots: usize,
    dropped_spans: u64,
}

#[derive(Default)]
struct Recorder {
    cfg: Option<TraceConfig>,
    /// Open traces in arrival order (bounded by `max_open`; linear
    /// scans are fine at that size).
    open: Vec<OpenTrace>,
    normal: VecDeque<FinishedTrace>,
    slow: VecDeque<FinishedTrace>,
    stats: TraceStats,
}

static RECORDER: Mutex<Recorder> = Mutex::new(Recorder {
    cfg: None,
    open: Vec::new(),
    normal: VecDeque::new(),
    slow: VecDeque::new(),
    stats: TraceStats {
        started: 0,
        finished: 0,
        slow: 0,
        error: 0,
        spans: 0,
        dropped_spans: 0,
        dropped_traces: 0,
        open: 0,
    },
});

fn lock() -> MutexGuard<'static, Recorder> {
    // Poison recovery: recorder writers append whole frames / whole trace
    // records, so a panicked holder leaves valid (at worst truncated)
    // flight data — and a recorder that refuses to record after a panic
    // would lose exactly the trace that matters.
    RECORDER.lock().unwrap_or_else(|p| p.into_inner())
}

/// The instant all `start_ns` offsets are measured from.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process trace epoch (monotone).
pub(crate) fn now_ns() -> u64 {
    epoch().elapsed().as_nanos().min(u64::MAX as u128) as u64
}

pub(crate) fn configure(cfg: TraceConfig) {
    let mut r = lock();
    r.cfg = Some(cfg);
    while r.normal.len() > cfg.retain {
        r.normal.pop_front();
    }
    while r.slow.len() > cfg.retain_slow {
        r.slow.pop_front();
    }
}

fn cfg(r: &Recorder) -> TraceConfig {
    r.cfg.unwrap_or_default()
}

/// A thread opened a root span for `trace_id`. Called by the span layer
/// before any of that root's spans can flush.
pub(crate) fn root_opened(trace_id: u64) {
    let mut r = lock();
    if let Some(o) = r.open.iter_mut().find(|o| o.trace_id == trace_id) {
        o.open_roots += 1;
        return;
    }
    let max_open = cfg(&r).max_open;
    while r.open.len() >= max_open {
        r.open.remove(0);
        r.stats.dropped_traces += 1;
    }
    r.open.push(OpenTrace { trace_id, spans: Vec::new(), open_roots: 1, dropped_spans: 0 });
    r.stats.started += 1;
    r.stats.open = r.open.len() as u64;
}

/// A thread's root span for `trace_id` closed: ingest that thread's
/// buffered spans and, when this was the last open root, finalize.
pub(crate) fn root_closed(trace_id: u64, spans: Vec<SpanRecord>, thread_dropped: u64) {
    let mut r = lock();
    let max_spans = cfg(&r).max_spans_per_trace;
    let Some(idx) = r.open.iter().position(|o| o.trace_id == trace_id) else {
        // The open entry was evicted under max_open pressure; the
        // spans have nowhere to land.
        r.stats.dropped_spans += thread_dropped + spans.len() as u64;
        return;
    };
    {
        let o = &mut r.open[idx];
        o.dropped_spans += thread_dropped;
        for s in spans {
            if o.spans.len() < max_spans {
                o.spans.push(s);
            } else {
                o.dropped_spans += 1;
            }
        }
        o.open_roots -= 1;
        if o.open_roots > 0 {
            return;
        }
    }
    let o = r.open.remove(idx);
    r.stats.open = r.open.len() as u64;
    finalize(&mut r, o);
}

fn finalize(r: &mut Recorder, o: OpenTrace) {
    let cfg = cfg(r);
    r.stats.spans += o.spans.len() as u64;
    r.stats.dropped_spans += o.dropped_spans;

    // A late fan-out worker can reopen a trace that already finalized;
    // merge its spans into the retained entry instead of duplicating.
    let merged = take_finished(r, o.trace_id)
        .map(|mut t| {
            t.spans.extend(o.spans.iter().cloned());
            t.dropped_spans += o.dropped_spans;
            t
        })
        .unwrap_or(FinishedTrace {
            trace_id: o.trace_id,
            spans: o.spans,
            start_ns: 0,
            duration_ns: 0,
            slow: false,
            error: false,
            dropped_spans: o.dropped_spans,
        });
    let mut t = merged;
    t.start_ns = t.spans.iter().map(|s| s.start_ns).min().unwrap_or(0);
    let end_ns =
        t.spans.iter().map(|s| s.start_ns.saturating_add(s.duration_ns)).max().unwrap_or(0);
    t.duration_ns = end_ns.saturating_sub(t.start_ns);
    t.slow = t.duration_ns as u128 >= cfg.slow_threshold.as_nanos();
    t.error = t.spans.iter().any(|s| s.error.is_some());

    r.stats.finished += 1;
    if t.slow {
        r.stats.slow += 1;
    }
    if t.error {
        r.stats.error += 1;
    }
    if t.slow || t.error {
        r.slow.push_back(t);
        while r.slow.len() > cfg.retain_slow {
            r.slow.pop_front();
        }
    } else {
        r.normal.push_back(t);
        while r.normal.len() > cfg.retain {
            r.normal.pop_front();
        }
    }
}

/// Remove and return a finished trace from whichever ring holds it.
fn take_finished(r: &mut Recorder, trace_id: u64) -> Option<FinishedTrace> {
    if let Some(i) = r.normal.iter().position(|t| t.trace_id == trace_id) {
        // On merge the recount below replaces the first finalize's
        // contribution; back it out so stats stay per-trace.
        let t = r.normal.remove(i).expect("position just found");
        r.stats.finished -= 1;
        return Some(t);
    }
    if let Some(i) = r.slow.iter().position(|t| t.trace_id == trace_id) {
        let t = r.slow.remove(i).expect("position just found");
        r.stats.finished -= 1;
        if t.slow {
            r.stats.slow -= 1;
        }
        if t.error {
            r.stats.error -= 1;
        }
        return Some(t);
    }
    None
}

/// Summaries of ordinary completed traces, newest first.
pub fn recent() -> Vec<TraceSummary> {
    lock().normal.iter().rev().map(FinishedTrace::summary).collect()
}

/// Summaries of retained slow/error traces, newest first.
pub fn slow() -> Vec<TraceSummary> {
    lock().slow.iter().rev().map(FinishedTrace::summary).collect()
}

/// Fetch one retained trace in full, from either ring.
pub fn find(trace_id: u64) -> Option<FinishedTrace> {
    let r = lock();
    r.normal.iter().chain(r.slow.iter()).find(|t| t.trace_id == trace_id).cloned()
}

/// The recorder's lifetime counters.
pub fn stats() -> TraceStats {
    lock().stats
}

/// Drop every retained and open trace and zero the counters. The
/// configuration (and the enabled switch) are left alone.
pub fn clear() {
    let mut r = lock();
    r.open.clear();
    r.normal.clear();
    r.slow.clear();
    r.stats = TraceStats::default();
}

/// Append the recorder's `cx_trace_*` lines to an exposition page.
pub fn expose_into(out: &mut Exposition) {
    let s = stats();
    out.write("cx_trace_started_total", s.started);
    out.write("cx_trace_finished_total", s.finished);
    out.write("cx_trace_slow_total", s.slow);
    out.write("cx_trace_error_total", s.error);
    out.write("cx_trace_spans_total", s.spans);
    out.write("cx_trace_dropped_spans_total", s.dropped_spans);
    out.write("cx_trace_dropped_traces_total", s.dropped_traces);
    out.write("cx_trace_open", s.open);
}

/// Render a duration with a unit a human scans fast.
pub(crate) fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.3}s", ns as f64 / 1_000_000_000.0)
    }
}

/// Render a finished trace as an indented tree: one line per span with
/// duration, **self-time** (duration minus direct children), attributes
/// and any error annotation. Spans whose parent is missing (remote, or
/// dropped under caps) render at top level.
pub fn render_tree(t: &FinishedTrace) -> String {
    let mut out = format!(
        "trace {:016x}  {}  {} span{}{}{}\n",
        t.trace_id,
        fmt_ns(t.duration_ns),
        t.spans.len(),
        if t.spans.len() == 1 { "" } else { "s" },
        if t.slow { "  SLOW" } else { "" },
        if t.error { "  ERROR" } else { "" },
    );
    // Sort children under each parent by start time for a stable,
    // causally ordered rendering.
    let mut order: Vec<usize> = (0..t.spans.len()).collect();
    order.sort_by_key(|&i| t.spans[i].start_ns);
    let is_local = |id: u64| t.spans.iter().any(|s| s.span_id == id);
    let roots: Vec<usize> =
        order.iter().copied().filter(|&i| !is_local(t.spans[i].parent_id)).collect();
    fn walk(out: &mut String, t: &FinishedTrace, order: &[usize], i: usize, indent: usize) {
        let s = &t.spans[i];
        let child_total: u64 =
            t.spans.iter().filter(|c| c.parent_id == s.span_id).map(|c| c.duration_ns).sum();
        out.push_str(&"  ".repeat(indent));
        out.push_str("- ");
        out.push_str(s.name);
        out.push_str(&format!(
            "  {} (self {})",
            fmt_ns(s.duration_ns),
            fmt_ns(s.duration_ns.saturating_sub(child_total))
        ));
        for (k, v) in &s.attrs {
            out.push_str(&format!("  {k}={v}"));
        }
        if let Some(e) = &s.error {
            out.push_str(&format!("  !error: {e}"));
        }
        out.push('\n');
        for &c in order {
            if t.spans[c].parent_id == s.span_id {
                walk(out, t, order, c, indent + 1);
            }
        }
    }
    for r in roots {
        walk(&mut out, t, &order, r, 0);
    }
    out
}

/// Serializes tests that observe the process-wide recorder, in the
/// `cxfault::Scenario` tradition: `setup()` takes the lock, enables
/// tracing with the given (or default) config on a cleared recorder;
/// dropping it disables tracing and clears again.
pub struct Scenario {
    _guard: MutexGuard<'static, ()>,
}

static SCENARIO: Mutex<()> = Mutex::new(());

impl Scenario {
    /// Begin an exclusive tracing scenario with the default config.
    pub fn setup() -> Scenario {
        Scenario::setup_with(TraceConfig::default())
    }

    /// Begin an exclusive tracing scenario with an explicit config.
    pub fn setup_with(cfg: TraceConfig) -> Scenario {
        // Poison recovery: the scenario mutex carries no data — it only
        // serialises exclusive test scenarios — and `clear()` below resets
        // all recorder state a panicked predecessor may have left.
        let guard = SCENARIO.lock().unwrap_or_else(|p| p.into_inner());
        clear();
        crate::enable_with(cfg);
        Scenario { _guard: guard }
    }
}

impl Drop for Scenario {
    fn drop(&mut self) {
        crate::disable();
        clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{span, span_or_root};
    use std::time::Duration;

    fn burst(name: &'static str) -> u64 {
        let g = span_or_root(name);
        let _ = &g;
        let id = crate::current_trace_id();
        drop(g);
        id
    }

    #[test]
    fn normal_ring_is_bounded_and_newest_first() {
        let _s = Scenario::setup_with(TraceConfig { retain: 3, ..TraceConfig::default() });
        let ids: Vec<u64> = (0..5).map(|_| burst("r")).collect();
        let got: Vec<u64> = recent().iter().map(|s| s.trace_id).collect();
        assert_eq!(got, vec![ids[4], ids[3], ids[2]]);
        assert!(find(ids[0]).is_none(), "evicted from the normal ring");
        assert_eq!(stats().finished, 5);
    }

    #[test]
    fn slow_and_error_traces_survive_normal_churn() {
        let _s = Scenario::setup_with(TraceConfig {
            retain: 2,
            retain_slow: 8,
            slow_threshold: Duration::from_millis(5),
            ..TraceConfig::default()
        });
        let slow_id = {
            let g = span_or_root("slow.request");
            let id = crate::current_trace_id();
            std::thread::sleep(Duration::from_millis(6));
            drop(g);
            id
        };
        let err_id = {
            let g = span_or_root("err.request");
            let id = crate::current_trace_id();
            g.err("injected");
            drop(g);
            id
        };
        // 2× the normal retention of ordinary traffic churns through.
        for _ in 0..4 {
            burst("normal");
        }
        let slow_summaries = slow();
        assert!(slow_summaries.iter().any(|s| s.trace_id == slow_id && s.slow));
        assert!(slow_summaries.iter().any(|s| s.trace_id == err_id && s.error));
        assert!(find(slow_id).is_some());
        assert!(find(err_id).is_some());
        assert_eq!(recent().len(), 2, "normal ring bounded independently");
        let st = stats();
        assert_eq!(st.slow, 1);
        assert_eq!(st.error, 1);
    }

    #[test]
    fn span_cap_counts_drops() {
        let _s =
            Scenario::setup_with(TraceConfig { max_spans_per_trace: 4, ..TraceConfig::default() });
        {
            let _root = span_or_root("big");
            for _ in 0..10 {
                let _c = span("child");
            }
        }
        let t = find(recent()[0].trace_id).unwrap();
        assert_eq!(t.spans.len(), 4);
        assert_eq!(t.dropped_spans, 7, "6 spans past the cap plus the root itself");
        assert_eq!(stats().dropped_spans, 7);
    }

    #[test]
    fn late_fanout_root_merges_into_finished_trace() {
        let _s = Scenario::setup();
        let (tid, ctx) = {
            let _root = span_or_root("main");
            let ctx = crate::current().unwrap();
            (ctx.trace_id, ctx.child())
        };
        // The main root has finalized; a detached worker reports late.
        assert_eq!(find(tid).unwrap().spans.len(), 1);
        {
            let g = crate::start("late.worker", ctx);
            g.attr("shard", 2u64);
        }
        let t = find(tid).expect("still one retained trace");
        assert_eq!(t.spans.len(), 2, "late spans merged, not duplicated");
        assert_eq!(recent().len(), 1);
        assert_eq!(stats().finished, 1, "merge does not double-count");
    }

    #[test]
    fn render_tree_shows_hierarchy_and_self_time() {
        let _s = Scenario::setup();
        {
            let root = span_or_root("serve.request");
            root.attr("verb", "edit");
            {
                let c = span("store.edit");
                c.attr("doc", 7u64);
                let g = span("store.gate");
                g.err("rejected");
            }
        }
        // The gate rejection makes this an error trace → slow ring.
        let t = find(slow()[0].trace_id).unwrap();
        let tree = render_tree(&t);
        let lines: Vec<&str> = tree.lines().collect();
        assert!(lines[0].starts_with("trace "), "{tree}");
        assert!(lines[0].contains("3 spans"), "{tree}");
        assert!(lines[0].contains("ERROR"), "{tree}");
        assert!(lines.iter().any(|l| l.starts_with("- serve.request") && l.contains("verb=edit")));
        assert!(lines.iter().any(|l| l.starts_with("  - store.edit") && l.contains("doc=7")));
        assert!(lines
            .iter()
            .any(|l| l.starts_with("    - store.gate") && l.contains("!error: rejected")));
        assert!(tree.contains("(self "));
    }

    #[test]
    fn exposition_lines_are_complete() {
        let _s = Scenario::setup();
        burst("x");
        let mut out = Exposition::new();
        expose_into(&mut out);
        let text = out.finish();
        for name in [
            "cx_trace_started_total 1",
            "cx_trace_finished_total 1",
            "cx_trace_slow_total 0",
            "cx_trace_error_total 0",
            "cx_trace_spans_total 1",
            "cx_trace_dropped_spans_total 0",
            "cx_trace_dropped_traces_total 0",
            "cx_trace_open 0",
        ] {
            assert!(text.contains(name), "missing {name} in:\n{text}");
        }
    }

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(950), "950ns");
        assert_eq!(fmt_ns(1_500), "1.5µs");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(1_234_000_000), "1.234s");
    }
}
