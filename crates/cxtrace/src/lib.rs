//! # cxtrace — end-to-end request tracing for the whole stack
//!
//! `cxobs` answers *how slow is the p99*; this crate answers *why was
//! this request slow*: one wire request yields one causal tree of
//! [`SpanRecord`]s crossing client → server handler → cluster router →
//! shard store → prevalidation gate → WAL append, with per-span
//! durations, typed attributes (`doc`, `shard`, `verb`, `lsn`, …) and
//! error annotations.
//!
//! Design, in the `cxobs`/`cxfault` tradition:
//!
//! * **Off by default, one relaxed load when off.** Tracing is a
//!   process-wide switch ([`enable`]/[`disable`]); every [`span`] call
//!   on a disabled process is a single relaxed atomic load returning an
//!   inert guard — cheap enough to leave in the hot paths of `cxstore`
//!   and `cxpersist` permanently (the `perf_smoke` guard pins it).
//! * **Contexts, not globals, cross threads and machines.** A
//!   [`TraceContext`] is three ids minted from the same seeded
//!   splitmix64 stream `cxfault` uses. Within a thread, child spans
//!   attach implicitly to the innermost active span; across threads
//!   (cluster fan-out workers) and across the wire (the `cxq1` trace
//!   token) the context travels explicitly and is re-adopted with
//!   [`start`].
//! * **Per-thread buffers, one bounded flight recorder.** Finished
//!   spans accumulate in a thread-local buffer and are flushed to the
//!   process-wide recorder once per thread-root span — one short mutex
//!   per request per thread, never per span. The recorder retains the
//!   last N completed traces *plus* every trace that ran slower than
//!   the configured threshold or ended in an error; slow/error traces
//!   live in their own ring, so normal churn can never evict them
//!   (and they never evict normal traces' ring slots either — both
//!   rings are independently bounded).
//!
//! ```
//! cxtrace::enable();
//! {
//!     let root = cxtrace::span_or_root("serve.request");
//!     root.attr("verb", "edit");
//!     {
//!         let child = cxtrace::span("store.edit");
//!         child.attr("doc", 7u64);
//!     }
//! }
//! let traces = cxtrace::recent();
//! assert_eq!(traces.len(), 1);
//! let tree = cxtrace::find(traces[0].trace_id).unwrap();
//! assert_eq!(tree.spans.len(), 2);
//! cxtrace::disable();
//! ```

mod context;
mod recorder;
mod span;

pub use context::{seed, TraceContext};
pub use recorder::{
    clear, expose_into, find, recent, render_tree, slow, stats, FinishedTrace, Scenario,
    TraceConfig, TraceStats, TraceSummary,
};
pub use span::{
    adopt, current, current_trace_id, disable, enable, enable_with, enabled, span, span_or_root,
    start, AttrValue, SpanGuard, SpanRecord,
};
