//! The span machinery: a process-wide switch, a per-thread span stack,
//! and RAII guards that record on drop.

use crate::context::TraceContext;
use crate::recorder::{self, TraceConfig};
use std::cell::RefCell;
use std::fmt;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// The process-wide switch. Off (the default) makes every tracing call
/// a single relaxed load returning an inert guard.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Hard cap on finished spans buffered per thread while a root is open
/// (a runaway loop inside one request drops span records, never memory).
const THREAD_BUF_CAP: usize = 4096;

/// Whether tracing is on for this process.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn tracing on with the default [`TraceConfig`].
pub fn enable() {
    enable_with(TraceConfig::default());
}

/// Turn tracing on with an explicit retention/threshold configuration.
pub fn enable_with(cfg: TraceConfig) {
    recorder::configure(cfg);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turn tracing off. Spans already open finish and record normally —
/// the switch gates span *creation*, so no guard is ever orphaned.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// One typed span attribute value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttrValue {
    /// An unsigned quantity (ids, counts, epochs, LSNs).
    U64(u64),
    /// A signed quantity.
    I64(i64),
    /// A flag.
    Bool(bool),
    /// Free-form text (verbs, names).
    Str(String),
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::U64(v) => write!(f, "{v}"),
            AttrValue::I64(v) => write!(f, "{v}"),
            AttrValue::Bool(v) => write!(f, "{v}"),
            AttrValue::Str(v) => write!(f, "{v}"),
        }
    }
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> AttrValue {
        AttrValue::U64(v)
    }
}

impl From<usize> for AttrValue {
    fn from(v: usize) -> AttrValue {
        AttrValue::U64(v as u64)
    }
}

impl From<u32> for AttrValue {
    fn from(v: u32) -> AttrValue {
        AttrValue::U64(u64::from(v))
    }
}

impl From<i64> for AttrValue {
    fn from(v: i64) -> AttrValue {
        AttrValue::I64(v)
    }
}

impl From<bool> for AttrValue {
    fn from(v: bool) -> AttrValue {
        AttrValue::Bool(v)
    }
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> AttrValue {
        AttrValue::Str(v.to_string())
    }
}

impl From<String> for AttrValue {
    fn from(v: String) -> AttrValue {
        AttrValue::Str(v)
    }
}

/// One finished span as the flight recorder keeps it.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// The trace this span belongs to.
    pub trace_id: u64,
    /// This span's id.
    pub span_id: u64,
    /// The parent span (0 = a root, or a remote parent on the far side
    /// of the wire).
    pub parent_id: u64,
    /// What this span measures (`"serve.request"`, `"wal.append"`, …).
    pub name: &'static str,
    /// Start offset in nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// How long the span ran.
    pub duration_ns: u64,
    /// Typed key/value annotations (`doc`, `shard`, `verb`, `lsn`, …).
    pub attrs: Vec<(&'static str, AttrValue)>,
    /// The error annotation, if the span ended in one.
    pub error: Option<String>,
}

/// One open span on this thread's stack.
struct Frame {
    ctx: TraceContext,
    name: &'static str,
    start: Instant,
    start_ns: u64,
    attrs: Vec<(&'static str, AttrValue)>,
    error: Option<String>,
    /// Bottom-of-stack for this thread: closing it flushes the thread
    /// buffer to the process-wide recorder.
    root: bool,
}

#[derive(Default)]
struct ThreadState {
    stack: Vec<Frame>,
    buf: Vec<SpanRecord>,
    buf_dropped: u64,
}

thread_local! {
    static ACTIVE: RefCell<ThreadState> = RefCell::default();
}

/// RAII handle for one span: annotate it with [`SpanGuard::attr`] /
/// [`SpanGuard::err`]; dropping it records the span. Deliberately
/// `!Send` — a span lives and dies on the thread that opened it
/// (contexts, not guards, cross threads).
#[derive(Debug)]
pub struct SpanGuard {
    /// Index of this span's frame on the thread stack; `None` for the
    /// inert guard a disabled process (or an idle thread) hands out.
    depth: Option<usize>,
    _not_send: PhantomData<*const ()>,
}

impl SpanGuard {
    const NOOP: SpanGuard = SpanGuard { depth: None, _not_send: PhantomData };

    /// Whether this guard records anything.
    pub fn is_recording(&self) -> bool {
        self.depth.is_some()
    }

    /// Attach a typed attribute.
    pub fn attr(&self, key: &'static str, value: impl Into<AttrValue>) {
        let Some(d) = self.depth else { return };
        ACTIVE.with(|s| {
            if let Some(f) = s.borrow_mut().stack.get_mut(d) {
                f.attrs.push((key, value.into()));
            }
        });
    }

    /// Annotate the span as having ended in an error. A trace holding
    /// any error-annotated span is retained preferentially.
    pub fn err(&self, msg: impl Into<String>) {
        let Some(d) = self.depth else { return };
        ACTIVE.with(|s| {
            if let Some(f) = s.borrow_mut().stack.get_mut(d) {
                f.error = Some(msg.into());
            }
        });
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(d) = self.depth else { return };
        // Collect under the thread-local borrow; talk to the recorder
        // only after releasing it.
        let flush = ACTIVE.with(|s| {
            let mut s = s.borrow_mut();
            // Stack discipline is guaranteed by guard scoping; popping
            // down to `d` is pure defense against a mem::forget'ed guard.
            let mut flushed = None;
            while s.stack.len() > d {
                let f = s.stack.pop().expect("stack checked non-empty");
                let rec = SpanRecord {
                    trace_id: f.ctx.trace_id,
                    span_id: f.ctx.span_id,
                    parent_id: f.ctx.parent_id,
                    name: f.name,
                    start_ns: f.start_ns,
                    duration_ns: f.start.elapsed().as_nanos().min(u64::MAX as u128) as u64,
                    attrs: f.attrs,
                    error: f.error,
                };
                if f.root {
                    let mut spans = std::mem::take(&mut s.buf);
                    spans.push(rec);
                    flushed = Some((f.ctx.trace_id, spans, std::mem::take(&mut s.buf_dropped)));
                } else if s.buf.len() < THREAD_BUF_CAP {
                    s.buf.push(rec);
                } else {
                    s.buf_dropped += 1;
                }
            }
            flushed
        });
        if let Some((trace_id, spans, dropped)) = flush {
            recorder::root_closed(trace_id, spans, dropped);
        }
    }
}

fn push_frame(name: &'static str, ctx: TraceContext, root: bool) -> SpanGuard {
    let start_ns = recorder::now_ns();
    let depth = ACTIVE.with(|s| {
        let mut s = s.borrow_mut();
        let d = s.stack.len();
        s.stack.push(Frame {
            ctx,
            name,
            start: Instant::now(),
            start_ns,
            attrs: Vec::new(),
            error: None,
            root,
        });
        d
    });
    if root {
        recorder::root_opened(ctx.trace_id);
    }
    SpanGuard { depth: Some(depth), _not_send: PhantomData }
}

/// Open a span under an explicit context — how a thread *adopts* a
/// trace that originated elsewhere: a server handler adopting the wire
/// token's child, a fan-out worker adopting the child context its
/// spawner minted. If this thread has no active span, the new span
/// becomes the thread root (its completion flushes the thread buffer).
pub fn start(name: &'static str, ctx: TraceContext) -> SpanGuard {
    if !enabled() {
        return SpanGuard::NOOP;
    }
    let root = ACTIVE.with(|s| s.borrow().stack.is_empty());
    push_frame(name, ctx, root)
}

/// Open a child span of this thread's innermost active span. The inert
/// no-op when tracing is off *or* no trace is active on this thread —
/// which is what lets `cxstore`/`cxpersist` hot paths call this
/// unconditionally.
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard::NOOP;
    }
    let ctx = ACTIVE.with(|s| s.borrow().stack.last().map(|f| f.ctx.child()));
    match ctx {
        Some(ctx) => push_frame(name, ctx, false),
        None => SpanGuard::NOOP,
    }
}

/// [`start`] when a context is present, the inert guard otherwise —
/// the fan-out worker pattern: the spawner mints `parent.child()` (or
/// `None` when untraced) and the worker adopts it unconditionally.
pub fn adopt(name: &'static str, ctx: Option<TraceContext>) -> SpanGuard {
    match ctx {
        Some(c) => start(name, c),
        None => SpanGuard::NOOP,
    }
}

/// A child span when a trace is active, a fresh root when none is —
/// the entry points (client calls, server handlers) use this to mint
/// traces lazily.
pub fn span_or_root(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard::NOOP;
    }
    let ctx = ACTIVE.with(|s| s.borrow().stack.last().map(|f| f.ctx.child()));
    match ctx {
        Some(ctx) => push_frame(name, ctx, false),
        None => push_frame(name, TraceContext::mint(), true),
    }
}

/// The context of this thread's innermost active span — what a caller
/// propagates (as [`TraceContext::child`] or a wire token) to keep the
/// tree connected across a boundary. `None` when idle or disabled.
pub fn current() -> Option<TraceContext> {
    if !enabled() {
        return None;
    }
    ACTIVE.with(|s| s.borrow().stack.last().map(|f| f.ctx))
}

/// The active trace id, 0 when none — the tag latency histograms store
/// as their per-bucket exemplar.
pub fn current_trace_id() -> u64 {
    if !enabled() {
        return 0;
    }
    ACTIVE.with(|s| s.borrow().stack.last().map_or(0, |f| f.ctx.trace_id))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_everything_is_inert() {
        // Scenario-free: relies on the default-off switch, so it must
        // not observe recorder state other tests could touch.
        if enabled() {
            return; // another test holds the scenario; nothing to check
        }
        let g = span("x");
        assert!(!g.is_recording());
        assert!(current().is_none());
        assert_eq!(current_trace_id(), 0);
        assert!(!span_or_root("y").is_recording());
    }

    #[test]
    fn spans_nest_and_flush_once_per_root() {
        let _s = crate::Scenario::setup();
        {
            let root = span_or_root("root");
            assert!(root.is_recording());
            let tid = current_trace_id();
            assert_ne!(tid, 0);
            {
                let child = span("child");
                child.attr("doc", 7u64);
                child.err("boom");
                assert_eq!(current_trace_id(), tid, "children share the trace");
            }
            assert!(crate::slow().is_empty(), "nothing recorded before the root closes");
        }
        // The error annotation classifies the whole trace into the
        // preferentially retained slow/error ring.
        assert!(crate::recent().is_empty());
        let traces = crate::slow();
        assert_eq!(traces.len(), 1);
        let t = crate::find(traces[0].trace_id).unwrap();
        assert_eq!(t.spans.len(), 2);
        let child = t.spans.iter().find(|s| s.name == "child").unwrap();
        let root = t.spans.iter().find(|s| s.name == "root").unwrap();
        assert_eq!(child.parent_id, root.span_id);
        assert_eq!(root.parent_id, 0);
        assert_eq!(child.attrs, vec![("doc", AttrValue::U64(7))]);
        assert_eq!(child.error.as_deref(), Some("boom"));
        assert!(t.error, "an error span marks the whole trace");
    }

    #[test]
    fn adopted_contexts_cross_threads() {
        let _s = crate::Scenario::setup();
        let tid;
        {
            let _root = span_or_root("fanout");
            let parent = current().unwrap();
            tid = parent.trace_id;
            std::thread::scope(|scope| {
                for shard in 0..3u64 {
                    let ctx = parent.child();
                    scope.spawn(move || {
                        let g = start("worker", ctx);
                        g.attr("shard", shard);
                    });
                }
            });
        }
        let t = crate::find(tid).expect("trace finalized after all roots closed");
        assert_eq!(t.spans.len(), 4);
        let root_span = t.spans.iter().find(|s| s.name == "fanout").unwrap();
        let workers: Vec<_> = t.spans.iter().filter(|s| s.name == "worker").collect();
        assert_eq!(workers.len(), 3);
        assert!(workers.iter().all(|w| w.parent_id == root_span.span_id));
    }
}
