//! Trace identity: three ids and the wire token that carries them.

use std::sync::atomic::{AtomicU64, Ordering};

/// The splitmix64 increment — advancing the shared state by one gamma
/// per id keeps the atomic stream equivalent to calling
/// [`cxfault::splitmix64`] on a single mutable state.
const GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

/// The seeded id stream. The default seed is arbitrary but fixed, so a
/// freshly seeded process mints a reproducible id sequence — the same
/// determinism contract `cxfault`'s probability triggers offer.
static STATE: AtomicU64 = AtomicU64::new(0xc0de_d0c5_0000_0001);

/// Re-seed the process-wide id stream (deterministic tests).
pub fn seed(s: u64) {
    STATE.store(s, Ordering::Relaxed);
}

fn next_id() -> u64 {
    loop {
        // `fetch_add(GAMMA)` hands each caller a distinct pre-state;
        // mixing a copy through `splitmix64` reproduces the sequential
        // stream without a lock. Ids must be nonzero (0 means "none").
        let mut s = STATE.fetch_add(GAMMA, Ordering::Relaxed);
        let id = cxfault::splitmix64(&mut s);
        if id != 0 {
            return id;
        }
    }
}

/// The identity a span carries and the wire propagates: which trace
/// this is (`trace_id`), which span (`span_id`), and whose child
/// (`parent_id`, 0 for a root).
///
/// On the wire the context rides as the token `tc
/// <trace_id>-<span_id>` appended to a `cxq1` request line; the
/// receiver adopts it by starting its handler span as a *child*
/// ([`TraceContext::child`]) of the carried span, which is what makes
/// one query render as one tree spanning both processes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// The trace every span of one request shares.
    pub trace_id: u64,
    /// This span.
    pub span_id: u64,
    /// The span this one hangs under (0 = root).
    pub parent_id: u64,
}

impl TraceContext {
    /// Mint a fresh root context (new trace, new span, no parent).
    pub fn mint() -> TraceContext {
        TraceContext { trace_id: next_id(), span_id: next_id(), parent_id: 0 }
    }

    /// A child context: same trace, fresh span id, parented here.
    pub fn child(&self) -> TraceContext {
        TraceContext { trace_id: self.trace_id, span_id: next_id(), parent_id: self.span_id }
    }

    /// The wire token: `<trace_id>-<span_id>` in fixed-width hex
    /// (the parent is implicit — a receiver always adopts a child).
    pub fn token(&self) -> String {
        format!("{:016x}-{:016x}", self.trace_id, self.span_id)
    }

    /// Parse a wire token. `None` on anything malformed — propagation
    /// is best-effort and a bad token must never fail the request.
    pub fn parse_token(tok: &str) -> Option<TraceContext> {
        let (t, s) = tok.split_once('-')?;
        let trace_id = u64::from_str_radix(t, 16).ok()?;
        let span_id = u64::from_str_radix(s, 16).ok()?;
        if trace_id == 0 || span_id == 0 {
            return None;
        }
        Some(TraceContext { trace_id, span_id, parent_id: 0 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minted_ids_are_nonzero_and_distinct() {
        let a = TraceContext::mint();
        let b = TraceContext::mint();
        assert_ne!(a.trace_id, 0);
        assert_ne!(a.span_id, 0);
        assert_ne!(a.trace_id, b.trace_id);
        assert_eq!(a.parent_id, 0);
    }

    #[test]
    fn child_keeps_trace_and_links_parent() {
        let root = TraceContext::mint();
        let child = root.child();
        assert_eq!(child.trace_id, root.trace_id);
        assert_eq!(child.parent_id, root.span_id);
        assert_ne!(child.span_id, root.span_id);
    }

    #[test]
    fn token_round_trips() {
        let c = TraceContext::mint().child();
        let parsed = TraceContext::parse_token(&c.token()).unwrap();
        assert_eq!(parsed.trace_id, c.trace_id);
        assert_eq!(parsed.span_id, c.span_id);
        // The parent is deliberately not carried: the receiver adopts a
        // child of the carried span, never the span itself.
        assert_eq!(parsed.parent_id, 0);
    }

    #[test]
    fn malformed_tokens_parse_to_none() {
        for bad in ["", "zz", "12", "12-", "-12", "12-zz", "0-1", "1-0", "1-2-3x"] {
            assert!(TraceContext::parse_token(bad).is_none(), "{bad:?}");
        }
    }

    #[test]
    fn seeded_stream_is_reproducible() {
        seed(42);
        let a = (TraceContext::mint(), TraceContext::mint());
        seed(42);
        let b = (TraceContext::mint(), TraceContext::mint());
        assert_eq!(a, b);
    }
}
