//! Hierarchy filtering: project a multihierarchical document onto a subset
//! of its hierarchies (paper §4, *Document manipulation*: "the filtering
//! feature for partially viewing and/or exporting a subset of document
//! encodings").

use goddag::{Goddag, GoddagBuilder, HierarchyId, RangeSpec};
use sacx::{Result, SacxError};

/// Build a new GODDAG containing only the selected hierarchies (content and
/// root are preserved; hierarchy ids are renumbered in `keep` order).
pub fn filter_hierarchies(g: &Goddag, keep: &[HierarchyId]) -> Result<Goddag> {
    for &h in keep {
        g.hierarchy(h).map_err(SacxError::Goddag)?;
    }
    let mut b = GoddagBuilder::new(g.name(g.root()).expect("root is named").clone());
    b.root_attrs(g.attrs(g.root()).to_vec());
    b.content(g.content());
    for (new_idx, &h) in keep.iter().enumerate() {
        let _ = new_idx;
        let name = g.hierarchy(h).map_err(SacxError::Goddag)?.name.clone();
        let nh = b.hierarchy(name);
        let mut elems: Vec<_> = g.elements_in(h).collect();
        elems.sort_by_key(|&e| g.doc_order_key(e));
        for e in elems {
            let (start, end) = g.char_range(e);
            b.range_spec(RangeSpec {
                hierarchy: nh,
                name: g.name(e).expect("elements are named").clone(),
                attrs: g.attrs(e).to_vec(),
                start,
                end,
            });
        }
    }
    b.finish().map_err(SacxError::Goddag)
}

/// Export only the selected hierarchies as distributed documents.
pub fn export_filtered(g: &Goddag, keep: &[HierarchyId]) -> Result<Vec<(String, String)>> {
    let filtered = filter_hierarchies(g, keep)?;
    sacx::export_distributed(&filtered)
}

#[cfg(test)]
mod tests {
    use super::*;
    use goddag::check_invariants;

    fn sample() -> Goddag {
        sacx::parse_distributed(&[
            ("phys", "<r><line>ab cd</line> <line>ef</line></r>"),
            ("ling", "<r><w>ab</w> <s>cd ef</s></r>"),
            ("edit", "<r>a<dmg>b cd e</dmg>f</r>"),
        ])
        .unwrap()
    }

    #[test]
    fn filter_keeps_selected_only() {
        let g = sample();
        let phys = g.hierarchy_by_name("phys").unwrap();
        let ling = g.hierarchy_by_name("ling").unwrap();
        let f = filter_hierarchies(&g, &[phys, ling]).unwrap();
        check_invariants(&f).unwrap();
        assert_eq!(f.hierarchy_count(), 2);
        assert_eq!(f.content(), g.content());
        assert!(f.find_elements("dmg").is_empty());
        assert_eq!(f.find_elements("line").len(), 2);
        assert_eq!(f.find_elements("w").len(), 1);
    }

    #[test]
    fn filter_single_hierarchy_matches_to_xml() {
        let g = sample();
        let phys = g.hierarchy_by_name("phys").unwrap();
        let f = filter_hierarchies(&g, &[phys]).unwrap();
        // Serializing the filtered single hierarchy equals projecting the
        // original.
        assert_eq!(f.to_xml(goddag::HierarchyId(0)).unwrap(), g.to_xml(phys).unwrap());
    }

    #[test]
    fn filter_reorders_hierarchies() {
        let g = sample();
        let ling = g.hierarchy_by_name("ling").unwrap();
        let phys = g.hierarchy_by_name("phys").unwrap();
        let f = filter_hierarchies(&g, &[ling, phys]).unwrap();
        assert_eq!(f.hierarchy(goddag::HierarchyId(0)).unwrap().name, "ling");
        assert_eq!(f.hierarchy(goddag::HierarchyId(1)).unwrap().name, "phys");
    }

    #[test]
    fn filter_unknown_hierarchy_rejected() {
        let g = sample();
        assert!(filter_hierarchies(&g, &[goddag::HierarchyId(99)]).is_err());
    }

    #[test]
    fn leaves_coalesce_in_projection() {
        // Removing a hierarchy with many boundaries reduces the leaf count:
        // the projection rebuilds leaves only at kept boundaries.
        let g = sample();
        let phys = g.hierarchy_by_name("phys").unwrap();
        let f = filter_hierarchies(&g, &[phys]).unwrap();
        assert!(f.leaf_count() <= g.leaf_count());
    }

    #[test]
    fn export_filtered_documents() {
        let g = sample();
        let phys = g.hierarchy_by_name("phys").unwrap();
        let docs = export_filtered(&g, &[phys]).unwrap();
        assert_eq!(docs.len(), 1);
        assert_eq!(docs[0].0, "phys");
        assert!(docs[0].1.contains("<line>"));
    }
}
