//! A replayable command layer over [`Session`].
//!
//! The EPT demo (paper Figure 4) drives the editor through recorded
//! interactions; this module gives the library the same capability: commands
//! are plain data (parsable from a simple text syntax), applied to a
//! session, and loggable for replay — which is also how the editing benches
//! and the `xtagger_session` example stay reproducible.
//!
//! Text syntax, one command per line:
//!
//! ```text
//! insert ling w 0 3 n=1 type=noun
//! remove #12
//! attr #12 type=verb
//! text-insert 7 "swa "
//! text-delete 0 4
//! undo
//! redo
//! ```

use crate::error::{Result, XTaggerError};
use crate::session::Session;
use goddag::NodeId;
use xmlcore::Attribute;

/// One editor command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Insert `<tag>` over `start..end` in the named hierarchy.
    InsertMarkup {
        /// Hierarchy name.
        hierarchy: String,
        /// Element tag.
        tag: String,
        /// Attributes.
        attrs: Vec<(String, String)>,
        /// Byte start.
        start: usize,
        /// Byte end.
        end: usize,
    },
    /// Remove the element with this node id.
    RemoveMarkup {
        /// Arena id of the element.
        node: u32,
    },
    /// Set an attribute on a node.
    SetAttr {
        /// Arena id.
        node: u32,
        /// Attribute name.
        name: String,
        /// Attribute value.
        value: String,
    },
    /// Insert text at an offset.
    InsertText {
        /// Byte offset.
        offset: usize,
        /// The text.
        text: String,
    },
    /// Delete a text range.
    DeleteText {
        /// Byte start.
        start: usize,
        /// Byte end.
        end: usize,
    },
    /// Undo the last command.
    Undo,
    /// Redo the last undone command.
    Redo,
}

/// Outcome of applying one command.
#[derive(Debug, Clone, PartialEq)]
pub enum Applied {
    /// A new element was created.
    Inserted(NodeId),
    /// Nothing to report.
    Done,
    /// Undo/redo replayed this label.
    History(String),
}

impl Command {
    /// Apply the command to a session.
    pub fn apply(&self, session: &mut Session) -> Result<Applied> {
        match self {
            Command::InsertMarkup { hierarchy, tag, attrs, start, end } => {
                let h = session.goddag().hierarchy_by_name(hierarchy).ok_or_else(|| {
                    XTaggerError::Query(format!("unknown hierarchy {hierarchy:?}"))
                })?;
                let attrs: Vec<Attribute> =
                    attrs.iter().map(|(n, v)| Attribute::new(n.as_str(), v.clone())).collect();
                session.insert_markup(h, tag, attrs, *start, *end).map(Applied::Inserted)
            }
            Command::RemoveMarkup { node } => {
                session.remove_markup(NodeId(*node)).map(|()| Applied::Done)
            }
            Command::SetAttr { node, name, value } => {
                session.set_attribute(NodeId(*node), name, value).map(|()| Applied::Done)
            }
            Command::InsertText { offset, text } => {
                session.insert_text(*offset, text).map(|()| Applied::Done)
            }
            Command::DeleteText { start, end } => {
                session.delete_text(*start, *end).map(|()| Applied::Done)
            }
            Command::Undo => session.undo().map(Applied::History),
            Command::Redo => session.redo().map(Applied::History),
        }
    }

    /// Parse one command line (see module docs for the syntax). Empty lines
    /// and `#`-comments yield `None`.
    pub fn parse(line: &str) -> Result<Option<Command>> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return Ok(None);
        }
        let mut parts = Tokenizer::new(line);
        let head = parts.word()?;
        let cmd = match head.as_str() {
            "insert" => {
                let hierarchy = parts.word()?;
                let tag = parts.word()?;
                let start = parts.number()?;
                let end = parts.number()?;
                let mut attrs = Vec::new();
                while let Some(kv) = parts.maybe_word() {
                    let (k, v) = kv.split_once('=').ok_or_else(|| {
                        XTaggerError::Query(format!("bad attribute {kv:?} (want name=value)"))
                    })?;
                    attrs.push((k.to_string(), v.to_string()));
                }
                Command::InsertMarkup { hierarchy, tag, attrs, start, end }
            }
            "remove" => Command::RemoveMarkup { node: parts.node_id()? },
            "attr" => {
                let node = parts.node_id()?;
                let kv = parts.word()?;
                let (k, v) = kv.split_once('=').ok_or_else(|| {
                    XTaggerError::Query(format!("bad attribute {kv:?} (want name=value)"))
                })?;
                Command::SetAttr { node, name: k.to_string(), value: v.to_string() }
            }
            "text-insert" => {
                let offset = parts.number()?;
                let text = parts.quoted()?;
                Command::InsertText { offset, text }
            }
            "text-delete" => {
                let start = parts.number()?;
                let end = parts.number()?;
                Command::DeleteText { start, end }
            }
            "undo" => Command::Undo,
            "redo" => Command::Redo,
            other => {
                return Err(XTaggerError::Query(format!("unknown command {other:?}")));
            }
        };
        Ok(Some(cmd))
    }
}

/// Parse and apply a whole script; returns one [`Applied`] per command.
/// Stops at the first error, reporting the line number.
pub fn run_script(session: &mut Session, script: &str) -> Result<Vec<Applied>> {
    let mut out = Vec::new();
    for (no, line) in script.lines().enumerate() {
        match Command::parse(line) {
            Ok(None) => continue,
            Ok(Some(cmd)) => match cmd.apply(session) {
                Ok(applied) => out.push(applied),
                Err(e) => {
                    return Err(XTaggerError::Query(format!("line {}: {e}", no + 1)));
                }
            },
            Err(e) => return Err(XTaggerError::Query(format!("line {}: {e}", no + 1))),
        }
    }
    Ok(out)
}

/// Minimal whitespace tokenizer with quoted-string support.
struct Tokenizer<'a> {
    rest: &'a str,
}

impl<'a> Tokenizer<'a> {
    fn new(s: &'a str) -> Tokenizer<'a> {
        Tokenizer { rest: s.trim() }
    }

    fn maybe_word(&mut self) -> Option<String> {
        self.rest = self.rest.trim_start();
        if self.rest.is_empty() {
            return None;
        }
        let end = self.rest.find(char::is_whitespace).unwrap_or(self.rest.len());
        let w = self.rest[..end].to_string();
        self.rest = &self.rest[end..];
        Some(w)
    }

    fn word(&mut self) -> Result<String> {
        self.maybe_word().ok_or_else(|| XTaggerError::Query("unexpected end of command".into()))
    }

    fn number(&mut self) -> Result<usize> {
        let w = self.word()?;
        w.parse().map_err(|_| XTaggerError::Query(format!("expected a number, found {w:?}")))
    }

    fn node_id(&mut self) -> Result<u32> {
        let w = self.word()?;
        let w = w.strip_prefix('#').unwrap_or(&w);
        w.parse().map_err(|_| XTaggerError::Query(format!("expected a node id, found {w:?}")))
    }

    fn quoted(&mut self) -> Result<String> {
        self.rest = self.rest.trim_start();
        let Some(stripped) = self.rest.strip_prefix('"') else {
            return self.word();
        };
        let end = stripped
            .find('"')
            .ok_or_else(|| XTaggerError::Query("unterminated quoted string".into()))?;
        let s = stripped[..end].to_string();
        self.rest = &stripped[end + 1..];
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session() -> Session {
        let g = sacx::parse_distributed(&[
            ("phys", "<r>swa hwa swe</r>"),
            ("ling", "<r>swa hwa swe</r>"),
        ])
        .unwrap();
        Session::new(g)
    }

    #[test]
    fn parse_insert_with_attrs() {
        let cmd = Command::parse("insert ling w 0 3 n=1 type=noun").unwrap().unwrap();
        assert_eq!(
            cmd,
            Command::InsertMarkup {
                hierarchy: "ling".into(),
                tag: "w".into(),
                attrs: vec![("n".into(), "1".into()), ("type".into(), "noun".into())],
                start: 0,
                end: 3,
            }
        );
    }

    #[test]
    fn parse_all_forms() {
        assert!(matches!(
            Command::parse("remove #5").unwrap().unwrap(),
            Command::RemoveMarkup { node: 5 }
        ));
        assert!(matches!(
            Command::parse("attr #5 type=verb").unwrap().unwrap(),
            Command::SetAttr { node: 5, .. }
        ));
        assert_eq!(
            Command::parse("text-insert 7 \"swa \"").unwrap().unwrap(),
            Command::InsertText { offset: 7, text: "swa ".into() }
        );
        assert!(matches!(
            Command::parse("text-delete 0 4").unwrap().unwrap(),
            Command::DeleteText { start: 0, end: 4 }
        ));
        assert_eq!(Command::parse("undo").unwrap().unwrap(), Command::Undo);
        assert_eq!(Command::parse("redo").unwrap().unwrap(), Command::Redo);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        assert_eq!(Command::parse("").unwrap(), None);
        assert_eq!(Command::parse("  # note").unwrap(), None);
    }

    #[test]
    fn parse_errors() {
        assert!(Command::parse("frobnicate 1").is_err());
        assert!(Command::parse("insert ling w zero 3").is_err());
        assert!(Command::parse("attr #5 incomplete").is_err());
        assert!(Command::parse("text-insert 7 \"open").is_err());
    }

    #[test]
    fn script_runs_and_edits() {
        let mut s = session();
        let script = r#"
            # tag the first two words
            insert ling w 0 3 n=1
            insert ling w 4 7 n=2
            insert phys line 0 7
            insert ling s 0 11
            undo
        "#;
        let applied = run_script(&mut s, script).unwrap();
        assert_eq!(applied.len(), 5);
        assert!(matches!(applied[0], Applied::Inserted(_)));
        assert!(matches!(applied[4], Applied::History(_)));
        assert_eq!(s.goddag().find_elements("w").len(), 2);
        assert_eq!(s.goddag().find_elements("s").len(), 0); // undone
        assert_eq!(s.goddag().find_elements("line").len(), 1);
    }

    #[test]
    fn script_error_reports_line() {
        let mut s = session();
        let err = run_script(&mut s, "insert ling w 0 3\ninsert nowhere x 0 3").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn replay_through_commands_matches_direct_api() {
        let mut via_script = session();
        run_script(&mut via_script, "insert ling w 0 3 n=1\ninsert phys line 0 7").unwrap();

        let mut direct = session();
        let ling = direct.goddag().hierarchy_by_name("ling").unwrap();
        let phys = direct.goddag().hierarchy_by_name("phys").unwrap();
        direct.insert_markup(ling, "w", vec![Attribute::new("n", "1")], 0, 3).unwrap();
        direct.insert_markup(phys, "line", vec![], 0, 7).unwrap();

        assert_eq!(
            via_script.goddag().to_distributed().unwrap(),
            direct.goddag().to_distributed().unwrap()
        );
    }

    #[test]
    fn remove_and_attr_by_node_id() {
        let mut s = session();
        let applied = run_script(&mut s, "insert ling w 0 3").unwrap();
        let Applied::Inserted(id) = applied[0] else { panic!() };
        run_script(&mut s, &format!("attr #{} type=verb", id.0)).unwrap();
        assert_eq!(s.goddag().attr(id, "type"), Some("verb"));
        run_script(&mut s, &format!("remove #{}", id.0)).unwrap();
        assert!(!s.goddag().is_alive(id));
    }

    #[test]
    fn text_commands() {
        let mut s = session();
        run_script(&mut s, "text-insert 3 \"!\"\ntext-delete 0 2").unwrap();
        assert_eq!(s.goddag().content(), "a! hwa swe");
    }
}
