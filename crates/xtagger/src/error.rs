//! xTagger error types.

use std::fmt;

/// Errors from editing sessions.
#[derive(Debug)]
pub enum XTaggerError {
    /// The prevalidation gate refused the insertion.
    PrevalidationRejected {
        /// The tag that was refused.
        tag: String,
        /// Why.
        reason: String,
    },
    /// Structural error from the GODDAG layer.
    Goddag(goddag::GoddagError),
    /// Import/export error.
    Sacx(sacx::SacxError),
    /// Query error (Extended XPath).
    Query(String),
    /// Undo stack empty.
    NothingToUndo,
    /// Redo stack empty.
    NothingToRedo,
}

impl fmt::Display for XTaggerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XTaggerError::PrevalidationRejected { tag, reason } => {
                write!(f, "prevalidation refused <{tag}>: {reason}")
            }
            XTaggerError::Goddag(e) => write!(f, "{e}"),
            XTaggerError::Sacx(e) => write!(f, "{e}"),
            XTaggerError::Query(e) => write!(f, "query error: {e}"),
            XTaggerError::NothingToUndo => write!(f, "nothing to undo"),
            XTaggerError::NothingToRedo => write!(f, "nothing to redo"),
        }
    }
}

impl std::error::Error for XTaggerError {}

impl From<goddag::GoddagError> for XTaggerError {
    fn from(e: goddag::GoddagError) -> XTaggerError {
        XTaggerError::Goddag(e)
    }
}

impl From<sacx::SacxError> for XTaggerError {
    fn from(e: sacx::SacxError) -> XTaggerError {
        XTaggerError::Sacx(e)
    }
}

/// Result alias for xTagger operations.
pub type Result<T> = std::result::Result<T, XTaggerError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let e = XTaggerError::PrevalidationRejected { tag: "w".into(), reason: "dead end".into() };
        assert!(e.to_string().contains("<w>"));
        assert!(XTaggerError::NothingToUndo.to_string().contains("undo"));
    }
}
