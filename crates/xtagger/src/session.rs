//! An xTagger editing session (paper §4, *Authoring tools*): "xTagger allows
//! users to select a document fragment and choose the appropriate markup for
//! it (from any of the XML hierarchies associated with the document). It
//! implements prevalidation checking, which detects encodings that cannot be
//! extended to valid XML with further markup insertions."
//!
//! The session wraps a [`Goddag`] with:
//! * per-hierarchy prevalidation engines (from the hierarchy DTDs);
//! * a **prevalidation gate**: markup insertions that would create a
//!   content-model dead end are refused before they touch the document;
//! * snapshot-based **undo/redo**;
//! * tag **suggestions** for a selection;
//! * Extended XPath querying of the working document.

use crate::error::{Result, XTaggerError};
use goddag::{Goddag, GoddagError, HierarchyId, NodeId};
use prevalid::{check_hierarchy, check_insertion, suggest_tags, HierarchyReport, PrevalidEngine};
use xmlcore::{Attribute, QName};

/// One undo/redo slot.
struct Snapshot {
    /// What produced this state (for history display).
    label: String,
    goddag: Goddag,
}

/// An interactive editing session over a multihierarchical document.
pub struct Session {
    goddag: Goddag,
    engines: Vec<Option<PrevalidEngine>>,
    undo_stack: Vec<Snapshot>,
    redo_stack: Vec<Snapshot>,
    prevalidation: bool,
    history: Vec<String>,
}

impl Session {
    /// Start a session. Prevalidation engines are compiled from each
    /// hierarchy's DTD (hierarchies without DTDs are unchecked).
    pub fn new(goddag: Goddag) -> Session {
        let engines = goddag
            .hierarchy_ids()
            .map(|h| {
                goddag
                    .hierarchy(h)
                    .expect("iterating live ids")
                    .dtd
                    .clone()
                    .map(PrevalidEngine::new)
            })
            .collect();
        Session {
            goddag,
            engines,
            undo_stack: Vec::new(),
            redo_stack: Vec::new(),
            prevalidation: true,
            history: Vec::new(),
        }
    }

    /// The working document.
    pub fn goddag(&self) -> &Goddag {
        &self.goddag
    }

    /// Consume the session, returning the document.
    pub fn into_goddag(self) -> Goddag {
        self.goddag
    }

    /// Toggle the prevalidation gate (on by default).
    pub fn set_prevalidation(&mut self, on: bool) {
        self.prevalidation = on;
    }

    /// Is the prevalidation gate active?
    pub fn prevalidation(&self) -> bool {
        self.prevalidation
    }

    /// Human-readable command history.
    pub fn history(&self) -> &[String] {
        &self.history
    }

    fn snapshot(&mut self, label: &str) {
        self.undo_stack.push(Snapshot { label: label.to_string(), goddag: self.goddag.clone() });
        self.redo_stack.clear();
        self.history.push(label.to_string());
    }

    /// Undo the last command. Returns its label.
    pub fn undo(&mut self) -> Result<String> {
        let snap = self.undo_stack.pop().ok_or(XTaggerError::NothingToUndo)?;
        let label = snap.label.clone();
        let current = std::mem::replace(&mut self.goddag, snap.goddag);
        self.redo_stack.push(Snapshot { label: label.clone(), goddag: current });
        self.history.push(format!("undo {label}"));
        Ok(label)
    }

    /// Redo the last undone command. Returns its label.
    pub fn redo(&mut self) -> Result<String> {
        let snap = self.redo_stack.pop().ok_or(XTaggerError::NothingToRedo)?;
        let label = snap.label.clone();
        let current = std::mem::replace(&mut self.goddag, snap.goddag);
        self.undo_stack.push(Snapshot { label: label.clone(), goddag: current });
        self.history.push(format!("redo {label}"));
        Ok(label)
    }

    // ------------------------------------------------------------------
    // Editing commands
    // ------------------------------------------------------------------

    /// Insert `<tag>` over content bytes `start..end` in hierarchy `h`.
    /// With prevalidation on and a DTD present, the insertion is first
    /// checked and refused if it creates a dead end.
    pub fn insert_markup(
        &mut self,
        h: HierarchyId,
        tag: &str,
        attrs: Vec<Attribute>,
        start: usize,
        end: usize,
    ) -> Result<NodeId> {
        if self.prevalidation {
            if let Some(engine) = self.engines.get(h.idx()).and_then(Option::as_ref) {
                let verdict = check_insertion(engine, &self.goddag, h, tag, start, end);
                if !verdict.ok {
                    return Err(XTaggerError::PrevalidationRejected {
                        tag: tag.to_string(),
                        reason: verdict.reason.unwrap_or_else(|| "dead end".into()),
                    });
                }
            }
        }
        self.snapshot(&format!("insert <{tag}> {start}..{end}"));
        let name = QName::parse(tag)
            .map_err(|e| XTaggerError::Goddag(GoddagError::Edit(e.to_string())))?;
        match self.goddag.insert_element(h, name, attrs, start, end) {
            Ok(id) => Ok(id),
            Err(e) => {
                // Roll the snapshot back; the command didn't happen.
                let snap = self.undo_stack.pop().expect("just pushed");
                self.goddag = snap.goddag;
                self.history.pop();
                Err(XTaggerError::Goddag(e))
            }
        }
    }

    /// Remove an element (its content stays).
    pub fn remove_markup(&mut self, node: NodeId) -> Result<()> {
        let label = format!(
            "remove <{}>",
            self.goddag.name(node).map(|q| q.to_string()).unwrap_or_default()
        );
        self.snapshot(&label);
        match self.goddag.remove_element(node) {
            Ok(()) => Ok(()),
            Err(e) => {
                let snap = self.undo_stack.pop().expect("just pushed");
                self.goddag = snap.goddag;
                self.history.pop();
                Err(XTaggerError::Goddag(e))
            }
        }
    }

    /// Set an attribute on an element.
    pub fn set_attribute(&mut self, node: NodeId, name: &str, value: &str) -> Result<()> {
        self.snapshot(&format!("set @{name}"));
        self.goddag.set_attr(node, name, value).map_err(|e| {
            let snap = self.undo_stack.pop().expect("just pushed");
            self.goddag = snap.goddag;
            self.history.pop();
            XTaggerError::Goddag(e)
        })
    }

    /// Insert text at a byte offset (all hierarchies see the edit).
    pub fn insert_text(&mut self, offset: usize, text: &str) -> Result<()> {
        self.snapshot(&format!("insert text @{offset}"));
        self.goddag.insert_text(offset, text).map_err(|e| {
            let snap = self.undo_stack.pop().expect("just pushed");
            self.goddag = snap.goddag;
            self.history.pop();
            XTaggerError::Goddag(e)
        })
    }

    /// Delete the content bytes `start..end`.
    pub fn delete_text(&mut self, start: usize, end: usize) -> Result<()> {
        self.snapshot(&format!("delete text {start}..{end}"));
        self.goddag.delete_text(start, end).map_err(|e| {
            let snap = self.undo_stack.pop().expect("just pushed");
            self.goddag = snap.goddag;
            self.history.pop();
            XTaggerError::Goddag(e)
        })
    }

    // ------------------------------------------------------------------
    // Queries & services
    // ------------------------------------------------------------------

    /// Tags the DTD allows over `start..end` in hierarchy `h` (empty when
    /// the hierarchy has no DTD).
    pub fn suggest(&self, h: HierarchyId, start: usize, end: usize) -> Vec<String> {
        match self.engines.get(h.idx()).and_then(Option::as_ref) {
            Some(engine) => suggest_tags(engine, &self.goddag, h, start, end),
            None => Vec::new(),
        }
    }

    /// Potential-validity report for one hierarchy (`None` without a DTD).
    pub fn validation_status(&self, h: HierarchyId) -> Option<HierarchyReport> {
        self.engines
            .get(h.idx())
            .and_then(Option::as_ref)
            .map(|engine| check_hierarchy(engine, &self.goddag, h))
    }

    /// Run an Extended XPath query against the working document.
    pub fn query(&self, expr: &str) -> Result<Vec<NodeId>> {
        expath::Evaluator::new(&self.goddag)
            .select(expr)
            .map_err(|e| XTaggerError::Query(e.to_string()))
    }

    /// Export a subset of hierarchies as distributed documents.
    pub fn export_filtered(&self, keep: &[HierarchyId]) -> Result<Vec<(String, String)>> {
        crate::filter::export_filtered(&self.goddag, keep).map_err(XTaggerError::Sacx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlcore::dtd::parse_dtd;

    const DTD: &str = "
        <!ELEMENT r (#PCDATA | line | w)*>
        <!ELEMENT line (#PCDATA | w)*>
        <!ELEMENT w (#PCDATA)>
        <!ATTLIST w type CDATA #IMPLIED>
    ";

    fn session() -> (Session, HierarchyId) {
        let mut g = sacx::parse_distributed(&[("phys", "<r>swa hwa swe</r>")]).unwrap();
        let h = g.hierarchy_by_name("phys").unwrap();
        g.set_dtd(h, parse_dtd(DTD).unwrap()).unwrap();
        (Session::new(g), h)
    }

    #[test]
    fn insert_and_undo_redo() {
        let (mut s, h) = session();
        let w = s.insert_markup(h, "w", vec![], 0, 3).unwrap();
        assert_eq!(s.goddag().text_of(w), "swa");
        assert_eq!(s.goddag().element_count(), 1);
        let label = s.undo().unwrap();
        assert!(label.contains("insert <w>"));
        assert_eq!(s.goddag().element_count(), 0);
        s.redo().unwrap();
        assert_eq!(s.goddag().element_count(), 1);
        assert!(s.undo_stack.len() == 1 && s.redo_stack.is_empty());
    }

    #[test]
    fn undo_empty_stack_errors() {
        let (mut s, _) = session();
        assert!(matches!(s.undo(), Err(XTaggerError::NothingToUndo)));
        assert!(matches!(s.redo(), Err(XTaggerError::NothingToRedo)));
    }

    #[test]
    fn new_command_clears_redo() {
        let (mut s, h) = session();
        s.insert_markup(h, "w", vec![], 0, 3).unwrap();
        s.undo().unwrap();
        s.insert_markup(h, "line", vec![], 0, 7).unwrap();
        assert!(matches!(s.redo(), Err(XTaggerError::NothingToRedo)));
    }

    #[test]
    fn prevalidation_gate_refuses_dead_ends() {
        let (mut s, h) = session();
        // <w> holds only PCDATA; wrapping a <line> inside a <w>... first
        // make a line, then try to wrap a larger range in w so the line
        // must nest inside w — w cannot hold line.
        s.insert_markup(h, "line", vec![], 0, 7).unwrap();
        let err = s.insert_markup(h, "w", vec![], 0, 11).unwrap_err();
        assert!(matches!(err, XTaggerError::PrevalidationRejected { .. }), "{err}");
        // Document untouched, command not in undo stack.
        assert_eq!(s.goddag().element_count(), 1);
        assert_eq!(s.undo_stack.len(), 1);
    }

    #[test]
    fn prevalidation_gate_can_be_disabled() {
        let (mut s, h) = session();
        s.insert_markup(h, "line", vec![], 0, 7).unwrap();
        s.set_prevalidation(false);
        // Now the same insert succeeds structurally (w around line) even
        // though it can never validate.
        assert!(s.insert_markup(h, "w", vec![], 0, 11).is_ok());
        let report = s.validation_status(h).unwrap();
        assert!(!report.is_potentially_valid());
    }

    #[test]
    fn crossing_rejected_with_gate_off_too() {
        let (mut s, h) = session();
        s.set_prevalidation(false);
        s.insert_markup(h, "line", vec![], 0, 7).unwrap();
        let err = s.insert_markup(h, "w", vec![], 4, 9).unwrap_err();
        assert!(matches!(err, XTaggerError::Goddag(GoddagError::WouldCross { .. })), "{err}");
        // Failed command leaves no history entry.
        assert_eq!(s.undo_stack.len(), 1);
    }

    #[test]
    fn suggestions_follow_dtd() {
        let (s, h) = session();
        let tags = s.suggest(h, 0, 3);
        assert_eq!(tags, ["line", "w"]);
    }

    #[test]
    fn text_edits_and_undo() {
        let (mut s, h) = session();
        s.insert_markup(h, "w", vec![], 0, 3).unwrap();
        s.insert_text(3, "n").unwrap();
        assert_eq!(s.goddag().content(), "swan hwa swe");
        s.delete_text(0, 2).unwrap();
        assert_eq!(s.goddag().content(), "an hwa swe");
        s.undo().unwrap();
        s.undo().unwrap();
        assert_eq!(s.goddag().content(), "swa hwa swe");
    }

    #[test]
    fn set_attribute_command() {
        let (mut s, h) = session();
        let w = s.insert_markup(h, "w", vec![], 0, 3).unwrap();
        s.set_attribute(w, "type", "noun").unwrap();
        assert_eq!(s.goddag().attr(w, "type"), Some("noun"));
        s.undo().unwrap();
        assert_eq!(s.goddag().attr(w, "type"), None);
    }

    #[test]
    fn query_inside_session() {
        let (mut s, h) = session();
        s.insert_markup(h, "w", vec![], 0, 3).unwrap();
        s.insert_markup(h, "w", vec![], 4, 7).unwrap();
        let hits = s.query("//w").unwrap();
        assert_eq!(hits.len(), 2);
        assert!(s.query("//w[").is_err());
    }

    #[test]
    fn history_records_commands() {
        let (mut s, h) = session();
        s.insert_markup(h, "w", vec![], 0, 3).unwrap();
        s.undo().unwrap();
        s.redo().unwrap();
        let hist = s.history().join("; ");
        assert!(hist.contains("insert <w>"));
        assert!(hist.contains("undo"));
        assert!(hist.contains("redo"));
    }

    #[test]
    fn remove_markup_and_undo() {
        let (mut s, h) = session();
        let w = s.insert_markup(h, "w", vec![], 0, 3).unwrap();
        s.remove_markup(w).unwrap();
        assert_eq!(s.goddag().element_count(), 0);
        s.undo().unwrap();
        assert_eq!(s.goddag().element_count(), 1);
    }

    #[test]
    fn multi_hierarchy_session_overlap() {
        let mut g = sacx::parse_distributed(&[
            ("phys", "<r>swa hwa swe</r>"),
            ("ling", "<r>swa hwa swe</r>"),
        ])
        .unwrap();
        let phys = g.hierarchy_by_name("phys").unwrap();
        let ling = g.hierarchy_by_name("ling").unwrap();
        g.set_dtd(phys, parse_dtd(DTD).unwrap()).unwrap();
        let mut s = Session::new(g);
        s.insert_markup(phys, "line", vec![], 0, 7).unwrap();
        // ling has no DTD: anything structurally legal goes, including an
        // element overlapping the phys line.
        let sent = s.insert_markup(ling, "s", vec![], 4, 11).unwrap();
        let lines = s.query("//s/overlapping::phys:line").unwrap();
        assert_eq!(lines.len(), 1);
        let _ = sent;
    }

    #[test]
    fn export_filtered_from_session() {
        let (mut s, h) = session();
        s.insert_markup(h, "w", vec![], 0, 3).unwrap();
        let docs = s.export_filtered(&[h]).unwrap();
        assert_eq!(docs.len(), 1);
        assert!(docs[0].1.contains("<w>"));
    }
}
