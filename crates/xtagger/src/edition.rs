//! Edition bundles: single-file persistence for a whole multihierarchical
//! edition — document, hierarchies and their DTDs.
//!
//! The paper names persistent storage as work in progress (§1: "Work on
//! building persistent storage solutions is currently underway"); this
//! module provides the file format the rest of the framework needs today: a
//! self-contained text bundle holding the stand-off form of the GODDAG plus
//! every hierarchy's DTD, loadable back into a ready-to-edit [`Session`].
//!
//! ```text
//! #cxml-edition v1
//! dtd phys 123
//! <!ELEMENT r (#PCDATA | line)*>
//! ...
//! standoff 456
//! #cxml-standoff v1
//! ...
//! ```

use crate::error::{Result, XTaggerError};
use crate::session::Session;
use goddag::Goddag;
use sacx::{SacxError, StandoffDoc};
use std::fmt::Write as _;

const MAGIC: &str = "#cxml-edition v1";

/// Serialize a document (with its attached DTDs) into a bundle.
pub fn save_edition(g: &Goddag) -> String {
    let mut out = String::new();
    out.push_str(MAGIC);
    out.push('\n');
    for h in g.hierarchy_ids() {
        let hier = g.hierarchy(h).expect("iterating live ids");
        if let Some(dtd) = &hier.dtd {
            let text = dtd.to_text();
            let _ = writeln!(out, "dtd {} {}", hier.name, text.len());
            out.push_str(&text);
            if !text.ends_with('\n') {
                out.push('\n');
            }
        }
    }
    let standoff = StandoffDoc::from_goddag(g).to_text();
    let _ = writeln!(out, "standoff {}", standoff.len());
    out.push_str(&standoff);
    out
}

/// Load a bundle back into a document with DTDs attached.
pub fn load_edition(input: &str) -> Result<Goddag> {
    let mut rest = input;
    let line = take_line(&mut rest).ok_or_else(|| bad("empty input"))?;
    if line.trim() != MAGIC {
        return Err(bad("bad magic line"));
    }
    let mut dtds: Vec<(String, xmlcore::dtd::Dtd)> = Vec::new();
    let mut goddag: Option<Goddag> = None;
    while let Some(line) = take_line(&mut rest) {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split(' ');
        match parts.next() {
            Some("dtd") => {
                let name = parts.next().ok_or_else(|| bad("dtd needs a hierarchy name"))?;
                let len: usize = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| bad("dtd needs a byte length"))?;
                let block = take_block(&mut rest, len)?;
                let dtd = xmlcore::dtd::parse_dtd(&block)
                    .map_err(|e| bad(format!("DTD for {name:?}: {e}")))?;
                dtds.push((name.to_string(), dtd));
            }
            Some("standoff") => {
                let len: usize = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| bad("standoff needs a byte length"))?;
                let block = take_block(&mut rest, len)?;
                let doc = StandoffDoc::parse_text(&block).map_err(XTaggerError::Sacx)?;
                goddag = Some(doc.to_goddag().map_err(XTaggerError::Sacx)?);
            }
            Some(other) => return Err(bad(format!("unknown directive {other:?}"))),
            None => {}
        }
    }
    let mut g = goddag.ok_or_else(|| bad("bundle has no standoff section"))?;
    for (name, dtd) in dtds {
        let h = g
            .hierarchy_by_name(&name)
            .ok_or_else(|| bad(format!("DTD for unknown hierarchy {name:?}")))?;
        g.set_dtd(h, dtd).map_err(XTaggerError::Goddag)?;
    }
    Ok(g)
}

/// Load a bundle straight into an editing session.
pub fn open_edition(input: &str) -> Result<Session> {
    Ok(Session::new(load_edition(input)?))
}

fn bad(detail: impl Into<String>) -> XTaggerError {
    XTaggerError::Sacx(SacxError::Standoff { line: 0, detail: detail.into() })
}

fn take_line<'a>(rest: &mut &'a str) -> Option<&'a str> {
    if rest.is_empty() {
        return None;
    }
    match rest.find('\n') {
        Some(i) => {
            let l = &rest[..i];
            *rest = &rest[i + 1..];
            Some(l)
        }
        None => {
            let l = *rest;
            *rest = "";
            Some(l)
        }
    }
}

fn take_block(rest: &mut &str, len: usize) -> Result<String> {
    if rest.len() < len {
        return Err(bad(format!("block length {len} exceeds remaining {}", rest.len())));
    }
    if !rest.is_char_boundary(len) {
        return Err(bad("block length splits a UTF-8 char"));
    }
    let block = rest[..len].to_string();
    *rest = &rest[len..];
    Ok(block)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edition() -> Goddag {
        let mut g = corpus::figure1::goddag();
        corpus::dtds::attach_standard(&mut g);
        for name in ["res", "dmg"] {
            let h = g.hierarchy_by_name(name).unwrap();
            g.set_dtd(h, corpus::dtds::edit()).unwrap();
        }
        g
    }

    #[test]
    fn save_load_roundtrip() {
        let g = edition();
        let bundle = save_edition(&g);
        let g2 = load_edition(&bundle).unwrap();
        assert_eq!(g2.content(), g.content());
        assert_eq!(g2.element_count(), g.element_count());
        assert_eq!(g2.hierarchy_count(), g.hierarchy_count());
        // DTDs came back.
        for h in g2.hierarchy_ids() {
            assert!(g2.hierarchy(h).unwrap().dtd.is_some(), "{h}");
        }
        // And the bundle is stable.
        assert_eq!(save_edition(&g2), bundle);
    }

    #[test]
    fn open_edition_gives_working_session() {
        let bundle = save_edition(&edition());
        let mut session = open_edition(&bundle).unwrap();
        let ling = session.goddag().hierarchy_by_name("ling").unwrap();
        // The prevalidation gate is live (DTDs restored): a two-word span
        // inside the sentence can be wrapped in a <phrase>.
        let sugg = session.suggest(ling, 0, 12);
        assert_eq!(sugg, ["phrase"]);
        // And editing works: an editorial <add> over the first word.
        let edit = session.goddag().hierarchy_by_name("dmg").unwrap();
        session.insert_markup(edit, "add", vec![], 0, 4).unwrap();
    }

    #[test]
    fn document_without_dtds_roundtrips() {
        let g = corpus::figure1::goddag();
        let bundle = save_edition(&g);
        let g2 = load_edition(&bundle).unwrap();
        assert_eq!(g2.element_count(), g.element_count());
        assert!(g2.hierarchy_ids().all(|h| g2.hierarchy(h).unwrap().dtd.is_none()));
    }

    #[test]
    fn bad_bundles_rejected() {
        assert!(load_edition("").is_err());
        assert!(load_edition("not a bundle").is_err());
        assert!(load_edition("#cxml-edition v1\n").is_err()); // no standoff
        assert!(load_edition("#cxml-edition v1\nwat 3\nxxx").is_err());
        assert!(load_edition("#cxml-edition v1\ndtd ghost 10\n<!ELEMENT ").is_err());
    }

    #[test]
    fn truncated_block_rejected() {
        let err = load_edition("#cxml-edition v1\nstandoff 9999\nshort").unwrap_err();
        assert!(err.to_string().contains("exceeds"), "{err}");
    }

    #[test]
    fn dtd_for_unknown_hierarchy_rejected() {
        let g = corpus::figure1::goddag();
        let standoff = StandoffDoc::from_goddag(&g).to_text();
        let dtd_text = corpus::dtds::phys().to_text();
        let bundle = format!(
            "#cxml-edition v1\ndtd ghost {}\n{}standoff {}\n{}",
            dtd_text.len(),
            dtd_text,
            standoff.len(),
            standoff
        );
        assert!(load_edition(&bundle).is_err());
    }
}
