//! # xtagger — authoring document-centric concurrent XML
//!
//! The editing layer of the framework (paper §4, *Authoring tools*; Iacob &
//! Dekhtyar, JCDL 2005): an interactive [`Session`] over a GODDAG with
//! selection-based markup insertion, a prevalidation gate powered by the
//! `prevalid` engine, tag suggestions, undo/redo, Extended XPath queries,
//! and hierarchy filtering for partial views/exports.
//!
//! ```
//! use xtagger::Session;
//! use xmlcore::dtd::parse_dtd;
//!
//! let mut g = sacx::parse_distributed(&[("ling", "<r>swa hwa</r>")]).unwrap();
//! let h = g.hierarchy_by_name("ling").unwrap();
//! g.set_dtd(h, parse_dtd("<!ELEMENT r (#PCDATA | w)*> <!ELEMENT w (#PCDATA)>").unwrap()).unwrap();
//!
//! let mut session = Session::new(g);
//! assert_eq!(session.suggest(h, 0, 3), ["w"]);            // what fits here?
//! session.insert_markup(h, "w", vec![], 0, 3).unwrap();   // tag it
//! assert_eq!(session.query("//w").unwrap().len(), 1);     // query it
//! session.undo().unwrap();                                // change your mind
//! ```

mod commands;
mod edition;
mod error;
mod filter;
mod session;

pub use commands::{run_script, Applied, Command};
pub use edition::{load_edition, open_edition, save_edition};
pub use error::{Result, XTaggerError};
pub use filter::{export_filtered, filter_hierarchies};
pub use session::Session;
