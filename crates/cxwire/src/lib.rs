//! # cxwire — the one frame discipline every TCP wire format shares
//!
//! Two subsystems speak length-prefixed frames over std TCP: the
//! replication transport (`cxrepl::tcp`, a fixed-header fetch protocol)
//! and the service tier (`cxserve`, a request/response protocol). Both
//! need exactly the same three defenses, and they must never drift apart:
//!
//! * **a hard length cap** ([`MAX_FRAME`]) enforced *before* allocating —
//!   a corrupt or hostile header cannot demand a multi-GB buffer on the
//!   strength of four declared bytes;
//! * **stall-bounded exact reads** ([`read_full`]) — once a peer commits
//!   to a frame, it gets [`FRAME_STALL_LIMIT`] without progress before
//!   the connection is declared dead, so a half-open socket (peer powered
//!   off, network partition, no FIN ever arrives) can never hang a
//!   handler or follower thread forever;
//! * **self-describing failure** — an oversized declared length fails
//!   with [`std::io::ErrorKind::InvalidData`] and a message naming both
//!   the length and the cap, so the refusal is diagnosable from either
//!   end's logs.
//!
//! `cxrepl` keeps its own fixed request/response headers (they predate
//! this crate and are pinned by wire tests) and uses the cap + exact-read
//! primitives; `cxserve` uses the whole-frame helpers
//! ([`write_frame`] / [`read_frame`]). One implementation, two wire
//! formats.

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Hard ceiling on frame payloads, enforced on **both** ends of every
/// connection: readers refuse a header whose declared length exceeds it
/// before allocating a single payload byte, and writers refuse to emit an
/// oversized payload (truncating would hand the peer a torn artifact).
/// 64 MB comfortably holds any realistic record batch, snapshot bootstrap,
/// or stand-off export; deployments shipping larger artifacts should
/// checkpoint less state per store or raise the cap on both ends together.
pub const MAX_FRAME: u32 = 64 << 20;

/// How long a peer that has started a frame may stall before the
/// connection is declared dead. Bounds server handlers (client died
/// mid-request) and clients (server died mid-response) alike.
pub const FRAME_STALL_LIMIT: Duration = Duration::from_secs(15);

/// Refuse a declared frame length that exceeds [`MAX_FRAME`] — the check
/// every reader runs between parsing a header and allocating the payload.
pub fn check_frame_len(len: u32) -> std::io::Result<()> {
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    Ok(())
}

/// `read_exact` that rides out read timeouts mid-frame (the peer already
/// committed to sending the whole frame) — but only up to
/// [`FRAME_STALL_LIMIT`] without progress, so a half-open connection
/// fails the read instead of hanging the calling thread forever.
///
/// Sockets handed here are expected to carry a read timeout (both wire
/// formats set one so idle loops can poll a stop flag); a socket without
/// one simply blocks in the kernel until bytes or EOF arrive.
pub fn read_full(stream: &mut TcpStream, buf: &mut [u8]) -> std::io::Result<()> {
    let mut done = 0;
    let mut last_progress = Instant::now();
    while done < buf.len() {
        match stream.read(&mut buf[done..]) {
            Ok(0) => return Err(ErrorKind::UnexpectedEof.into()),
            Ok(n) => {
                done += n;
                last_progress = Instant::now();
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if last_progress.elapsed() > FRAME_STALL_LIMIT {
                    return Err(std::io::Error::new(
                        ErrorKind::TimedOut,
                        "peer stalled mid-frame; connection presumed dead",
                    ));
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Allocate and read a payload whose length the peer declared: the cap
/// check *then* the allocation *then* the stall-bounded exact read.
pub fn read_payload(stream: &mut TcpStream, len: u32) -> std::io::Result<Vec<u8>> {
    check_frame_len(len)?;
    let mut payload = vec![0u8; len as usize];
    read_full(stream, &mut payload)?;
    Ok(payload)
}

// ---------------------------------------------------------------------
// Whole frames: `len:u32be  payload:[len]`
// ---------------------------------------------------------------------

/// Write one length-prefixed frame. Refuses (rather than truncates) a
/// payload over [`MAX_FRAME`] — the caller decides what smaller thing to
/// say instead.
pub fn write_frame(stream: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    if payload.len() > MAX_FRAME as usize {
        return Err(std::io::Error::new(
            ErrorKind::InvalidData,
            format!("refusing to emit a {}-byte frame (cap {MAX_FRAME})", payload.len()),
        ));
    }
    stream.write_all(&(payload.len() as u32).to_be_bytes())?;
    stream.write_all(payload)?;
    stream.flush()
}

/// Read one length-prefixed frame (header and payload both stall-bounded,
/// length cap enforced before the payload allocation).
pub fn read_frame(stream: &mut TcpStream) -> std::io::Result<Vec<u8>> {
    let mut header = [0u8; 4];
    read_full(stream, &mut header)?;
    read_payload(stream, u32::from_be_bytes(header))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn oversized_declared_length_is_refused_before_allocation() {
        let e = check_frame_len(MAX_FRAME + 1).unwrap_err();
        assert_eq!(e.kind(), ErrorKind::InvalidData);
        assert!(e.to_string().contains("exceeds"), "{e}");
        check_frame_len(MAX_FRAME).unwrap();
    }

    #[test]
    fn oversized_payload_is_refused_on_the_write_side() {
        let big = vec![0u8; MAX_FRAME as usize + 1];
        let mut sink = Vec::new();
        let e = write_frame(&mut sink, &big).unwrap_err();
        assert_eq!(e.kind(), ErrorKind::InvalidData);
        assert!(sink.is_empty(), "nothing may hit the wire");
    }

    #[test]
    fn frames_round_trip_over_a_real_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            stream.set_read_timeout(Some(Duration::from_millis(50))).unwrap();
            let got = read_frame(&mut stream).unwrap();
            write_frame(&mut stream, &got).unwrap();
        });
        let mut client = TcpStream::connect(addr).unwrap();
        client.set_read_timeout(Some(Duration::from_millis(50))).unwrap();
        write_frame(&mut client, b"hello frames").unwrap();
        assert_eq!(read_frame(&mut client).unwrap(), b"hello frames");
        server.join().unwrap();
    }

    #[test]
    fn a_truncated_frame_reads_as_eof_not_a_hang() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            // Declare 100 bytes, send 3, hang up.
            stream.write_all(&100u32.to_be_bytes()).unwrap();
            stream.write_all(b"abc").unwrap();
        });
        let mut client = TcpStream::connect(addr).unwrap();
        client.set_read_timeout(Some(Duration::from_millis(50))).unwrap();
        let e = read_frame(&mut client).unwrap_err();
        assert_eq!(e.kind(), ErrorKind::UnexpectedEof);
        server.join().unwrap();
    }
}
