//! An interval index over element spans, accelerating the extended axes
//! (`overlapping`, `containing`, `contained`, `co-extensive`).
//!
//! Layout: all non-empty element spans sorted by start offset, with a
//! segment tree of maximum end offsets on top. Queries descend only into
//! subtrees whose max end can still intersect, giving `O(log n + k)` for
//! `k` results — the ablation experiment A1 measures this against the naive
//! `O(n)` scan the evaluator falls back to without an index.

use goddag::{Goddag, NodeId, Span};

/// Immutable interval index over a GODDAG's elements.
///
/// Built once per (immutable) document; rebuild after edits.
#[derive(Debug, Clone)]
pub struct OverlapIndex {
    /// `(start, end, element)` sorted by `(start, end)`.
    entries: Vec<(u32, u32, NodeId)>,
    /// Segment-tree of max `end` over `entries` (1-based heap layout).
    max_end: Vec<u32>,
    size: usize,
}

impl OverlapIndex {
    /// Build the index over all live, non-empty elements.
    pub fn build(g: &Goddag) -> OverlapIndex {
        let mut entries: Vec<(u32, u32, NodeId)> = g
            .elements()
            .filter_map(|e| {
                let s = g.span(e);
                (!s.is_empty()).then_some((s.start, s.end, e))
            })
            .collect();
        entries.sort_unstable_by_key(|&(s, e, id)| (s, e, id));
        let size = entries.len().next_power_of_two().max(1);
        let mut max_end = vec![0u32; 2 * size];
        for (i, &(_, end, _)) in entries.iter().enumerate() {
            max_end[size + i] = end;
        }
        for i in (1..size).rev() {
            max_end[i] = max_end[2 * i].max(max_end[2 * i + 1]);
        }
        OverlapIndex { entries, max_end, size }
    }

    /// Number of indexed elements.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no elements are indexed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All elements whose span *intersects* `span` (shares at least one
    /// leaf). Callers refine to proper overlap / containment as needed.
    pub fn intersecting(&self, span: Span) -> Vec<NodeId> {
        if span.is_empty() || self.entries.is_empty() {
            return Vec::new();
        }
        // Candidates: start < span.end (prefix by sortedness) AND
        // end > span.start (segment-tree pruned descent).
        let prefix = self.entries.partition_point(|&(s, _, _)| s < span.end);
        let mut idxs = Vec::new();
        self.collect(1, 0, self.size, prefix, span.start, &mut idxs);
        idxs.into_iter().map(|i| self.entries[i].2).collect()
    }

    /// All elements whose span contains `span` (including co-extensive
    /// ones). `span` may be empty (milestone anchors).
    pub fn containing(&self, span: Span) -> Vec<NodeId> {
        if self.entries.is_empty() {
            return Vec::new();
        }
        // start <= span.start AND end >= span.end (for empty spans the
        // anchor may sit on either boundary, handled by Span::contains).
        let prefix = self.entries.partition_point(|&(s, _, _)| s <= span.start);
        let mut idxs = Vec::new();
        let min_end = span.end.max(1);
        self.collect(1, 0, self.size, prefix, min_end - 1, &mut idxs);
        // The tree test used `end > min_end - 1` i.e. `end >= span.end`;
        // refine exact containment (empty-span boundary rule).
        idxs.into_iter()
            .filter_map(|i| {
                let (s, en, id) = self.entries[i];
                Span::new(s, en).contains(span).then_some(id)
            })
            .collect()
    }

    /// All elements whose span lies within `span`.
    pub fn contained_in(&self, span: Span) -> Vec<NodeId> {
        if span.is_empty() || self.entries.is_empty() {
            return Vec::new();
        }
        let lo = self.entries.partition_point(|&(s, _, _)| s < span.start);
        let hi = self.entries.partition_point(|&(s, _, _)| s < span.end);
        self.entries[lo..hi]
            .iter()
            .filter(|&&(_, e, _)| e <= span.end)
            .map(|&(_, _, id)| id)
            .collect()
    }

    /// All elements with exactly this span.
    pub fn co_extensive(&self, span: Span) -> Vec<NodeId> {
        let lo = self.entries.partition_point(|&(s, _, _)| s < span.start);
        self.entries[lo..]
            .iter()
            .take_while(|&&(s, _, _)| s == span.start)
            .filter(|&&(_, e, _)| e == span.end)
            .map(|&(_, _, id)| id)
            .collect()
    }

    /// Collect entry indices in `[0, prefix)` with `end > min_end_exclusive`.
    fn collect(
        &self,
        node: usize,
        lo: usize,
        hi: usize,
        prefix: usize,
        min_end_exclusive: u32,
        out: &mut Vec<usize>,
    ) {
        if lo >= prefix || self.max_end[node] <= min_end_exclusive {
            return;
        }
        if hi - lo == 1 {
            if lo < self.entries.len() {
                out.push(lo);
            }
            return;
        }
        let mid = (lo + hi) / 2;
        self.collect(2 * node, lo, mid, prefix, min_end_exclusive, out);
        self.collect(2 * node + 1, mid, hi, prefix, min_end_exclusive, out);
    }
}

/// The naive baseline: scan every element (used when no index is supplied;
/// also the comparison point for ablation A1).
pub fn scan_intersecting(g: &Goddag, span: Span) -> Vec<NodeId> {
    g.elements().filter(|&e| g.span(e).intersects(span)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use goddag::GoddagBuilder;
    use xmlcore::QName;

    /// 10 single-char leaves; elements at various spans across 3 hierarchies.
    fn fixture() -> Goddag {
        let mut b = GoddagBuilder::new(QName::parse("r").unwrap());
        b.content("0123456789");
        let h0 = b.hierarchy("a");
        let h1 = b.hierarchy("b");
        let h2 = b.hierarchy("c");
        b.range(h0, "e05", vec![], 0, 5).unwrap();
        b.range(h0, "e59", vec![], 5, 9).unwrap();
        b.range(h1, "e38", vec![], 3, 8).unwrap();
        b.range(h1, "e33", vec![], 3, 3).unwrap(); // empty
        b.range(h2, "e09", vec![], 0, 10).unwrap();
        b.range(h2, "e46", vec![], 4, 6).unwrap();
        b.finish().unwrap()
    }

    fn names(g: &Goddag, mut ids: Vec<NodeId>) -> Vec<String> {
        g.sort_doc_order(&mut ids);
        ids.iter().map(|&e| g.name(e).unwrap().local.clone()).collect()
    }

    #[test]
    fn index_matches_naive_scan() {
        let g = fixture();
        let idx = OverlapIndex::build(&g);
        for start in 0..10u32 {
            for end in start..=10u32 {
                let span = Span::new(start, end);
                let mut from_index = idx.intersecting(span);
                let mut from_scan = scan_intersecting(&g, span);
                g.sort_doc_order(&mut from_index);
                g.sort_doc_order(&mut from_scan);
                assert_eq!(from_index, from_scan, "span {span}");
            }
        }
    }

    #[test]
    fn containing_query() {
        let g = fixture();
        let idx = OverlapIndex::build(&g);
        // Spans are LEAF indices; leaves here are the segments between all
        // markup boundaries {0,3,4,5,6,8,9,10}: 7 leaves. Element leaf
        // spans: e05=(0,3) e09=(0,7) e38=(1,5) e46=(2,4) e59=(3,6).
        // Who contains e46's span [2,4)? e09, e38, e46 itself.
        assert_eq!(names(&g, idx.containing(Span::new(2, 4))), ["e09", "e38", "e46"]);
        // Who contains the whole doc? e09 only.
        assert_eq!(names(&g, idx.containing(Span::new(0, 7))), ["e09"]);
    }

    #[test]
    fn containing_empty_anchor() {
        let g = fixture();
        let idx = OverlapIndex::build(&g);
        // Anchor at leaf 3: e05 [0,5), e38 [3,8) (boundary), e09.
        let got = names(&g, idx.containing(Span::empty_at(3)));
        assert!(got.contains(&"e09".to_string()));
        assert!(got.contains(&"e05".to_string()));
    }

    #[test]
    fn contained_in_query() {
        let g = fixture();
        let idx = OverlapIndex::build(&g);
        assert_eq!(names(&g, idx.contained_in(Span::new(1, 5))), ["e38", "e46"]);
        assert_eq!(
            names(&g, idx.contained_in(Span::new(0, 7))),
            ["e09", "e05", "e38", "e46", "e59"]
        );
        assert!(idx.contained_in(Span::new(0, 1)).is_empty());
    }

    #[test]
    fn co_extensive_query() {
        let g = fixture();
        let idx = OverlapIndex::build(&g);
        assert_eq!(names(&g, idx.co_extensive(Span::new(1, 5))), ["e38"]);
        assert!(idx.co_extensive(Span::new(1, 2)).is_empty());
    }

    #[test]
    fn empty_span_queries() {
        let g = fixture();
        let idx = OverlapIndex::build(&g);
        assert!(idx.intersecting(Span::empty_at(3)).is_empty());
        assert!(idx.contained_in(Span::empty_at(3)).is_empty());
    }

    #[test]
    fn empty_document() {
        let b = GoddagBuilder::new(QName::parse("r").unwrap());
        let g = b.finish().unwrap();
        let idx = OverlapIndex::build(&g);
        assert!(idx.is_empty());
        assert!(idx.intersecting(Span::new(0, 1)).is_empty());
        assert!(idx.containing(Span::new(0, 0)).is_empty());
    }

    #[test]
    fn randomized_against_scan() {
        // Deterministic pseudo-random spans over a larger fixture.
        let mut b = GoddagBuilder::new(QName::parse("r").unwrap());
        let content: String = "x".repeat(200);
        b.content(content);
        let mut seed = 12345u64;
        let mut next = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (seed >> 33) as usize
        };
        for hi in 0..4 {
            let h = b.hierarchy(format!("h{hi}"));
            // Build nested, non-crossing ranges per hierarchy.
            for _ in 0..30 {
                let a = next() % 200;
                let len = next() % 20 + 1;
                let bnd = (a + len).min(200);
                // Avoid crossings by only adding if compatible; cheap check
                // via builder error — collect candidates first.
                let _ = (h, a, bnd);
            }
        }
        // Use fixed well-nested ranges instead (builder rejects crossings).
        let h0 = b.hierarchy("p");
        let h1 = b.hierarchy("q");
        for i in 0..20 {
            b.range(h0, "seg", vec![], i * 10, i * 10 + 10).unwrap();
            b.range(h1, "win", vec![], (i * 10 + 5).min(200), (i * 10 + 15).min(200)).unwrap();
        }
        let g = b.finish().unwrap();
        let idx = OverlapIndex::build(&g);
        for _ in 0..100 {
            let s = (next() % g.leaf_count()) as u32;
            let e = (s + (next() % 10) as u32).min(g.leaf_count() as u32);
            let span = Span::new(s, e);
            let mut a = idx.intersecting(span);
            let mut b2 = scan_intersecting(&g, span);
            g.sort_doc_order(&mut a);
            g.sort_doc_order(&mut b2);
            assert_eq!(a, b2, "span {span}");
        }
    }
}
