//! Recursive-descent parser for Extended XPath.

use crate::ast::{Axis, BinOp, Expr, NodeTest, PathStart, Step};
use crate::error::{Result, XPathError};
use crate::lexer::{tokenize, Tok, Token};

/// Parse an Extended XPath expression.
pub fn parse(input: &str) -> Result<Expr> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, i: 0, input_len: input.len() };
    let expr = p.expr()?;
    if let Some(t) = p.peek() {
        return Err(XPathError::Parse {
            pos: t.pos,
            detail: format!("unexpected trailing token {:?}", t.kind),
        });
    }
    Ok(expr)
}

struct Parser {
    tokens: Vec<Token>,
    i: usize,
    input_len: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.i)
    }

    fn peek2(&self) -> Option<&Token> {
        self.tokens.get(self.i + 1)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.i).cloned();
        if t.is_some() {
            self.i += 1;
        }
        t
    }

    fn pos(&self) -> usize {
        self.peek().map_or(self.input_len, |t| t.pos)
    }

    fn eat(&mut self, kind: &Tok) -> bool {
        if self.peek().map(|t| &t.kind) == Some(kind) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &Tok, what: &str) -> Result<()> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(XPathError::Parse { pos: self.pos(), detail: format!("expected {what}") })
        }
    }

    /// Is the current token a bare (unprefixed) name equal to `s`?
    fn at_name(&self, s: &str) -> bool {
        matches!(self.peek(), Some(Token { kind: Tok::Name { prefix: None, local }, .. }) if local == s)
    }

    // Precedence climbing -------------------------------------------------

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.and_expr()?;
        while self.at_name("or") {
            self.bump();
            let rhs = self.and_expr()?;
            lhs = Expr::Bin(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.eq_expr()?;
        while self.at_name("and") {
            self.bump();
            let rhs = self.eq_expr()?;
            lhs = Expr::Bin(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn eq_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.rel_expr()?;
        loop {
            let op = match self.peek().map(|t| &t.kind) {
                Some(Tok::Eq) => BinOp::Eq,
                Some(Tok::Neq) => BinOp::Neq,
                _ => break,
            };
            self.bump();
            let rhs = self.rel_expr()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn rel_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.add_expr()?;
        loop {
            let op = match self.peek().map(|t| &t.kind) {
                Some(Tok::Lt) => BinOp::Lt,
                Some(Tok::Le) => BinOp::Le,
                Some(Tok::Gt) => BinOp::Gt,
                Some(Tok::Ge) => BinOp::Ge,
                _ => break,
            };
            self.bump();
            let rhs = self.add_expr()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn add_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek().map(|t| &t.kind) {
                Some(Tok::Plus) => BinOp::Add,
                Some(Tok::Minus) => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek().map(|t| &t.kind) {
                // `*` in operator position is multiplication.
                Some(Tok::Star) => BinOp::Mul,
                Some(Tok::Name { prefix: None, local }) if local == "div" => BinOp::Div,
                Some(Tok::Name { prefix: None, local }) if local == "mod" => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr> {
        if self.eat(&Tok::Minus) {
            let inner = self.unary_expr()?;
            return Ok(Expr::Neg(Box::new(inner)));
        }
        self.union_expr()
    }

    fn union_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.path_expr()?;
        while self.eat(&Tok::Pipe) {
            let rhs = self.path_expr()?;
            lhs = Expr::Union(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    // Paths ----------------------------------------------------------------

    fn path_expr(&mut self) -> Result<Expr> {
        match self.peek().map(|t| t.kind.clone()) {
            Some(Tok::Slash) => {
                self.bump();
                // Bare '/' is the root.
                if self.starts_step() {
                    let steps = self.relative_path()?;
                    Ok(Expr::Path { start: PathStart::Root, steps })
                } else {
                    Ok(Expr::Path { start: PathStart::Root, steps: vec![] })
                }
            }
            Some(Tok::DoubleSlash) => {
                self.bump();
                let mut steps = vec![descendant_or_self_node()];
                steps.extend(self.relative_path()?);
                Ok(Expr::Path { start: PathStart::Root, steps })
            }
            Some(Tok::Number(n)) => {
                self.bump();
                Ok(Expr::Number(n))
            }
            Some(Tok::Literal(s)) => {
                self.bump();
                Ok(Expr::Literal(s))
            }
            Some(Tok::LParen) => {
                self.bump();
                let inner = self.expr()?;
                self.expect(&Tok::RParen, "')'")?;
                self.filter_tail(inner)
            }
            // Function call: name '(' — but not a node test like text().
            Some(Tok::Name { prefix: None, ref local })
                if matches!(self.peek2().map(|t| &t.kind), Some(Tok::LParen))
                    && !matches!(local.as_str(), "text" | "node") =>
            {
                let name = local.clone();
                self.bump();
                self.bump(); // '('
                let mut args = Vec::new();
                if !self.eat(&Tok::RParen) {
                    loop {
                        args.push(self.expr()?);
                        if self.eat(&Tok::RParen) {
                            break;
                        }
                        self.expect(&Tok::Comma, "',' or ')'")?;
                    }
                }
                self.filter_tail(Expr::Call { name, args })
            }
            _ if self.starts_step() => {
                let steps = self.relative_path()?;
                Ok(Expr::Path { start: PathStart::Context, steps })
            }
            other => Err(XPathError::Parse {
                pos: self.pos(),
                detail: format!("expected an expression, found {other:?}"),
            }),
        }
    }

    /// Predicates and a trailing relative path after a primary expression.
    fn filter_tail(&mut self, primary: Expr) -> Result<Expr> {
        let mut predicates = Vec::new();
        while self.peek().map(|t| &t.kind) == Some(&Tok::LBracket) {
            self.bump();
            predicates.push(self.expr()?);
            self.expect(&Tok::RBracket, "']'")?;
        }
        let mut steps = Vec::new();
        loop {
            match self.peek().map(|t| &t.kind) {
                Some(Tok::Slash) => {
                    self.bump();
                    steps.push(self.step()?);
                }
                Some(Tok::DoubleSlash) => {
                    self.bump();
                    steps.push(descendant_or_self_node());
                    steps.push(self.step()?);
                }
                _ => break,
            }
        }
        if predicates.is_empty() && steps.is_empty() {
            Ok(primary)
        } else {
            Ok(Expr::Filter { primary: Box::new(primary), predicates, steps })
        }
    }

    fn starts_step(&self) -> bool {
        matches!(
            self.peek().map(|t| &t.kind),
            Some(Tok::Name { .. } | Tok::Star | Tok::At | Tok::Dot | Tok::DotDot)
        )
    }

    fn relative_path(&mut self) -> Result<Vec<Step>> {
        let mut steps = vec![self.step()?];
        loop {
            match self.peek().map(|t| &t.kind) {
                Some(Tok::Slash) => {
                    self.bump();
                    steps.push(self.step()?);
                }
                Some(Tok::DoubleSlash) => {
                    self.bump();
                    steps.push(descendant_or_self_node());
                    steps.push(self.step()?);
                }
                _ => break,
            }
        }
        Ok(steps)
    }

    fn step(&mut self) -> Result<Step> {
        // Abbreviations.
        if self.eat(&Tok::Dot) {
            return self.finish_step(Axis::SelfAxis, NodeTest::Node);
        }
        if self.eat(&Tok::DotDot) {
            return self.finish_step(Axis::Parent, NodeTest::Node);
        }
        if self.eat(&Tok::At) {
            let test = self.node_test()?;
            return self.finish_step(Axis::Attribute, test);
        }
        // Explicit axis?
        if let Some(Tok::Name { prefix: None, local }) = self.peek().map(|t| t.kind.clone()) {
            if self.peek2().map(|t| &t.kind) == Some(&Tok::DoubleColon) {
                let axis = Axis::from_name(&local)
                    .ok_or_else(|| XPathError::UnknownAxis(local.clone()))?;
                self.bump();
                self.bump();
                let test = self.node_test()?;
                return self.finish_step(axis, test);
            }
        }
        let test = self.node_test()?;
        self.finish_step(Axis::Child, test)
    }

    fn finish_step(&mut self, axis: Axis, test: NodeTest) -> Result<Step> {
        let mut predicates = Vec::new();
        while self.peek().map(|t| &t.kind) == Some(&Tok::LBracket) {
            self.bump();
            predicates.push(self.expr()?);
            self.expect(&Tok::RBracket, "']'")?;
        }
        Ok(Step { axis, test, predicates })
    }

    fn node_test(&mut self) -> Result<NodeTest> {
        match self.bump().map(|t| t.kind) {
            Some(Tok::Star) => Ok(NodeTest::Any),
            Some(Tok::Name { prefix, local }) => {
                if local == "*" {
                    return Ok(NodeTest::AnyInHierarchy(
                        prefix.expect("lexer only emits * local with a prefix"),
                    ));
                }
                // text() / node() kind tests.
                if prefix.is_none() && self.peek().map(|t| &t.kind) == Some(&Tok::LParen) {
                    match local.as_str() {
                        "text" => {
                            self.bump();
                            self.expect(&Tok::RParen, "')'")?;
                            return Ok(NodeTest::Text);
                        }
                        "node" => {
                            self.bump();
                            self.expect(&Tok::RParen, "')'")?;
                            return Ok(NodeTest::Node);
                        }
                        _ => {}
                    }
                }
                Ok(NodeTest::Name { hierarchy: prefix, local })
            }
            other => Err(XPathError::Parse {
                pos: self.pos(),
                detail: format!("expected a node test, found {other:?}"),
            }),
        }
    }
}

fn descendant_or_self_node() -> Step {
    Step { axis: Axis::DescendantOrSelf, test: NodeTest::Node, predicates: vec![] }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_path() {
        assert_eq!(parse("/").unwrap(), Expr::Path { start: PathStart::Root, steps: vec![] });
    }

    #[test]
    fn child_steps() {
        let e = parse("/line/w").unwrap();
        match e {
            Expr::Path { start: PathStart::Root, steps } => {
                assert_eq!(steps.len(), 2);
                assert_eq!(steps[0].axis, Axis::Child);
                assert_eq!(steps[0].test, NodeTest::Name { hierarchy: None, local: "line".into() });
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn double_slash_expands() {
        let e = parse("//w").unwrap();
        match e {
            Expr::Path { steps, .. } => {
                assert_eq!(steps.len(), 2);
                assert_eq!(steps[0].axis, Axis::DescendantOrSelf);
                assert_eq!(steps[0].test, NodeTest::Node);
                assert_eq!(steps[1].axis, Axis::Child);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn explicit_axes_and_hierarchy_test() {
        let e = parse("overlapping::phys:line").unwrap();
        match e {
            Expr::Path { start: PathStart::Context, steps } => {
                assert_eq!(steps[0].axis, Axis::Overlapping);
                assert_eq!(
                    steps[0].test,
                    NodeTest::Name { hierarchy: Some("phys".into()), local: "line".into() }
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn hierarchy_wildcard() {
        let e = parse("child::ling:*").unwrap();
        match e {
            Expr::Path { steps, .. } => {
                assert_eq!(steps[0].test, NodeTest::AnyInHierarchy("ling".into()));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn predicates() {
        let e = parse("//w[@type='noun'][2]").unwrap();
        match e {
            Expr::Path { steps, .. } => {
                assert_eq!(steps[1].predicates.len(), 2);
                assert_eq!(steps[1].predicates[1], Expr::Number(2.0));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn attribute_abbreviation() {
        let e = parse("@n").unwrap();
        match e {
            Expr::Path { steps, .. } => {
                assert_eq!(steps[0].axis, Axis::Attribute);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn dot_and_dotdot() {
        let e = parse("./..").unwrap();
        match e {
            Expr::Path { steps, .. } => {
                assert_eq!(steps[0].axis, Axis::SelfAxis);
                assert_eq!(steps[1].axis, Axis::Parent);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn function_calls() {
        let e = parse("count(//w) > 3").unwrap();
        match e {
            Expr::Bin(BinOp::Gt, lhs, rhs) => {
                assert!(
                    matches!(*lhs, Expr::Call { ref name, ref args } if name == "count" && args.len() == 1)
                );
                assert_eq!(*rhs, Expr::Number(3.0));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn text_node_test_not_function() {
        let e = parse("//text()").unwrap();
        match e {
            Expr::Path { steps, .. } => assert_eq!(steps[1].test, NodeTest::Text),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn arithmetic_precedence() {
        let e = parse("1 + 2 * 3").unwrap();
        match e {
            Expr::Bin(BinOp::Add, _, rhs) => {
                assert!(matches!(*rhs, Expr::Bin(BinOp::Mul, _, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn boolean_precedence() {
        let e = parse("1 = 1 or 2 = 3 and 4 = 4").unwrap();
        assert!(matches!(e, Expr::Bin(BinOp::Or, _, _)));
    }

    #[test]
    fn union_of_paths() {
        let e = parse("//w | //line").unwrap();
        assert!(matches!(e, Expr::Union(_, _)));
    }

    #[test]
    fn unary_minus() {
        let e = parse("- 3").unwrap();
        assert!(matches!(e, Expr::Neg(_)));
    }

    #[test]
    fn parenthesized_filter_with_path() {
        let e = parse("(//w)[1]/parent::node()").unwrap();
        match e {
            Expr::Filter { predicates, steps, .. } => {
                assert_eq!(predicates.len(), 1);
                assert_eq!(steps.len(), 1);
                assert_eq!(steps[0].axis, Axis::Parent);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn errors() {
        assert!(parse("").is_err());
        assert!(parse("//w[").is_err());
        assert!(parse("child::").is_err());
        assert!(parse("sideways::w").is_err());
        assert!(parse("//w)").is_err());
        assert!(parse("count(").is_err());
    }

    #[test]
    fn star_disambiguation() {
        // wildcard then multiplication
        let e = parse("count(child::*) * 2").unwrap();
        assert!(matches!(e, Expr::Bin(BinOp::Mul, _, _)));
    }

    #[test]
    fn div_and_mod() {
        let e = parse("6 div 2 mod 2").unwrap();
        assert!(matches!(e, Expr::Bin(BinOp::Mod, _, _)));
    }
}
