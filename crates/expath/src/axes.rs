//! Axis semantics on the GODDAG (paper §4: "We redefine the XPath semantics
//! on GODDAG ... and extend it with features that are specific to processing
//! of concurrent XML, such as the overlapping axis").
//!
//! Standard axes follow graph edges (hierarchy-aware); extended axes follow
//! the span algebra across hierarchies, optionally served by the
//! [`OverlapIndex`].

use crate::ast::Axis;
use crate::overlap_index::{scan_intersecting, OverlapIndex};
use goddag::{Goddag, NodeId};

/// Candidate nodes of `axis` from `node`, ordered in axis direction
/// (reverse axes nearest-first). The node test and predicates are applied by
/// the evaluator.
pub fn axis_candidates(
    g: &Goddag,
    index: Option<&OverlapIndex>,
    node: NodeId,
    axis: Axis,
) -> Vec<NodeId> {
    match axis {
        Axis::SelfAxis => vec![node],
        Axis::Child => g.children(node),
        Axis::Descendant => g.descendants(node),
        Axis::DescendantOrSelf => {
            let mut v = vec![node];
            v.extend(g.descendants(node));
            v
        }
        Axis::Parent => g.parents(node),
        Axis::Ancestor => ancestors_nearest_first(g, node),
        Axis::AncestorOrSelf => {
            let mut v = vec![node];
            v.extend(ancestors_nearest_first(g, node));
            v
        }
        Axis::FollowingSibling => {
            let mut out = Vec::new();
            for h in g.hierarchy_ids() {
                out.extend(g.following_siblings_in(node, h));
            }
            g.sort_doc_order(&mut out);
            out
        }
        Axis::PrecedingSibling => {
            let mut out = Vec::new();
            for h in g.hierarchy_ids() {
                out.extend(g.preceding_siblings_in(node, h));
            }
            // Reverse axis: nearest (document-latest) first.
            g.sort_doc_order(&mut out);
            out.reverse();
            out
        }
        Axis::Following => {
            let span = g.span(node);
            let mut out: Vec<NodeId> = g
                .elements()
                .filter(|&e| e != node && span.precedes(g.span(e)) && !g.span(e).is_empty())
                .collect();
            out.extend(g.leaves().iter().copied().filter(|&l| span.precedes(g.span(l))));
            g.sort_doc_order(&mut out);
            out
        }
        Axis::Preceding => {
            let span = g.span(node);
            let mut out: Vec<NodeId> = g
                .elements()
                .filter(|&e| e != node && g.span(e).precedes(span) && !g.span(e).is_empty())
                .collect();
            out.extend(g.leaves().iter().copied().filter(|&l| g.span(l).precedes(span)));
            g.sort_doc_order(&mut out);
            out.reverse();
            out
        }
        Axis::Attribute => Vec::new(), // handled by the evaluator
        Axis::Overlapping => {
            let span = g.span(node);
            let mut out: Vec<NodeId> = match index {
                Some(idx) => idx.intersecting(span),
                None => scan_intersecting(g, span),
            };
            out.retain(|&e| e != node && g.span(e).overlaps(span));
            g.sort_doc_order(&mut out);
            out
        }
        Axis::Containing => {
            let span = g.span(node);
            let mut out: Vec<NodeId> = match index {
                Some(idx) => idx.containing(span),
                None => g
                    .elements()
                    .filter(|&e| !g.span(e).is_empty() && g.span(e).contains(span))
                    .collect(),
            };
            out.retain(|&e| e != node);
            // The root contains everything.
            if node != g.root() {
                out.push(g.root());
            }
            g.sort_doc_order(&mut out);
            out
        }
        Axis::Contained => {
            let span = g.span(node);
            let mut out: Vec<NodeId> = match index {
                Some(idx) => idx.contained_in(span),
                None => g
                    .elements()
                    .filter(|&e| !g.span(e).is_empty() && span.contains(g.span(e)))
                    .collect(),
            };
            // Milestones anchored strictly inside count as contained.
            out.extend(g.elements().filter(|&e| {
                let es = g.span(e);
                es.is_empty() && span.start < es.start && es.start < span.end
            }));
            out.retain(|&e| e != node);
            g.sort_doc_order(&mut out);
            out
        }
        Axis::CoExtensive => {
            let span = g.span(node);
            let mut out: Vec<NodeId> = match index {
                Some(idx) if !span.is_empty() => idx.co_extensive(span),
                _ => g.elements().filter(|&e| g.span(e).co_extensive(span)).collect(),
            };
            out.retain(|&e| e != node);
            g.sort_doc_order(&mut out);
            out
        }
    }
}

/// Union of per-hierarchy ancestor chains, nearest-first by span (inner
/// before outer), ending with the root.
fn ancestors_nearest_first(g: &Goddag, node: NodeId) -> Vec<NodeId> {
    let mut out = g.ancestors(node);
    // `ancestors` returns document order (outermost spans first); reverse
    // for nearest-first, keeping the root last.
    out.reverse();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use goddag::GoddagBuilder;
    use xmlcore::QName;

    fn fixture() -> Goddag {
        let mut b = GoddagBuilder::new(QName::parse("r").unwrap());
        b.content("one two three four");
        let phys = b.hierarchy("phys");
        let ling = b.hierarchy("ling");
        b.range(phys, "line", vec![], 0, 7).unwrap();
        b.range(phys, "line", vec![], 8, 18).unwrap();
        b.range(ling, "w", vec![], 0, 3).unwrap();
        b.range(ling, "w", vec![], 4, 7).unwrap();
        b.range(ling, "s", vec![], 4, 13).unwrap();
        b.range(ling, "w", vec![], 8, 13).unwrap();
        b.range(ling, "w", vec![], 14, 18).unwrap();
        b.finish().unwrap()
    }

    fn names(g: &Goddag, ids: &[NodeId]) -> Vec<String> {
        ids.iter()
            .map(|&n| {
                g.name(n)
                    .map(|q| q.local.clone())
                    .unwrap_or_else(|| format!("leaf:{:?}", g.leaf_text(n).unwrap()))
            })
            .collect()
    }

    #[test]
    fn overlapping_axis_finds_cross_hierarchy_conflicts() {
        let g = fixture();
        let s = g.find_elements("s")[0];
        let over = axis_candidates(&g, None, s, Axis::Overlapping);
        assert_eq!(names(&g, &over), ["line", "line"]);
        // And symmetric from a line.
        let line0 = g.find_elements("line")[0];
        let over = axis_candidates(&g, None, line0, Axis::Overlapping);
        assert_eq!(names(&g, &over), ["s"]);
    }

    #[test]
    fn overlapping_with_index_matches_scan() {
        let g = fixture();
        let idx = OverlapIndex::build(&g);
        for e in g.elements() {
            let with = axis_candidates(&g, Some(&idx), e, Axis::Overlapping);
            let without = axis_candidates(&g, None, e, Axis::Overlapping);
            assert_eq!(with, without);
        }
    }

    #[test]
    fn containing_axis_crosses_hierarchies() {
        let g = fixture();
        // w("two") [4,7) is inside line1 [0,7) and s [4,13).
        let w_two = g.find_elements("w")[1];
        let containing = axis_candidates(&g, None, w_two, Axis::Containing);
        let mut n = names(&g, &containing);
        n.sort();
        assert_eq!(n, ["line", "r", "s"]);
    }

    #[test]
    fn contained_axis_crosses_hierarchies() {
        let g = fixture();
        let line0 = g.find_elements("line")[0];
        let contained = axis_candidates(&g, None, line0, Axis::Contained);
        let mut n = names(&g, &contained);
        n.sort();
        // Words "one" and "two" fit inside line 1; s does not (crosses).
        assert_eq!(n, ["w", "w"]);
    }

    #[test]
    fn co_extensive_axis() {
        let mut b = GoddagBuilder::new(QName::parse("r").unwrap());
        b.content("abc");
        let h0 = b.hierarchy("a");
        let h1 = b.hierarchy("b");
        b.range(h0, "x", vec![], 0, 3).unwrap();
        b.range(h1, "y", vec![], 0, 3).unwrap();
        let g = b.finish().unwrap();
        let x = g.find_elements("x")[0];
        let co = axis_candidates(&g, None, x, Axis::CoExtensive);
        assert_eq!(names(&g, &co), ["y"]);
    }

    #[test]
    fn child_axis_on_root_merges_hierarchies() {
        let g = fixture();
        let kids = axis_candidates(&g, None, g.root(), Axis::Child);
        let elem_names: Vec<_> = kids.iter().filter(|&&n| g.is_element(n)).collect();
        // 2 lines + ling top-level {w(one), s, w(four)} — w(two) nests in s.
        assert_eq!(elem_names.len(), 5);
    }

    #[test]
    fn parent_axis_on_shared_leaf() {
        let g = fixture();
        let leaf_two = g.leaf_at_char(5).unwrap();
        let parents = axis_candidates(&g, None, leaf_two, Axis::Parent);
        let mut n = names(&g, &parents);
        n.sort();
        assert_eq!(n, ["line", "w"]);
    }

    #[test]
    fn ancestor_nearest_first() {
        let g = fixture();
        let leaf_three = g.leaf_at_char(9).unwrap();
        let anc = axis_candidates(&g, None, leaf_three, Axis::Ancestor);
        // Nearest-first, root last.
        assert_eq!(anc.last().copied(), Some(g.root()));
        let n = names(&g, &anc);
        assert!(n[0] == "w" || n[0] == "line");
    }

    #[test]
    fn following_and_preceding_direction() {
        let g = fixture();
        let w_one = g.find_elements("w")[0];
        let following = axis_candidates(&g, None, w_one, Axis::Following);
        assert!(!following.is_empty());
        assert!(following.iter().all(|&n| g.span(w_one).precedes(g.span(n))));
        let w_four = g.find_elements("w")[3];
        let preceding = axis_candidates(&g, None, w_four, Axis::Preceding);
        assert!(preceding.iter().all(|&n| g.span(n).precedes(g.span(w_four))));
        // Reverse axis: nearest first.
        let first = preceding[0];
        assert!(g.span(first).end >= g.span(*preceding.last().unwrap()).end);
    }

    #[test]
    fn self_and_descendant_or_self() {
        let g = fixture();
        let line = g.find_elements("line")[0];
        assert_eq!(axis_candidates(&g, None, line, Axis::SelfAxis), vec![line]);
        let dos = axis_candidates(&g, None, line, Axis::DescendantOrSelf);
        assert_eq!(dos[0], line);
        assert!(dos.len() > 1);
    }

    #[test]
    fn containing_includes_root() {
        let g = fixture();
        let w = g.find_elements("w")[0];
        let containing = axis_candidates(&g, None, w, Axis::Containing);
        assert!(containing.contains(&g.root()));
        // But the root's own containing set is empty.
        assert!(axis_candidates(&g, None, g.root(), Axis::Containing).is_empty());
    }

    #[test]
    fn milestones_contained_when_strictly_inside() {
        let mut b = GoddagBuilder::new(QName::parse("r").unwrap());
        b.content("abcd");
        let h0 = b.hierarchy("a");
        let h1 = b.hierarchy("b");
        b.range(h0, "seg", vec![], 0, 4).unwrap();
        b.range(h1, "pb", vec![], 2, 2).unwrap();
        let g = b.finish().unwrap();
        let seg = g.find_elements("seg")[0];
        let contained = axis_candidates(&g, None, seg, Axis::Contained);
        assert_eq!(names(&g, &contained), ["pb"]);
    }
}
