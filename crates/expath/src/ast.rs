//! Abstract syntax of Extended XPath.

use std::fmt;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `or`
    Or,
    /// `and`
    And,
    /// `=`
    Eq,
    /// `!=`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `div`
    Div,
    /// `mod`
    Mod,
}

/// Axes: the XPath 1.0 axes redefined on GODDAG, plus the concurrent-markup
/// axes of the Extended XPath (paper §4: "the overlapping axis" and friends).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// Children within the node's hierarchy (all hierarchies from the root).
    Child,
    /// Transitive children.
    Descendant,
    /// Self plus descendants.
    DescendantOrSelf,
    /// All parents (one per hierarchy for shared leaves).
    Parent,
    /// Union of per-hierarchy ancestor chains.
    Ancestor,
    /// Self plus ancestors.
    AncestorOrSelf,
    /// Later siblings within the hierarchy.
    FollowingSibling,
    /// Earlier siblings within the hierarchy (nearest first).
    PrecedingSibling,
    /// Nodes strictly after in document order.
    Following,
    /// Nodes strictly before in document order.
    Preceding,
    /// The node itself.
    SelfAxis,
    /// Attributes.
    Attribute,
    /// **Extended**: elements whose span properly overlaps the context's
    /// span (shares leaves, neither contains the other) — the paper's
    /// signature axis for concurrent markup.
    Overlapping,
    /// **Extended**: elements of any hierarchy whose span contains the
    /// context's span ("ancestors by extent").
    Containing,
    /// **Extended**: elements of any hierarchy whose span lies within the
    /// context's span ("descendants by extent").
    Contained,
    /// **Extended**: elements with exactly the same span.
    CoExtensive,
}

impl Axis {
    /// Resolve an axis name.
    pub fn from_name(name: &str) -> Option<Axis> {
        Some(match name {
            "child" => Axis::Child,
            "descendant" => Axis::Descendant,
            "descendant-or-self" => Axis::DescendantOrSelf,
            "parent" => Axis::Parent,
            "ancestor" => Axis::Ancestor,
            "ancestor-or-self" => Axis::AncestorOrSelf,
            "following-sibling" => Axis::FollowingSibling,
            "preceding-sibling" => Axis::PrecedingSibling,
            "following" => Axis::Following,
            "preceding" => Axis::Preceding,
            "self" => Axis::SelfAxis,
            "attribute" => Axis::Attribute,
            "overlapping" => Axis::Overlapping,
            "containing" => Axis::Containing,
            "contained" => Axis::Contained,
            "co-extensive" | "coextensive" => Axis::CoExtensive,
            _ => return None,
        })
    }

    /// Reverse axes order their results nearest-first, and `position()`
    /// counts accordingly (XPath 1.0 §2.4).
    pub fn is_reverse(self) -> bool {
        matches!(
            self,
            Axis::Parent
                | Axis::Ancestor
                | Axis::AncestorOrSelf
                | Axis::PrecedingSibling
                | Axis::Preceding
        )
    }
}

impl fmt::Display for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Axis::Child => "child",
            Axis::Descendant => "descendant",
            Axis::DescendantOrSelf => "descendant-or-self",
            Axis::Parent => "parent",
            Axis::Ancestor => "ancestor",
            Axis::AncestorOrSelf => "ancestor-or-self",
            Axis::FollowingSibling => "following-sibling",
            Axis::PrecedingSibling => "preceding-sibling",
            Axis::Following => "following",
            Axis::Preceding => "preceding",
            Axis::SelfAxis => "self",
            Axis::Attribute => "attribute",
            Axis::Overlapping => "overlapping",
            Axis::Containing => "containing",
            Axis::Contained => "contained",
            Axis::CoExtensive => "co-extensive",
        };
        f.write_str(s)
    }
}

/// Node tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeTest {
    /// `*` — any element (any hierarchy).
    Any,
    /// `prefix:*` — any element of the named hierarchy.
    AnyInHierarchy(String),
    /// `name` or `prefix:name` — element with the local name, optionally
    /// restricted to the named hierarchy.
    Name {
        /// Hierarchy qualifier (the QName prefix).
        hierarchy: Option<String>,
        /// Local element name.
        local: String,
    },
    /// `text()` — leaf nodes.
    Text,
    /// `node()` — any node.
    Node,
}

/// One location step.
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    /// The axis.
    pub axis: Axis,
    /// The node test.
    pub test: NodeTest,
    /// Predicate expressions.
    pub predicates: Vec<Expr>,
}

/// Where a path starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathStart {
    /// `/...` — the document root.
    Root,
    /// relative — the context node.
    Context,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary minus.
    Neg(Box<Expr>),
    /// Node-set union `a | b`.
    Union(Box<Expr>, Box<Expr>),
    /// A location path.
    Path {
        /// Start anchor.
        start: PathStart,
        /// The steps.
        steps: Vec<Step>,
    },
    /// A primary expression filtered by predicates and continued by a path:
    /// `count(x)[...]/child::y` style. `steps` may be empty.
    Filter {
        /// The primary expression.
        primary: Box<Expr>,
        /// Predicates on the primary's node-set.
        predicates: Vec<Expr>,
        /// Trailing path steps.
        steps: Vec<Step>,
    },
    /// String literal.
    Literal(String),
    /// Numeric literal.
    Number(f64),
    /// Function call.
    Call {
        /// Function name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axis_from_name_roundtrip() {
        for name in [
            "child",
            "descendant",
            "descendant-or-self",
            "parent",
            "ancestor",
            "ancestor-or-self",
            "following-sibling",
            "preceding-sibling",
            "following",
            "preceding",
            "self",
            "attribute",
            "overlapping",
            "containing",
            "contained",
            "co-extensive",
        ] {
            let axis = Axis::from_name(name).unwrap_or_else(|| panic!("{name} must resolve"));
            assert_eq!(axis.to_string(), name);
        }
        assert_eq!(Axis::from_name("coextensive"), Some(Axis::CoExtensive));
        assert_eq!(Axis::from_name("sideways"), None);
    }

    #[test]
    fn reverse_axes() {
        assert!(Axis::Ancestor.is_reverse());
        assert!(Axis::PrecedingSibling.is_reverse());
        assert!(!Axis::Child.is_reverse());
        assert!(!Axis::Overlapping.is_reverse());
    }
}
