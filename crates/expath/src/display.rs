//! Unparsing: render an [`Expr`] back to query text.
//!
//! `parse(expr.to_string())` reproduces the same AST (tested below), which
//! gives stable diagnostics, loggable query plans, and programmatic query
//! construction.

use crate::ast::{BinOp, Expr, NodeTest, PathStart, Step};
use std::fmt;

impl fmt::Display for NodeTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeTest::Any => f.write_str("*"),
            NodeTest::AnyInHierarchy(h) => write!(f, "{h}:*"),
            NodeTest::Name { hierarchy: Some(h), local } => write!(f, "{h}:{local}"),
            NodeTest::Name { hierarchy: None, local } => f.write_str(local),
            NodeTest::Text => f.write_str("text()"),
            NodeTest::Node => f.write_str("node()"),
        }
    }
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}::{}", self.axis, self.test)?;
        for p in &self.predicates {
            write!(f, "[{p}]")?;
        }
        Ok(())
    }
}

fn write_steps(f: &mut fmt::Formatter<'_>, steps: &[Step], leading_slash: bool) -> fmt::Result {
    for (i, step) in steps.iter().enumerate() {
        if i > 0 || leading_slash {
            f.write_str("/")?;
        }
        write!(f, "{step}")?;
    }
    Ok(())
}

impl BinOp {
    /// The operator's spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Or => "or",
            BinOp::And => "and",
            BinOp::Eq => "=",
            BinOp::Neq => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "div",
            BinOp::Mod => "mod",
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            // Fully parenthesized binary forms: unambiguous and re-parseable.
            Expr::Bin(op, lhs, rhs) => write!(f, "({lhs} {} {rhs})", op.symbol()),
            Expr::Neg(inner) => write!(f, "(- {inner})"),
            Expr::Union(lhs, rhs) => write!(f, "({lhs} | {rhs})"),
            Expr::Literal(s) => {
                // Pick a quote not used in the literal (XPath has no escape).
                if s.contains('\'') {
                    write!(f, "\"{s}\"")
                } else {
                    write!(f, "'{s}'")
                }
            }
            Expr::Number(n) => {
                if *n < 0.0 {
                    write!(f, "(- {})", crate::value::format_number(-n))
                } else {
                    f.write_str(&crate::value::format_number(*n))
                }
            }
            Expr::Call { name, args } => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{a}")?;
                }
                f.write_str(")")
            }
            Expr::Path { start, steps } => match start {
                PathStart::Root => {
                    if steps.is_empty() {
                        return f.write_str("/");
                    }
                    write_steps(f, steps, true)
                }
                PathStart::Context => write_steps(f, steps, false),
            },
            Expr::Filter { primary, predicates, steps } => {
                write!(f, "({primary})")?;
                for p in predicates {
                    write!(f, "[{p}]")?;
                }
                if !steps.is_empty() {
                    write_steps(f, steps, true)?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    /// Parse → print → parse must be a fixpoint on the AST.
    fn roundtrip(q: &str) {
        let ast = parse(q).unwrap_or_else(|e| panic!("{q}: {e}"));
        let printed = ast.to_string();
        let again = parse(&printed).unwrap_or_else(|e| panic!("printed {printed:?}: {e}"));
        assert_eq!(again, ast, "{q} -> {printed}");
    }

    #[test]
    fn paths_roundtrip() {
        for q in [
            "/",
            "//w",
            "/line/w",
            "//s/overlapping::phys:line",
            "child::ling:*",
            "//w[@type='noun'][2]",
            "(//w)[1]/containing::*",
            ".",
            "..",
            "./..",
            "//line[1]/text()",
            "self::node()",
            "//dmg/contained::ling:w",
            "//x/co-extensive::*",
        ] {
            roundtrip(q);
        }
    }

    #[test]
    fn expressions_roundtrip() {
        for q in [
            "1 + 2 * 3",
            "count(//w) > 3 and not(false())",
            "'lit' = \"lit\"",
            "concat('a', 'b', 'c')",
            "- 5",
            "6 div 2 mod 2",
            "//a | //b | //c",
            "string-length(normalize-space(string(//w)))",
            "overlaps(//s, //line) or contains('xy', 'x')",
            "position() = last()",
        ] {
            roundtrip(q);
        }
    }

    #[test]
    fn printed_form_is_explicit() {
        let ast = parse("//w[2]").unwrap();
        let printed = ast.to_string();
        // Abbreviations expand to explicit axes.
        assert!(printed.contains("descendant-or-self::node()"), "{printed}");
        assert!(printed.contains("child::w"), "{printed}");
    }

    #[test]
    fn literals_with_quotes() {
        let e = Expr::Literal("it's".into());
        assert_eq!(e.to_string(), "\"it's\"");
        roundtrip("\"it's\"");
    }

    #[test]
    fn evaluation_agrees_after_roundtrip() {
        let g = sacx::parse_distributed(&[
            ("phys", "<r><line>ab cd</line></r>"),
            ("ling", "<r><w>ab</w> <w>cd</w></r>"),
        ])
        .unwrap();
        let ev = crate::Evaluator::new(&g);
        for q in ["//w", "count(//w) * 2", "//line/overlapping::ling:w"] {
            let direct = ev.eval_str(q).unwrap();
            let printed = parse(q).unwrap().to_string();
            let via_print = ev.eval_str(&printed).unwrap();
            assert_eq!(direct, via_print, "{q} vs {printed}");
        }
    }
}
