//! The Extended XPath value model: node-sets, attribute-sets, numbers,
//! strings and booleans (XPath 1.0 §1, with attribute nodes represented as
//! `(element, attribute index)` pairs).

use goddag::{Goddag, NodeId};

/// A reference to one attribute node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttrRef {
    /// The owning element.
    pub element: NodeId,
    /// Index into the element's attribute list.
    pub index: usize,
}

impl AttrRef {
    /// The attribute's value.
    pub fn value<'g>(&self, g: &'g Goddag) -> &'g str {
        &g.attrs(self.element)[self.index].value
    }

    /// The attribute's name.
    pub fn name(&self, g: &Goddag) -> String {
        g.attrs(self.element)[self.index].name.to_string()
    }
}

/// An Extended XPath value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A node-set in document order, deduplicated.
    Nodes(Vec<NodeId>),
    /// An attribute-node set.
    Attrs(Vec<AttrRef>),
    /// A number.
    Number(f64),
    /// A string.
    Str(String),
    /// A boolean.
    Bool(bool),
}

impl Value {
    /// The empty node-set.
    pub fn empty() -> Value {
        Value::Nodes(Vec::new())
    }

    /// XPath `string()` conversion.
    pub fn string_value(&self, g: &Goddag) -> String {
        match self {
            Value::Nodes(ns) => ns.first().map(|&n| g.text_of(n)).unwrap_or_default(),
            Value::Attrs(attrs) => {
                attrs.first().map(|a| a.value(g).to_string()).unwrap_or_default()
            }
            Value::Number(n) => format_number(*n),
            Value::Str(s) => s.clone(),
            Value::Bool(b) => if *b { "true" } else { "false" }.to_string(),
        }
    }

    /// XPath `number()` conversion.
    pub fn number_value(&self, g: &Goddag) -> f64 {
        match self {
            Value::Number(n) => *n,
            Value::Bool(b) => {
                if *b {
                    1.0
                } else {
                    0.0
                }
            }
            other => {
                let s = other.string_value(g);
                s.trim().parse::<f64>().unwrap_or(f64::NAN)
            }
        }
    }

    /// XPath `boolean()` conversion. (Node-set conversions don't need the
    /// graph; the uniform signature keeps call sites simple.)
    pub fn boolean_value(&self, _g: &Goddag) -> bool {
        match self {
            Value::Nodes(ns) => !ns.is_empty(),
            Value::Attrs(attrs) => !attrs.is_empty(),
            Value::Number(n) => *n != 0.0 && !n.is_nan(),
            Value::Str(s) => !s.is_empty(),
            Value::Bool(b) => *b,
        }
    }

    /// The node-set, if this value is one.
    pub fn as_nodes(&self) -> Option<&[NodeId]> {
        match self {
            Value::Nodes(ns) => Some(ns),
            _ => None,
        }
    }

    /// Is this value a node-set or attribute-set?
    pub fn is_set(&self) -> bool {
        matches!(self, Value::Nodes(_) | Value::Attrs(_))
    }

    /// The string values of every member (for set-vs-value comparisons).
    pub fn member_strings(&self, g: &Goddag) -> Vec<String> {
        match self {
            Value::Nodes(ns) => ns.iter().map(|&n| g.text_of(n)).collect(),
            Value::Attrs(attrs) => attrs.iter().map(|a| a.value(g).to_string()).collect(),
            other => vec![other.string_value(g)],
        }
    }

    /// Number of members for `count()`.
    pub fn count(&self) -> Option<usize> {
        match self {
            Value::Nodes(ns) => Some(ns.len()),
            Value::Attrs(attrs) => Some(attrs.len()),
            _ => None,
        }
    }
}

/// XPath number-to-string: integers print without a decimal point.
pub fn format_number(n: f64) -> String {
    if n.is_nan() {
        "NaN".to_string()
    } else if n.is_infinite() {
        if n > 0.0 { "Infinity" } else { "-Infinity" }.to_string()
    } else if n == n.trunc() && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use goddag::GoddagBuilder;
    use xmlcore::QName;

    fn g() -> Goddag {
        let mut b = GoddagBuilder::new(QName::parse("r").unwrap());
        b.content("42 hello");
        let h = b.hierarchy("h");
        b.range(h, "n", vec![xmlcore::Attribute::new("a", "7")], 0, 2).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn string_conversions() {
        let g = g();
        let n = g.find_elements("n")[0];
        assert_eq!(Value::Nodes(vec![n]).string_value(&g), "42");
        assert_eq!(Value::Nodes(vec![]).string_value(&g), "");
        assert_eq!(Value::Number(3.0).string_value(&g), "3");
        assert_eq!(Value::Number(3.25).string_value(&g), "3.25");
        assert_eq!(Value::Bool(true).string_value(&g), "true");
        assert_eq!(Value::Attrs(vec![AttrRef { element: n, index: 0 }]).string_value(&g), "7");
    }

    #[test]
    fn number_conversions() {
        let g = g();
        let n = g.find_elements("n")[0];
        assert_eq!(Value::Nodes(vec![n]).number_value(&g), 42.0);
        assert!(Value::Str("x".into()).number_value(&g).is_nan());
        assert_eq!(Value::Bool(true).number_value(&g), 1.0);
        assert_eq!(Value::Str(" 5 ".into()).number_value(&g), 5.0);
    }

    #[test]
    fn boolean_conversions() {
        let g = g();
        assert!(!Value::Nodes(vec![]).boolean_value(&g));
        assert!(Value::Nodes(vec![g.root()]).boolean_value(&g));
        assert!(!Value::Number(0.0).boolean_value(&g));
        assert!(!Value::Number(f64::NAN).boolean_value(&g));
        assert!(Value::Number(-1.0).boolean_value(&g));
        assert!(!Value::Str("".into()).boolean_value(&g));
        assert!(Value::Str("x".into()).boolean_value(&g));
    }

    #[test]
    fn number_formatting() {
        assert_eq!(format_number(0.0), "0");
        assert_eq!(format_number(-2.0), "-2");
        assert_eq!(format_number(2.5), "2.5");
        assert_eq!(format_number(f64::NAN), "NaN");
        assert_eq!(format_number(f64::INFINITY), "Infinity");
    }

    #[test]
    fn member_strings_and_count() {
        let g = g();
        let n = g.find_elements("n")[0];
        let v = Value::Nodes(vec![n, g.root()]);
        assert_eq!(v.member_strings(&g), vec!["42".to_string(), "42 hello".to_string()]);
        assert_eq!(v.count(), Some(2));
        assert_eq!(Value::Number(1.0).count(), None);
    }
}
