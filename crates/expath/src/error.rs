//! Extended XPath error types.

use std::fmt;

/// Errors from parsing or evaluating Extended XPath expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum XPathError {
    /// Lexical or syntactic error, with the char offset in the expression.
    Parse { pos: usize, detail: String },
    /// Unknown function name.
    UnknownFunction(String),
    /// A function was called with the wrong number or type of arguments.
    BadArguments { function: String, detail: String },
    /// A hierarchy qualifier does not name a hierarchy of the document.
    UnknownHierarchy(String),
    /// Unknown axis name.
    UnknownAxis(String),
    /// Any other evaluation error.
    Eval(String),
}

impl fmt::Display for XPathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XPathError::Parse { pos, detail } => {
                write!(f, "XPath syntax error at offset {pos}: {detail}")
            }
            XPathError::UnknownFunction(name) => write!(f, "unknown function {name}()"),
            XPathError::BadArguments { function, detail } => {
                write!(f, "bad arguments to {function}(): {detail}")
            }
            XPathError::UnknownHierarchy(h) => write!(f, "unknown hierarchy {h:?}"),
            XPathError::UnknownAxis(a) => write!(f, "unknown axis {a:?}"),
            XPathError::Eval(s) => write!(f, "evaluation error: {s}"),
        }
    }
}

impl std::error::Error for XPathError {}

/// Result alias for XPath operations.
pub type Result<T> = std::result::Result<T, XPathError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_parse_error() {
        let e = XPathError::Parse { pos: 7, detail: "expected ']'".into() };
        assert!(e.to_string().contains("offset 7"));
    }
}
