//! Tokenizer for Extended XPath expressions.
//!
//! Deviations from XPath 1.0 lexing, documented for users:
//! * binary minus requires surrounding whitespace (`a - b`); a `-` directly
//!   attached to a name is part of the name (`following-sibling`,
//!   `co-extensive`);
//! * `*` is emitted as a single token; the parser decides between wildcard
//!   and multiplication by position, as the XPath spec prescribes.

use crate::error::{Result, XPathError};

/// One token with its char offset.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Byte offset of the token start in the expression.
    pub pos: usize,
    /// Token kind/payload.
    pub kind: Tok,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Numeric literal.
    Number(f64),
    /// String literal (quotes stripped).
    Literal(String),
    /// A name: NCName, or `prefix:local`, or `prefix:*` (star captured as
    /// `*` in `local`). Also operators spelled as names (`and`, `or`, `div`,
    /// `mod`) — the parser decides by position.
    Name { prefix: Option<String>, local: String },
    /// `::`
    DoubleColon,
    /// `/`
    Slash,
    /// `//`
    DoubleSlash,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `@`
    At,
    /// `.`
    Dot,
    /// `..`
    DotDot,
    /// `,`
    Comma,
    /// `|`
    Pipe,
    /// `+`
    Plus,
    /// `-` (standalone)
    Minus,
    /// `=`
    Eq,
    /// `!=`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `*`
    Star,
}

fn is_name_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_name_char(c: char) -> bool {
    c.is_alphanumeric() || matches!(c, '_' | '-' | '.')
}

/// Tokenize an expression.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let bytes: Vec<char> = input.chars().collect();
    let mut offsets: Vec<usize> = Vec::with_capacity(bytes.len() + 1);
    {
        let mut o = 0;
        for c in &bytes {
            offsets.push(o);
            o += c.len_utf8();
        }
        offsets.push(o);
    }
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        let pos = offsets[i];
        match c {
            c if c.is_whitespace() => {
                i += 1;
            }
            '/' => {
                if bytes.get(i + 1) == Some(&'/') {
                    tokens.push(Token { pos, kind: Tok::DoubleSlash });
                    i += 2;
                } else {
                    tokens.push(Token { pos, kind: Tok::Slash });
                    i += 1;
                }
            }
            ':' => {
                if bytes.get(i + 1) == Some(&':') {
                    tokens.push(Token { pos, kind: Tok::DoubleColon });
                    i += 2;
                } else {
                    return Err(XPathError::Parse {
                        pos,
                        detail: "stray ':' (prefixes attach directly to names)".into(),
                    });
                }
            }
            '[' => {
                tokens.push(Token { pos, kind: Tok::LBracket });
                i += 1;
            }
            ']' => {
                tokens.push(Token { pos, kind: Tok::RBracket });
                i += 1;
            }
            '(' => {
                tokens.push(Token { pos, kind: Tok::LParen });
                i += 1;
            }
            ')' => {
                tokens.push(Token { pos, kind: Tok::RParen });
                i += 1;
            }
            '@' => {
                tokens.push(Token { pos, kind: Tok::At });
                i += 1;
            }
            ',' => {
                tokens.push(Token { pos, kind: Tok::Comma });
                i += 1;
            }
            '|' => {
                tokens.push(Token { pos, kind: Tok::Pipe });
                i += 1;
            }
            '+' => {
                tokens.push(Token { pos, kind: Tok::Plus });
                i += 1;
            }
            '-' => {
                tokens.push(Token { pos, kind: Tok::Minus });
                i += 1;
            }
            '=' => {
                tokens.push(Token { pos, kind: Tok::Eq });
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&'=') {
                    tokens.push(Token { pos, kind: Tok::Neq });
                    i += 2;
                } else {
                    return Err(XPathError::Parse { pos, detail: "'!' must be '!='".into() });
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&'=') {
                    tokens.push(Token { pos, kind: Tok::Le });
                    i += 2;
                } else {
                    tokens.push(Token { pos, kind: Tok::Lt });
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&'=') {
                    tokens.push(Token { pos, kind: Tok::Ge });
                    i += 2;
                } else {
                    tokens.push(Token { pos, kind: Tok::Gt });
                    i += 1;
                }
            }
            '*' => {
                tokens.push(Token { pos, kind: Tok::Star });
                i += 1;
            }
            '.' => {
                if bytes.get(i + 1) == Some(&'.') {
                    tokens.push(Token { pos, kind: Tok::DotDot });
                    i += 2;
                } else if bytes.get(i + 1).is_some_and(|c| c.is_ascii_digit()) {
                    // .5 style number
                    let (n, len) = scan_number(&bytes[i..], pos)?;
                    tokens.push(Token { pos, kind: Tok::Number(n) });
                    i += len;
                } else {
                    tokens.push(Token { pos, kind: Tok::Dot });
                    i += 1;
                }
            }
            '\'' | '"' => {
                let quote = c;
                let mut j = i + 1;
                let mut lit = String::new();
                loop {
                    match bytes.get(j) {
                        Some(&ch) if ch == quote => break,
                        Some(&ch) => {
                            lit.push(ch);
                            j += 1;
                        }
                        None => {
                            return Err(XPathError::Parse {
                                pos,
                                detail: "unterminated string literal".into(),
                            })
                        }
                    }
                }
                tokens.push(Token { pos, kind: Tok::Literal(lit) });
                i = j + 1;
            }
            c if c.is_ascii_digit() => {
                let (n, len) = scan_number(&bytes[i..], pos)?;
                tokens.push(Token { pos, kind: Tok::Number(n) });
                i += len;
            }
            c if is_name_start(c) => {
                let mut j = i + 1;
                while bytes.get(j).copied().is_some_and(is_name_char) {
                    j += 1;
                }
                let first: String = bytes[i..j].iter().collect();
                // `prefix:local` or `prefix:*` — but not `::`.
                if bytes.get(j) == Some(&':') && bytes.get(j + 1) != Some(&':') {
                    let k = j + 1;
                    if bytes.get(k) == Some(&'*') {
                        tokens.push(Token {
                            pos,
                            kind: Tok::Name { prefix: Some(first), local: "*".into() },
                        });
                        i = k + 1;
                        continue;
                    }
                    if bytes.get(k).copied().is_some_and(is_name_start) {
                        let mut m = k + 1;
                        while bytes.get(m).copied().is_some_and(is_name_char) {
                            m += 1;
                        }
                        let local: String = bytes[k..m].iter().collect();
                        tokens.push(Token { pos, kind: Tok::Name { prefix: Some(first), local } });
                        i = m;
                        continue;
                    }
                    return Err(XPathError::Parse {
                        pos: offsets[j],
                        detail: "expected a name or '*' after prefix ':'".into(),
                    });
                }
                tokens.push(Token { pos, kind: Tok::Name { prefix: None, local: first } });
                i = j;
            }
            other => {
                return Err(XPathError::Parse {
                    pos,
                    detail: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    Ok(tokens)
}

fn scan_number(chars: &[char], pos: usize) -> Result<(f64, usize)> {
    let mut j = 0;
    let mut seen_dot = false;
    while j < chars.len() {
        match chars[j] {
            c if c.is_ascii_digit() => j += 1,
            '.' if !(seen_dot || (j + 1 < chars.len() && chars[j + 1] == '.')) => {
                seen_dot = true;
                j += 1;
            }
            _ => break,
        }
    }
    let s: String = chars[..j].iter().collect();
    s.parse::<f64>()
        .map(|n| (n, j))
        .map_err(|e| XPathError::Parse { pos, detail: format!("bad number {s:?}: {e}") })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(s: &str) -> Vec<Tok> {
        tokenize(s).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn simple_path() {
        assert_eq!(
            kinds("/child::line"),
            vec![
                Tok::Slash,
                Tok::Name { prefix: None, local: "child".into() },
                Tok::DoubleColon,
                Tok::Name { prefix: None, local: "line".into() },
            ]
        );
    }

    #[test]
    fn prefixed_names_and_axes() {
        assert_eq!(
            kinds("overlapping::phys:line"),
            vec![
                Tok::Name { prefix: None, local: "overlapping".into() },
                Tok::DoubleColon,
                Tok::Name { prefix: Some("phys".into()), local: "line".into() },
            ]
        );
    }

    #[test]
    fn prefixed_wildcard() {
        assert_eq!(
            kinds("ling:*"),
            vec![Tok::Name { prefix: Some("ling".into()), local: "*".into() }]
        );
    }

    #[test]
    fn hyphen_in_names() {
        assert_eq!(
            kinds("following-sibling::w"),
            vec![
                Tok::Name { prefix: None, local: "following-sibling".into() },
                Tok::DoubleColon,
                Tok::Name { prefix: None, local: "w".into() },
            ]
        );
    }

    #[test]
    fn minus_needs_space() {
        assert_eq!(kinds("3 - 1"), vec![Tok::Number(3.0), Tok::Minus, Tok::Number(1.0)]);
        // attached '-' binds into the name
        assert_eq!(kinds("a-b"), vec![Tok::Name { prefix: None, local: "a-b".into() }]);
    }

    #[test]
    fn numbers_and_literals() {
        assert_eq!(
            kinds("1.5 'two' \"three\" .25"),
            vec![
                Tok::Number(1.5),
                Tok::Literal("two".into()),
                Tok::Literal("three".into()),
                Tok::Number(0.25),
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            kinds("a != b <= c >= d < e > f = g"),
            vec![
                Tok::Name { prefix: None, local: "a".into() },
                Tok::Neq,
                Tok::Name { prefix: None, local: "b".into() },
                Tok::Le,
                Tok::Name { prefix: None, local: "c".into() },
                Tok::Ge,
                Tok::Name { prefix: None, local: "d".into() },
                Tok::Lt,
                Tok::Name { prefix: None, local: "e".into() },
                Tok::Gt,
                Tok::Name { prefix: None, local: "f".into() },
                Tok::Eq,
                Tok::Name { prefix: None, local: "g".into() },
            ]
        );
    }

    #[test]
    fn predicates_and_functions() {
        assert_eq!(kinds("//w[@type='noun'][position() > 2]").len(), 15);
    }

    #[test]
    fn dots() {
        assert_eq!(kinds(". .. ./."), vec![Tok::Dot, Tok::DotDot, Tok::Dot, Tok::Slash, Tok::Dot]);
    }

    #[test]
    fn errors_positioned() {
        match tokenize("abc $x") {
            Err(XPathError::Parse { pos, .. }) => assert_eq!(pos, 4),
            other => panic!("unexpected {other:?}"),
        }
        assert!(tokenize("'unterminated").is_err());
        assert!(tokenize("a ! b").is_err());
    }

    #[test]
    fn double_slash() {
        assert_eq!(kinds("//*")[0], Tok::DoubleSlash);
    }
}
