//! The Extended XPath function library: the XPath 1.0 core plus
//! concurrent-markup functions (`hierarchy()`, `overlaps()`, `leaves()`).

use crate::error::{Result, XPathError};
use crate::value::{AttrRef, Value};
use goddag::{Goddag, NodeId};

/// Static context passed to functions needing `position()`/`last()`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct EvalCtx {
    /// The context node.
    pub node: NodeId,
    /// 1-based context position.
    pub position: usize,
    /// Context size.
    pub size: usize,
}

fn bad(function: &str, detail: impl Into<String>) -> XPathError {
    XPathError::BadArguments { function: function.into(), detail: detail.into() }
}

fn arity(function: &str, args: &[Value], min: usize, max: usize) -> Result<()> {
    if args.len() < min || args.len() > max {
        Err(bad(function, format!("expected {min}..={max} arguments, got {}", args.len())))
    } else {
        Ok(())
    }
}

/// First node of a node-set argument, or the context node when absent.
fn node_arg(function: &str, args: &[Value], ctx: &EvalCtx) -> Result<Option<NodeId>> {
    match args.first() {
        None => Ok(Some(ctx.node)),
        Some(Value::Nodes(ns)) => Ok(ns.first().copied()),
        Some(other) => Err(bad(function, format!("expected a node-set, got {other:?}"))),
    }
}

/// Evaluate a function call with already-evaluated arguments.
pub(crate) fn call(g: &Goddag, ctx: &EvalCtx, name: &str, args: Vec<Value>) -> Result<Value> {
    match name {
        // Context ---------------------------------------------------------
        "position" => {
            arity(name, &args, 0, 0)?;
            Ok(Value::Number(ctx.position as f64))
        }
        "last" => {
            arity(name, &args, 0, 0)?;
            Ok(Value::Number(ctx.size as f64))
        }
        "count" => {
            arity(name, &args, 1, 1)?;
            args[0]
                .count()
                .map(|c| Value::Number(c as f64))
                .ok_or_else(|| bad(name, "expected a node-set"))
        }
        // Conversions -----------------------------------------------------
        "string" => {
            arity(name, &args, 0, 1)?;
            let v = args.first().cloned().unwrap_or_else(|| Value::Nodes(vec![ctx.node]));
            Ok(Value::Str(v.string_value(g)))
        }
        "number" => {
            arity(name, &args, 0, 1)?;
            let v = args.first().cloned().unwrap_or_else(|| Value::Nodes(vec![ctx.node]));
            Ok(Value::Number(v.number_value(g)))
        }
        "boolean" => {
            arity(name, &args, 1, 1)?;
            Ok(Value::Bool(args[0].boolean_value(g)))
        }
        "not" => {
            arity(name, &args, 1, 1)?;
            Ok(Value::Bool(!args[0].boolean_value(g)))
        }
        "true" => {
            arity(name, &args, 0, 0)?;
            Ok(Value::Bool(true))
        }
        "false" => {
            arity(name, &args, 0, 0)?;
            Ok(Value::Bool(false))
        }
        // Names & hierarchy -------------------------------------------------
        "name" => {
            arity(name, &args, 0, 1)?;
            Ok(Value::Str(match node_arg(name, &args, ctx)? {
                Some(n) => g.name(n).map(|q| q.to_string()).unwrap_or_default(),
                None => String::new(),
            }))
        }
        "local-name" => {
            arity(name, &args, 0, 1)?;
            Ok(Value::Str(match node_arg(name, &args, ctx)? {
                Some(n) => g.name(n).map(|q| q.local.clone()).unwrap_or_default(),
                None => String::new(),
            }))
        }
        "hierarchy" => {
            arity(name, &args, 0, 1)?;
            Ok(Value::Str(match node_arg(name, &args, ctx)? {
                Some(n) => g
                    .hierarchy_of(n)
                    .and_then(|h| g.hierarchy(h).ok())
                    .map(|h| h.name.clone())
                    .unwrap_or_default(),
                None => String::new(),
            }))
        }
        // Strings -----------------------------------------------------------
        "contains" => {
            arity(name, &args, 2, 2)?;
            let a = args[0].string_value(g);
            let b = args[1].string_value(g);
            Ok(Value::Bool(a.contains(&b)))
        }
        "starts-with" => {
            arity(name, &args, 2, 2)?;
            let a = args[0].string_value(g);
            let b = args[1].string_value(g);
            Ok(Value::Bool(a.starts_with(&b)))
        }
        "substring-before" => {
            arity(name, &args, 2, 2)?;
            let a = args[0].string_value(g);
            let b = args[1].string_value(g);
            Ok(Value::Str(a.split_once(&b).map(|(x, _)| x.to_string()).unwrap_or_default()))
        }
        "substring-after" => {
            arity(name, &args, 2, 2)?;
            let a = args[0].string_value(g);
            let b = args[1].string_value(g);
            Ok(Value::Str(a.split_once(&b).map(|(_, y)| y.to_string()).unwrap_or_default()))
        }
        "substring" => {
            arity(name, &args, 2, 3)?;
            let s = args[0].string_value(g);
            let chars: Vec<char> = s.chars().collect();
            let start = args[1].number_value(g).round();
            let len = args.get(2).map(|v| v.number_value(g).round());
            // XPath 1-based indexing with rounding semantics.
            let from = (start as i64 - 1).max(0) as usize;
            let to = match len {
                Some(l) => ((start + l).round() as i64 - 1).max(0) as usize,
                None => chars.len(),
            };
            let to = to.min(chars.len());
            let from = from.min(to);
            Ok(Value::Str(chars[from..to].iter().collect()))
        }
        "string-length" => {
            arity(name, &args, 0, 1)?;
            let s = match args.first() {
                Some(v) => v.string_value(g),
                None => g.text_of(ctx.node),
            };
            Ok(Value::Number(s.chars().count() as f64))
        }
        "normalize-space" => {
            arity(name, &args, 0, 1)?;
            let s = match args.first() {
                Some(v) => v.string_value(g),
                None => g.text_of(ctx.node),
            };
            Ok(Value::Str(s.split_whitespace().collect::<Vec<_>>().join(" ")))
        }
        "concat" => {
            if args.len() < 2 {
                return Err(bad(name, "needs at least two arguments"));
            }
            Ok(Value::Str(args.iter().map(|v| v.string_value(g)).collect()))
        }
        // Numbers -----------------------------------------------------------
        "floor" => {
            arity(name, &args, 1, 1)?;
            Ok(Value::Number(args[0].number_value(g).floor()))
        }
        "ceiling" => {
            arity(name, &args, 1, 1)?;
            Ok(Value::Number(args[0].number_value(g).ceil()))
        }
        "round" => {
            arity(name, &args, 1, 1)?;
            Ok(Value::Number(args[0].number_value(g).round()))
        }
        "sum" => {
            arity(name, &args, 1, 1)?;
            match &args[0] {
                Value::Nodes(ns) => Ok(Value::Number(
                    ns.iter().map(|&n| Value::Nodes(vec![n]).number_value(g)).sum(),
                )),
                Value::Attrs(attrs) => Ok(Value::Number(
                    attrs
                        .iter()
                        .map(|a| a.value(g).trim().parse::<f64>().unwrap_or(f64::NAN))
                        .sum(),
                )),
                _ => Err(bad(name, "expected a node-set")),
            }
        }
        // Concurrent-markup extensions --------------------------------------
        "overlaps" => {
            arity(name, &args, 2, 2)?;
            let (Value::Nodes(a), Value::Nodes(b)) = (&args[0], &args[1]) else {
                return Err(bad(name, "expected two node-sets"));
            };
            let found = a.iter().any(|&x| b.iter().any(|&y| g.span(x).overlaps(g.span(y))));
            Ok(Value::Bool(found))
        }
        "leaves" => {
            arity(name, &args, 0, 1)?;
            let nodes: Vec<NodeId> = match args.first() {
                None => vec![ctx.node],
                Some(Value::Nodes(ns)) => ns.clone(),
                Some(other) => {
                    return Err(bad(name, format!("expected a node-set, got {other:?}")))
                }
            };
            let mut out: Vec<NodeId> = Vec::new();
            for n in nodes {
                out.extend_from_slice(g.leaves_of(n));
            }
            g.sort_doc_order(&mut out);
            Ok(Value::Nodes(out))
        }
        "root" => {
            arity(name, &args, 0, 0)?;
            Ok(Value::Nodes(vec![g.root()]))
        }
        "id" => {
            arity(name, &args, 1, 1)?;
            let wanted = args[0].string_value(g);
            let mut out: Vec<NodeId> = g
                .elements()
                .filter(|&e| {
                    g.attr(e, "id").or_else(|| g.attr(e, "xml:id")) == Some(wanted.as_str())
                })
                .collect();
            g.sort_doc_order(&mut out);
            Ok(Value::Nodes(out))
        }
        other => Err(XPathError::UnknownFunction(other.to_string())),
    }
}

/// Attribute reference constructor shared with the evaluator.
pub(crate) fn attrs_of(g: &Goddag, n: NodeId) -> Vec<AttrRef> {
    (0..g.attrs(n).len()).map(|index| AttrRef { element: n, index }).collect()
}
