//! # expath — Extended XPath over GODDAG
//!
//! The paper's query language (§4, "Querying concurrent XML"): XPath 1.0
//! semantics redefined on the GODDAG data structure, extended with axes for
//! concurrent markup that classic XPath cannot express:
//!
//! | axis | meaning |
//! |------|---------|
//! | `overlapping::` | elements whose span *properly overlaps* the context node's span (the paper's headline feature) |
//! | `containing::` | elements of any hierarchy whose span contains the context's |
//! | `contained::` | elements of any hierarchy inside the context's span |
//! | `co-extensive::` | elements with exactly the same span |
//!
//! Hierarchies are addressed by QName prefixes in node tests (`phys:line`,
//! `ling:*`) and by the `hierarchy()` function.
//!
//! ```
//! use expath::Evaluator;
//! let g = sacx::parse_distributed(&[
//!     ("phys", "<r><line>swa hwa</line> <line>swe nu</line></r>"),
//!     ("ling", "<r>swa <s>hwa swe</s> nu</r>"),
//! ]).unwrap();
//! let ev = Evaluator::with_index(&g);
//! // Which physical lines does the sentence cross?
//! let lines = ev.select("//s/overlapping::phys:line").unwrap();
//! assert_eq!(lines.len(), 2);
//! ```

mod ast;
mod axes;
mod display;
mod error;
mod eval;
mod functions;
mod lexer;
mod overlap_index;
mod parser;
mod value;

pub use ast::{Axis, BinOp, Expr, NodeTest, PathStart, Step};
pub use axes::axis_candidates;
pub use error::{Result, XPathError};
pub use eval::Evaluator;
pub use overlap_index::{scan_intersecting, OverlapIndex};
pub use parser::parse;
pub use value::{format_number, AttrRef, Value};
