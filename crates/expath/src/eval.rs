//! The Extended XPath evaluator.

use crate::ast::{Axis, BinOp, Expr, NodeTest, PathStart, Step};
use crate::axes::axis_candidates;
use crate::error::{Result, XPathError};
use crate::functions::{attrs_of, call, EvalCtx};
use crate::overlap_index::OverlapIndex;
use crate::parser::parse;
use crate::value::{AttrRef, Value};
use goddag::{Goddag, HierarchyId, NodeId};
use std::sync::Arc;

/// An Extended XPath evaluator bound to one GODDAG document.
///
/// ```
/// use goddag::GoddagBuilder;
/// use expath::Evaluator;
/// use xmlcore::QName;
///
/// let mut b = GoddagBuilder::new(QName::parse("r").unwrap());
/// b.content("swa hwa");
/// let phys = b.hierarchy("phys");
/// let ling = b.hierarchy("ling");
/// b.range(phys, "line", vec![], 0, 5).unwrap();
/// b.range(ling, "w", vec![], 4, 7).unwrap();
/// let g = b.finish().unwrap();
///
/// let ev = Evaluator::new(&g);
/// let hits = ev.select("//line/overlapping::ling:w").unwrap();
/// assert_eq!(hits.len(), 1);
/// ```
pub struct Evaluator<'g> {
    g: &'g Goddag,
    index: Option<Arc<OverlapIndex>>,
}

impl<'g> Evaluator<'g> {
    /// Evaluator without an overlap index (extended axes use linear scans).
    pub fn new(g: &'g Goddag) -> Evaluator<'g> {
        Evaluator { g, index: None }
    }

    /// Evaluator that builds a fresh overlap index for `g` (extended axes in
    /// `O(log n + k)`). When querying the same unmodified document more than
    /// once, build the index once and share it via
    /// [`Evaluator::with_shared_index`] instead — the build is `O(n log n)`
    /// and dominates cheap queries.
    pub fn with_index(g: &'g Goddag) -> Evaluator<'g> {
        Evaluator { g, index: Some(Arc::new(OverlapIndex::build(g))) }
    }

    /// Evaluator reusing a prebuilt overlap index. The caller is responsible
    /// for the index actually describing `g` at its current edit epoch
    /// (`cxstore` tracks this via [`goddag::Goddag::edit_epoch`]); a stale
    /// index yields stale extended-axis results, never memory unsafety.
    pub fn with_shared_index(g: &'g Goddag, index: Arc<OverlapIndex>) -> Evaluator<'g> {
        Evaluator { g, index: Some(index) }
    }

    /// The document being queried.
    pub fn goddag(&self) -> &'g Goddag {
        self.g
    }

    /// Whether an overlap index is active.
    pub fn has_index(&self) -> bool {
        self.index.is_some()
    }

    /// The active overlap index, if any (shareable).
    pub fn index(&self) -> Option<&Arc<OverlapIndex>> {
        self.index.as_ref()
    }

    /// Evaluate an expression string with the root as context node.
    pub fn eval_str(&self, expr: &str) -> Result<Value> {
        let ast = parse(expr)?;
        self.evaluate(&ast, self.g.root())
    }

    /// Evaluate a parsed expression from a given context node.
    pub fn evaluate(&self, expr: &Expr, context: NodeId) -> Result<Value> {
        let ctx = EvalCtx { node: context, position: 1, size: 1 };
        self.eval(expr, &ctx)
    }

    /// Evaluate an expression string and require a node-set result.
    pub fn select(&self, expr: &str) -> Result<Vec<NodeId>> {
        match self.eval_str(expr)? {
            Value::Nodes(ns) => Ok(ns),
            other => {
                Err(XPathError::Eval(format!("expression returned {other:?}, expected a node-set")))
            }
        }
    }

    /// Evaluate from an explicit context node, requiring a node-set.
    pub fn select_from(&self, expr: &str, context: NodeId) -> Result<Vec<NodeId>> {
        let ast = parse(expr)?;
        match self.evaluate(&ast, context)? {
            Value::Nodes(ns) => Ok(ns),
            other => {
                Err(XPathError::Eval(format!("expression returned {other:?}, expected a node-set")))
            }
        }
    }

    // ---------------------------------------------------------------------

    fn eval(&self, expr: &Expr, ctx: &EvalCtx) -> Result<Value> {
        match expr {
            Expr::Number(n) => Ok(Value::Number(*n)),
            Expr::Literal(s) => Ok(Value::Str(s.clone())),
            Expr::Neg(inner) => {
                let v = self.eval(inner, ctx)?;
                Ok(Value::Number(-v.number_value(self.g)))
            }
            Expr::Bin(op, lhs, rhs) => self.eval_bin(*op, lhs, rhs, ctx),
            Expr::Union(lhs, rhs) => {
                let a = self.eval(lhs, ctx)?;
                let b = self.eval(rhs, ctx)?;
                match (a, b) {
                    (Value::Nodes(mut x), Value::Nodes(y)) => {
                        x.extend(y);
                        self.g.sort_doc_order(&mut x);
                        Ok(Value::Nodes(x))
                    }
                    (Value::Attrs(mut x), Value::Attrs(y)) => {
                        x.extend(y);
                        Ok(Value::Attrs(x))
                    }
                    (a, b) => Err(XPathError::Eval(format!(
                        "union requires two node-sets, got {a:?} | {b:?}"
                    ))),
                }
            }
            Expr::Call { name, args } => {
                let mut evaluated = Vec::with_capacity(args.len());
                for a in args {
                    evaluated.push(self.eval(a, ctx)?);
                }
                call(self.g, ctx, name, evaluated)
            }
            Expr::Path { start, steps } => {
                let origin = match start {
                    PathStart::Root => self.g.root(),
                    PathStart::Context => ctx.node,
                };
                self.eval_steps(vec![origin], steps)
            }
            Expr::Filter { primary, predicates, steps } => {
                let base = self.eval(primary, ctx)?;
                match base {
                    Value::Nodes(nodes) => {
                        let mut filtered = nodes;
                        for pred in predicates {
                            filtered = self.filter_nodes(filtered, pred)?;
                        }
                        self.eval_steps(filtered, steps)
                    }
                    Value::Attrs(attrs) if steps.is_empty() => {
                        let mut filtered = attrs;
                        for pred in predicates {
                            filtered = self.filter_attrs(filtered, pred)?;
                        }
                        Ok(Value::Attrs(filtered))
                    }
                    other if predicates.is_empty() && steps.is_empty() => Ok(other),
                    other => Err(XPathError::Eval(format!("cannot filter or step from {other:?}"))),
                }
            }
        }
    }

    fn eval_bin(&self, op: BinOp, lhs: &Expr, rhs: &Expr, ctx: &EvalCtx) -> Result<Value> {
        match op {
            BinOp::Or => {
                if self.eval(lhs, ctx)?.boolean_value(self.g) {
                    return Ok(Value::Bool(true));
                }
                Ok(Value::Bool(self.eval(rhs, ctx)?.boolean_value(self.g)))
            }
            BinOp::And => {
                if !self.eval(lhs, ctx)?.boolean_value(self.g) {
                    return Ok(Value::Bool(false));
                }
                Ok(Value::Bool(self.eval(rhs, ctx)?.boolean_value(self.g)))
            }
            BinOp::Eq | BinOp::Neq => {
                let a = self.eval(lhs, ctx)?;
                let b = self.eval(rhs, ctx)?;
                Ok(Value::Bool(self.compare_eq(op, &a, &b)))
            }
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                let a = self.eval(lhs, ctx)?;
                let b = self.eval(rhs, ctx)?;
                Ok(Value::Bool(self.compare_rel(op, &a, &b)))
            }
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
                let a = self.eval(lhs, ctx)?.number_value(self.g);
                let b = self.eval(rhs, ctx)?.number_value(self.g);
                Ok(Value::Number(match op {
                    BinOp::Add => a + b,
                    BinOp::Sub => a - b,
                    BinOp::Mul => a * b,
                    BinOp::Div => a / b,
                    BinOp::Mod => a % b,
                    _ => unreachable!("arithmetic ops only"),
                }))
            }
        }
    }

    /// XPath 1.0 `=` / `!=` semantics (existential over sets).
    fn compare_eq(&self, op: BinOp, a: &Value, b: &Value) -> bool {
        let negate = op == BinOp::Neq;
        let result = if a.is_set() && b.is_set() {
            let xs = a.member_strings(self.g);
            let ys = b.member_strings(self.g);
            xs.iter().any(|x| ys.iter().any(|y| (x == y) != negate))
        } else if a.is_set() || b.is_set() {
            let (set, other) = if a.is_set() { (a, b) } else { (b, a) };
            match other {
                Value::Bool(bv) => (set.boolean_value(self.g) == *bv) != negate,
                Value::Number(n) => set
                    .member_strings(self.g)
                    .iter()
                    .any(|s| (s.trim().parse::<f64>().map(|x| x == *n).unwrap_or(false)) != negate),
                _ => {
                    let o = other.string_value(self.g);
                    set.member_strings(self.g).iter().any(|s| (*s == o) != negate)
                }
            }
        } else if matches!(a, Value::Bool(_)) || matches!(b, Value::Bool(_)) {
            (a.boolean_value(self.g) == b.boolean_value(self.g)) != negate
        } else if matches!(a, Value::Number(_)) || matches!(b, Value::Number(_)) {
            (a.number_value(self.g) == b.number_value(self.g)) != negate
        } else {
            (a.string_value(self.g) == b.string_value(self.g)) != negate
        };
        result
    }

    /// XPath 1.0 relational comparison (numeric; existential over sets).
    fn compare_rel(&self, op: BinOp, a: &Value, b: &Value) -> bool {
        let cmp = |x: f64, y: f64| match op {
            BinOp::Lt => x < y,
            BinOp::Le => x <= y,
            BinOp::Gt => x > y,
            BinOp::Ge => x >= y,
            _ => unreachable!("relational ops only"),
        };
        if a.is_set() && b.is_set() {
            let xs = a.member_strings(self.g);
            let ys = b.member_strings(self.g);
            xs.iter().any(|x| {
                let xn = x.trim().parse::<f64>().unwrap_or(f64::NAN);
                ys.iter().any(|y| cmp(xn, y.trim().parse::<f64>().unwrap_or(f64::NAN)))
            })
        } else if a.is_set() {
            let yn = b.number_value(self.g);
            a.member_strings(self.g)
                .iter()
                .any(|x| cmp(x.trim().parse::<f64>().unwrap_or(f64::NAN), yn))
        } else if b.is_set() {
            let xn = a.number_value(self.g);
            b.member_strings(self.g)
                .iter()
                .any(|y| cmp(xn, y.trim().parse::<f64>().unwrap_or(f64::NAN)))
        } else {
            cmp(a.number_value(self.g), b.number_value(self.g))
        }
    }

    // Steps -----------------------------------------------------------------

    fn eval_steps(&self, origins: Vec<NodeId>, steps: &[Step]) -> Result<Value> {
        let mut current = origins;
        for (i, step) in steps.iter().enumerate() {
            if step.axis == Axis::Attribute {
                if i + 1 != steps.len() {
                    return Err(XPathError::Eval(
                        "the attribute axis must be the last step".into(),
                    ));
                }
                return self.eval_attribute_step(&current, step);
            }
            let mut next: Vec<NodeId> = Vec::new();
            for &origin in &current {
                let mut cands = axis_candidates(self.g, self.index.as_deref(), origin, step.axis);
                self.retain_test(&mut cands, &step.test)?;
                for pred in &step.predicates {
                    cands = self.filter_nodes(cands, pred)?;
                }
                next.extend(cands);
            }
            self.g.sort_doc_order(&mut next);
            current = next;
        }
        Ok(Value::Nodes(current))
    }

    fn eval_attribute_step(&self, origins: &[NodeId], step: &Step) -> Result<Value> {
        let mut out: Vec<AttrRef> = Vec::new();
        for &origin in origins {
            let mut attrs = attrs_of(self.g, origin);
            match &step.test {
                NodeTest::Any | NodeTest::Node => {}
                NodeTest::Name { hierarchy, local } => {
                    attrs.retain(|a| {
                        let q = &self.g.attrs(a.element)[a.index].name;
                        q.local == *local
                            && hierarchy
                                .as_ref()
                                .is_none_or(|h| q.prefix.as_deref() == Some(h.as_str()))
                    });
                }
                NodeTest::AnyInHierarchy(prefix) => {
                    attrs.retain(|a| {
                        self.g.attrs(a.element)[a.index].name.prefix.as_deref()
                            == Some(prefix.as_str())
                    });
                }
                NodeTest::Text => attrs.clear(),
            }
            for pred in &step.predicates {
                attrs = self.filter_attrs(attrs, pred)?;
            }
            out.extend(attrs);
        }
        Ok(Value::Attrs(out))
    }

    fn retain_test(&self, nodes: &mut Vec<NodeId>, test: &NodeTest) -> Result<()> {
        match test {
            NodeTest::Node => Ok(()),
            NodeTest::Any => {
                nodes.retain(|&n| self.g.is_element(n) || self.g.is_root(n));
                Ok(())
            }
            NodeTest::Text => {
                nodes.retain(|&n| self.g.is_leaf(n));
                Ok(())
            }
            NodeTest::AnyInHierarchy(hname) => {
                let h = self.resolve_hierarchy(hname)?;
                nodes.retain(|&n| self.g.hierarchy_of(n) == Some(h));
                Ok(())
            }
            NodeTest::Name { hierarchy, local } => {
                let h = hierarchy.as_ref().map(|hn| self.resolve_hierarchy(hn)).transpose()?;
                nodes.retain(|&n| {
                    let name_ok = self.g.name(n).is_some_and(|q| q.local == *local);
                    let h_ok = match h {
                        None => true,
                        Some(h) => self.g.hierarchy_of(n) == Some(h),
                    };
                    name_ok && h_ok
                });
                Ok(())
            }
        }
    }

    fn resolve_hierarchy(&self, name: &str) -> Result<HierarchyId> {
        self.g.hierarchy_by_name(name).ok_or_else(|| XPathError::UnknownHierarchy(name.to_string()))
    }

    /// Apply one predicate to a node list (positions in list order).
    fn filter_nodes(&self, nodes: Vec<NodeId>, pred: &Expr) -> Result<Vec<NodeId>> {
        let size = nodes.len();
        let mut out = Vec::with_capacity(size);
        for (i, n) in nodes.into_iter().enumerate() {
            let ctx = EvalCtx { node: n, position: i + 1, size };
            let v = self.eval(pred, &ctx)?;
            let keep = match v {
                Value::Number(num) => (i + 1) as f64 == num,
                other => other.boolean_value(self.g),
            };
            if keep {
                out.push(n);
            }
        }
        Ok(out)
    }

    /// Apply one predicate to an attribute list.
    fn filter_attrs(&self, attrs: Vec<AttrRef>, pred: &Expr) -> Result<Vec<AttrRef>> {
        let size = attrs.len();
        let mut out = Vec::with_capacity(size);
        for (i, a) in attrs.into_iter().enumerate() {
            let ctx = EvalCtx { node: a.element, position: i + 1, size };
            let v = self.eval(pred, &ctx)?;
            let keep = match v {
                Value::Number(num) => (i + 1) as f64 == num,
                other => other.boolean_value(self.g),
            };
            if keep {
                out.push(a);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use goddag::GoddagBuilder;
    use xmlcore::{Attribute, QName};

    /// Figure-1-like fixture:
    /// content "one two three four"
    /// phys: line[n=1] "one two" | line[n=2] "three four"
    /// ling: w one, w two, s "two three", w three, w four
    /// edit: dmg "ne two t" (crosses words and lines)
    fn fixture() -> Goddag {
        let mut b = GoddagBuilder::new(QName::parse("r").unwrap());
        b.content("one two three four");
        let phys = b.hierarchy("phys");
        let ling = b.hierarchy("ling");
        let edit = b.hierarchy("edit");
        b.range(phys, "line", vec![Attribute::new("n", "1")], 0, 7).unwrap();
        b.range(phys, "line", vec![Attribute::new("n", "2")], 8, 18).unwrap();
        b.range(ling, "w", vec![Attribute::new("type", "num")], 0, 3).unwrap();
        b.range(ling, "w", vec![], 4, 7).unwrap();
        b.range(ling, "s", vec![Attribute::new("id", "s1")], 4, 13).unwrap();
        b.range(ling, "w", vec![], 8, 13).unwrap();
        b.range(ling, "w", vec![], 14, 18).unwrap();
        b.range(edit, "dmg", vec![Attribute::new("agent", "fire")], 1, 9).unwrap();
        b.finish().unwrap()
    }

    fn ev(g: &Goddag) -> Evaluator<'_> {
        Evaluator::new(g)
    }

    #[test]
    fn select_all_words() {
        let g = fixture();
        assert_eq!(ev(&g).select("//w").unwrap().len(), 4);
        // Top-level ling words only: "two" and "three" nest inside <s>
        // (equal start offsets nest outer-first).
        assert_eq!(ev(&g).select("/w").unwrap().len(), 2);
    }

    #[test]
    fn child_vs_descendant() {
        let g = fixture();
        // s's child words: "two" (4..7, same start as s so it nests inside)
        // and "three" (8..13).
        let under_s = ev(&g).select("//s/w").unwrap();
        assert_eq!(under_s.len(), 2);
        assert_eq!(g.text_of(under_s[0]), "two");
        assert_eq!(g.text_of(under_s[1]), "three");
    }

    #[test]
    fn attribute_predicates() {
        let g = fixture();
        let num_words = ev(&g).select("//w[@type='num']").unwrap();
        assert_eq!(num_words.len(), 1);
        assert_eq!(g.text_of(num_words[0]), "one");
        let line2 = ev(&g).select("//line[@n='2']").unwrap();
        assert_eq!(line2.len(), 1);
    }

    #[test]
    fn attribute_axis_values() {
        let g = fixture();
        let v = ev(&g).eval_str("//line[1]/@n").unwrap();
        assert_eq!(v.string_value(&g), "1");
        let all = ev(&g).eval_str("//line/@n").unwrap();
        match all {
            Value::Attrs(attrs) => assert_eq!(attrs.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn positional_predicates() {
        let g = fixture();
        // `//w[2]` is per-origin (classic XPath): the 2nd w child of each
        // parent — <s> contributes "three", the root contributes "four".
        let second = ev(&g).select("//w[2]").unwrap();
        assert_eq!(second.len(), 2);
        // `(//w)[2]` selects from the full document-order set.
        let second = ev(&g).select("(//w)[2]").unwrap();
        assert_eq!(second.len(), 1);
        assert_eq!(g.text_of(second[0]), "two");
        let last = ev(&g).select("(//w)[last()]").unwrap();
        assert_eq!(g.text_of(last[0]), "four");
        let pos = ev(&g).select("(//w)[position() > 2]").unwrap();
        assert_eq!(pos.len(), 2);
    }

    #[test]
    fn overlapping_axis_query() {
        let g = fixture();
        // Which lines does the sentence overlap?
        let lines = ev(&g).select("//s/overlapping::line").unwrap();
        assert_eq!(lines.len(), 2);
        // Which words does the damage overlap (proper overlap only)?
        let dmg_words = ev(&g).select("//dmg/overlapping::ling:w").unwrap();
        // dmg 1..9 bytes: overlaps w(one)[0,3), w(three)[8,13); contains w(two)[4,7); s[4,13) overlaps.
        assert_eq!(dmg_words.len(), 2);
        let texts: Vec<String> = dmg_words.iter().map(|&n| g.text_of(n)).collect();
        assert_eq!(texts, ["one", "three"]);
    }

    #[test]
    fn containing_and_contained_axes() {
        let g = fixture();
        // What contains the word "two" (4..7)?
        let around_two = ev(&g).select("(//w)[2]/containing::*").unwrap();
        let names: Vec<String> =
            around_two.iter().map(|&n| g.name(n).unwrap().local.clone()).collect();
        assert!(names.contains(&"line".to_string()));
        assert!(names.contains(&"s".to_string()));
        assert!(names.contains(&"dmg".to_string()));
        assert!(names.contains(&"r".to_string()));
        // What does the damage fully contain?
        let inside_dmg = ev(&g).select("//dmg/contained::*").unwrap();
        let texts: Vec<String> = inside_dmg.iter().map(|&n| g.text_of(n)).collect();
        assert_eq!(texts, ["two"]);
    }

    #[test]
    fn hierarchy_qualified_tests() {
        let g = fixture();
        assert_eq!(ev(&g).select("//ling:*").unwrap().len(), 5);
        assert_eq!(ev(&g).select("//phys:*").unwrap().len(), 2);
        assert_eq!(ev(&g).select("//ling:w").unwrap().len(), 4);
        // Unknown hierarchy is an error, not silence.
        assert!(matches!(ev(&g).select("//nope:w"), Err(XPathError::UnknownHierarchy(_))));
    }

    #[test]
    fn hierarchy_function() {
        let g = fixture();
        let v = ev(&g).eval_str("hierarchy(//s)").unwrap();
        assert_eq!(v.string_value(&g), "ling");
    }

    #[test]
    fn text_node_test() {
        let g = fixture();
        let texts = ev(&g).select("//line[1]/text()").unwrap();
        assert!(texts.iter().all(|&n| g.is_leaf(n)));
        let joined: String = texts.iter().map(|&n| g.text_of(n)).collect();
        assert_eq!(joined, "one two");
    }

    #[test]
    fn parent_axis_through_shared_leaf() {
        let g = fixture();
        // All parents of the leaf containing "two": w, line (and dmg? dmg
        // covers "ne two t": the "two" leaf splits at dmg boundaries).
        let parents = ev(&g).select("//s/text()[1]/parent::*").unwrap();
        assert!(!parents.is_empty());
    }

    #[test]
    fn count_and_arithmetic() {
        let g = fixture();
        let v = ev(&g).eval_str("count(//w) * 10 + 2").unwrap();
        assert_eq!(v, Value::Number(42.0));
        let v = ev(&g).eval_str("count(//w) div 2").unwrap();
        assert_eq!(v, Value::Number(2.0));
        let v = ev(&g).eval_str("5 mod 3").unwrap();
        assert_eq!(v, Value::Number(2.0));
    }

    #[test]
    fn string_functions() {
        let g = fixture();
        let v = ev(&g).eval_str("contains(string(//line[1]), 'two')").unwrap();
        assert_eq!(v, Value::Bool(true));
        let v = ev(&g).eval_str("starts-with(string(//s), 'two')").unwrap();
        assert_eq!(v, Value::Bool(true));
        let v = ev(&g).eval_str("string-length(string(//w[1]))").unwrap();
        assert_eq!(v, Value::Number(3.0));
        let v = ev(&g).eval_str("normalize-space('  a   b ')").unwrap();
        assert_eq!(v, Value::Str("a b".into()));
        let v = ev(&g).eval_str("concat('a', 'b', 'c')").unwrap();
        assert_eq!(v, Value::Str("abc".into()));
        let v = ev(&g).eval_str("substring('hello', 2, 3)").unwrap();
        assert_eq!(v, Value::Str("ell".into()));
    }

    #[test]
    fn boolean_logic() {
        let g = fixture();
        let v = ev(&g).eval_str("count(//w) = 4 and count(//line) = 2").unwrap();
        assert_eq!(v, Value::Bool(true));
        let v = ev(&g).eval_str("count(//w) = 0 or not(false())").unwrap();
        assert_eq!(v, Value::Bool(true));
    }

    #[test]
    fn overlaps_function() {
        let g = fixture();
        let v = ev(&g).eval_str("overlaps(//s, //line)").unwrap();
        assert_eq!(v, Value::Bool(true));
        let v = ev(&g).eval_str("overlaps(//w[1], //w[4])").unwrap();
        assert_eq!(v, Value::Bool(false));
    }

    #[test]
    fn union_expression() {
        let g = fixture();
        let v = ev(&g).select("//w | //line").unwrap();
        assert_eq!(v.len(), 6);
        // Doc order: line1 before w(one)? line starts at leaf 0 with longer span -> first.
        assert_eq!(g.name(v[0]).unwrap().local, "line");
    }

    #[test]
    fn filter_expression_with_path() {
        let g = fixture();
        let v = ev(&g).select("(//w)[1]/containing::line").unwrap();
        assert_eq!(v.len(), 1);
        assert_eq!(g.attr(v[0], "n"), Some("1"));
    }

    #[test]
    fn co_extensive_none_here() {
        let g = fixture();
        assert!(ev(&g).select("//s/co-extensive::*").unwrap().is_empty());
    }

    #[test]
    fn descendants_within_hierarchy_only() {
        let g = fixture();
        // line's descendants are its leaves only (phys has no deeper markup),
        // so //line/descendant::w must be empty — w lives in another
        // hierarchy (use contained:: for the cross-hierarchy question).
        assert!(ev(&g).select("//line/descendant::w").unwrap().is_empty());
        assert_eq!(ev(&g).select("//line[1]/contained::w").unwrap().len(), 2);
    }

    #[test]
    fn index_and_scan_agree() {
        let g = fixture();
        let plain = Evaluator::new(&g);
        let indexed = Evaluator::with_index(&g);
        assert!(indexed.has_index());
        for q in [
            "//s/overlapping::*",
            "//dmg/overlapping::ling:*",
            "//w[2]/containing::*",
            "//line[1]/contained::*",
            "//dmg/co-extensive::*",
        ] {
            assert_eq!(plain.select(q).unwrap(), indexed.select(q).unwrap(), "{q}");
        }
    }

    #[test]
    fn shared_index_matches_owned_index() {
        let g = fixture();
        let built = Evaluator::with_index(&g);
        let shared_idx = std::sync::Arc::clone(built.index().unwrap());
        let shared = Evaluator::with_shared_index(&g, shared_idx);
        assert!(shared.has_index());
        for q in ["//s/overlapping::*", "//dmg/containing::*", "//line[1]/contained::*"] {
            assert_eq!(built.select(q).unwrap(), shared.select(q).unwrap(), "{q}");
        }
        // The index is genuinely shared, not copied.
        assert!(std::sync::Arc::ptr_eq(built.index().unwrap(), shared.index().unwrap()));
    }

    #[test]
    fn leaves_function() {
        let g = fixture();
        let v = ev(&g).eval_str("count(leaves(//line[1]))").unwrap();
        let n = v.number_value(&g);
        assert!(n >= 3.0, "line 1 split by dmg and words: {n}");
    }

    #[test]
    fn id_function() {
        let g = fixture();
        let v = ev(&g).select("id('s1')").unwrap();
        assert_eq!(v.len(), 1);
        assert_eq!(g.name(v[0]).unwrap().local, "s");
    }

    #[test]
    fn root_path_and_self() {
        let g = fixture();
        let v = ev(&g).select("/").unwrap();
        assert_eq!(v, vec![g.root()]);
        let v = ev(&g).select("/self::node()").unwrap();
        assert_eq!(v, vec![g.root()]);
    }

    #[test]
    fn relational_comparisons() {
        let g = fixture();
        let v = ev(&g).eval_str("//line[@n > 1]").unwrap();
        match v {
            Value::Nodes(ns) => assert_eq!(ns.len(), 1),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(ev(&g).eval_str("2 < 3").unwrap(), Value::Bool(true));
        assert_eq!(ev(&g).eval_str("2 >= 3").unwrap(), Value::Bool(false));
    }

    #[test]
    fn errors_are_reported() {
        let g = fixture();
        assert!(matches!(ev(&g).eval_str("frobnicate()"), Err(XPathError::UnknownFunction(_))));
        assert!(ev(&g).eval_str("//w/@n/text()").is_err());
        assert!(ev(&g).select("count(//w)").is_err()); // not a node-set
    }

    #[test]
    fn number_value_of_attr_set() {
        let g = fixture();
        let v = ev(&g).eval_str("sum(//line/@n)").unwrap();
        assert_eq!(v, Value::Number(3.0));
    }

    #[test]
    fn preceding_following_queries() {
        let g = fixture();
        let after = ev(&g).select("//w[1]/following::w").unwrap();
        assert_eq!(after.len(), 3);
        let before = ev(&g).select("//w[last()]/preceding::w").unwrap();
        assert_eq!(before.len(), 3);
    }
}
