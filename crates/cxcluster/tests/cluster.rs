//! Cluster basics: routing, placement, the name directory, fan-out reads,
//! rebalancing, and reopening.

mod common;

use common::TempDir;
use cxcluster::{Cluster, ClusterError, ShardId};
use cxpersist::{FsyncPolicy, Options};
use cxstore::{DocId, EditOp, Store, StoreError};
use std::collections::BTreeMap;

fn options() -> Options {
    Options { fsync: FsyncPolicy::Never }
}

fn cluster(dir: &TempDir, n: usize) -> Cluster {
    Cluster::open(dir.shard_dirs(n), options()).unwrap()
}

fn manuscript(words: usize, seed: u64) -> goddag::Goddag {
    let mut ms = corpus::generate(&corpus::Params { words, seed, ..corpus::Params::default() });
    corpus::dtds::attach_standard(&mut ms.goddag);
    ms.goddag
}

fn exports(cluster: &Cluster) -> BTreeMap<u64, String> {
    cluster
        .doc_ids()
        .into_iter()
        .map(|id| (id.raw(), cluster.with_doc(id, sacx::export_standoff).unwrap()))
        .collect()
}

#[test]
fn placement_aligns_ids_with_their_home_shard() {
    let dir = TempDir::new("placement");
    let c = cluster(&dir, 3);
    let ids: Vec<DocId> = (0..9).map(|_| c.insert(corpus::figure1::goddag()).unwrap()).collect();
    for id in &ids {
        let s = c.shard_of(*id);
        assert_eq!(s.0 as u64, id.raw() % 3, "unmoved docs route by hash");
        assert!(c.shards()[s.0].store().contains(*id), "the owning shard holds the doc");
        for (i, shard) in c.shards().iter().enumerate() {
            if i != s.0 {
                assert!(!shard.store().contains(*id), "no other shard holds it");
            }
        }
    }
    // Round-robin placement spreads the shards evenly.
    let per_shard: Vec<usize> = c.shards().iter().map(|s| s.store().len()).collect();
    assert_eq!(per_shard, vec![3, 3, 3]);
    assert_eq!(c.len(), 9);
    assert_eq!(c.doc_ids(), {
        let mut v = ids.clone();
        v.sort();
        v
    });
    assert!(c.router().overrides().is_empty(), "hash routing needs no table");
}

#[test]
fn name_directory_routes_across_shards() {
    let dir = TempDir::new("names");
    let c = cluster(&dir, 3);
    let a = c.insert_named("alpha", corpus::figure1::goddag()).unwrap();
    let b = c.insert_named("beta", corpus::figure1::goddag()).unwrap();
    assert_ne!(c.shard_of(a), c.shard_of(b), "round-robin placed them apart");
    assert_eq!(c.id_by_name("alpha").unwrap(), a);
    assert_eq!(c.id_by_name("beta").unwrap(), b);

    // Cross-shard rebind: "alpha" moves to b's shard; the old shard's
    // binding is retired durably.
    c.bind_name("alpha", b).unwrap();
    assert_eq!(c.id_by_name("alpha").unwrap(), b);
    let a_shard = c.shards()[c.shard_of(a).0].store();
    assert!(a_shard.id_by_name("alpha").is_err(), "old shard binding retired");

    // remove_named resolves through the directory wherever the doc lives.
    assert_eq!(c.remove_named("beta").unwrap(), b);
    assert!(!c.contains(b));
    assert!(c.id_by_name("alpha").is_err(), "alpha pointed at b, died with it");
    assert!(matches!(c.remove_named("beta"), Err(ClusterError::Store(StoreError::NoSuchName(_)))));
    assert!(c.contains(a), "unrelated doc survives");

    // unbind leaves the document alone.
    c.bind_name("gamma", a).unwrap();
    assert_eq!(c.unbind_name("gamma").unwrap(), Some(a));
    assert_eq!(c.unbind_name("gamma").unwrap(), None);
    assert!(c.contains(a));
}

#[test]
fn gated_edits_route_and_match_a_single_store_control() {
    let dir = TempDir::new("edits");
    let c = cluster(&dir, 3);
    let control = Store::new();
    let mut ids = Vec::new();
    for i in 0..3 {
        let g = manuscript(40, 100 + i);
        let id = c.insert(g.clone()).unwrap();
        control.insert_with_id(id, g).unwrap();
        ids.push(id);
    }
    // Gated success and gated rejection agree with the control store.
    for (k, &id) in ids.iter().enumerate() {
        let ok = EditOp::InsertText { offset: 0, text: format!("x{k} ") };
        let co = control.edit(id, ok.clone()).unwrap();
        let cl = c.edit(id, ok).unwrap();
        assert_eq!(co.node, cl.node);
        assert_eq!(co.epoch, cl.epoch);
        let bad = EditOp::InsertElement {
            hierarchy: "ling".into(),
            tag: "nonsense".into(),
            attrs: vec![],
            start: 0,
            end: 3,
        };
        assert!(matches!(
            c.edit(id, bad.clone()),
            Err(ClusterError::Store(StoreError::EditRejected(_)))
        ));
        assert!(control.edit(id, bad).is_err());
    }
    // Fan-out query equals the control's batch query.
    let cl = c.query_all("//w").unwrap();
    let co = control.query_all("//w").unwrap();
    assert_eq!(cl, co);
    // Per-doc query and suggestions route too.
    assert_eq!(c.query(ids[0], "//w").unwrap(), control.query(ids[0], "//w").unwrap());
    let (s, e) = control
        .with_doc(ids[0], |g| {
            let ws = g.find_elements("w");
            (g.char_range(ws[0]).0, g.char_range(ws[1]).1)
        })
        .unwrap();
    assert_eq!(
        c.suggest_tags(ids[0], "ling", s, e).unwrap(),
        control.suggest_tags(ids[0], "ling", s, e).unwrap()
    );
    // Edits against a missing doc error like a store.
    let ghost = DocId::from_raw(999);
    assert!(matches!(
        c.edit(ghost, EditOp::InsertText { offset: 0, text: "x".into() }),
        Err(ClusterError::Store(StoreError::NoSuchDoc(_)))
    ));
}

#[test]
fn move_doc_preserves_bytes_names_and_future_edit_determinism() {
    let dir = TempDir::new("move");
    let c = cluster(&dir, 3);
    let control = Store::new();
    let g = manuscript(50, 7);
    let id = c.insert_named("ms", g.clone()).unwrap();
    control.insert_with_id(id, g).unwrap();
    c.edit(id, EditOp::InsertText { offset: 0, text: "pre ".into() }).unwrap();
    control.edit(id, EditOp::InsertText { offset: 0, text: "pre ".into() }).unwrap();

    let from = c.shard_of(id);
    let to = ShardId((from.0 + 1) % 3);
    assert_eq!(c.move_doc(id, to).unwrap(), from);
    assert_eq!(c.shard_of(id), to);
    assert_eq!(c.docs_moved(), 1);
    assert!(!c.shards()[from.0].store().contains(id), "tombstoned on the source");
    assert!(c.shards()[to.0].store().contains(id));
    assert_eq!(c.id_by_name("ms").unwrap(), id, "the name followed the document");
    assert_eq!(c.shards()[to.0].store().id_by_name("ms").unwrap(), id);

    // Byte-identical state...
    assert_eq!(
        c.with_doc(id, sacx::export_standoff).unwrap(),
        control.with_doc(id, sacx::export_standoff).unwrap()
    );
    // ...and id-for-id equivalent future edits: the next insert mints the
    // same node id as the never-moved control.
    let (s, e) = control
        .with_doc(id, |g| {
            let ws = g.find_elements("w");
            (g.char_range(ws[0]).0, g.char_range(ws[1]).1)
        })
        .unwrap();
    let op = EditOp::InsertElement {
        hierarchy: "ling".into(),
        tag: "phrase".into(),
        attrs: vec![],
        start: s,
        end: e,
    };
    let a = c.edit(id, op.clone()).unwrap();
    let b = control.edit(id, op).unwrap();
    assert_eq!(a.node, b.node, "migration preserves the id layout");
    assert_eq!(a.epoch, b.epoch);

    // Moving to the same shard is a no-op; moving to a ghost shard errors.
    assert_eq!(c.move_doc(id, to).unwrap(), to);
    assert_eq!(c.docs_moved(), 1);
    assert!(matches!(c.move_doc(id, ShardId(9)), Err(ClusterError::NoSuchShard(9))));
    // Moving home again clears the override.
    c.move_doc(id, from).unwrap();
    assert!(c.router().overrides().is_empty());
}

#[test]
fn drain_shard_empties_it_and_keeps_every_document_reachable() {
    let dir = TempDir::new("drain");
    let c = cluster(&dir, 3);
    for i in 0..9 {
        c.insert_named(format!("doc-{i}"), corpus::figure1::goddag()).unwrap();
    }
    let before = exports(&c);
    let drained = c.drain_shard(ShardId(1)).unwrap();
    assert_eq!(drained.len(), 3);
    assert_eq!(c.shards()[1].store().len(), 0, "shard 1 is empty");
    assert_eq!(exports(&c), before, "every document still reachable, byte-identical");
    for id in &drained {
        assert_ne!(c.shard_of(*id), ShardId(1));
    }
    for i in 0..9 {
        assert!(c.id_by_name(&format!("doc-{i}")).is_ok());
    }
    assert_eq!(c.stats().docs_moved, 3);
    assert_eq!(c.stats().cluster_shards, 3);
    assert_eq!(c.stats().docs, 9);
}

#[test]
fn reopen_reassembles_routing_names_and_bytes() {
    let dir = TempDir::new("reopen");
    let dirs = dir.shard_dirs(3);
    let (ids, moved, before) = {
        let c = Cluster::open(dirs.clone(), options()).unwrap();
        let mut ids = Vec::new();
        for i in 0..6 {
            ids.push(c.insert_named(format!("doc-{i}"), manuscript(20, 50 + i)).unwrap());
        }
        for (k, &id) in ids.iter().enumerate() {
            c.edit(id, EditOp::InsertText { offset: 0, text: format!("e{k} ") }).unwrap();
        }
        let moved = ids[4];
        let to = ShardId((c.shard_of(moved).0 + 2) % 3);
        c.move_doc(moved, to).unwrap();
        c.shards()[0].checkpoint().unwrap(); // one shard checkpointed, others pure WAL
        c.sync_all().unwrap();
        (ids, moved, exports(&c))
    };
    let c = Cluster::open(dirs, options()).unwrap();
    assert_eq!(exports(&c), before, "reopen is byte-identical");
    assert_ne!(c.shard_of(moved), ShardId((moved.raw() % 3) as usize), "override re-derived");
    assert_eq!(c.router().overrides().len(), 1);
    for (i, id) in ids.iter().enumerate() {
        assert_eq!(c.id_by_name(&format!("doc-{i}")).unwrap(), *id);
    }
    // New inserts keep minting aligned, non-colliding ids.
    let fresh = c.insert(corpus::figure1::goddag()).unwrap();
    assert!(!ids.contains(&fresh));
    assert_eq!(c.shard_of(fresh).0 as u64, fresh.raw() % 3);
}

#[test]
fn assemble_needs_at_least_one_shard() {
    assert!(matches!(Cluster::assemble(vec![]), Err(ClusterError::Config(_))));
    let dir = TempDir::new("single");
    let c = cluster(&dir, 1);
    let id = c.insert(corpus::figure1::goddag()).unwrap();
    assert!(c.contains(id));
    assert!(matches!(c.drain_shard(ShardId(0)), Err(ClusterError::Config(_))));
}
