//! The cluster soak: ≥200 mixed gated edits spread across ≥3 primaries
//! while a rebalancer migrates documents mid-traffic and reader threads
//! fan queries out across the shards. Acceptance: final per-document
//! stand-off exports are byte-identical to a single-store control run of
//! the same op sequence. The release-scale variant additionally fronts
//! every primary with a tailing `cxrepl` follower and requires each one to
//! converge to its shard's exact bytes.

mod common;

use common::TempDir;
use cxcluster::{Cluster, ClusterError, ShardId};
use cxpersist::{FsyncPolicy, Options};
use cxrepl::{Follower, InProcessTransport, ReplicaStore};
use cxstore::{DocId, EditOp, Store, StoreError};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn manuscript(words: usize, seed: u64) -> goddag::Goddag {
    let mut ms = corpus::generate(&corpus::Params { words, seed, ..corpus::Params::default() });
    corpus::dtds::attach_standard(&mut ms.goddag);
    ms.goddag
}

fn cluster_exports(c: &Cluster) -> BTreeMap<u64, String> {
    c.doc_ids()
        .into_iter()
        .map(|id| (id.raw(), c.with_doc(id, sacx::export_standoff).unwrap()))
        .collect()
}

fn store_exports(store: &Store) -> BTreeMap<u64, String> {
    store
        .doc_ids()
        .into_iter()
        .map(|id| (id.raw(), store.with_doc(id, sacx::export_standoff).unwrap()))
        .collect()
}

/// Derive the `k`-th mixed op from the live cluster state of `doc`
/// (offsets move with every edit, so structural facts are re-read each
/// round).
fn gen_op(c: &Cluster, doc: DocId, k: usize, inserted: &[goddag::NodeId]) -> EditOp {
    let (len, words) = c
        .with_doc(doc, |g| {
            let words: Vec<(usize, usize)> = g
                .find_elements("w")
                .into_iter()
                .map(|w| g.char_range(w))
                .filter(|(a, b)| a < b)
                .collect();
            (g.content_len(), words)
        })
        .unwrap();
    match k % 6 {
        0 if !words.is_empty() => {
            let a = words[k % words.len()].0;
            let b = words[(k + 2) % words.len()].1;
            let (start, end) = if a <= b { (a, b) } else { (b, a) };
            EditOp::InsertElement {
                hierarchy: "ling".into(),
                tag: "phrase".into(),
                attrs: vec![("n".into(), format!("p{k}"))],
                start,
                end,
            }
        }
        1 if !words.is_empty() => {
            let (start, _) = words[k % words.len()];
            let end = (start + 9).min(len);
            EditOp::InsertElement {
                hierarchy: "edit".into(),
                tag: "dmg".into(),
                attrs: vec![("agent".into(), "wærm".into())],
                start,
                end: end.max(start),
            }
        }
        2 => EditOp::InsertText { offset: len / 2, text: format!("[{k}]") },
        3 if len > 8 => {
            let start = (k * 7) % (len - 4);
            EditOp::DeleteText { start, end: start + 1 }
        }
        4 if !inserted.is_empty() => {
            let node = inserted[k % inserted.len()];
            EditOp::SetAttr { node, name: "resp".into(), value: format!("ed{k}") }
        }
        _ => EditOp::InsertText { offset: 0, text: "X".into() },
    }
}

/// Apply one op to the cluster and the single-store control; verdicts and
/// minted node ids must agree.
fn edit_both(
    c: &Cluster,
    control: &Store,
    doc: DocId,
    op: EditOp,
    inserted: &mut Vec<goddag::NodeId>,
) -> bool {
    let a = c.edit(doc, op.clone());
    let b = control.edit(doc, op);
    match (a, b) {
        (Ok(ao), Ok(bo)) => {
            assert_eq!(ao.node, bo.node, "cluster and control mint the same ids");
            assert_eq!(ao.epoch, bo.epoch);
            if let Some(n) = ao.node {
                inserted.push(n);
            }
            true
        }
        (Err(ClusterError::Store(ae)), Err(be)) => {
            assert!(
                matches!(
                    (&ae, &be),
                    (StoreError::EditRejected(_), StoreError::EditRejected(_))
                        | (StoreError::Goddag(_), StoreError::Goddag(_))
                ),
                "rejections must agree: {ae} vs {be}"
            );
            false
        }
        (a, b) => panic!("cluster/control verdicts diverged: {a:?} vs {b:?}"),
    }
}

/// The full scenario. `edits` ≥ the acceptance floor of 200; `replicated`
/// fronts every shard with a tailing follower.
fn soak(edits: usize, replicated: bool) {
    const SHARDS: usize = 3;
    let dir = TempDir::new("soak");
    let cluster = Arc::new(
        Cluster::open(dir.shard_dirs(SHARDS), Options { fsync: FsyncPolicy::EveryN(16) }).unwrap(),
    );
    let control = Store::new();

    // ── Corpus: four gated manuscripts + one ungated control doc ─────
    let mut docs = Vec::new();
    for (i, g) in [
        manuscript(80, 41),
        manuscript(60, 43),
        manuscript(70, 47),
        manuscript(50, 53),
        corpus::figure1::goddag(),
    ]
    .into_iter()
    .enumerate()
    {
        let id = cluster.insert_named(format!("doc-{i}"), g.clone()).unwrap();
        control.insert_with_id(id, g).unwrap();
        control.bind_name(format!("doc-{i}"), id).unwrap();
        docs.push(id);
    }
    let held: Vec<ShardId> = docs.iter().map(|d| cluster.shard_of(*d)).collect();
    assert!(
        (0..SHARDS).all(|s| held.contains(&ShardId(s))),
        "the corpus spans all {SHARDS} primaries: {held:?}"
    );

    // ── Per-shard followers (release variant) ────────────────────────
    let followers: Vec<_> = if replicated {
        (0..SHARDS)
            .map(|s| {
                let replica = Arc::new(ReplicaStore::new());
                let transport = InProcessTransport::new(cluster.primary(ShardId(s)).unwrap());
                Follower::new(Arc::clone(&replica), transport).spawn(Duration::from_millis(2))
            })
            .collect()
    } else {
        Vec::new()
    };

    // ── Fan-out readers ──────────────────────────────────────────────
    let stop = Arc::new(AtomicBool::new(false));
    let reads = Arc::new(AtomicU64::new(0));
    let readers: Vec<_> = (0..2)
        .map(|r| {
            let cluster = Arc::clone(&cluster);
            let stop = Arc::clone(&stop);
            let reads = Arc::clone(&reads);
            let docs = docs.clone();
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    // Fan-out and routed reads against live, migrating
                    // state: never an error, never a missing document.
                    let hits = cluster.query_all("//w").unwrap();
                    assert_eq!(hits.len(), docs.len());
                    let id = docs[r % docs.len()];
                    let _ = cluster.with_doc(id, sacx::export_standoff).unwrap();
                    assert!(cluster.contains(id));
                    reads.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();

    // ── The rebalancer: migrate documents mid-traffic ────────────────
    let moves = Arc::new(AtomicU64::new(0));
    let mover = {
        let cluster = Arc::clone(&cluster);
        let stop = Arc::clone(&stop);
        let moves = Arc::clone(&moves);
        let docs = docs.clone();
        std::thread::spawn(move || {
            let mut k = 0usize;
            while !stop.load(Ordering::Relaxed) {
                let doc = docs[k % docs.len()];
                let to = ShardId((cluster.shard_of(doc).0 + 1 + k % (SHARDS - 1)) % SHARDS);
                cluster.move_doc(doc, to).unwrap();
                moves.fetch_add(1, Ordering::Relaxed);
                k += 1;
                std::thread::sleep(Duration::from_millis(3));
            }
        })
    };

    // ── The mixed workload ───────────────────────────────────────────
    let mut inserted: Vec<goddag::NodeId> = Vec::new();
    let mut applied = 0usize;
    let mut k = 0usize;
    while applied < edits {
        let doc = docs[k % docs.len()];
        // figure1 carries no DTD; throw only ungated text at it.
        let op = if doc == docs[4] {
            EditOp::InsertText { offset: 0, text: format!("f{k} ") }
        } else {
            gen_op(&cluster, doc, k, &inserted)
        };
        if edit_both(&cluster, &control, doc, op, &mut inserted) {
            applied += 1;
        }
        k += 1;
    }
    assert!(applied >= 200, "acceptance floor: ≥200 applied mixed edits, got {applied}");

    // ── Quiesce and compare byte-for-byte ────────────────────────────
    stop.store(true, Ordering::Relaxed);
    for r in readers {
        r.join().unwrap();
    }
    mover.join().unwrap();
    assert!(reads.load(Ordering::Relaxed) > 0, "readers overlapped the workload");
    assert!(moves.load(Ordering::Relaxed) > 0, "documents migrated mid-traffic");
    assert_eq!(cluster.docs_moved(), moves.load(Ordering::Relaxed));

    let cl = cluster_exports(&cluster);
    assert_eq!(cl, store_exports(&control), "cluster matches the single-store control run");
    // Every primary took part of the write load.
    for (s, shard) in cluster.shards().iter().enumerate() {
        assert!(shard.stats().wal_appends > 0, "shard {s} logged writes");
    }
    let total_edits: u64 = cluster.shards().iter().map(|s| s.stats().edits).sum();
    assert!(total_edits as usize >= applied);

    // ── Followers converge to their shard's exact bytes ──────────────
    for (s, handle) in followers.into_iter().enumerate() {
        assert!(handle.terminal_error().is_none(), "follower {s} parked");
        let replica = handle.stop();
        Follower::new(
            Arc::clone(&replica),
            InProcessTransport::new(cluster.primary(ShardId(s)).unwrap()),
        )
        .catch_up()
        .unwrap();
        assert_eq!(
            store_exports(replica.store()),
            store_exports(cluster.shards()[s].store()),
            "shard {s}'s follower is byte-identical"
        );
        assert_eq!(replica.lag(), 0);
    }

    // ── And the whole cluster survives a reopen ──────────────────────
    let dirs = dir.shard_dirs(SHARDS);
    drop(cluster);
    let reopened = Cluster::open(dirs, Options { fsync: FsyncPolicy::Never }).unwrap();
    assert_eq!(cluster_exports(&reopened), cl, "reopen reproduces the exact bytes");
}

#[test]
fn soak_mixed_edits_with_moves_and_fanout_reads() {
    soak(210, false);
}

/// Release-scale variant with per-shard replication — the CI soak step
/// (`cargo test --release -p cxcluster -- --ignored`).
#[test]
#[ignore = "release-scale soak; run with: cargo test --release -p cxcluster -- --ignored"]
fn soak_release_scale_with_replicated_shards() {
    soak(600, true);
}
