//! Acceptance for the observability layer: a 3-shard cluster under
//! concurrent soak traffic renders one exposition page with per-shard
//! labeled counters, gauges and latency histograms (sane percentiles),
//! plus cluster-level queueing/migration series and a drainable event
//! trail.

mod common;

use common::TempDir;
use cxcluster::{Cluster, ShardId};
use cxobs::Observable;
use cxpersist::{FsyncPolicy, Options};
use cxstore::EditOp;
use std::sync::Arc;

const SHARDS: usize = 3;
const DOCS: usize = 9;
const WRITERS: usize = 3;
const EDITS_PER_WRITER: usize = 30;

fn manuscript(seed: u64) -> goddag::Goddag {
    let mut ms = corpus::generate(&corpus::Params { words: 40, seed, ..corpus::Params::default() });
    corpus::dtds::attach_standard(&mut ms.goddag);
    ms.goddag
}

/// The value of the exposition line whose name+labels equal `series`.
fn metric(page: &str, series: &str) -> i64 {
    page.lines()
        .find_map(|l| l.strip_prefix(series).and_then(|rest| rest.strip_prefix(' ')))
        .unwrap_or_else(|| panic!("no exposition line for {series}"))
        .parse()
        .unwrap_or_else(|e| panic!("unparseable value for {series}: {e}"))
}

#[test]
fn cluster_exposition_under_soak() {
    let dir = TempDir::new("obs");
    let c = Arc::new(
        Cluster::open(dir.shard_dirs(SHARDS), Options { fsync: FsyncPolicy::EveryN(8) }).unwrap(),
    );

    let docs: Vec<_> = (0..DOCS).map(|k| c.insert(manuscript(k as u64)).unwrap()).collect();

    // Concurrent soak: writers edit disjoint documents while a reader
    // fans queries out across all shards and a rebalancer migrates.
    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let (c, docs) = (Arc::clone(&c), &docs);
            scope.spawn(move || {
                for k in 0..EDITS_PER_WRITER {
                    for (i, &doc) in docs.iter().enumerate() {
                        if i % WRITERS == w {
                            let op = EditOp::InsertText { offset: 0, text: format!("w{w}k{k} ") };
                            c.edit(doc, op).unwrap();
                        }
                    }
                }
            });
        }
        let c2 = Arc::clone(&c);
        scope.spawn(move || {
            for _ in 0..10 {
                c2.query_all("//w").unwrap();
            }
        });
        let (c3, moved) = (Arc::clone(&c), docs[0]);
        scope.spawn(move || {
            c3.move_doc(moved, ShardId(1)).unwrap();
            c3.move_doc(moved, ShardId(0)).unwrap();
        });
    });
    c.checkpoint_all().unwrap();

    let page = c.exposition();

    // Per-shard series: every shard carries documents, edit counters and
    // populated latency histograms under its own label.
    for s in 0..SHARDS {
        assert!(metric(&page, &format!("cx_docs{{shard=\"{s}\"}}")) >= 1);
        assert!(metric(&page, &format!("cx_edits_total{{shard=\"{s}\"}}")) > 0);
        assert!(metric(&page, &format!("cx_edit_ns_count{{shard=\"{s}\"}}")) > 0);
        assert!(metric(&page, &format!("cx_wal_append_ns_count{{shard=\"{s}\"}}")) > 0);
        assert!(metric(&page, &format!("cx_checkpoint_ns_count{{shard=\"{s}\"}}")) >= 1);
        let p50 = metric(&page, &format!("cx_edit_ns{{shard=\"{s}\",quantile=\"0.5\"}}"));
        let p90 = metric(&page, &format!("cx_edit_ns{{shard=\"{s}\",quantile=\"0.9\"}}"));
        let p99 = metric(&page, &format!("cx_edit_ns{{shard=\"{s}\",quantile=\"0.99\"}}"));
        assert!(0 < p50 && p50 <= p90 && p90 <= p99, "shard {s}: {p50}/{p90}/{p99}");
    }

    // Cluster-level series: migration latency recorded, queueing gauges
    // back to zero now that the soak has quiesced.
    assert!(metric(&page, "cx_move_doc_ns_count") >= 2);
    assert_eq!(metric(&page, "cx_gate_waiters"), 0);
    assert_eq!(metric(&page, "cx_fanout_threads"), 0);
    for s in 0..SHARDS {
        assert_eq!(metric(&page, &format!("cx_shard_writes_in_flight{{shard=\"{s}\"}}")), 0);
    }

    // The aggregated stats agree with the quiesced gauges and flow into
    // the same page unlabeled.
    let stats = c.stats();
    assert_eq!((stats.writes_in_flight, stats.writers_waiting), (0, 0));
    assert_eq!(metric(&page, "cx_docs"), DOCS as i64);
    assert_eq!(metric(&page, "cx_cluster_shards"), SHARDS as i64);
    assert_eq!(metric(&page, "cx_docs_moved_total"), 2);

    // The event trail: migrations on the cluster ring, checkpoints on
    // each shard's own ring.
    let kinds: Vec<&str> = c.registry().events().recent().iter().map(|e| e.kind).collect();
    assert_eq!(kinds.iter().filter(|k| **k == "migrate").count(), 2);
    for shard in c.shards() {
        let kinds: Vec<&str> = shard.registry().events().recent().iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&"checkpoint"), "shard missing checkpoint event: {kinds:?}");
    }
}
