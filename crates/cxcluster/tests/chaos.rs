//! The chaos soak: a 3-shard cluster with per-shard followers driven
//! through a **seeded fault schedule** — injected WAL append failures
//! (the ENOSPC class), torn replication frames, probabilistic transport
//! outages, and a slow-shard delay — while mixed gated traffic keeps
//! flowing. Degraded shards are healed and retried; a shard is marked
//! down mid-run and writes to it fail fast; partial fan-out answers
//! within its budget with explicit per-shard errors. Acceptance: once
//! the faults lift, cluster, control store, and every follower converge
//! **byte-identically**, and a reopen reproduces the same bytes.

mod common;

use common::TempDir;
use cxcluster::{Cluster, ClusterError, PartialResults, ShardHealth, ShardId};
use cxfault::{Fault, Trigger};
use cxobs::Observable;
use cxpersist::{FsyncPolicy, Options, PersistError};
use cxrepl::{FaultTransport, Follower, FollowerHandle, InProcessTransport, ReplicaStore};
use cxstore::{DocId, EditOp, Store, StoreError};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

const SHARDS: usize = 3;

fn manuscript(words: usize, seed: u64) -> goddag::Goddag {
    let mut ms = corpus::generate(&corpus::Params { words, seed, ..corpus::Params::default() });
    corpus::dtds::attach_standard(&mut ms.goddag);
    ms.goddag
}

fn cluster_exports(c: &Cluster) -> BTreeMap<u64, String> {
    c.doc_ids()
        .into_iter()
        .map(|id| (id.raw(), c.with_doc(id, sacx::export_standoff).unwrap()))
        .collect()
}

fn store_exports(store: &Store) -> BTreeMap<u64, String> {
    store
        .doc_ids()
        .into_iter()
        .map(|id| (id.raw(), store.with_doc(id, sacx::export_standoff).unwrap()))
        .collect()
}

/// The k-th mixed op, derived from live state (offsets shift with every
/// edit).
fn gen_op(c: &Cluster, doc: DocId, k: usize) -> EditOp {
    let (len, words) = c
        .with_doc(doc, |g| {
            let words: Vec<(usize, usize)> = g
                .find_elements("w")
                .into_iter()
                .map(|w| g.char_range(w))
                .filter(|(a, b)| a < b)
                .collect();
            (g.content_len(), words)
        })
        .unwrap();
    match k % 5 {
        0 if !words.is_empty() => {
            let a = words[k % words.len()].0;
            let b = words[(k + 2) % words.len()].1;
            let (start, end) = if a <= b { (a, b) } else { (b, a) };
            EditOp::InsertElement {
                hierarchy: "ling".into(),
                tag: "phrase".into(),
                attrs: vec![("n".into(), format!("p{k}"))],
                start,
                end,
            }
        }
        1 => EditOp::InsertText { offset: len / 2, text: format!("[{k}]") },
        2 if len > 8 => {
            let start = (k * 7) % (len - 4);
            EditOp::DeleteText { start, end: start + 1 }
        }
        3 if !words.is_empty() => {
            let (start, _) = words[k % words.len()];
            let end = (start + 9).min(len);
            EditOp::InsertElement {
                hierarchy: "edit".into(),
                tag: "dmg".into(),
                attrs: vec![("agent".into(), "chaos".into())],
                start,
                end: end.max(start),
            }
        }
        _ => EditOp::InsertText { offset: 0, text: "X".into() },
    }
}

/// Drive mixed traffic until `target` edits have **applied**, mirroring
/// every applied op onto the single-store control. An edit that fails
/// with an injected persistence fault never mutated the shard
/// (append-before-mutate), so it is simply *not* mirrored: the shard is
/// healed and traffic continues. Returns how many injected write faults
/// were absorbed.
fn drive(c: &Cluster, control: &Store, docs: &[DocId], target: usize, k0: &mut usize) -> usize {
    let mut applied = 0usize;
    let mut wal_faults = 0usize;
    while applied < target {
        let k = *k0;
        *k0 += 1;
        let doc = docs[k % docs.len()];
        // figure1 carries no DTD; throw only ungated text at it.
        let op = if doc == docs[4] {
            EditOp::InsertText { offset: 0, text: format!("f{k} ") }
        } else {
            gen_op(c, doc, k)
        };
        match c.edit(doc, op.clone()) {
            Ok(ao) => {
                let bo = control.edit(doc, op).unwrap();
                assert_eq!(ao.node, bo.node, "cluster and control mint the same ids");
                assert_eq!(ao.epoch, bo.epoch);
                applied += 1;
            }
            Err(ClusterError::Store(ae)) => {
                // A gate rejection — the control must agree, and neither
                // side mutated.
                let be = control.edit(doc, op).unwrap_err();
                assert!(
                    matches!(
                        (&ae, &be),
                        (StoreError::EditRejected(_), StoreError::EditRejected(_))
                            | (StoreError::Goddag(_), StoreError::Goddag(_))
                    ),
                    "rejections must agree: {ae} vs {be}"
                );
            }
            Err(ClusterError::Persist(e)) => {
                // The injected WAL fault (first failure arrives as the
                // io error itself; later writes as Degraded). The edit
                // never reached the store, so the control skips it too.
                assert!(
                    matches!(e, PersistError::Io(_) | PersistError::Degraded { .. }),
                    "unexpected persistence failure: {e}"
                );
                wal_faults += 1;
                let s = c.shard_of(doc);
                assert_eq!(c.shard_health(s).unwrap(), ShardHealth::Degraded);
                // Degraded is read-only, not dead: reads still answer.
                assert!(c.query(doc, "//w").is_ok());
                // Heal and carry on (the probe itself passes through the
                // armed failpoint, so it can take a couple of tries).
                for _ in 0..4 {
                    if c.heal_shard(s).is_ok() {
                        break;
                    }
                }
                assert_eq!(c.shard_health(s).unwrap(), ShardHealth::Healthy, "heal failed");
            }
            Err(e) => panic!("unexpected cluster error under chaos: {e}"),
        }
    }
    wal_faults
}

fn spawn_followers(c: &Cluster) -> Vec<FollowerHandle> {
    (0..SHARDS)
        .map(|s| {
            let replica = Arc::new(ReplicaStore::new());
            let inner = InProcessTransport::new(c.primary(ShardId(s)).unwrap());
            let transport = FaultTransport::with_site(inner, format!("repl.fetch.{s}"));
            Follower::new(replica, transport).spawn(Duration::from_millis(2))
        })
        .collect()
}

/// The full scenario; `edits` is the phase-A floor (the acceptance bar
/// is ≥200 mixed edits under fault load).
fn chaos(edits: usize) {
    let _fp = cxfault::Scenario::setup();
    let dir = TempDir::new("chaos");
    let cluster = Arc::new(
        Cluster::open(dir.shard_dirs(SHARDS), Options { fsync: FsyncPolicy::EveryN(8) }).unwrap(),
    );
    let control = Store::new();

    // ── Corpus (inserted before any fault is armed) ──────────────────
    let mut docs = Vec::new();
    for (i, g) in [
        manuscript(70, 61),
        manuscript(55, 67),
        manuscript(65, 71),
        manuscript(45, 73),
        corpus::figure1::goddag(),
    ]
    .into_iter()
    .enumerate()
    {
        let id = cluster.insert_named(format!("doc-{i}"), g.clone()).unwrap();
        control.insert_with_id(id, g).unwrap();
        control.bind_name(format!("doc-{i}"), id).unwrap();
        docs.push(id);
    }
    assert!(
        (0..SHARDS).all(|s| docs.iter().any(|d| cluster.shard_of(*d) == ShardId(s))),
        "the corpus spans all {SHARDS} primaries"
    );

    let followers = spawn_followers(&cluster);

    // ── The seeded fault schedule: three fault kinds ─────────────────
    // Every 37th WAL append across the cluster fails like ENOSPC.
    cxfault::configure("wal.append", Trigger::EveryN(37), Fault::Io);
    // Shard 0's replication link drops ~10% of fetches …
    cxfault::configure_seeded("repl.fetch.0", Trigger::Probability(0.10), Fault::Io, 7);
    // … and shard 1's link tears ~8% of record batches mid-frame.
    cxfault::configure_seeded(
        "repl.fetch.1",
        Trigger::Probability(0.08),
        Fault::TornWrite(0.5),
        11,
    );

    // ── Phase A: ≥200 mixed edits through the storm ──────────────────
    let mut k = 0usize;
    let wal_faults = drive(&cluster, &control, &docs, edits, &mut k);
    assert!(wal_faults >= 3, "the WAL fault schedule actually fired: {wal_faults}");
    assert!(cxfault::fires("wal.append") >= wal_faults as u64);

    // ── Phase B: one shard marked down, cluster stays useful ─────────
    let sick = ShardId(1);
    cluster.mark_shard_down(sick).unwrap();
    assert_eq!(cluster.shard_health(sick).unwrap(), ShardHealth::Down);

    // Writes routed to the down shard fail fast with a typed error and
    // reach nothing (the control is untouched by design).
    let on_sick = *docs.iter().find(|d| cluster.shard_of(**d) == sick).unwrap();
    let miss = cluster.edit(on_sick, EditOp::InsertText { offset: 0, text: "nope".into() });
    assert!(matches!(miss, Err(ClusterError::ShardDown(1))), "{miss:?}");
    // Reads to the same shard still answer (the store is fine).
    assert!(cluster.query(on_sick, "//w").is_ok());
    // New documents place around the sick shard.
    let newcomer = manuscript(30, 79);
    let placed = cluster.insert(newcomer.clone()).unwrap();
    assert_ne!(cluster.shard_of(placed), sick, "placement skipped the down shard");
    control.insert_with_id(placed, newcomer).unwrap();
    docs.push(placed);

    // Partial fan-out: explicit per-shard error for the down shard, full
    // hits from everyone else.
    let down_docs = docs.iter().filter(|d| cluster.shard_of(**d) == sick).count();
    let part = cluster.query_all_partial("//w", Duration::from_secs(5));
    assert_eq!(part.errors.len(), 1);
    assert!(matches!(part.errors[0].error, ClusterError::ShardDown(1)), "{:?}", part.errors);
    assert_eq!(part.hits.len(), docs.len() - down_docs);
    assert!(!part.is_complete());

    // Other shards keep taking writes while one is down.
    let healthy_doc = *docs.iter().find(|d| cluster.shard_of(**d) != sick).unwrap();
    let op = EditOp::InsertText { offset: 0, text: "alive ".into() };
    cluster.edit(healthy_doc, op.clone()).unwrap();
    control.edit(healthy_doc, op).unwrap();

    // Bring it back; the full fan-out is complete again.
    assert_eq!(cluster.heal_shard(sick).unwrap(), ShardHealth::Healthy);
    let part = cluster.query_all_partial("//w", Duration::from_secs(5));
    assert!(part.is_complete(), "{:?}", part.errors);
    assert_eq!(part.hits.len(), docs.len());

    // ── Phase B': a slow shard times out; the answer stays bounded ───
    cxfault::configure(
        cxcluster::SHARD_QUERY_SITE,
        Trigger::Nth(1),
        Fault::Delay(Duration::from_millis(900)),
    );
    let t0 = Instant::now();
    let PartialResults { hits, errors } =
        cluster.query_all_partial("//w", Duration::from_millis(150));
    let elapsed = t0.elapsed();
    assert!(
        elapsed < Duration::from_millis(800),
        "bounded by the budget, not the delay: {elapsed:?}"
    );
    assert_eq!(errors.len(), 1, "exactly the delayed worker missed the budget: {errors:?}");
    assert!(matches!(errors[0].error, ClusterError::Timeout { ms: 150, .. }), "{errors:?}");
    assert!(!hits.is_empty() && hits.len() < docs.len(), "partial hits: {}", hits.len());
    cxfault::disarm(cxcluster::SHARD_QUERY_SITE);

    // ── Phase C: faults lift; everything converges byte-identically ──
    cxfault::clear();
    for s in 0..SHARDS {
        if cluster.shard_health(ShardId(s)).unwrap() != ShardHealth::Healthy {
            cluster.heal_shard(ShardId(s)).unwrap();
        }
    }
    drive(&cluster, &control, &docs, 30, &mut k);

    let cl = cluster_exports(&cluster);
    assert_eq!(cl, store_exports(&control), "cluster matches the fault-free control run");

    // Followers never parked through the outages; after a final clean
    // catch-up each replica is byte-identical to its shard.
    for (s, handle) in followers.into_iter().enumerate() {
        assert!(handle.terminal_error().is_none(), "follower {s} parked under transient faults");
        let replica = handle.stop();
        Follower::new(
            Arc::clone(&replica),
            InProcessTransport::new(cluster.primary(ShardId(s)).unwrap()),
        )
        .catch_up()
        .unwrap();
        assert_eq!(
            store_exports(replica.store()),
            store_exports(cluster.shards()[s].store()),
            "shard {s}'s follower is byte-identical after the faults lift"
        );
        assert_eq!(replica.lag(), 0);
    }

    // ── Observability: the storm left a legible trail ────────────────
    let page = cluster.exposition();
    assert!(page.contains("cx_shard_health{shard=\"0\"} 0"), "healthy gauge:\n{page}");
    assert!(page.contains("cx_shard_health{shard=\"1\"} 0"));
    let kinds: Vec<&str> = cluster.registry().events().recent().iter().map(|e| e.kind).collect();
    assert!(kinds.contains(&"shard.down"), "{kinds:?}");
    assert!(kinds.contains(&"shard.healed"), "{kinds:?}");
    assert!(kinds.contains(&"shard.timeout"), "{kinds:?}");
    // Whichever shard the 37-append cadence landed on recorded its own
    // degrade/heal lifecycle.
    let shard_saw = |kind: &str| {
        cluster
            .shards()
            .iter()
            .any(|sh| sh.registry().events().recent().iter().any(|e| e.kind == kind))
    };
    assert!(shard_saw("store.degraded"));
    assert!(shard_saw("store.healed"));

    // ── And the exact bytes survive a reopen ─────────────────────────
    let dirs = dir.shard_dirs(SHARDS);
    drop(cluster);
    let reopened = Cluster::open(dirs, Options { fsync: FsyncPolicy::Never }).unwrap();
    assert_eq!(cluster_exports(&reopened), cl, "reopen reproduces the exact bytes");
}

#[test]
fn chaos_soak_converges_byte_identical_after_faults_lift() {
    chaos(220);
}

/// Release-scale variant — rides the CI soak step
/// (`cargo test --release -p cxcluster -- --ignored`).
#[test]
#[ignore = "release-scale chaos soak; run with: cargo test --release -p cxcluster -- --ignored"]
fn chaos_release_scale() {
    chaos(600);
}
