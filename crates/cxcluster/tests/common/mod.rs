//! Shared test plumbing: self-cleaning temp directories (the environment
//! has no `tempfile` crate) and a cluster scaffold.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT: AtomicU64 = AtomicU64::new(0);

/// A unique directory under the system temp dir, removed on drop.
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    pub fn new(tag: &str) -> TempDir {
        let path = std::env::temp_dir().join(format!(
            "cxcluster-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).expect("create temp dir");
        TempDir { path }
    }

    #[allow(dead_code)] // not every test file uses every helper
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// `n` shard directories under this temp dir, in index order.
    #[allow(dead_code)]
    pub fn shard_dirs(&self, n: usize) -> Vec<PathBuf> {
        (0..n).map(|i| self.path.join(format!("shard-{i}"))).collect()
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}
