//! Migration crash-safety: kill the process between `move_doc`'s
//! capture / apply / route-swap / tombstone steps and verify recovery
//! leaves the document on **exactly one** primary with a byte-identical
//! stand-off export — plus the live pin that a reader never loses sight of
//! a document mid-move.
//!
//! The kill is simulated the way the cxpersist crash tests do it: every
//! durable side effect of a migration step is an fsynced WAL record, so
//! "crashed after step k" is exactly "the stores closed after step k's
//! records" (and the torn variant additionally cuts the target's WAL
//! mid-record, like a real power cut would).

mod common;

use common::TempDir;
use cxcluster::{Cluster, ShardId};
use cxpersist::{DocBlob, DurableStore, FsyncPolicy, Options};
use cxstore::{DocId, EditOp};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn options() -> Options {
    Options { fsync: FsyncPolicy::EveryOp }
}

/// Set up a 3-shard cluster with one named, edited document, returning
/// the shard dirs, the doc id, its source shard, and its export.
fn seeded(dir: &TempDir) -> (Vec<PathBuf>, DocId, usize, String) {
    let dirs = dir.shard_dirs(3);
    let c = Cluster::open(dirs.clone(), options()).unwrap();
    // A few padding docs so shards are non-trivial.
    for i in 0..3 {
        c.insert(corpus::figure1::goddag()).unwrap();
        let _ = i;
    }
    let mut g = corpus::figure1::goddag();
    corpus::dtds::attach_standard(&mut g);
    let id = c.insert_named("the-ms", g).unwrap();
    c.edit(id, EditOp::InsertText { offset: 0, text: "swa ".into() }).unwrap();
    c.edit(id, EditOp::InsertText { offset: 2, text: "hw ".into() }).unwrap();
    let export = c.with_doc(id, sacx::export_standoff).unwrap();
    let src = c.shard_of(id).0;
    (dirs, id, src, export)
}

/// Reopen the cluster and assert the invariant: the document lives on
/// exactly one shard, exports the same bytes, and keeps its name.
fn assert_exactly_one(dirs: &[PathBuf], id: DocId, export: &str) -> Cluster {
    let c = Cluster::open(dirs.to_vec(), options()).unwrap();
    let holders: Vec<usize> = c
        .shards()
        .iter()
        .enumerate()
        .filter(|(_, s)| s.store().contains(id))
        .map(|(i, _)| i)
        .collect();
    assert_eq!(holders.len(), 1, "document on exactly one primary, found on {holders:?}");
    assert_eq!(c.shard_of(id).0, holders[0], "routing matches where it lives");
    assert_eq!(c.with_doc(id, sacx::export_standoff).unwrap(), export, "bytes identical");
    assert_eq!(c.id_by_name("the-ms").unwrap(), id, "the name survived");
    c
}

/// Run `move_doc`'s step sequence by hand against raw stores, stopping
/// (killing) after `steps` of: 1 = capture only, 2 = receive without the
/// name re-binds, 3 = full receive, 4 = receive + route-swap-era kill
/// (swap is in-memory; on disk it equals 3), 5 = tombstone too (complete).
fn crash_after(dirs: &[PathBuf], id: DocId, src: usize, steps: usize) {
    let to = (src + 1) % 3;
    let source = DurableStore::open_with(&dirs[src], options()).unwrap();
    let target = DurableStore::open_with(&dirs[to], options()).unwrap();
    // Step 1: capture under the doc lock.
    let blob = source.store().with_doc(id, DocBlob::capture).unwrap();
    let names: Vec<String> = source
        .store()
        .name_bindings()
        .into_iter()
        .filter(|(_, d)| *d == id)
        .map(|(n, _)| n)
        .collect();
    assert_eq!(names, vec!["the-ms".to_string()]);
    if steps >= 2 {
        // Step 2/3: the durable hand-off (commit point). `steps == 2`
        // kills between the DocInsert record and the BindName records.
        let bind = if steps == 2 { &[][..] } else { &names[..] };
        target.receive_doc(id, &blob, bind).unwrap();
    }
    if steps >= 5 {
        // Step 4 (route swap) is in-memory only. Step 5: tombstone.
        source.remove(id).unwrap();
    }
    // The kill: stores drop with all acknowledged records fsynced.
}

#[test]
fn recovery_after_every_migration_step_keeps_exactly_one_owner() {
    for steps in 1..=5 {
        let dir = TempDir::new(&format!("crash-{steps}"));
        let (dirs, id, src, export) = seeded(&dir);
        crash_after(&dirs, id, src, steps);
        let c = assert_exactly_one(&dirs, id, &export);
        match steps {
            1 => assert_eq!(c.shard_of(id).0, src, "capture alone moves nothing"),
            2..=4 => {
                // Both sides held identical copies; assembly commits the
                // migration (the off-home copy wins) and heals the name.
                assert_eq!(c.shard_of(id).0, (src + 1) % 3, "commit point was the target insert");
            }
            _ => assert_eq!(c.shard_of(id).0, (src + 1) % 3, "completed migration stands"),
        }
        // The recovered cluster keeps serving writes on the surviving copy.
        c.edit(id, EditOp::InsertText { offset: 0, text: "post ".into() }).unwrap();
        assert!(c.with_doc(id, |g| g.content().starts_with("post ")).unwrap());
    }
}

#[test]
fn torn_target_wal_rolls_the_migration_back_to_the_source() {
    let dir = TempDir::new("crash-torn");
    let (dirs, id, src, export) = seeded(&dir);
    let to = (src + 1) % 3;
    crash_after(&dirs, id, src, 3);
    // The power cut tore the target's log mid-DocInsert: cut the file
    // inside the last record's blob payload. Recovery must drop the torn
    // record — the document never committed on the target.
    let wal = dirs[to].join("wal.log");
    let bytes = std::fs::read(&wal).unwrap();
    let file = std::fs::OpenOptions::new().write(true).open(&wal).unwrap();
    file.set_len(bytes.len() as u64 - 40).unwrap();
    file.sync_all().unwrap();
    let c = assert_exactly_one(&dirs, id, &export);
    assert_eq!(c.shard_of(id).0, src, "torn hand-off never committed; the source still owns it");
}

#[test]
fn readers_see_the_document_on_exactly_one_side_throughout_a_move() {
    let dir = TempDir::new("reader-pin");
    let c =
        Arc::new(Cluster::open(dir.shard_dirs(3), Options { fsync: FsyncPolicy::Never }).unwrap());
    let id = c.insert_named("pinned", corpus::figure1::goddag()).unwrap();
    let expect = c.with_doc(id, sacx::export_standoff).unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..2)
        .map(|_| {
            let c = Arc::clone(&c);
            let stop = Arc::clone(&stop);
            let expect = expect.clone();
            std::thread::spawn(move || {
                let mut reads = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    // Reads route-and-retry: they must never miss the
                    // document, never error, and always see the one true
                    // byte state — no matter where the mover has it.
                    assert!(c.contains(id));
                    assert_eq!(c.with_doc(id, sacx::export_standoff).unwrap(), expect);
                    assert_eq!(c.id_by_name("pinned").unwrap(), id);
                    reads += 1;
                }
                reads
            })
        })
        .collect();

    // The mover: bounce the document around the ring while readers run.
    for round in 0..60 {
        let to = ShardId((c.shard_of(id).0 + 1) % 3);
        c.move_doc(id, to).unwrap();
        let _ = round;
    }
    stop.store(true, Ordering::Relaxed);
    let total: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
    assert!(total > 0, "readers actually overlapped the moves");
    assert_eq!(c.docs_moved(), 60);
    // Direct shard inspection: exactly one holder at quiescence.
    let holders = c.shards().iter().filter(|s| s.store().contains(id)).count();
    assert_eq!(holders, 1);
}
