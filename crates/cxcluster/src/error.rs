//! Cluster-layer errors.

use std::fmt;

/// Shorthand result type.
pub type Result<T> = std::result::Result<T, ClusterError>;

/// Anything that can go wrong routing, editing or rebalancing across
/// shards.
#[derive(Debug)]
pub enum ClusterError {
    /// A shard's store refused an operation — the same error a plain
    /// [`cxstore::Store`] would return, surfaced transparently so callers
    /// can treat a cluster as a store (a prevalidation rejection is a
    /// rejection, wherever the document lives).
    Store(cxstore::StoreError),
    /// A shard's persistence layer failed (WAL append, checkpoint,
    /// blob hand-off).
    Persist(cxpersist::PersistError),
    /// An operation named a shard index the cluster does not have.
    NoSuchShard(usize),
    /// The cluster's shards are inconsistent with each other in a way
    /// assembly cannot heal, or the topology request makes no sense.
    Config(String),
    /// The operation routed to a shard an operator (or the health check)
    /// has marked **down**: the write was refused before touching the
    /// shard, so nothing was logged and nothing needs undoing.
    ShardDown(usize),
    /// A shard failed to answer a fan-out request for a reason that is
    /// not a per-document store error — an injected outage, a worker
    /// failure — and the rest of the cluster carried on without it.
    ShardUnavailable {
        /// Which shard.
        shard: usize,
        /// What happened, for the error chain / logs.
        detail: String,
    },
    /// A shard did not answer a fan-out request within its per-shard
    /// budget; the partial result set excludes it.
    Timeout {
        /// Which shard.
        shard: usize,
        /// The budget it missed, in milliseconds.
        ms: u64,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Store(e) => write!(f, "shard store error: {e}"),
            ClusterError::Persist(e) => write!(f, "shard persistence error: {e}"),
            ClusterError::NoSuchShard(i) => write!(f, "no shard {i}"),
            ClusterError::Config(detail) => write!(f, "cluster configuration error: {detail}"),
            ClusterError::ShardDown(i) => write!(f, "shard {i} is marked down"),
            ClusterError::ShardUnavailable { shard, detail } => {
                write!(f, "shard {shard} unavailable: {detail}")
            }
            ClusterError::Timeout { shard, ms } => {
                write!(f, "shard {shard} did not answer within {ms} ms")
            }
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterError::Store(e) => Some(e),
            ClusterError::Persist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<cxstore::StoreError> for ClusterError {
    fn from(e: cxstore::StoreError) -> ClusterError {
        ClusterError::Store(e)
    }
}

impl From<cxpersist::PersistError> for ClusterError {
    fn from(e: cxpersist::PersistError) -> ClusterError {
        // Unwrap the store layer so a gate rejection (or NoSuchDoc, …)
        // reads identically whether it came from a plain store, a durable
        // store, or a shard across the cluster.
        match e {
            cxpersist::PersistError::Store(s) => ClusterError::Store(s),
            other => ClusterError::Persist(other),
        }
    }
}
