//! # cxcluster — multi-primary write sharding for concurrent-XML stores
//!
//! `cxrepl` scaled *reads*: any number of replicas tailing one primary's
//! WAL. This crate scales *writes* by partitioning the document space
//! across **N primaries** — the classic partitioned-ownership design
//! (tablet assignment, not conflict resolution): every document has
//! exactly one owning [`cxpersist::DurableStore`], so the prevalidation
//! gate and the WAL epoch chain keep the exact strength they have on a
//! single primary.
//!
//! * **[`Router`]** — deterministic `DocId → shard`. Cluster inserts mint
//!   ids from per-shard residue classes (shard `i` of `n` allocates only
//!   ids `≡ i (mod n)`), so the hash default `raw % n` routes every
//!   unmoved document with no table at all; moved documents carry an
//!   explicit override. The table is *derived* from where documents live —
//!   there is no separate routing artifact to keep crash-consistent.
//! * **[`Cluster`]** — the store-shaped façade: routed gated edits, a
//!   cluster-level name directory (`id_by_name` / `remove_named` find a
//!   document wherever it lives), fan-out `query_all` with a
//!   deterministic id-sorted merge, aggregated stats.
//! * **Rebalancing** — [`Cluster::move_doc`] migrates a document between
//!   primaries with the existing [`cxpersist::DocBlob`] + epoch machinery:
//!   capture on the source, durable hand-off to the target
//!   ([`cxpersist::DurableStore::receive_doc`] — the commit point), route
//!   swap, tombstone. Readers stay live throughout and see the document on
//!   exactly one side; a crash at any step recovers to exactly one owner
//!   with byte-identical stand-off. [`Cluster::drain_shard`]
//!   decommissions a primary.
//! * **Per-shard replication** — [`Cluster::primary`] exposes each shard
//!   as a [`cxrepl::Primary`], so every primary can front its own replica
//!   set (reads scale per shard, writes scale across shards).
//!
//! ```no_run
//! use cxcluster::{Cluster, ShardId};
//! use cxpersist::Options;
//! use cxstore::EditOp;
//!
//! let cluster = Cluster::open(
//!     ["/var/lib/cxml/shard-0", "/var/lib/cxml/shard-1", "/var/lib/cxml/shard-2"],
//!     Options::default(),
//! )?;
//! let id = cluster.insert_named("ms", corpus::figure1::goddag())?;
//! cluster.edit(id, EditOp::InsertText { offset: 0, text: "swa ".into() })?;
//! let hits = cluster.query_all("//dmg/overlapping::ling:w")?;
//! cluster.move_doc(id, ShardId(2))?; // readers keep reading throughout
//! # let _ = hits;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod cluster;
mod error;
mod router;

pub use cluster::{Cluster, PartialResults, ShardError, ShardHealth, SHARD_QUERY_SITE};
pub use error::{ClusterError, Result};
pub use router::{Router, ShardId};
