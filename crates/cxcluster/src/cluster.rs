//! The cluster: N durable primaries behind one store-shaped façade.

use crate::error::{ClusterError, Result};
use crate::router::{Router, ShardId};
use cxobs::{Exposition, Gauge, Histogram, Observable, Registry};
use cxpersist::{CheckpointInfo, DocBlob, DurableStore, Options, StoreHealth};
use cxrepl::Primary;
use cxstore::{DocId, EditOp, EditOutcome, StoreError, StoreStats};
use goddag::Goddag;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, OnceLock, PoisonError, RwLock};
use std::time::{Duration, Instant};

/// Failpoint consulted inside every per-shard fan-out worker of
/// [`Cluster::query_all_partial`] — arm it (with a [`cxfault::Trigger`]
/// of your choosing) to make individual shards slow
/// ([`cxfault::Fault::Delay`]) or unavailable ([`cxfault::Fault::Io`])
/// without touching their stores.
pub const SHARD_QUERY_SITE: &str = "cluster.shard_query";

/// One shard's health as the cluster sees it.
///
/// `Healthy` and `Degraded` are *derived* — they mirror the shard's own
/// [`StoreHealth`] (a degraded store still serves reads, so the cluster
/// keeps fanning out to it). `Down` is an *explicit mark* set by
/// [`Cluster::mark_shard_down`]: the operator (or an external health
/// check) has declared the shard unreachable, and the cluster fails
/// writes to it fast and skips it during fan-out instead of discovering
/// the outage one timeout at a time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardHealth {
    /// Serving reads and writes.
    Healthy,
    /// The shard's store is read-only ([`StoreHealth::Degraded`]): reads
    /// and fan-out queries still run, writes are refused by the store.
    Degraded,
    /// Marked unreachable: writes fail fast with
    /// [`ClusterError::ShardDown`], fan-out skips it.
    Down,
}

/// One shard's failure inside a partial fan-out: which shard, and why
/// its documents are missing from [`PartialResults::hits`].
#[derive(Debug)]
pub struct ShardError {
    /// The shard that failed to answer.
    pub shard: usize,
    /// Why ([`ClusterError::ShardDown`], [`ClusterError::Timeout`],
    /// [`ClusterError::ShardUnavailable`], or a store error).
    pub error: ClusterError,
}

/// What [`Cluster::query_all_partial`] returns: every hit from every
/// shard that answered in time, plus an explicit error per shard that
/// did not — the caller always learns *which* documents it might be
/// missing, never silently.
#[derive(Debug)]
pub struct PartialResults {
    /// Merged, id-sorted hits from the shards that answered.
    pub hits: Vec<(DocId, Vec<goddag::NodeId>)>,
    /// One entry per shard that was down, errored, or timed out.
    pub errors: Vec<ShardError>,
}

impl PartialResults {
    /// True when every shard answered — the hits are the complete
    /// cluster-wide result set.
    pub fn is_complete(&self) -> bool {
        self.errors.is_empty()
    }
}

/// A write-sharded cluster of [`DurableStore`] primaries.
///
/// Each document is **owned by exactly one shard** — the partitioned-
/// ownership design, not conflict resolution — so the prevalidation gate
/// and the per-document WAL epoch chain are exactly as strong as on a
/// single primary: every gated edit runs on the one store that holds the
/// document, under its write lock, logged to that shard's WAL.
///
/// * **Routing** is deterministic ([`Router`]): inserts mint ids from
///   per-shard residue classes, so `raw % n` finds every unmoved document
///   without a table; moved documents carry an override entry.
/// * **Names** get a cluster-level directory so [`Cluster::id_by_name`] /
///   [`Cluster::remove_named`] route correctly; the authoritative bindings
///   live durably on the owning shard (and move with the document).
/// * **Reads** ([`Cluster::query`], [`Cluster::with_doc`], …) never block
///   on rebalancing: they route, and if the document moved underneath them
///   they re-route — mid-migration the document is reachable on exactly
///   one side of the swap at all times.
/// * **Writes** hold a shared **migration gate**; [`Cluster::move_doc`]
///   holds it exclusively while it captures the document ([`DocBlob`] +
///   epoch, under the doc lock), lands it durably on the target
///   ([`DurableStore::receive_doc`] — the commit point), swaps the routing
///   entry and tombstones the source. A crash at any step leaves the
///   document recoverable on at least one shard with identical bytes;
///   [`Cluster::assemble`] resolves a both-sides residue deterministically.
/// * **Fan-out** ([`Cluster::query_all`], [`Cluster::doc_ids`], stats) runs
///   one scoped thread per shard and merges by id — deterministic because
///   ownership is exclusive and ids are unique.
pub struct Cluster {
    shards: Vec<Arc<DurableStore>>,
    /// Lazily-built `cxrepl` shipping endpoints, one per shard, so each
    /// primary can front its own replica set.
    primaries: Vec<OnceLock<Arc<Primary>>>,
    router: Router,
    /// The cluster-level name directory (`name → owning document`).
    names: RwLock<HashMap<String, DocId>>,
    /// Migration gate: mutators shared, `move_doc` exclusive. Reads do not
    /// take it.
    gate: RwLock<()>,
    /// Round-robin cursor for placing new documents.
    next_insert: AtomicU64,
    docs_moved: AtomicU64,
    /// Explicit per-shard down marks (see [`ShardHealth::Down`]). A set
    /// flag makes writes to that shard fail fast and fan-out skip it;
    /// reads that route there still try (the store may well answer).
    down: Vec<AtomicBool>,
    /// Cluster-level metrics (the shards each have their own registry;
    /// this one holds what only the cluster can see: queueing and
    /// migration).
    obs: Arc<Registry>,
    /// Writes currently executing against shard `i` —
    /// `cx_shard_writes_in_flight{shard="i"}`.
    shard_inflight: Vec<Arc<Gauge>>,
    /// Writers currently blocked on (or entering) the migration gate.
    gate_waiters: Arc<Gauge>,
    /// Live fan-out worker threads across batch queries.
    fanout_threads: Arc<Gauge>,
    /// One whole `move_doc` (capture → receive → swap → tombstone).
    move_doc_ns: Arc<Histogram>,
    /// `cx_shard_health{shard="i"}`: 0 healthy, 1 degraded, 2 down —
    /// refreshed on every health transition and on exposition.
    health_gauges: Vec<Arc<Gauge>>,
}

/// One batch-query result set: per-document node hits, keyed by handle.
type BatchHits = Vec<(DocId, Vec<goddag::NodeId>)>;

// Poison-tolerant: the migration gate guards `()` (pure ordering, no
// data to corrupt), so a panicked holder — e.g. an injected
// `cxfault::Fault::Panic` inside a gated write — must not wedge every
// later writer and `move_doc` behind a poisoned lock.
fn read_gate(gate: &RwLock<()>) -> std::sync::RwLockReadGuard<'_, ()> {
    gate.read().unwrap_or_else(PoisonError::into_inner)
}

fn write_gate(gate: &RwLock<()>) -> std::sync::RwLockWriteGuard<'_, ()> {
    gate.write().unwrap_or_else(PoisonError::into_inner)
}

impl Cluster {
    // ------------------------------------------------------------------
    // Lifecycle
    // ------------------------------------------------------------------

    /// Build a cluster over already-open primaries.
    ///
    /// Assembly derives all cluster state from the shards themselves (no
    /// separate routing artifact exists to go stale): the override table
    /// from where documents actually live, the name directory from the
    /// shards' durable bindings. A document found on **two** shards is the
    /// residue of a migration that crashed between the target's durable
    /// insert and the source's tombstone — both copies are byte-identical
    /// (the migration gate kept writers out) — and is resolved
    /// deterministically: the higher edit epoch wins; on the inevitable
    /// tie, the copy *off* its home shard (the migration's commit side).
    /// The winner absorbs any name bindings the loser still held, the
    /// loser is removed durably.
    pub fn assemble(shards: Vec<Arc<DurableStore>>) -> Result<Cluster> {
        if shards.is_empty() {
            return Err(ClusterError::Config("a cluster needs at least one shard".into()));
        }
        let router = Router::new(shards.len());

        // Where does every document live?
        let mut holders: HashMap<u64, Vec<usize>> = HashMap::new();
        for (s, shard) in shards.iter().enumerate() {
            for id in shard.store().doc_ids() {
                holders.entry(id.raw()).or_default().push(s);
            }
        }

        for (&raw, held) in &holders {
            let id = DocId::from_raw(raw);
            let winner = if held.len() == 1 {
                held[0]
            } else {
                // Crashed migration: pick the winner, heal its names from
                // every copy, drop the losers.
                let home = router.home_shard(id).0;
                let &winner = held
                    .iter()
                    .max_by_key(|&&s| {
                        let epoch = shards[s].store().epoch(id).unwrap_or(0);
                        (epoch, s != home, s)
                    })
                    // invariant: this branch is only taken when `held` has
                    // at least one shard, so max_by_key cannot be None.
                    .expect("held is non-empty");
                let winner_names: Vec<String> = doc_names(&shards[winner], id);
                for &s in held {
                    if s == winner {
                        continue;
                    }
                    for name in doc_names(&shards[s], id) {
                        if !winner_names.contains(&name) {
                            shards[winner].bind_name(name, id)?;
                        }
                    }
                    shards[s].remove(id)?;
                }
                winner
            };
            if winner != router.home_shard(id).0 {
                router.route(id, ShardId(winner));
            }
        }

        // The name directory: union of the shards' bindings. A name bound
        // on two shards (a cross-shard rebind that crashed between the new
        // bind and the old unbind — or hand-assembled shards) resolves to
        // the lowest shard deterministically; the other bindings are
        // retired durably so the conflict cannot resurface.
        let mut names: HashMap<String, DocId> = HashMap::new();
        for shard in &shards {
            for (name, id) in shard.store().name_bindings() {
                match names.entry(name) {
                    Entry::Occupied(e) => {
                        // The lowest shard won; retire this binding.
                        shard.unbind_name(e.key())?;
                    }
                    Entry::Vacant(v) => {
                        v.insert(id);
                    }
                }
            }
        }

        let primaries = shards.iter().map(|_| OnceLock::new()).collect();
        let obs = Arc::new(Registry::new());
        let shard_inflight = (0..shards.len())
            .map(|i| obs.gauge_with("cx_shard_writes_in_flight", &[("shard", &i.to_string())]))
            .collect();
        let gate_waiters = obs.gauge("cx_gate_waiters");
        let fanout_threads = obs.gauge("cx_fanout_threads");
        let move_doc_ns = obs.histogram("cx_move_doc_ns");
        let down = (0..shards.len()).map(|_| AtomicBool::new(false)).collect();
        let health_gauges = (0..shards.len())
            .map(|i| obs.gauge_with("cx_shard_health", &[("shard", &i.to_string())]))
            .collect();
        Ok(Cluster {
            shards,
            primaries,
            router,
            names: RwLock::new(names),
            gate: RwLock::new(()),
            next_insert: AtomicU64::new(0),
            docs_moved: AtomicU64::new(0),
            down,
            obs,
            shard_inflight,
            gate_waiters,
            fanout_threads,
            move_doc_ns,
            health_gauges,
        })
    }

    /// Open (or create) one [`DurableStore`] per directory and assemble
    /// them. Shard identity is positional: reopen a cluster with its
    /// directories in the same order.
    pub fn open<I>(dirs: I, options: Options) -> Result<Cluster>
    where
        I: IntoIterator,
        I::Item: Into<PathBuf>,
    {
        let mut shards = Vec::new();
        for dir in dirs {
            shards.push(Arc::new(DurableStore::open_with(dir, options.clone())?));
        }
        Cluster::assemble(shards)
    }

    // ------------------------------------------------------------------
    // Topology
    // ------------------------------------------------------------------

    /// Number of primaries.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The primaries, by shard index.
    pub fn shards(&self) -> &[Arc<DurableStore>] {
        &self.shards
    }

    /// One primary's durable store.
    pub fn shard(&self, shard: ShardId) -> Result<&Arc<DurableStore>> {
        self.shards.get(shard.0).ok_or(ClusterError::NoSuchShard(shard.0))
    }

    /// Where a document lives right now.
    pub fn shard_of(&self, id: DocId) -> ShardId {
        self.router.shard_of(id)
    }

    /// The routing table (see [`Router`]).
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// The shard's `cxrepl` shipping endpoint, created on first use — wire
    /// per-shard followers with
    /// `Follower::new(replica, InProcessTransport::new(cluster.primary(s)?))`
    /// or serve it over a `TcpReplServer`. Each shard replicates its own
    /// WAL independently; a follower of shard `s` converges to exactly the
    /// documents `s` owns.
    pub fn primary(&self, shard: ShardId) -> Result<Arc<Primary>> {
        let durable = self.shard(shard)?;
        Ok(Arc::clone(
            self.primaries[shard.0].get_or_init(|| Arc::new(Primary::new(Arc::clone(durable)))),
        ))
    }

    // ------------------------------------------------------------------
    // Health
    // ------------------------------------------------------------------

    /// One shard's health: the explicit down mark if set, otherwise the
    /// shard's own [`StoreHealth`].
    pub fn shard_health(&self, shard: ShardId) -> Result<ShardHealth> {
        let store = self.shard(shard)?;
        Ok(if self.down[shard.0].load(Ordering::Acquire) {
            ShardHealth::Down
        } else {
            match store.health() {
                StoreHealth::Healthy => ShardHealth::Healthy,
                StoreHealth::Degraded => ShardHealth::Degraded,
            }
        })
    }

    /// Every shard's health, by index.
    pub fn shard_healths(&self) -> Vec<ShardHealth> {
        (0..self.shards.len())
            // invariant: `i` ranges over this cluster's own shard list, so
            // shard_health can never see an out-of-range id.
            .map(|i| self.shard_health(ShardId(i)).expect("valid index"))
            .collect()
    }

    /// Mark a shard **down**: writes routed to it fail fast with
    /// [`ClusterError::ShardDown`] (nothing reaches its WAL), new
    /// documents place elsewhere, and partial fan-out skips it with an
    /// explicit error entry. Reads that route there still try — an
    /// operator marking a flaky shard down should not black-hole
    /// documents that are, in fact, still readable. Idempotent.
    pub fn mark_shard_down(&self, shard: ShardId) -> Result<()> {
        self.shard(shard)?;
        if !self.down[shard.0].swap(true, Ordering::AcqRel) {
            self.obs.event("shard.down", format!("shard {} marked down", shard.0));
        }
        self.refresh_health_gauge(shard.0);
        Ok(())
    }

    /// Bring a shard back: clear its down mark and, if its store
    /// degraded (WAL append/fsync failure), re-probe the disk via
    /// [`DurableStore::heal`]. Returns the shard's health afterwards —
    /// [`ShardHealth::Healthy`] on success; an `Err` means the re-probe
    /// failed and the shard stays degraded (the down mark is still
    /// cleared: reads are fine, and the caller can retry the heal).
    pub fn heal_shard(&self, shard: ShardId) -> Result<ShardHealth> {
        let store = Arc::clone(self.shard(shard)?);
        if self.down[shard.0].swap(false, Ordering::AcqRel) {
            self.obs.event("shard.up", format!("shard {} down mark cleared", shard.0));
        }
        let healed = store.heal();
        self.refresh_health_gauge(shard.0);
        match healed {
            Ok(_) => {
                self.obs.event("shard.healed", format!("shard {} healthy", shard.0));
                Ok(ShardHealth::Healthy)
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Fail fast when the shard a write routed to is marked down.
    fn ensure_shard_up(&self, s: usize) -> Result<()> {
        if self.down[s].load(Ordering::Acquire) {
            return Err(ClusterError::ShardDown(s));
        }
        Ok(())
    }

    /// Re-derive `cx_shard_health{shard=s}` from the current state.
    fn refresh_health_gauge(&self, s: usize) {
        let v = if self.down[s].load(Ordering::Acquire) {
            2
        } else {
            match self.shards[s].health() {
                StoreHealth::Healthy => 0,
                StoreHealth::Degraded => 1,
            }
        };
        self.health_gauges[s].set(v);
    }

    // ------------------------------------------------------------------
    // Registry
    // ------------------------------------------------------------------

    /// Add a document, placing it round-robin across the shards. The
    /// minted id is congruent to the owning shard's index, so routing it
    /// needs no table entry.
    pub fn insert(&self, g: Goddag) -> Result<DocId> {
        let _shared = self.shared_gate();
        let (shard, n, residue) = self.place()?;
        let _inflight = self.shard_inflight[residue as usize].track();
        shard.insert_aligned(None, g, n, residue).map_err(ClusterError::from)
    }

    /// Add a document under a name (replacing any previous cluster-wide
    /// binding of that name; if the old binding lived on another shard it
    /// is unbound there first, so a crash mid-rebind leaves the name
    /// unbound, never split between shards).
    pub fn insert_named(&self, name: impl Into<String>, g: Goddag) -> Result<DocId> {
        let _shared = self.shared_gate();
        let name = name.into();
        let mut names = self.names_write();
        let (shard, n, residue) = self.place()?;
        let _inflight = self.shard_inflight[residue as usize].track();
        let target = ShardId(residue as usize);
        let retired = self.retire_foreign_binding(&names, &name, target)?;
        match shard.insert_aligned(Some(name.clone()), g, n, residue) {
            Ok(id) => {
                names.insert(name, id);
                Ok(id)
            }
            Err(e) => {
                // The old binding is durably gone but the new one never
                // landed: the directory must reflect that (an entry kept
                // here would resolve until the next restart, then vanish).
                if retired {
                    names.remove(&name);
                }
                Err(e.into())
            }
        }
    }

    /// Add a document **on a specific shard** (optionally named),
    /// bypassing round-robin placement — the insert path of a
    /// shard-scoped server, where the client already decided which host
    /// the document belongs to. The minted id keeps `shard`'s residue,
    /// so the new document routes with no table entry.
    pub fn insert_on(&self, shard: ShardId, name: Option<String>, g: Goddag) -> Result<DocId> {
        let _shared = self.shared_gate();
        self.shard(shard)?;
        self.ensure_shard_up(shard.0)?;
        let n = self.shards.len() as u64;
        let residue = shard.0 as u64;
        let _inflight = self.shard_inflight[shard.0].track();
        match name {
            None => {
                self.shards[shard.0].insert_aligned(None, g, n, residue).map_err(ClusterError::from)
            }
            Some(name) => {
                let mut names = self.names_write();
                let retired = self.retire_foreign_binding(&names, &name, shard)?;
                match self.shards[shard.0].insert_aligned(Some(name.clone()), g, n, residue) {
                    Ok(id) => {
                        names.insert(name, id);
                        Ok(id)
                    }
                    Err(e) => {
                        // Mirror `insert_named`: a durably retired old
                        // binding must not linger in the directory.
                        if retired {
                            names.remove(&name);
                        }
                        Err(e.into())
                    }
                }
            }
        }
    }

    /// Pick the next insert's shard: `(store, modulus, residue)`.
    ///
    /// Round-robin over the **healthy** shards: a shard that is marked
    /// down or whose store degraded is skipped — the minted id keeps its
    /// chosen shard's residue, so a document placed "out of turn" still
    /// routes with no table entry. Errors only when no shard can take a
    /// write at all.
    fn place(&self) -> Result<(&Arc<DurableStore>, u64, u64)> {
        let n = self.shards.len() as u64;
        for _ in 0..self.shards.len() {
            let s = self.next_insert.fetch_add(1, Ordering::Relaxed) % n;
            let i = s as usize;
            if self.down[i].load(Ordering::Acquire)
                || self.shards[i].health() == StoreHealth::Degraded
            {
                continue;
            }
            return Ok((&self.shards[i], n, s));
        }
        Err(ClusterError::Config("no healthy shard can accept new documents".into()))
    }

    /// Unbind `name` on whatever shard currently holds it, unless that is
    /// `target` (where the caller is about to rebind anyway). Returns
    /// whether a binding was durably retired — if the caller's follow-up
    /// bind then fails, it must drop the directory entry too (the durable
    /// state has the name unbound). Caller holds the directory write lock.
    fn retire_foreign_binding(
        &self,
        names: &HashMap<String, DocId>,
        name: &str,
        target: ShardId,
    ) -> Result<bool> {
        if let Some(&old) = names.get(name) {
            let old_shard = self.router.shard_of(old);
            if old_shard != target {
                self.shards[old_shard.0].unbind_name(name)?;
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Bind (or rebind) a name to a live document, durably on its owning
    /// shard.
    pub fn bind_name(&self, name: impl Into<String>, id: DocId) -> Result<()> {
        let _shared = self.shared_gate();
        let name = name.into();
        let mut names = self.names_write();
        let target = self.router.shard_of(id);
        self.ensure_shard_up(target.0)?;
        if !self.shards[target.0].store().contains(id) {
            return Err(ClusterError::Store(StoreError::NoSuchDoc(id)));
        }
        let retired = self.retire_foreign_binding(&names, &name, target)?;
        match self.shards[target.0].bind_name(name.clone(), id) {
            Ok(()) => {
                names.insert(name, id);
                Ok(())
            }
            Err(e) => {
                // As in `insert_named`: a durably retired old binding must
                // not linger in the directory when the new bind failed.
                if retired {
                    names.remove(&name);
                }
                Err(e.into())
            }
        }
    }

    /// Drop a name binding (the document stays). Returns what it was bound
    /// to.
    pub fn unbind_name(&self, name: &str) -> Result<Option<DocId>> {
        let _shared = self.shared_gate();
        let mut names = self.names_write();
        let Some(&id) = names.get(name) else { return Ok(None) };
        let s = self.router.shard_of(id).0;
        self.ensure_shard_up(s)?;
        self.shards[s].unbind_name(name)?;
        names.remove(name);
        Ok(Some(id))
    }

    /// Resolve a name to its document, wherever it lives.
    pub fn id_by_name(&self, name: &str) -> Result<DocId> {
        self.names_read()
            .get(name)
            .copied()
            .ok_or_else(|| StoreError::NoSuchName(name.into()).into())
    }

    /// All cluster-wide `name → id` bindings, sorted by name.
    pub fn name_bindings(&self) -> Vec<(String, DocId)> {
        let mut out: Vec<(String, DocId)> =
            self.names_read().iter().map(|(n, id)| (n.clone(), *id)).collect();
        out.sort();
        out
    }

    /// Drop a document (and all of its name bindings), durably, wherever
    /// it lives. Returns whether the handle was live.
    pub fn remove(&self, id: DocId) -> Result<bool> {
        let _shared = self.shared_gate();
        let mut names = self.names_write();
        let s = self.router.shard_of(id).0;
        self.ensure_shard_up(s)?;
        let _inflight = self.shard_inflight[s].track();
        let removed = self.shards[s].remove(id)?;
        if removed {
            names.retain(|_, v| *v != id);
            self.router.forget(id);
        }
        Ok(removed)
    }

    /// Resolve a name and drop that document.
    pub fn remove_named(&self, name: &str) -> Result<DocId> {
        let _shared = self.shared_gate();
        let mut names = self.names_write();
        let id = *names.get(name).ok_or_else(|| StoreError::NoSuchName(name.into()))?;
        let s = self.router.shard_of(id).0;
        self.ensure_shard_up(s)?;
        let _inflight = self.shard_inflight[s].track();
        self.shards[s].remove(id)?;
        names.retain(|_, v| *v != id);
        self.router.forget(id);
        Ok(id)
    }

    /// Whether the handle names a live document on any shard.
    pub fn contains(&self, id: DocId) -> bool {
        loop {
            let s = self.router.shard_of(id);
            if self.shards[s.0].store().contains(id) {
                return true;
            }
            if self.router.shard_of(id) == s {
                return false;
            }
            // Moved while we looked: re-route.
        }
    }

    /// Total live documents.
    pub fn len(&self) -> usize {
        let _shared = read_gate(&self.gate);
        self.shards.iter().map(|s| s.store().len()).sum()
    }

    /// True when no shard holds a document.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All live handles across the cluster, sorted (= insertion order by
    /// id; round-robin placement interleaves the shards).
    pub fn doc_ids(&self) -> Vec<DocId> {
        let _shared = read_gate(&self.gate);
        let mut out: Vec<DocId> = self.shards.iter().flat_map(|s| s.store().doc_ids()).collect();
        out.sort_unstable();
        out
    }

    // ------------------------------------------------------------------
    // Reads (never blocked by rebalancing)
    // ------------------------------------------------------------------

    /// Run a closure against a document under its read lock, wherever it
    /// lives. `Fn` rather than `FnOnce`: if the document migrates between
    /// routing and the shard read, the read re-routes and runs again — a
    /// reader sees the document on exactly one side of a move, never on
    /// neither.
    pub fn with_doc<R>(&self, id: DocId, f: impl Fn(&Goddag) -> R) -> Result<R> {
        self.routed_read(id, |shard| shard.store().with_doc(id, &f))
    }

    /// Evaluate a node-set expression against one document.
    pub fn query(&self, id: DocId, expr: &str) -> Result<Vec<goddag::NodeId>> {
        let trace = cxtrace::span("cluster.query");
        trace.attr("doc", id.raw());
        self.routed_read(id, |shard| shard.store().query(id, expr))
    }

    /// A document's current edit epoch.
    pub fn epoch(&self, id: DocId) -> Result<u64> {
        self.routed_read(id, |shard| shard.store().epoch(id))
    }

    /// Editor tag suggestions, served from the owning shard's cached
    /// prevalidation engine.
    pub fn suggest_tags(
        &self,
        id: DocId,
        hierarchy: &str,
        start: usize,
        end: usize,
    ) -> Result<Vec<String>> {
        self.routed_read(id, |shard| shard.store().suggest_tags(id, hierarchy, start, end))
    }

    /// The routed-read retry loop: route, read, and if the document is
    /// gone *because the route changed underneath us*, re-route. A
    /// document that is gone with a stable route is genuinely gone.
    fn routed_read<R>(
        &self,
        id: DocId,
        read: impl Fn(&Arc<DurableStore>) -> cxstore::Result<R>,
    ) -> Result<R> {
        loop {
            let s = self.router.shard_of(id);
            match read(&self.shards[s.0]) {
                Ok(r) => return Ok(r),
                Err(StoreError::NoSuchDoc(_)) if self.router.shard_of(id) != s => continue,
                Err(e) => return Err(ClusterError::Store(e)),
            }
        }
    }

    /// Evaluate a node-set expression against **every** document: one
    /// scoped thread per shard (each running the shard's own parallel
    /// [`cxstore::Store::query_all`]), merged and sorted by id —
    /// deterministic because each document is owned by exactly one shard.
    /// Holds the migration gate shared so the shard set cannot tear
    /// mid-fan-out (a `move_doc` briefly delays batch queries; per-doc
    /// reads stay concurrent).
    pub fn query_all(&self, expr: &str) -> Result<Vec<(DocId, Vec<goddag::NodeId>)>> {
        let _trace = cxtrace::span("cluster.query_all");
        let parent = cxtrace::current();
        let _shared = read_gate(&self.gate);
        let _fanout = self.fanout_threads.track_n(self.shards.len() as i64);
        let results: Vec<cxstore::Result<BatchHits>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    // Child contexts are minted on the spawning thread so
                    // the per-shard spans hang off this query's span.
                    let ctx = parent.map(|p| p.child());
                    scope.spawn(move || {
                        let g = cxtrace::adopt("cluster.shard_query", ctx);
                        g.attr("shard", i);
                        s.store().query_all(expr)
                    })
                })
                .collect();
            // invariant: shard query threads run store code that returns
            // errors rather than panicking; a panic here is a bug worth
            // propagating, not a condition to mask.
            handles.into_iter().map(|h| h.join().expect("shard query panicked")).collect()
        });
        let mut out = Vec::new();
        for r in results {
            out.extend(r.map_err(ClusterError::Store)?);
        }
        out.sort_unstable_by_key(|(id, _)| *id);
        Ok(out)
    }

    /// [`Cluster::query_all`] for a cluster that may be partly sick:
    /// fan out to every shard that is not marked down, give each shard
    /// `per_shard_timeout` to answer, and return whatever arrived —
    /// merged id-sorted hits plus one explicit [`ShardError`] per shard
    /// that was down, errored, or ran out its budget. Never errors as a
    /// whole and never blocks (much) past the budget: a partial answer
    /// with a precise account of what is missing beats both a hang and
    /// an all-or-nothing failure.
    ///
    /// Workers are detached threads (a scoped thread could not be
    /// abandoned at the deadline); a late worker finishes against its
    /// own `Arc` of the shard and its result is discarded.
    pub fn query_all_partial(&self, expr: &str, per_shard_timeout: Duration) -> PartialResults {
        let trace = cxtrace::span("cluster.query_all_partial");
        let parent = cxtrace::current();
        let _shared = read_gate(&self.gate);
        let (tx, rx) = mpsc::channel::<(usize, Result<BatchHits>)>();
        let mut errors = Vec::new();
        let mut pending = Vec::new();
        for (i, shard) in self.shards.iter().enumerate() {
            if self.down[i].load(Ordering::Acquire) {
                // A zero-length error span records the skipped shard in
                // the trace — the fan-out is complete by construction.
                let g = cxtrace::span("cluster.shard_query");
                g.attr("shard", i);
                g.err("shard down");
                errors.push(ShardError { shard: i, error: ClusterError::ShardDown(i) });
                continue;
            }
            pending.push(i);
            let tx = tx.clone();
            let shard = Arc::clone(shard);
            let expr = expr.to_string();
            let fanout = Arc::clone(&self.fanout_threads);
            // Minted here so worker spans parent correctly even though
            // the worker thread is detached (it may outlive this call;
            // a late flush merges into the finished trace).
            let ctx = parent.map(|p| p.child());
            std::thread::spawn(move || {
                fanout.inc();
                let g = cxtrace::adopt("cluster.shard_query", ctx);
                g.attr("shard", i);
                // The failpoint lets tests make *this* shard slow
                // (`Delay` runs inside `fire`) or unreachable without
                // touching its store.
                let r = if cxfault::fire(SHARD_QUERY_SITE).is_some() {
                    Err(ClusterError::ShardUnavailable {
                        shard: i,
                        detail: cxfault::io_error(SHARD_QUERY_SITE).to_string(),
                    })
                } else {
                    shard.store().query_all(&expr).map_err(ClusterError::Store)
                };
                if let Err(e) = &r {
                    g.err(e.to_string());
                }
                let _ = tx.send((i, r));
                fanout.dec();
            });
        }
        drop(tx);

        let ms = per_shard_timeout.as_millis() as u64;
        let deadline = Instant::now() + per_shard_timeout;
        let mut hits: BatchHits = Vec::new();
        let mut answered = vec![false; self.shards.len()];
        let mut outstanding = pending.len();
        while outstanding > 0 {
            let left = deadline.saturating_duration_since(Instant::now());
            match rx.recv_timeout(left) {
                Ok((i, Ok(batch))) => {
                    answered[i] = true;
                    hits.extend(batch);
                    outstanding -= 1;
                }
                Ok((i, Err(e))) => {
                    answered[i] = true;
                    errors.push(ShardError { shard: i, error: e });
                    outstanding -= 1;
                }
                Err(_) => break, // deadline passed (or every worker died)
            }
        }
        for i in pending {
            if !answered[i] {
                self.obs
                    .event("shard.timeout", format!("shard {i} missed the {ms} ms fan-out budget"));
                trace.err(format!("shard {i} timed out"));
                errors.push(ShardError { shard: i, error: ClusterError::Timeout { shard: i, ms } });
            }
        }
        hits.sort_unstable_by_key(|(id, _)| *id);
        errors.sort_by_key(|e| e.shard);
        PartialResults { hits, errors }
    }

    // ------------------------------------------------------------------
    // Writes
    // ------------------------------------------------------------------

    /// Apply one gated [`EditOp`] on the owning shard — logged to that
    /// shard's WAL, prevalidated exactly as on a single primary.
    pub fn edit(&self, id: DocId, op: EditOp) -> Result<EditOutcome> {
        let trace = cxtrace::span("cluster.edit");
        trace.attr("doc", id.raw());
        let _shared = self.shared_gate();
        // Under the shared gate the route cannot change mid-edit.
        let s = self.router.shard_of(id).0;
        trace.attr("shard", s);
        if let Err(e) = self.ensure_shard_up(s) {
            trace.err(e.to_string());
            return Err(e);
        }
        let _inflight = self.shard_inflight[s].track();
        let r = self.shards[s].edit(id, op).map_err(ClusterError::from);
        if let Err(e) = &r {
            trace.err(e.to_string());
        }
        r
    }

    /// [`Cluster::edit`] with a compare-and-set guard: applies only if
    /// the document's pre-op epoch equals `expected`, failing with a
    /// [`cxpersist::PersistError::StaleEdit`] otherwise (checked under
    /// the document's write lock — see
    /// [`cxpersist::DurableStore::edit_guarded`]). The service tier
    /// leans on this to make remote edit retries exactly-once: a
    /// replayed edit that already landed reads back stale.
    pub fn edit_guarded(&self, id: DocId, expected: u64, op: EditOp) -> Result<EditOutcome> {
        let trace = cxtrace::span("cluster.edit");
        trace.attr("doc", id.raw());
        trace.attr("guard", expected);
        let _shared = self.shared_gate();
        let s = self.router.shard_of(id).0;
        trace.attr("shard", s);
        if let Err(e) = self.ensure_shard_up(s) {
            trace.err(e.to_string());
            return Err(e);
        }
        let _inflight = self.shard_inflight[s].track();
        let r = self.shards[s].edit_guarded(id, expected, op).map_err(ClusterError::from);
        if let Err(e) = &r {
            trace.err(e.to_string());
        }
        r
    }

    // ------------------------------------------------------------------
    // Rebalancing
    // ------------------------------------------------------------------

    /// Migrate a document to another primary. Returns the shard it left.
    ///
    /// Holds the migration gate exclusively (drains in-flight writers,
    /// holds new ones; readers keep running), then:
    ///
    /// 1. **capture** — the document's [`DocBlob`] under its read lock
    ///    (writers are drained, so this is the authoritative state) plus
    ///    its name bindings;
    /// 2. **apply** — [`DurableStore::receive_doc`] on the target: the
    ///    blob is logged to the target's WAL before anything else changes.
    ///    This is the migration's commit point;
    /// 3. **swap** — the routing entry flips; readers now resolve to the
    ///    target (the source copy still exists but is unreachable);
    /// 4. **tombstone** — the source logs a `DocRemove` and drops its
    ///    copy (and the name bindings with it).
    ///
    /// A crash after 2 leaves byte-identical copies on both shards;
    /// [`Cluster::assemble`] keeps exactly one (and heals names). A crash
    /// before 2 leaves the document untouched on the source.
    pub fn move_doc(&self, id: DocId, to: ShardId) -> Result<ShardId> {
        if to.0 >= self.shards.len() {
            return Err(ClusterError::NoSuchShard(to.0));
        }
        // The span covers the gate drain too: that wait *is* migration
        // latency as writers experience it.
        let _span = self.move_doc_ns.span();
        let trace = cxtrace::span("cluster.move_doc");
        trace.attr("doc", id.raw());
        trace.attr("shard", to.0);
        let _exclusive = write_gate(&self.gate);
        let from = self.router.shard_of(id);
        if from == to {
            return Ok(from);
        }
        // A migration writes on both sides (receive on the target, the
        // tombstone on the source) — both must be reachable.
        self.ensure_shard_up(from.0)?;
        self.ensure_shard_up(to.0)?;
        let source = &self.shards[from.0];
        let blob = source.store().with_doc(id, DocBlob::capture).map_err(ClusterError::Store)?;
        let names = doc_names(source, id);
        self.shards[to.0].receive_doc(id, &blob, &names)?;
        self.router.route(id, to);
        source.remove(id)?;
        self.docs_moved.fetch_add(1, Ordering::Relaxed);
        self.obs.event("migrate", format!("{id}: shard {} -> shard {}", from.0, to.0));
        Ok(from)
    }

    /// Move every document off `from`, round-robin across the remaining
    /// shards (decommissioning / re-weighting). Returns the moved ids.
    pub fn drain_shard(&self, from: ShardId) -> Result<Vec<DocId>> {
        if from.0 >= self.shards.len() {
            return Err(ClusterError::NoSuchShard(from.0));
        }
        let targets: Vec<usize> = (0..self.shards.len()).filter(|&s| s != from.0).collect();
        if targets.is_empty() {
            return Err(ClusterError::Config("cannot drain a single-shard cluster".into()));
        }
        let ids = self.shards[from.0].store().doc_ids();
        let mut moved = Vec::with_capacity(ids.len());
        for (k, id) in ids.into_iter().enumerate() {
            if self.router.shard_of(id) != from {
                continue; // moved away (or removed) since listing
            }
            self.move_doc(id, ShardId(targets[k % targets.len()]))?;
            moved.push(id);
        }
        self.obs.event("drain", format!("shard {}: {} documents moved off", from.0, moved.len()));
        Ok(moved)
    }

    /// Documents moved between shards since this cluster was assembled.
    pub fn docs_moved(&self) -> u64 {
        self.docs_moved.load(Ordering::Relaxed)
    }

    // ------------------------------------------------------------------
    // Durability plumbing
    // ------------------------------------------------------------------

    /// Checkpoint every shard (each drains its own mutators; the cluster
    /// keeps serving throughout — shards checkpoint independently).
    pub fn checkpoint_all(&self) -> Result<Vec<CheckpointInfo>> {
        self.shards.iter().map(|s| s.checkpoint().map_err(ClusterError::from)).collect()
    }

    /// Fsync every shard's WAL (a cluster-wide durability barrier under
    /// lazy fsync policies).
    pub fn sync_all(&self) -> Result<()> {
        for s in &self.shards {
            s.sync()?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Observability
    // ------------------------------------------------------------------

    /// Aggregated [`StoreStats`] across all shards, plus the cluster
    /// counters (`cluster_shards`, `docs_moved`).
    pub fn stats(&self) -> StoreStats {
        let mut out = StoreStats::default();
        for s in &self.shards {
            out.absorb(&s.stats());
        }
        out.cluster_shards = self.shards.len();
        out.docs_moved = self.docs_moved.load(Ordering::Relaxed);
        out.writes_in_flight = self.shard_inflight.iter().map(|g| g.get()).sum();
        out.writers_waiting = self.gate_waiters.get();
        out
    }

    /// The cluster-level metrics registry (`cx_gate_waiters`,
    /// `cx_fanout_threads`, per-shard in-flight gauges, `cx_move_doc_ns`,
    /// migration events). Each shard's own registry hangs off its
    /// [`DurableStore::registry`].
    pub fn registry(&self) -> &Arc<Registry> {
        &self.obs
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    /// Acquire the migration gate shared, counting this writer in
    /// `cx_gate_waiters` while it blocks on (or enters) the gate.
    fn shared_gate(&self) -> std::sync::RwLockReadGuard<'_, ()> {
        let _waiting = self.gate_waiters.track();
        read_gate(&self.gate)
    }

    // Poison-tolerant: the name directory is a derived cache of the
    // shards' durable bindings — every mutation is a single HashMap
    // insert/remove (no multi-step invariant a panicked holder could
    // tear), and assembly rebuilds the whole map from the shards on
    // reopen, so serving a recovered guard can never invent state.
    fn names_read(&self) -> std::sync::RwLockReadGuard<'_, HashMap<String, DocId>> {
        self.names.read().unwrap_or_else(PoisonError::into_inner)
    }

    fn names_write(&self) -> std::sync::RwLockWriteGuard<'_, HashMap<String, DocId>> {
        self.names.write().unwrap_or_else(PoisonError::into_inner)
    }
}

impl Observable for Cluster {
    /// The whole cluster as one page: every shard's full stack (store,
    /// durability, replication) wrapped in a `shard="i"` label, followed
    /// by the aggregated cluster stats, the cluster-level metrics (gate
    /// queueing, fan-out, migration latency, per-shard health), and the
    /// process-wide failpoint counters (`cx_fault_*`).
    fn expose_into(&self, out: &mut Exposition) {
        for (i, shard) in self.shards.iter().enumerate() {
            out.push_label("shard", i);
            shard.expose_into(out);
            out.pop_label();
        }
        // Health gauges are derived state — re-read them at scrape time
        // so a store that degraded on its own (no cluster call involved)
        // still shows up.
        for i in 0..self.shards.len() {
            self.refresh_health_gauge(i);
        }
        self.stats().expose_into(out);
        self.obs.expose_into(out);
        cxpersist::expose_faults(out);
        cxtrace::expose_into(out);
    }
}

/// The names a shard currently binds to `id`.
fn doc_names(shard: &DurableStore, id: DocId) -> Vec<String> {
    shard.store().name_bindings().into_iter().filter(|(_, d)| *d == id).map(|(n, _)| n).collect()
}
