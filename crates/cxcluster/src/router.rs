//! Deterministic `DocId → shard` routing: hash partitioning with an
//! explicit assignment table on top so documents can move.

use cxstore::DocId;
use std::collections::HashMap;
use std::sync::{PoisonError, RwLock};

/// Index of one primary within a [`crate::Cluster`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShardId(pub usize);

impl std::fmt::Display for ShardId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shard#{}", self.0)
    }
}

/// The routing function. Every unmoved document routes to its **home
/// shard** `raw % shards` — and because cluster inserts mint ids from
/// per-shard residue classes (shard `i` allocates only ids `≡ i (mod n)`,
/// see [`cxstore::Store::allocate_doc_raw_aligned`]), the home shard *is*
/// the shard that created the document: the common case needs no table at
/// all. Rebalancing installs an explicit override per moved document; the
/// table is **derived state** — it records where documents actually live,
/// and [`crate::Cluster`] assembly rebuilds it by scanning the shards, so
/// there is no separate routing artifact to keep crash-consistent.
pub struct Router {
    shards: usize,
    /// Poison-tolerant throughout: every mutation is one HashMap
    /// insert/remove (no intermediate state a panicked holder could
    /// expose), and the table is rebuilt from the shards on assembly.
    overrides: RwLock<HashMap<u64, usize>>,
}

impl Router {
    /// A router over `shards` primaries (at least one).
    pub fn new(shards: usize) -> Router {
        assert!(shards > 0, "a cluster has at least one shard");
        Router { shards, overrides: RwLock::default() }
    }

    /// Number of shards routed across.
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// The hash-default shard for a document: where it lives unless it was
    /// explicitly moved.
    pub fn home_shard(&self, id: DocId) -> ShardId {
        ShardId((id.raw() % self.shards as u64) as usize)
    }

    /// Where the document lives right now.
    pub fn shard_of(&self, id: DocId) -> ShardId {
        let overrides = self.overrides.read().unwrap_or_else(PoisonError::into_inner);
        match overrides.get(&id.raw()) {
            Some(&s) => ShardId(s),
            None => self.home_shard(id),
        }
    }

    /// Point the document at `shard` (the route-swap step of a
    /// migration). Routing a document back to its home shard drops the
    /// override instead of storing a redundant entry.
    pub fn route(&self, id: DocId, shard: ShardId) {
        // Poison recovery (here and in `forget`/`overrides` below): every
        // writer performs a single insert or remove, so a panicked holder
        // cannot leave the table mid-update — see the field invariant.
        let mut overrides = self.overrides.write().unwrap_or_else(PoisonError::into_inner);
        if shard == self.home_shard(id) {
            overrides.remove(&id.raw());
        } else {
            overrides.insert(id.raw(), shard.0);
        }
    }

    /// Forget a document's route (it was removed).
    pub fn forget(&self, id: DocId) {
        self.overrides.write().unwrap_or_else(PoisonError::into_inner).remove(&id.raw());
    }

    /// All explicit assignments, sorted by raw id — the moved documents.
    pub fn overrides(&self) -> Vec<(u64, ShardId)> {
        let mut out: Vec<(u64, ShardId)> = self
            .overrides
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(&raw, &s)| (raw, ShardId(s)))
            .collect();
        out.sort_unstable_by_key(|&(raw, _)| raw);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_default_with_overrides() {
        let r = Router::new(4);
        let id = DocId::from_raw(6);
        assert_eq!(r.home_shard(id), ShardId(2));
        assert_eq!(r.shard_of(id), ShardId(2));
        r.route(id, ShardId(0));
        assert_eq!(r.shard_of(id), ShardId(0));
        assert_eq!(r.overrides(), vec![(6, ShardId(0))]);
        // Routing home removes the entry rather than storing it.
        r.route(id, ShardId(2));
        assert_eq!(r.shard_of(id), ShardId(2));
        assert!(r.overrides().is_empty());
        r.route(id, ShardId(3));
        r.forget(id);
        assert_eq!(r.shard_of(id), ShardId(2));
    }
}
