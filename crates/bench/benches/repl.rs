//! `cxrepl` benchmarks: what log shipping costs and what catch-up takes.
//!
//! Series:
//! * `repl/ship_only/{n}` — one primary-side fetch of an `n`-record tail
//!   (file read + frame-skip + slice), no apply. The shipping floor.
//! * `repl/catchup/{transport}/{n}` — a follower joining `n` records
//!   behind: install the pre-captured snapshot, then fetch + apply the
//!   whole tail over the in-process or TCP transport. The reported
//!   elements/s is ship+apply throughput in records/s.
//! * `repl/bootstrap/snapshot` — a fresh follower against a checkpointed
//!   primary whose early records are retired: full snapshot bootstrap.
//!
//! All stores live under unique directories in the system temp dir and
//! are removed when the bench finishes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use cxpersist::{DurableStore, FsyncPolicy, Options, StoreSnapshot};
use cxrepl::{Follower, InProcessTransport, Primary, ReplicaStore, TcpReplServer, TcpTransport};
use cxstore::EditOp;
use std::hint::black_box;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

static NEXT: AtomicU64 = AtomicU64::new(0);

/// Unique scratch directory (cleaned by `Scratch::drop`).
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let path = std::env::temp_dir().join(format!(
            "cxrepl-bench-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&path);
        Scratch(path)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A primary holding one manuscript, a snapshot capture at that point,
/// and `lag` further text-edit records in its WAL.
fn lagged_primary(scratch: &Scratch, lag: usize) -> (Arc<Primary>, StoreSnapshot) {
    let durable =
        DurableStore::open_with(&scratch.0, Options { fsync: FsyncPolicy::Never }).unwrap();
    let id = durable
        .insert(
            corpus::generate(&corpus::Params { words: 200, ..corpus::Params::default() }).goddag,
        )
        .unwrap();
    let snap = durable.capture_snapshot().unwrap();
    for i in 0..lag {
        durable.edit(id, EditOp::InsertText { offset: 0, text: format!("r{i} ") }).unwrap();
    }
    (Arc::new(Primary::new(Arc::new(durable))), snap)
}

fn bench_repl(c: &mut Criterion) {
    let mut group = c.benchmark_group("repl");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));

    const LAG: usize = 1000;

    // Primary-side shipping alone: slice an n-record tail out of the WAL.
    {
        let scratch = Scratch::new("ship");
        let (primary, snap) = lagged_primary(&scratch, LAG);
        group.throughput(Throughput::Elements(LAG as u64));
        group.bench_function(BenchmarkId::new("ship_only", LAG), |b| {
            b.iter(|| primary.handle_fetch(black_box(snap.lsn), usize::MAX).unwrap());
        });
    }

    // Follower catch-up from LAG records behind, in-process and TCP.
    {
        let scratch = Scratch::new("catchup");
        let (primary, snap) = lagged_primary(&scratch, LAG);
        let server = TcpReplServer::bind(Arc::clone(&primary), "127.0.0.1:0").unwrap();
        group.throughput(Throughput::Elements(LAG as u64));
        group.bench_function(BenchmarkId::new("catchup/inproc", LAG), |b| {
            b.iter(|| {
                let replica = Arc::new(ReplicaStore::new());
                replica.install_snapshot(&snap).unwrap();
                let mut f = Follower::new(
                    Arc::clone(&replica),
                    InProcessTransport::new(Arc::clone(&primary)),
                );
                assert_eq!(f.catch_up().unwrap(), LAG as u64);
                replica
            });
        });
        group.bench_function(BenchmarkId::new("catchup/tcp", LAG), |b| {
            let mut transport = Some(TcpTransport::connect(server.addr()).unwrap());
            b.iter(|| {
                let replica = Arc::new(ReplicaStore::new());
                replica.install_snapshot(&snap).unwrap();
                let mut f = Follower::new(Arc::clone(&replica), transport.take().unwrap());
                assert_eq!(f.catch_up().unwrap(), LAG as u64);
                transport = Some(f.into_transport());
                replica
            });
        });
        server.shutdown();
    }

    // Steady-state tail cost as the un-checkpointed log grows 10×: a
    // caught-up follower fetches the last few records. With the WAL offset
    // cache this seeks (O(slice)); without it, every fetch re-scanned the
    // whole file (O(file)) — the flat line across sizes is the acceptance
    // criterion.
    for lag in [1_000usize, 10_000] {
        let scratch = Scratch::new("tail-steady");
        let (primary, _) = lagged_primary(&scratch, lag);
        let head = primary.durable().last_lsn();
        let after = head - 10;
        // Prime the offset cache the way a tailing follower would.
        primary.durable().wal_tail(after, usize::MAX).unwrap();
        group.throughput(Throughput::Elements(10));
        group.bench_function(BenchmarkId::new("tail_steady", lag), |b| {
            b.iter(|| primary.durable().wal_tail(black_box(after), usize::MAX).unwrap());
        });
    }

    // Fresh-follower snapshot bootstrap (records retired by checkpoints).
    {
        let scratch = Scratch::new("bootstrap");
        let (primary, _) = lagged_primary(&scratch, 100);
        primary.durable().checkpoint().unwrap();
        let id = primary.durable().store().doc_ids()[0];
        primary.durable().edit(id, EditOp::InsertText { offset: 0, text: "x ".into() }).unwrap();
        primary.durable().checkpoint().unwrap();
        group.throughput(Throughput::Elements(1));
        group.bench_function("bootstrap/snapshot", |b| {
            b.iter(|| {
                let replica = Arc::new(ReplicaStore::new());
                let mut f = Follower::new(
                    Arc::clone(&replica),
                    InProcessTransport::new(Arc::clone(&primary)),
                );
                f.catch_up().unwrap();
                assert_eq!(replica.snapshots_installed(), 1);
                replica
            });
        });
    }

    group.finish();
}

criterion_group!(benches, bench_repl);
criterion_main!(benches);
