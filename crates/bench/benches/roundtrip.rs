//! Experiment B4: import/export across every representation.
//!
//! Series regenerated (per representation, per size):
//! * `roundtrip/export_{repr}/{words}` — GODDAG → surface text;
//! * `roundtrip/import_{repr}/{words}` — surface text → GODDAG;
//! * `roundtrip/chain/{words}` — the full conversion chain distributed →
//!   fragmentation → milestone → stand-off → GODDAG (the paper's "imported
//!   into/exported from a wide range of representations" claim, F4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use cxml_bench::{workload, SIZES};
use sacx::Driver;
use std::hint::black_box;
use std::time::Duration;

fn bench_roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("roundtrip");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));

    for &words in SIZES {
        let w = workload(words);
        let g = &w.ms.goddag;

        // Distributed (multi-file) representation.
        group.throughput(Throughput::Bytes(w.xml_bytes as u64));
        group.bench_function(BenchmarkId::new("export_distributed", words), |b| {
            b.iter(|| sacx::export_distributed(black_box(g)).unwrap());
        });
        group.bench_function(BenchmarkId::new("import_distributed", words), |b| {
            b.iter(|| sacx::parse_distributed(black_box(&w.distributed)).unwrap());
        });

        // Single-file drivers.
        for driver in sacx::builtin_drivers("phys") {
            let exported = driver.export(g).unwrap();
            group.throughput(Throughput::Bytes(exported.len() as u64));
            group.bench_function(
                BenchmarkId::new(format!("export_{}", driver.name()), words),
                |b| {
                    b.iter(|| driver.export(black_box(g)).unwrap());
                },
            );
            group.bench_function(
                BenchmarkId::new(format!("import_{}", driver.name()), words),
                |b| {
                    b.iter(|| driver.import(black_box(&exported)).unwrap());
                },
            );
        }

        // The full conversion chain.
        group.bench_function(BenchmarkId::new("chain", words), |b| {
            let frag = sacx::FragmentationDriver::default();
            let ms = sacx::MilestoneDriver::new("phys");
            let so = sacx::StandoffDriver;
            b.iter(|| {
                let g1 = sacx::parse_distributed(black_box(&w.distributed)).unwrap();
                let g2 = frag.import(&frag.export(&g1).unwrap()).unwrap();
                let g3 = ms.import(&ms.export(&g2).unwrap()).unwrap();
                so.import(&so.export(&g3).unwrap()).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_roundtrip);
criterion_main!(benches);
