//! Experiment B1: SACX parsing of concurrent XML into a GODDAG.
//!
//! Series regenerated:
//! * `parse/distributed/{words}` — SACX parse time vs content size
//!   (3 hierarchies; throughput in XML bytes/s — expect ~linear scaling);
//! * `parse/hierarchies/{n}` — parse time vs hierarchy count at fixed size;
//! * `parse/baseline_dom/{words}` — classic single-hierarchy DOM parse of
//!   the same physical document (the traditional pipeline of Figure 3);
//! * `parse/fragmentation_import/{words}` — importing the equivalent
//!   single fragmented document;
//! * `parse/event_stream/{words}` — the streaming half of SACX alone
//!   (extract + merge, no GODDAG materialization).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use cxml_bench::{workload, workload_hierarchies, SIZES};
use std::hint::black_box;
use std::time::Duration;

fn bench_parse(c: &mut Criterion) {
    let mut group = c.benchmark_group("parse");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));

    for &words in SIZES {
        let w = workload(words);
        group.throughput(Throughput::Bytes(w.xml_bytes as u64));
        group.bench_with_input(BenchmarkId::new("distributed", words), &w, |b, w| {
            b.iter(|| sacx::parse_distributed(black_box(&w.distributed)).unwrap());
        });
    }

    // Hierarchy-count sweep at a fixed size.
    let fixed_words = 4_000;
    for nh in 1..=3usize {
        let w = workload_hierarchies(fixed_words, nh);
        group.throughput(Throughput::Bytes(w.xml_bytes as u64));
        group.bench_with_input(BenchmarkId::new("hierarchies", nh), &w, |b, w| {
            b.iter(|| sacx::parse_distributed(black_box(&w.distributed)).unwrap());
        });
    }

    // Baseline: the traditional single-hierarchy DOM pipeline over the
    // physical document only.
    for &words in SIZES {
        let w = workload(words);
        let phys_doc = w.distributed[0].1.clone();
        group.throughput(Throughput::Bytes(phys_doc.len() as u64));
        group.bench_with_input(BenchmarkId::new("baseline_dom", words), &phys_doc, |b, doc| {
            b.iter(|| xmlcore::dom::Document::parse(black_box(doc)).unwrap());
        });
    }

    // Importing the same model from one fragmented document.
    for &words in SIZES {
        let w = workload(words);
        let opts = sacx::FragmentationOptions::default();
        let frag = sacx::export_fragmentation(&w.ms.goddag, &opts).unwrap();
        group.throughput(Throughput::Bytes(frag.len() as u64));
        group.bench_with_input(BenchmarkId::new("fragmentation_import", words), &frag, |b, doc| {
            b.iter(|| sacx::import_fragmentation(black_box(doc), &opts).unwrap());
        });
    }

    // The streaming half alone: per-document extraction + event merge.
    for &words in SIZES {
        let w = workload(words);
        group.throughput(Throughput::Bytes(w.xml_bytes as u64));
        group.bench_with_input(BenchmarkId::new("event_stream", words), &w, |b, w| {
            b.iter(|| {
                let extracted: Vec<_> = w
                    .distributed
                    .iter()
                    .map(|(n, x)| sacx::extract(black_box(x), n).unwrap())
                    .collect();
                sacx::merge_events(&extracted)
            });
        });
    }

    group.finish();
}

criterion_group!(benches, bench_parse);
criterion_main!(benches);
