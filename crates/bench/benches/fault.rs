//! `cxfault` benchmarks: what a failpoint costs when nothing is wrong.
//!
//! Series:
//! * `fault/fire/unarmed` — the production fast path: one relaxed atomic
//!   load when no site is armed anywhere. This is the cost every WAL
//!   append, fsync, and fetch pays all the time; it must be nanoseconds.
//! * `fault/fire/armed_other_site` — the slow path on a miss: some
//!   unrelated site is armed, so the call takes the registry lock and
//!   looks itself up. The price of running tests with faults armed, not
//!   of production.
//! * `fault/io_check/unarmed` — the `Result`-shaped wrapper on the same
//!   fast path.
//! * `fault/edit/unarmed_failpoints` — the end-to-end durable gated edit
//!   with all its failpoints compiled in and none armed, the integration
//!   cost the `perf_smoke` guard pins.

use criterion::{criterion_group, criterion_main, Criterion};
use cxml_bench::workload;
use cxpersist::{DurableStore, FsyncPolicy, Options};
use cxstore::EditOp;
use std::hint::black_box;
use std::time::Duration;

fn bench_fault(c: &mut Criterion) {
    let mut group = c.benchmark_group("fault");
    group.sample_size(15);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));

    // The fast path: registry empty, one relaxed load.
    cxfault::clear();
    group.bench_function("fire/unarmed", |b| {
        b.iter(|| black_box(cxfault::fire(black_box("wal.append"))))
    });
    group.bench_function("io_check/unarmed", |b| {
        b.iter(|| black_box(cxfault::io_check(black_box("wal.fsync"))))
    });

    // The miss path: an unrelated site armed forces the lock + lookup.
    cxfault::configure("bench.unrelated", cxfault::Trigger::Nth(u64::MAX), cxfault::Fault::Io);
    group.bench_function("fire/armed_other_site", |b| {
        b.iter(|| black_box(cxfault::fire(black_box("wal.append"))))
    });
    cxfault::clear();

    // End to end: a durable gated edit crossing the wal.append and
    // wal.fsync failpoints, none armed.
    let dir = std::env::temp_dir().join(format!("cxfault-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = DurableStore::open_with(&dir, Options { fsync: FsyncPolicy::Never }).unwrap();
    let id = store.insert(workload(300).ms.goddag).unwrap();
    let mut k = 0usize;
    group.bench_function("edit/unarmed_failpoints", |b| {
        b.iter(|| {
            k += 1;
            store.edit(id, EditOp::InsertText { offset: 0, text: format!("x{k} ") }).unwrap()
        });
    });
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);

    group.finish();
}

criterion_group!(benches, bench_fault);
criterion_main!(benches);
