//! `cxstore` benchmarks: what the repository layer amortizes.
//!
//! Series:
//! * `store/cold_vs_warm/{cold|warm}/{words}` — the same overlap query on
//!   one document with the index cache dropped before every iteration
//!   (cold: pays the `O(n log n)` rebuild) vs. left in place (warm: epoch
//!   check + cached `Arc` clone). The gap is the per-request cost the
//!   store removes for read-heavy traffic.
//! * `store/fanout/{serial|parallel}/{docs}` — one expression across a
//!   collection, `query_all_serial` vs. the scoped-thread `query_all`.
//! * `store/compile/{cached|parse}` — compiled-query cache vs. parsing the
//!   expression each time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cxml_bench::workload;
use cxstore::Store;
use std::hint::black_box;
use std::time::Duration;

const OVERLAP_QUERY: &str = "//s/overlapping::phys:line";

fn bench_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("store");
    group.sample_size(15);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));

    // Cold vs warm index on a single document.
    for &words in &[1_000usize, 4_000] {
        let store = Store::new();
        let id = store.insert(workload(words).ms.goddag);

        group.bench_function(BenchmarkId::new("cold_vs_warm/cold", words), |b| {
            b.iter(|| {
                store.invalidate_indexes();
                store.query(id, black_box(OVERLAP_QUERY)).unwrap()
            });
        });
        group.bench_function(BenchmarkId::new("cold_vs_warm/warm", words), |b| {
            store.warm(id).unwrap();
            b.iter(|| store.query(id, black_box(OVERLAP_QUERY)).unwrap());
        });
    }

    // Serial vs parallel batch fan-out.
    for &docs in &[4usize, 16] {
        let store = Store::new();
        for i in 0..docs {
            let mut w = workload(1_000);
            // Distinct documents (different seeds would need regeneration;
            // a trivial text edit suffices to make each doc its own work).
            w.ms.goddag.insert_text(0, &format!("doc{i} ")).unwrap();
            store.insert(w.ms.goddag);
        }
        store.warm_all();
        group.bench_function(BenchmarkId::new("fanout/serial", docs), |b| {
            b.iter(|| store.query_all_serial(black_box(OVERLAP_QUERY)).unwrap());
        });
        group.bench_function(BenchmarkId::new("fanout/parallel", docs), |b| {
            b.iter(|| store.query_all(black_box(OVERLAP_QUERY)).unwrap());
        });
    }

    // Compiled-query cache vs a fresh parse per evaluation.
    {
        let store = Store::new();
        store.insert(workload(1_000).ms.goddag);
        store.warm_all();
        group.bench_function(BenchmarkId::new("compile/cached", 1_000), |b| {
            b.iter(|| store.compile(black_box(OVERLAP_QUERY)).unwrap());
        });
        group.bench_function(BenchmarkId::new("compile/parse", 1_000), |b| {
            b.iter(|| expath::parse(black_box(OVERLAP_QUERY)).unwrap());
        });
    }

    group.finish();
}

criterion_group!(benches, bench_store);
criterion_main!(benches);
