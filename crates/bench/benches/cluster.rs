//! `cxcluster` benchmarks: what write sharding costs and buys.
//!
//! Series:
//! * `cluster/edit/{shards}` — routed gated text edits round-robin across
//!   the corpus, 1 shard (the single-primary baseline: routing overhead
//!   only) vs 4 shards. On multi-core hardware the 4-shard number also
//!   shows WAL appends no longer serializing on one mutex.
//! * `cluster/query_all/{shards}` — one fan-out batch query over the same
//!   12-document corpus, partitioned 1 way vs 4 ways.
//! * `cluster/move_doc` — one full migration (capture → durable hand-off
//!   → route swap → tombstone) of a 200-word manuscript.
//!
//! All stores live under unique directories in the system temp dir and
//! are removed when the bench finishes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use cxcluster::{Cluster, ShardId};
use cxpersist::{FsyncPolicy, Options};
use cxstore::{DocId, EditOp};
use std::hint::black_box;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

static NEXT: AtomicU64 = AtomicU64::new(0);

/// Unique scratch directory (cleaned by `Scratch::drop`).
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let path = std::env::temp_dir().join(format!(
            "cxcluster-bench-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&path);
        Scratch(path)
    }

    fn shard_dirs(&self, n: usize) -> Vec<PathBuf> {
        (0..n).map(|i| self.0.join(format!("shard-{i}"))).collect()
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn corpus_cluster(
    scratch: &Scratch,
    shards: usize,
    docs: usize,
    words: usize,
) -> (Cluster, Vec<DocId>) {
    let cluster =
        Cluster::open(scratch.shard_dirs(shards), Options { fsync: FsyncPolicy::Never }).unwrap();
    let ids = (0..docs)
        .map(|i| {
            cluster
                .insert(
                    corpus::generate(&corpus::Params {
                        words,
                        seed: i as u64,
                        ..corpus::Params::default()
                    })
                    .goddag,
                )
                .unwrap()
        })
        .collect();
    (cluster, ids)
}

fn bench_cluster(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));

    const EDITS: usize = 200;

    // Routed edit throughput: 1 primary vs 4.
    for shards in [1usize, 4] {
        let scratch = Scratch::new("edit");
        let (cluster, ids) = corpus_cluster(&scratch, shards, 8, 100);
        let mut k = 0usize;
        group.throughput(Throughput::Elements(EDITS as u64));
        group.bench_function(BenchmarkId::new("edit", shards), |b| {
            b.iter(|| {
                for _ in 0..EDITS {
                    let id = ids[k % ids.len()];
                    cluster.edit(id, EditOp::InsertText { offset: 0, text: "x ".into() }).unwrap();
                    k += 1;
                }
            });
        });
    }

    // Fan-out batch query: same 12 documents, partitioned 1 way vs 4.
    for shards in [1usize, 4] {
        let scratch = Scratch::new("query");
        let (cluster, ids) = corpus_cluster(&scratch, shards, 12, 100);
        cluster.query_all("//w").unwrap(); // warm indexes + compiled query
        group.throughput(Throughput::Elements(ids.len() as u64));
        group.bench_function(BenchmarkId::new("query_all", shards), |b| {
            b.iter(|| {
                let hits = cluster.query_all(black_box("//w")).unwrap();
                assert_eq!(hits.len(), ids.len());
                hits
            });
        });
    }

    // Migration latency: bounce one 200-word manuscript between shards.
    {
        let scratch = Scratch::new("move");
        let (cluster, _) = corpus_cluster(&scratch, 4, 4, 100);
        let big = cluster
            .insert(
                corpus::generate(&corpus::Params { words: 200, ..corpus::Params::default() })
                    .goddag,
            )
            .unwrap();
        group.throughput(Throughput::Elements(1));
        group.bench_function("move_doc", |b| {
            b.iter(|| {
                let to = ShardId((cluster.shard_of(big).0 + 1) % 4);
                cluster.move_doc(black_box(big), to).unwrap()
            });
        });
    }

    group.finish();
}

criterion_group!(benches, bench_cluster);
criterion_main!(benches);
