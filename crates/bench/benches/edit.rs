//! Experiment B3 + ablation A2: editing with and without prevalidation.
//!
//! Series regenerated:
//! * `edit/insert_gated/{words}` vs `edit/insert_ungated/{words}` — one
//!   markup insertion (plus undo, keeping the document fixed) with the
//!   prevalidation gate on/off: the gate's overhead must stay interactive;
//! * `edit/suggest/{words}` — xTagger's tag-suggestion list for a selection;
//! * `edit/prevalid_check/{words}` — the bare `check_insertion` call;
//! * `span_cache/read_cached/{words}` vs `span_cache/compute_walk/{words}` —
//!   A2: reading the maintained span cache vs recomputing spans by walking
//!   to the first/last leaf; plus `span_cache/renumber_on_edit/{words}`, the
//!   price the cache adds to every edit (a full renumber pass).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cxml_bench::{workload, SIZES};
use goddag::{Goddag, NodeId, Span};
use prevalid::PrevalidEngine;
use std::hint::black_box;
use std::time::Duration;
use xtagger::Session;

fn session_for(words: usize) -> (Session, goddag::HierarchyId, (usize, usize)) {
    let w = workload(words);
    let mut g = sacx::parse_distributed(&w.distributed).unwrap();
    corpus::dtds::attach_standard(&mut g);
    let ling = g.hierarchy_by_name("ling").unwrap();
    // A two-word selection inside the first sentence (a legal <phrase>).
    let (s, _) = w.ms.word_ranges[0];
    let (_, e) = w.ms.word_ranges[1];
    (Session::new(g), ling, (s, e))
}

fn bench_edit(c: &mut Criterion) {
    let mut group = c.benchmark_group("edit");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));

    for &words in SIZES {
        let (mut session, ling, (s, e)) = session_for(words);
        session.set_prevalidation(true);
        group.bench_function(BenchmarkId::new("insert_gated", words), |b| {
            b.iter(|| {
                session.insert_markup(ling, "phrase", vec![], s, e).unwrap();
                session.undo().unwrap();
            });
        });

        let (mut session, ling, (s, e)) = session_for(words);
        session.set_prevalidation(false);
        group.bench_function(BenchmarkId::new("insert_ungated", words), |b| {
            b.iter(|| {
                session.insert_markup(ling, "phrase", vec![], s, e).unwrap();
                session.undo().unwrap();
            });
        });

        let (session, ling, (s, e)) = session_for(words);
        group.bench_function(BenchmarkId::new("suggest", words), |b| {
            b.iter(|| session.suggest(ling, black_box(s), black_box(e)));
        });

        let (session, ling, (s, e)) = session_for(words);
        let engine = PrevalidEngine::new(corpus::dtds::ling());
        group.bench_function(BenchmarkId::new("prevalid_check", words), |b| {
            b.iter(|| {
                prevalid::check_insertion(
                    &engine,
                    session.goddag(),
                    ling,
                    "phrase",
                    black_box(s),
                    black_box(e),
                )
            });
        });
    }
    group.finish();

    // A2: span cache ablation.
    let mut group = c.benchmark_group("span_cache");
    group.sample_size(15);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for &words in SIZES {
        let w = workload(words);
        let g = &w.ms.goddag;
        let elements: Vec<NodeId> = g.elements().collect();

        group.bench_function(BenchmarkId::new("read_cached", words), |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for &e in &elements {
                    let s = g.span(e);
                    acc += (s.end - s.start) as u64;
                }
                acc
            });
        });

        group.bench_function(BenchmarkId::new("compute_walk", words), |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for &e in &elements {
                    let s = compute_span_by_walking(g, e);
                    acc += (s.end - s.start) as u64;
                }
                acc
            });
        });

        // The cost side of the cache: one edit triggers a renumber.
        let mut editable = g.clone();
        let (s0, e0) = w.ms.word_ranges[0];
        let ling = editable.hierarchy_by_name("ling").unwrap();
        group.bench_function(BenchmarkId::new("renumber_on_edit", words), |b| {
            b.iter(|| {
                let id = editable
                    .insert_element(ling, xmlcore::QName::parse("seg").unwrap(), vec![], s0, e0)
                    .unwrap();
                editable.remove_element(id).unwrap();
            });
        });
    }
    group.finish();
}

/// What `span()` would cost without the cache: walk to the first and last
/// leaf of the element.
fn compute_span_by_walking(g: &Goddag, e: NodeId) -> Span {
    let mut first: Option<u32> = None;
    let mut last: Option<u32> = None;
    let mut stack = vec![e];
    while let Some(n) = stack.pop() {
        if g.is_leaf(n) {
            let s = g.span(n);
            first = Some(first.map_or(s.start, |f: u32| f.min(s.start)));
            last = Some(last.map_or(s.end, |l: u32| l.max(s.end)));
            continue;
        }
        if let Some(h) = g.hierarchy_of(n) {
            for &c in g.children_in(n, h) {
                stack.push(c);
            }
        }
    }
    match (first, last) {
        (Some(f), Some(l)) => Span::new(f, l),
        _ => Span::empty_at(0),
    }
}

criterion_group!(benches, bench_edit);
criterion_main!(benches);
